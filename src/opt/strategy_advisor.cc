#include "opt/strategy_advisor.h"

#include <cassert>
#include <utility>

#include "common/rng.h"

namespace dflow::opt {
namespace {

// Distinct salts for the two independent per-request draws, so "does this
// request explore" and "which candidate does it explore" never correlate.
constexpr uint64_t kExploreSalt = 0xe8b10e5eedULL;
constexpr uint64_t kRotationSalt = 0x0707a7e10adULL;

std::vector<std::string> NamesOf(const std::vector<core::Strategy>& list) {
  std::vector<std::string> names;
  names.reserve(list.size());
  for (const core::Strategy& s : list) names.push_back(s.ToString());
  return names;
}

uint64_t FingerprintOf(const CostModel& model,
                       const std::vector<std::string>& names,
                       const AdvisorOptions& options) {
  uint64_t h = Rng::Mix(0xad7150f00dULL, model.Fingerprint());
  h = Rng::Mix(h, names.size());
  for (const std::string& name : names) {
    for (const char c : name) h = Rng::Mix(h, static_cast<uint64_t>(c));
  }
  h = Rng::Mix(h, static_cast<uint64_t>(options.objective));
  h = Rng::Mix(h, options.explore_period);
  h = Rng::Mix(h, options.schema_salt);
  return h;
}

}  // namespace

std::vector<core::Strategy> StrategyAdvisor::DefaultCandidates() {
  std::vector<core::Strategy> candidates;
  for (const char* text :
       {"PCE0", "PCC0", "PCE100", "PCC100", "PSE100", "PSC100"}) {
    candidates.push_back(*core::Strategy::Parse(text));
  }
  return candidates;
}

StrategyAdvisor::StrategyAdvisor(CostModel model,
                                 std::vector<core::Strategy> candidates,
                                 AdvisorOptions options)
    : model_(std::move(model)),
      candidates_(std::move(candidates)),
      candidate_names_(NamesOf(candidates_)),
      options_(options),
      fingerprint_(FingerprintOf(model_, candidate_names_, options_)) {
  assert(!candidates_.empty());
  for (const core::Strategy& candidate : candidates_) {
    assert(!candidate.is_auto);
    (void)candidate;
  }
}

AdvisorChoice StrategyAdvisor::Choose(const core::SourceBinding& sources,
                                      uint64_t seed) const {
  const uint64_t class_key = ClassKeyFor(options_.schema_salt, sources);
  AdvisorChoice choice;
  choice.class_key = class_key;
  choice.class_hit = model_.HasClass(class_key);
  selections_.fetch_add(1, std::memory_order_relaxed);
  (choice.class_hit ? class_hits_ : class_misses_)
      .fetch_add(1, std::memory_order_relaxed);

  // Explore: a pure hash of the request decides, so replays (and every
  // shard count) explore exactly the same requests.
  if (options_.explore_period > 0 &&
      Rng::Mix(class_key, seed ^ kExploreSalt) % options_.explore_period ==
          0) {
    choice.explored = true;
    choice.strategy = candidates_[Rng::Mix(seed, kRotationSalt) %
                                  candidates_.size()];
    explores_.fetch_add(1, std::memory_order_relaxed);
    return choice;
  }

  // Exploit: the candidate with the lowest estimated cost, preferring the
  // class-specific estimate and falling back to the class-independent
  // aggregate. Candidates without any estimate are skipped; with an empty
  // model the first candidate wins (still a pure function of the config).
  const CostEstimate* best_estimate = nullptr;
  size_t best_index = 0;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const CostEstimate* estimate =
        model_.Find(class_key, candidate_names_[i]);
    if (estimate == nullptr) {
      estimate = model_.FindDefault(candidate_names_[i]);
    }
    if (estimate == nullptr) continue;
    const auto cost_of = [&](const CostEstimate& e) {
      return options_.objective == AdvisorOptions::Objective::kWork
                 ? e.mean_work
                 : e.mean_time_units;
    };
    if (best_estimate == nullptr ||
        cost_of(*estimate) < cost_of(*best_estimate)) {
      best_estimate = estimate;
      best_index = i;
    }
  }
  choice.strategy = candidates_[best_index];
  return choice;
}

void StrategyAdvisor::Observe(const core::SourceBinding& sources,
                              const core::Strategy& strategy,
                              const core::InstanceMetrics& metrics) {
  Observe(ClassKeyFor(options_.schema_salt, sources), strategy.ToString(),
          metrics);
}

void StrategyAdvisor::Observe(uint64_t class_key,
                              const std::string& strategy_name,
                              const core::InstanceMetrics& metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  observed_.Record(class_key, strategy_name,
                   static_cast<double>(metrics.work), metrics.ResponseTime());
  ++observations_;
}

CostModel StrategyAdvisor::PromotedModel() const {
  std::lock_guard<std::mutex> lock(mu_);
  CostModel promoted = model_;
  promoted.MergeFrom(observed_);
  return promoted;
}

AdvisorStats StrategyAdvisor::Stats() const {
  AdvisorStats stats;
  stats.selections = selections_.load(std::memory_order_relaxed);
  stats.explores = explores_.load(std::memory_order_relaxed);
  stats.class_hits = class_hits_.load(std::memory_order_relaxed);
  stats.class_misses = class_misses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  stats.observations = observations_;
  return stats;
}

}  // namespace dflow::opt
