#ifndef DFLOW_OPT_STRATEGY_ADVISOR_H_
#define DFLOW_OPT_STRATEGY_ADVISOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/snapshot.h"
#include "core/strategy.h"
#include "opt/cost_model.h"

namespace dflow::opt {

// Advisor configuration. The schema salt must match the one the model was
// calibrated with, or every request falls back to the default aggregates.
struct AdvisorOptions {
  // What the exploit rule minimizes: the paper's Work (total units
  // submitted to the database) or TimeInUnits (response time under
  // infinite resources).
  enum class Objective { kWork, kTimeUnits };
  Objective objective = Objective::kWork;

  // Deterministic explore schedule: a request whose Mix(class_key, seed)
  // draw lands on 0 mod explore_period runs a rotation candidate instead
  // of the exploit choice, so the online statistics keep covering
  // non-best strategies. 0 disables exploration. Because the draw is a
  // pure hash of the request, replays explore the same requests.
  uint32_t explore_period = 64;

  uint64_t schema_salt = 0;
};

// One AUTO decision: the concrete strategy to execute plus how it was
// reached (diagnostics that feed the selection counters). `class_key` is
// the request's class digest, handed back so the caller can Observe()
// without re-hashing the source bindings.
struct AdvisorChoice {
  core::Strategy strategy;
  uint64_t class_key = 0;
  bool explored = false;   // explore rule fired (rotation pick)
  bool class_hit = false;  // request class present in the frozen model
};

// Point-in-time advisor counters (cumulative since construction). The
// per-strategy selection histogram lives in the runtime's StatsCollector
// (ServerStats::strategy_selections), not here — the advisor only keeps
// what PromotedModel() and these gauges need.
struct AdvisorStats {
  int64_t selections = 0;
  int64_t explores = 0;
  int64_t class_hits = 0;
  int64_t class_misses = 0;
  int64_t observations = 0;
};

// The cost-model-driven per-request strategy selector behind the AUTO
// sentinel.
//
// Determinism contract (tested in tests/strategy_advisor_test.cc):
// Choose() is a pure function of (sources, seed) and the *frozen*
// calibration model — it never reads the online statistics — so the same
// request stream produces byte-identical results and identical strategy
// choices for any shard count, any interleaving, and across a server
// restart with the same calibration. Online observations accumulate on
// the side and only change decisions through an explicit epoch step:
// PromotedModel() folds them into a new CostModel that a *new* advisor
// (typically the next server start, which can persist it via
// CostModel::SaveToFile) is built from.
//
// Threading: Choose() and Observe() are safe to call concurrently from
// every shard worker; Choose touches only immutable state plus relaxed
// counters, Observe takes a mutex on the observation accumulator.
class StrategyAdvisor {
 public:
  // A compact candidate set spanning the paper's §5 strategy families:
  // serial propagation (work-minimal regimes), fully parallel
  // conservative, and fully parallel speculative (time-minimal regimes),
  // each under both scheduling heuristics.
  static std::vector<core::Strategy> DefaultCandidates();

  // `model` is the frozen calibration; `candidates` the concrete
  // strategies AUTO may pick (must be non-empty and concrete; an AUTO
  // entry would recurse — callers pass DefaultCandidates() or a curated
  // list).
  StrategyAdvisor(CostModel model, std::vector<core::Strategy> candidates,
                  AdvisorOptions options);
  StrategyAdvisor(const StrategyAdvisor&) = delete;
  StrategyAdvisor& operator=(const StrategyAdvisor&) = delete;

  // Picks the concrete strategy for one request. Pure function of
  // (sources, seed) and the frozen model; see the class comment.
  AdvisorChoice Choose(const core::SourceBinding& sources,
                       uint64_t seed) const;

  // Feeds one completed execution into the online statistics. Never
  // affects Choose() on this advisor.
  void Observe(const core::SourceBinding& sources,
               const core::Strategy& strategy,
               const core::InstanceMetrics& metrics);
  // Hot-path variant taking the class key from AdvisorChoice and the
  // already-stringified strategy, so the per-request serving path hashes
  // the sources and stringifies the strategy exactly once (in Choose /
  // the shard).
  void Observe(uint64_t class_key, const std::string& strategy_name,
               const core::InstanceMetrics& metrics);

  // The frozen model with every online observation folded in: the next
  // epoch's calibration. Deterministic given the same observation
  // multiset (per-class-and-strategy running means are order-independent
  // up to floating-point rounding of identical values).
  CostModel PromotedModel() const;

  AdvisorStats Stats() const;

  // Digest of everything that determines Choose(): the frozen model, the
  // candidate list, the objective, the explore period, and the schema
  // salt. Two servers with equal fingerprints make identical AUTO
  // decisions — the router's fleet handshake compares this.
  uint64_t Fingerprint() const { return fingerprint_; }

  const CostModel& model() const { return model_; }
  const std::vector<core::Strategy>& candidates() const { return candidates_; }
  const AdvisorOptions& options() const { return options_; }

 private:
  const CostModel model_;
  const std::vector<core::Strategy> candidates_;
  const std::vector<std::string> candidate_names_;
  const AdvisorOptions options_;
  const uint64_t fingerprint_;

  // Online layer: the observation accumulator plus counters.
  mutable std::mutex mu_;
  CostModel observed_;
  int64_t observations_ = 0;
  mutable std::atomic<int64_t> selections_{0};
  mutable std::atomic<int64_t> explores_{0};
  mutable std::atomic<int64_t> class_hits_{0};
  mutable std::atomic<int64_t> class_misses_{0};
};

}  // namespace dflow::opt

#endif  // DFLOW_OPT_STRATEGY_ADVISOR_H_
