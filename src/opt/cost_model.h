#ifndef DFLOW_OPT_COST_MODEL_H_
#define DFLOW_OPT_COST_MODEL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/schema.h"
#include "core/snapshot.h"
#include "core/strategy.h"
#include "gen/pattern_params.h"
#include "obs/flow_profiler.h"

namespace dflow::opt {

// One measured cost estimate for a (request class, strategy) pair: running
// means of the paper's Work and TimeInUnits over `samples` executions.
struct CostEstimate {
  double mean_work = 0;
  double mean_time_units = 0;
  int64_t samples = 0;

  // Folds one observation into the running means.
  void Fold(double work, double time_units);
  // Folds another estimate in as a sample-weighted batch.
  void FoldBatch(const CostEstimate& other);

  friend bool operator==(const CostEstimate&, const CostEstimate&) = default;
};

// Measured enabling-condition outcomes for one attribute, folded into a
// CostModel from production profiles (obs::FlowProfiler). Raw integer
// counts rather than a ratio: sums of deterministic per-request tallies
// serialize exactly, so a model re-seeded from the same profile is
// byte-identical on every node.
struct ObservedSelectivity {
  int64_t true_outcomes = 0;
  int64_t false_outcomes = 0;
  int64_t evals = 0;

  // true / (true + false), or -1 while unresolved.
  double Selectivity() const {
    const int64_t resolved = true_outcomes + false_outcomes;
    if (resolved == 0) return -1.0;
    return static_cast<double>(true_outcomes) /
           static_cast<double>(resolved);
  }

  friend bool operator==(const ObservedSelectivity&,
                         const ObservedSelectivity&) = default;
};

// One instance of the calibration workload: the source bindings plus the
// instance seed, exactly what a serving request carries.
struct CalibrationInstance {
  core::SourceBinding sources;
  uint64_t seed = 0;
};

// The request-class key the advisor (and calibration) buckets by: a salt
// identifying the schema regime mixed with the digest of the source
// bindings. Two requests with the same class key are the same decision-flow
// "shape" for costing purposes — on one served schema, that means
// identical source bindings.
uint64_t ClassKeyFor(uint64_t schema_salt, const core::SourceBinding& sources);

// A deterministic salt for a generated schema regime: a digest of every
// Table 1 parameter. Calibration and serving must use the same salt so
// class keys line up (dflow_serve derives it from its pattern flags).
uint64_t SchemaSaltFromParams(const gen::PatternParams& params);

// The frozen cost table the StrategyAdvisor consults: per-class and
// per-strategy estimates plus a class-independent default aggregate per
// strategy (the fallback for classes never calibrated or observed).
//
// A CostModel is plain data — building one (CalibrateCostModel below, or
// StrategyAdvisor::PromotedModel) is the only thing that runs instances.
// Serialization is a line-based text format (`Serialize`/`Parse`,
// `SaveToFile`/`LoadFromFile`) so a server restart can reload the exact
// model and reproduce every AUTO choice byte-for-byte.
class CostModel {
 public:
  CostModel() = default;

  // Folds one measured execution into both the class entry and the
  // per-strategy default aggregate.
  void Record(uint64_t class_key, const std::string& strategy, double work,
              double time_units);

  // Folds every entry of `other` into this model as one sample-weighted
  // batch per (class, strategy) — the promotion step that turns online
  // observations into the next epoch's calibration.
  void MergeFrom(const CostModel& other);

  // Folds a production profile's measured condition outcomes into the
  // model (counts sum per attribute). Part of the same epoch step as
  // MergeFrom: a frozen model never changes in place, the merged copy is
  // saved and becomes the next epoch's calibration — byte-identity within
  // an epoch is preserved.
  void MergeObservedSelectivities(const obs::ProfileSnapshot& profile);

  // The observed outcomes for one attribute's condition, or nullptr when
  // no profile ever resolved (or evaluated) it.
  const ObservedSelectivity* FindSelectivity(AttributeId attr) const;
  const std::map<AttributeId, ObservedSelectivity>& selectivities() const {
    return selectivities_;
  }

  // The class-specific estimate, or nullptr when this (class, strategy)
  // was never recorded.
  const CostEstimate* Find(uint64_t class_key,
                           const std::string& strategy) const;
  // The class-independent aggregate for a strategy, or nullptr.
  const CostEstimate* FindDefault(const std::string& strategy) const;
  bool HasClass(uint64_t class_key) const;

  size_t num_classes() const { return classes_.size(); }
  bool empty() const { return classes_.empty() && defaults_.empty(); }

  // The schema salt this model was calibrated under (0 for an empty
  // model). Serialized with the model, so a loaded calibration can be
  // checked against the served schema — class keys of a different schema
  // never match, which would silently degrade every request to the
  // default aggregates measured on the wrong pattern.
  uint64_t schema_salt() const { return schema_salt_; }
  void set_schema_salt(uint64_t salt) { schema_salt_ = salt; }

  // Order-independent 64-bit digest of the full contents. Equal
  // fingerprints mean the models drive identical AUTO choices.
  uint64_t Fingerprint() const;

  // Text round trip. Parse returns nullopt on any malformed line; a parsed
  // model has the same Fingerprint as its source.
  std::string Serialize() const;
  static std::optional<CostModel> Parse(const std::string& text);

  // File round trip; false + *error on I/O or parse failure.
  bool SaveToFile(const std::string& path, std::string* error) const;
  static std::optional<CostModel> LoadFromFile(const std::string& path,
                                               std::string* error);

  friend bool operator==(const CostModel&, const CostModel&) = default;

 private:
  // std::map keeps iteration deterministic, which Serialize/Fingerprint
  // rely on.
  uint64_t schema_salt_ = 0;
  std::map<uint64_t, std::map<std::string, CostEstimate>> classes_;
  std::map<std::string, CostEstimate> defaults_;
  // Observed per-attribute condition outcomes (v8 profile re-seeding);
  // empty on models that predate profile merges — such models serialize
  // and fingerprint exactly as before.
  std::map<AttributeId, ObservedSelectivity> selectivities_;
};

// Calibration configuration: the candidate strategies to profile, the
// backend regime they run against, and the schema salt class keys are
// derived from.
struct CalibrationOptions {
  std::vector<core::Strategy> candidates;
  core::HarnessOptions harness;
  uint64_t schema_salt = 0;
};

// The offline calibration pass: runs every candidate strategy over every
// calibration instance on a private FlowHarness and records the measured
// Work / TimeInUnits into a fresh CostModel. Deterministic: same (schema,
// instances, options) => byte-identical model (the FlowHarness determinism
// contract), so re-calibrating on restart reproduces the exact model.
CostModel CalibrateCostModel(const core::Schema& schema,
                             const std::vector<CalibrationInstance>& instances,
                             const CalibrationOptions& options);

}  // namespace dflow::opt

#endif  // DFLOW_OPT_COST_MODEL_H_
