#include "opt/cost_model.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/rng.h"

namespace dflow::opt {
namespace {

constexpr char kHeader[] = "dflow-cost-model v1";

// %.17g round-trips every finite double exactly, keeping Serialize/Parse
// fingerprint-stable.
std::string DoubleText(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

void AppendEstimateLine(const char* kind, const std::string& strategy,
                        const CostEstimate& estimate, uint64_t class_key,
                        std::string* out) {
  char key_text[24] = "";
  if (class_key != 0) {
    std::snprintf(key_text, sizeof(key_text), "%016" PRIx64 " ", class_key);
  }
  *out += kind;
  *out += ' ';
  *out += key_text;
  *out += strategy + " " + DoubleText(estimate.mean_work) + " " +
          DoubleText(estimate.mean_time_units) + " " +
          std::to_string(estimate.samples) + "\n";
}

uint64_t FoldEstimate(uint64_t h, const std::string& strategy,
                      const CostEstimate& estimate) {
  for (const char c : strategy) h = Rng::Mix(h, static_cast<uint64_t>(c));
  h = Rng::Mix(h, std::bit_cast<uint64_t>(estimate.mean_work));
  h = Rng::Mix(h, std::bit_cast<uint64_t>(estimate.mean_time_units));
  h = Rng::Mix(h, static_cast<uint64_t>(estimate.samples));
  return h;
}

}  // namespace

void CostEstimate::Fold(double work, double time_units) {
  ++samples;
  const double n = static_cast<double>(samples);
  mean_work += (work - mean_work) / n;
  mean_time_units += (time_units - mean_time_units) / n;
}

uint64_t ClassKeyFor(uint64_t schema_salt,
                     const core::SourceBinding& sources) {
  uint64_t h = Rng::Mix(0xc1a55c0575ULL, schema_salt);
  h = Rng::Mix(h, sources.size());
  for (const auto& [attr, value] : sources) {
    h = Rng::Mix(h, static_cast<uint64_t>(attr));
    h = HashValue(h, value);
  }
  return h;
}

uint64_t SchemaSaltFromParams(const gen::PatternParams& params) {
  uint64_t h = 0x5c11e3a5a17ULL;
  h = Rng::Mix(h, static_cast<uint64_t>(params.nb_nodes));
  h = Rng::Mix(h, static_cast<uint64_t>(params.nb_rows));
  h = Rng::Mix(h, static_cast<uint64_t>(params.pct_enabled));
  h = Rng::Mix(h, static_cast<uint64_t>(params.pct_enabler));
  h = Rng::Mix(h, static_cast<uint64_t>(params.pct_enabling_hop));
  h = Rng::Mix(h, static_cast<uint64_t>(params.min_pred));
  h = Rng::Mix(h, static_cast<uint64_t>(params.max_pred));
  h = Rng::Mix(h, static_cast<uint64_t>(params.pct_added_data_edges));
  h = Rng::Mix(h, static_cast<uint64_t>(params.pct_data_hop));
  h = Rng::Mix(h, static_cast<uint64_t>(params.min_cost));
  h = Rng::Mix(h, static_cast<uint64_t>(params.max_cost));
  h = Rng::Mix(h, params.seed);
  return h;
}

void CostEstimate::FoldBatch(const CostEstimate& other) {
  if (other.samples <= 0) return;
  const int64_t total = samples + other.samples;
  const double weight =
      static_cast<double>(other.samples) / static_cast<double>(total);
  mean_work += (other.mean_work - mean_work) * weight;
  mean_time_units += (other.mean_time_units - mean_time_units) * weight;
  samples = total;
}

void CostModel::Record(uint64_t class_key, const std::string& strategy,
                       double work, double time_units) {
  classes_[class_key][strategy].Fold(work, time_units);
  defaults_[strategy].Fold(work, time_units);
}

void CostModel::MergeFrom(const CostModel& other) {
  for (const auto& [class_key, by_strategy] : other.classes_) {
    for (const auto& [strategy, estimate] : by_strategy) {
      classes_[class_key][strategy].FoldBatch(estimate);
    }
  }
  for (const auto& [strategy, estimate] : other.defaults_) {
    defaults_[strategy].FoldBatch(estimate);
  }
}

void CostModel::MergeObservedSelectivities(
    const obs::ProfileSnapshot& profile) {
  for (size_t i = 0; i < profile.conds.size(); ++i) {
    const obs::CondProfile& c = profile.conds[i];
    if (c.evals == 0 && c.true_outcomes == 0 && c.false_outcomes == 0) {
      continue;  // literal-true or never-observed: no row
    }
    ObservedSelectivity& obs = selectivities_[static_cast<AttributeId>(i)];
    obs.true_outcomes += c.true_outcomes;
    obs.false_outcomes += c.false_outcomes;
    obs.evals += c.evals;
  }
}

const ObservedSelectivity* CostModel::FindSelectivity(AttributeId attr) const {
  const auto it = selectivities_.find(attr);
  return it == selectivities_.end() ? nullptr : &it->second;
}

const CostEstimate* CostModel::Find(uint64_t class_key,
                                    const std::string& strategy) const {
  const auto cls = classes_.find(class_key);
  if (cls == classes_.end()) return nullptr;
  const auto it = cls->second.find(strategy);
  return it == cls->second.end() ? nullptr : &it->second;
}

const CostEstimate* CostModel::FindDefault(const std::string& strategy) const {
  const auto it = defaults_.find(strategy);
  return it == defaults_.end() ? nullptr : &it->second;
}

bool CostModel::HasClass(uint64_t class_key) const {
  return classes_.count(class_key) > 0;
}

uint64_t CostModel::Fingerprint() const {
  uint64_t h = 0xc057f17ULL;
  h = Rng::Mix(h, schema_salt_);
  h = Rng::Mix(h, classes_.size());
  for (const auto& [class_key, by_strategy] : classes_) {
    h = Rng::Mix(h, class_key);
    for (const auto& [strategy, estimate] : by_strategy) {
      h = FoldEstimate(h, strategy, estimate);
    }
  }
  h = Rng::Mix(h, defaults_.size());
  for (const auto& [strategy, estimate] : defaults_) {
    h = FoldEstimate(h, strategy, estimate);
  }
  // Guarded so a model without profile merges fingerprints exactly as it
  // did before selectivities existed (epoch byte-identity).
  if (!selectivities_.empty()) {
    h = Rng::Mix(h, selectivities_.size());
    for (const auto& [attr, sel] : selectivities_) {
      h = Rng::Mix(h, static_cast<uint64_t>(attr));
      h = Rng::Mix(h, static_cast<uint64_t>(sel.true_outcomes));
      h = Rng::Mix(h, static_cast<uint64_t>(sel.false_outcomes));
      h = Rng::Mix(h, static_cast<uint64_t>(sel.evals));
    }
  }
  return h;
}

std::string CostModel::Serialize() const {
  std::string out = kHeader;
  out += "\n";
  char salt_text[32];
  std::snprintf(salt_text, sizeof(salt_text), "salt %016" PRIx64 "\n",
                schema_salt_);
  out += salt_text;
  for (const auto& [strategy, estimate] : defaults_) {
    AppendEstimateLine("default", strategy, estimate, 0, &out);
  }
  for (const auto& [class_key, by_strategy] : classes_) {
    for (const auto& [strategy, estimate] : by_strategy) {
      AppendEstimateLine("class", strategy, estimate, class_key, &out);
    }
  }
  // Integer counts (not a ratio) so the text round-trips exactly; absent
  // entirely on models without profile merges, keeping pre-v8 files and
  // their fingerprints byte-identical.
  for (const auto& [attr, sel] : selectivities_) {
    out += "selectivity " + std::to_string(attr) + " " +
           std::to_string(sel.true_outcomes) + " " +
           std::to_string(sel.false_outcomes) + " " +
           std::to_string(sel.evals) + "\n";
  }
  return out;
}

std::optional<CostModel> CostModel::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) return std::nullopt;
  CostModel model;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    uint64_t class_key = 0;
    if (kind == "salt") {
      std::string salt_text;
      fields >> salt_text;
      char* end = nullptr;
      model.schema_salt_ = std::strtoull(salt_text.c_str(), &end, 16);
      if (end == nullptr || *end != '\0' || salt_text.empty() ||
          fields.fail()) {
        return std::nullopt;
      }
      continue;
    }
    if (kind == "selectivity") {
      int64_t attr = -1;
      ObservedSelectivity sel;
      fields >> attr >> sel.true_outcomes >> sel.false_outcomes >> sel.evals;
      if (fields.fail() || attr < 0 || sel.true_outcomes < 0 ||
          sel.false_outcomes < 0 || sel.evals < 0) {
        return std::nullopt;
      }
      model.selectivities_[static_cast<AttributeId>(attr)] = sel;
      continue;
    }
    if (kind == "class") {
      std::string key_text;
      fields >> key_text;
      char* end = nullptr;
      class_key = std::strtoull(key_text.c_str(), &end, 16);
      if (end == nullptr || *end != '\0' || key_text.empty()) {
        return std::nullopt;
      }
    } else if (kind != "default") {
      return std::nullopt;
    }
    std::string strategy;
    CostEstimate estimate;
    fields >> strategy >> estimate.mean_work >> estimate.mean_time_units >>
        estimate.samples;
    if (fields.fail() || strategy.empty() || estimate.samples < 0) {
      return std::nullopt;
    }
    if (kind == "class") {
      model.classes_[class_key][strategy] = estimate;
    } else {
      model.defaults_[strategy] = estimate;
    }
  }
  return model;
}

bool CostModel::SaveToFile(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << Serialize();
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

std::optional<CostModel> CostModel::LoadFromFile(const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::optional<CostModel> model = Parse(text.str());
  if (!model.has_value() && error != nullptr) {
    *error = path + " is not a valid cost model";
  }
  return model;
}

CostModel CalibrateCostModel(const core::Schema& schema,
                             const std::vector<CalibrationInstance>& instances,
                             const CalibrationOptions& options) {
  CostModel model;
  model.set_schema_salt(options.schema_salt);
  for (const core::Strategy& strategy : options.candidates) {
    // One private harness per candidate: instances see a quiescent engine,
    // so every measurement equals what a serving shard would observe.
    core::FlowHarness harness(&schema, strategy, options.harness);
    const std::string name = strategy.ToString();
    for (const CalibrationInstance& instance : instances) {
      const core::InstanceResult result =
          harness.Run(instance.sources, instance.seed);
      model.Record(ClassKeyFor(options.schema_salt, instance.sources), name,
                   static_cast<double>(result.metrics.work),
                   result.metrics.ResponseTime());
    }
  }
  return model;
}

}  // namespace dflow::opt
