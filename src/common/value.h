#ifndef DFLOW_COMMON_VALUE_H_
#define DFLOW_COMMON_VALUE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>

namespace dflow {

// The runtime value of a decision-flow attribute.
//
// A `Value` is either the distinguished null value (written ⊥ in the paper;
// the value taken by every DISABLED attribute) or one of four scalar types.
// Values are cheap to copy for the numeric/bool cases and use small-string
// friendly std::string for text.
//
// Comparison semantics follow SQL-ish rules used by the enabling-condition
// language in expr/: ordering comparisons involving null are *false* (never
// throw), while `IsNull` predicates observe nullness directly. `operator==`
// on Value itself is structural (null == null is true) and is what tests and
// snapshot comparison use; the 3-valued predicate layer lives in expr/.
class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString };

  // Constructs the null value ⊥.
  Value() : rep_(NullRep{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Double(double d) { return Value(Rep(d)); }
  static Value String(std::string s) { return Value(Rep(std::move(s))); }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  Type type() const;
  bool is_null() const { return std::holds_alternative<NullRep>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_numeric() const { return is_int() || is_double(); }

  // Accessors; calling the wrong one is a programming error (asserts in
  // debug builds via std::get).
  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }

  // Numeric view: int promoted to double. Requires is_numeric().
  double AsDouble() const;

  // True iff the value is bool(true). Null and non-bool values are not truthy.
  bool IsTruthy() const { return is_bool() && bool_value(); }

  // Structural equality: null == null, int/double compare numerically only
  // when both are the same type (no implicit cross-type promotion here; the
  // predicate layer in expr/ does numeric promotion explicitly).
  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  // Debug/reporting rendering, e.g. "null", "true", "42", "3.5", "\"coat\"".
  std::string ToString() const;

 private:
  struct NullRep {
    friend bool operator==(const NullRep&, const NullRep&) { return true; }
  };
  using Rep = std::variant<NullRep, bool, int64_t, double, std::string>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

// Folds one value into a running SplitMix64-style digest (Rng::Mix): the
// type tag plus the payload bytes (strings 8 bytes at a time, doubles as
// their IEEE-754 bit pattern). The single definition the result cache, the
// wire fingerprint, and the strategy advisor's class keys all share, so a
// value hashes identically everywhere.
uint64_t HashValue(uint64_t h, const Value& value);

}  // namespace dflow

#endif  // DFLOW_COMMON_VALUE_H_
