#ifndef DFLOW_COMMON_IDS_H_
#define DFLOW_COMMON_IDS_H_

#include <cstdint>

namespace dflow {

// Dense index of an attribute within one decision-flow schema. Attribute 0..n-1
// are assigned by the schema in insertion order; source attributes included.
using AttributeId = int32_t;

inline constexpr AttributeId kInvalidAttribute = -1;

}  // namespace dflow

#endif  // DFLOW_COMMON_IDS_H_
