#ifndef DFLOW_COMMON_RNG_H_
#define DFLOW_COMMON_RNG_H_

#include <cstdint>

namespace dflow {

// SplitMix64: tiny, fast, high-quality 64-bit mixer. Used both as the
// repository-wide PRNG (simulation, schema generation) and as a stateless
// hash for deriving deterministic per-(instance, attribute) task outputs.
//
// We deliberately avoid <random> engines: their streams are implementation-
// defined across standard libraries, and reproducibility of generated
// schemas and simulations across toolchains is a hard requirement for the
// experiment harness.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit draw.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli draw: true with probability p (clamped to [0,1]).
  bool Chance(double p) { return UniformDouble() < p; }

  // Exponential variate with the given mean (for Poisson arrivals).
  double Exponential(double mean);

  // Stateless mix of up to three keys; used to derive deterministic
  // attribute values per instance without advancing any stream.
  static uint64_t Mix(uint64_t a, uint64_t b = 0x9e3779b97f4a7c15ULL,
                      uint64_t c = 0x165667b19e3779f9ULL);

 private:
  uint64_t state_;
};

}  // namespace dflow

#endif  // DFLOW_COMMON_RNG_H_
