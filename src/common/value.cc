#include "common/value.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <ostream>
#include <sstream>

#include "common/rng.h"

namespace dflow {

Value::Type Value::type() const {
  switch (rep_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kInt;
    case 3: return Type::kDouble;
    default: return Type::kString;
  }
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(int_value());
  return double_value();
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kNull: return "null";
    case Type::kBool: return bool_value() ? "true" : "false";
    case Type::kInt: return std::to_string(int_value());
    case Type::kDouble: {
      std::ostringstream os;
      os << double_value();
      return os.str();
    }
    case Type::kString: return "\"" + string_value() + "\"";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

uint64_t HashValue(uint64_t h, const Value& value) {
  h = Rng::Mix(h, static_cast<uint64_t>(value.type()));
  switch (value.type()) {
    case Value::Type::kNull:
      break;
    case Value::Type::kBool:
      h = Rng::Mix(h, value.bool_value() ? 1 : 0);
      break;
    case Value::Type::kInt:
      h = Rng::Mix(h, static_cast<uint64_t>(value.int_value()));
      break;
    case Value::Type::kDouble:
      h = Rng::Mix(h, std::bit_cast<uint64_t>(value.double_value()));
      break;
    case Value::Type::kString: {
      const std::string& s = value.string_value();
      h = Rng::Mix(h, s.size());
      // Fold the bytes 8 at a time (tail zero-padded).
      for (size_t i = 0; i < s.size(); i += 8) {
        uint64_t chunk = 0;
        std::memcpy(&chunk, s.data() + i, std::min<size_t>(8, s.size() - i));
        h = Rng::Mix(h, chunk);
      }
      break;
    }
  }
  return h;
}

}  // namespace dflow
