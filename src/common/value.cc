#include "common/value.h"

#include <ostream>
#include <sstream>

namespace dflow {

Value::Type Value::type() const {
  switch (rep_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kInt;
    case 3: return Type::kDouble;
    default: return Type::kString;
  }
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(int_value());
  return double_value();
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kNull: return "null";
    case Type::kBool: return bool_value() ? "true" : "false";
    case Type::kInt: return std::to_string(int_value());
    case Type::kDouble: {
      std::ostringstream os;
      os << double_value();
      return os.str();
    }
    case Type::kString: return "\"" + string_value() + "\"";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace dflow
