#include "common/rng.h"

#include <cmath>

namespace dflow {

double Rng::Exponential(double mean) {
  // Inverse-CDF sampling; guard against log(0).
  double u = UniformDouble();
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

uint64_t Rng::Mix(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t z = a * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL +
               c * 0x94d049bb133111ebULL + 0x2545f4914f6cdd1dULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace dflow
