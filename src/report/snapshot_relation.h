#ifndef DFLOW_REPORT_SNAPSHOT_RELATION_H_
#define DFLOW_REPORT_SNAPSHOT_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/schema.h"

namespace dflow::report {

// The snapshot relation of §2: "a relation can be formed, where each tuple
// is the snapshot of one execution of the decision flow... Manual and
// automated data mining techniques can be performed on this relation, to
// discover possible refinements to the decision flow."
//
// Record() appends one tuple per finished instance (terminal states, values
// and execution metrics); ToCsv() exports the relation; Profile() and
// SuggestRefinements() implement simple mining passes over it.
class SnapshotRelation {
 public:
  explicit SnapshotRelation(const core::Schema* schema) : schema_(schema) {}

  void Record(const core::InstanceResult& result);

  int64_t size() const { return static_cast<int64_t>(tuples_.size()); }

  // CSV with header: instance_id, work, wasted_work, time, then one
  // state/value column pair per attribute.
  std::string ToCsv() const;

  // Per-attribute aggregate over the recorded executions.
  struct AttributeProfile {
    AttributeId attr = kInvalidAttribute;
    std::string name;
    int64_t enabled = 0;        // terminal state VALUE
    int64_t disabled = 0;       // terminal state DISABLED
    int64_t unstabilized = 0;   // left unstable (pruned as unneeded)
    // Fraction of executions in which the attribute produced a value.
    double EnabledRate(int64_t total) const {
      return total > 0 ? static_cast<double>(enabled) / total : 0;
    }
  };
  std::vector<AttributeProfile> Profile() const;

  // Heuristic refinement suggestions (§2's mining step): near-dead
  // attributes, guards that never fire, and chronically unneeded work.
  // `rate_threshold` is the "rare" cutoff (default 5%).
  std::vector<std::string> SuggestRefinements(
      double rate_threshold = 0.05) const;

  // Mean metrics over the relation, for dashboards.
  double MeanWork() const;
  double MeanResponseTime() const;
  double MeanWastedWork() const;

 private:
  struct Tuple {
    int64_t instance_id = 0;
    int64_t work = 0;
    int64_t wasted_work = 0;
    double response_time = 0;
    std::vector<core::AttrState> states;
    std::vector<Value> values;
  };

  const core::Schema* schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace dflow::report

#endif  // DFLOW_REPORT_SNAPSHOT_RELATION_H_
