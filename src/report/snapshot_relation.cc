#include "report/snapshot_relation.h"

#include <sstream>

namespace dflow::report {

void SnapshotRelation::Record(const core::InstanceResult& result) {
  Tuple tuple;
  tuple.instance_id = result.instance_id;
  tuple.work = result.metrics.work;
  tuple.wasted_work = result.metrics.wasted_work;
  tuple.response_time = result.metrics.ResponseTime();
  const int n = schema_->num_attributes();
  tuple.states.reserve(static_cast<size_t>(n));
  tuple.values.reserve(static_cast<size_t>(n));
  for (AttributeId a = 0; a < n; ++a) {
    tuple.states.push_back(result.snapshot.state(a));
    tuple.values.push_back(result.snapshot.value(a));
  }
  tuples_.push_back(std::move(tuple));
}

std::string SnapshotRelation::ToCsv() const {
  std::ostringstream os;
  os << "instance_id,work,wasted_work,response_time";
  for (AttributeId a = 0; a < schema_->num_attributes(); ++a) {
    const std::string& name = schema_->attribute(a).name;
    os << "," << name << "_state," << name << "_value";
  }
  os << "\n";
  for (const Tuple& t : tuples_) {
    os << t.instance_id << "," << t.work << "," << t.wasted_work << ","
       << t.response_time;
    for (size_t a = 0; a < t.states.size(); ++a) {
      os << "," << core::ToString(t.states[a]) << ","
         << t.values[a].ToString();
    }
    os << "\n";
  }
  return os.str();
}

std::vector<SnapshotRelation::AttributeProfile> SnapshotRelation::Profile()
    const {
  std::vector<AttributeProfile> profiles;
  const int n = schema_->num_attributes();
  profiles.reserve(static_cast<size_t>(n));
  for (AttributeId a = 0; a < n; ++a) {
    AttributeProfile p;
    p.attr = a;
    p.name = schema_->attribute(a).name;
    for (const Tuple& t : tuples_) {
      switch (t.states[static_cast<size_t>(a)]) {
        case core::AttrState::kValue:
          ++p.enabled;
          break;
        case core::AttrState::kDisabled:
          ++p.disabled;
          break;
        default:
          ++p.unstabilized;
          break;
      }
    }
    profiles.push_back(std::move(p));
  }
  return profiles;
}

std::vector<std::string> SnapshotRelation::SuggestRefinements(
    double rate_threshold) const {
  std::vector<std::string> suggestions;
  const int64_t total = size();
  if (total == 0) return suggestions;
  for (const AttributeProfile& p : Profile()) {
    if (schema_->is_source(p.attr)) continue;
    const double enabled_rate = static_cast<double>(p.enabled) / total;
    const double disabled_rate = static_cast<double>(p.disabled) / total;
    const double unstable_rate = static_cast<double>(p.unstabilized) / total;
    const bool guarded =
        !schema_->enabling_condition(p.attr).IsLiteralTrue();
    if (enabled_rate > 0 && enabled_rate <= rate_threshold) {
      suggestions.push_back(
          "attribute '" + p.name + "' produced a value in only " +
          std::to_string(static_cast<int>(enabled_rate * 100)) +
          "% of executions; consider moving it to an on-demand branch");
    }
    if (guarded && disabled_rate == 0 && unstable_rate == 0) {
      suggestions.push_back("enabling condition of '" + p.name +
                            "' never fired false; consider removing the "
                            "guard to simplify the flow");
    }
    if (unstable_rate >= 1.0 - rate_threshold) {
      suggestions.push_back(
          "attribute '" + p.name +
          "' was pruned as unneeded in nearly every execution; consider "
          "removing it or computing it lazily outside the flow");
    }
  }
  return suggestions;
}

double SnapshotRelation::MeanWork() const {
  if (tuples_.empty()) return 0;
  double sum = 0;
  for (const Tuple& t : tuples_) sum += static_cast<double>(t.work);
  return sum / static_cast<double>(tuples_.size());
}

double SnapshotRelation::MeanResponseTime() const {
  if (tuples_.empty()) return 0;
  double sum = 0;
  for (const Tuple& t : tuples_) sum += t.response_time;
  return sum / static_cast<double>(tuples_.size());
}

double SnapshotRelation::MeanWastedWork() const {
  if (tuples_.empty()) return 0;
  double sum = 0;
  for (const Tuple& t : tuples_) sum += static_cast<double>(t.wasted_work);
  return sum / static_cast<double>(tuples_.size());
}

}  // namespace dflow::report
