#include "rules/rule_set.h"

#include <algorithm>
#include <utility>

#include "expr/predicate.h"
#include "expr/tribool.h"

namespace dflow::rules {

namespace {

// Adapts a TaskContext to the condition-evaluation environment: every input
// the engine hands to a running task is stable by construction, so rule
// conditions always evaluate definitely.
class ContextEnv : public expr::AttributeEnv {
 public:
  explicit ContextEnv(const core::TaskContext* ctx) : ctx_(ctx) {}
  std::optional<Value> StableValue(AttributeId id) const override {
    return ctx_->input(id);
  }

 private:
  const core::TaskContext* ctx_;
};

}  // namespace

std::string ToString(CombinePolicy policy) {
  switch (policy) {
    case CombinePolicy::kFirstMatch: return "first-match";
    case CombinePolicy::kLastMatch: return "last-match";
    case CombinePolicy::kSumNumeric: return "sum";
    case CombinePolicy::kMaxNumeric: return "max";
    case CombinePolicy::kCountMatches: return "count";
  }
  return "?";
}

RuleSet& RuleSet::Add(std::string name, expr::Condition condition,
                      core::TaskFn contribution) {
  rules_.push_back(
      Rule{std::move(name), std::move(condition), std::move(contribution)});
  return *this;
}

RuleSet& RuleSet::Add(std::string name, expr::Condition condition,
                      Value constant) {
  return Add(std::move(name), std::move(condition),
             [constant = std::move(constant)](const core::TaskContext&) {
               return constant;
             });
}

std::vector<AttributeId> RuleSet::ConditionAttributes() const {
  std::vector<AttributeId> out;
  for (const Rule& rule : rules_) {
    const std::vector<AttributeId> attrs = rule.condition.Attributes();
    out.insert(out.end(), attrs.begin(), attrs.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

core::TaskFn RuleSet::Compile(CombinePolicy policy,
                              Value default_value) const {
  // The compiled closure owns a copy of the rules; the RuleSet may go out
  // of scope after Compile().
  return [rules = rules_, policy,
          default_value = std::move(default_value)](
             const core::TaskContext& ctx) -> Value {
    const ContextEnv env(&ctx);
    int matches = 0;
    Value result = default_value;
    double accumulator = 0;
    bool have_numeric = false;

    for (const Rule& rule : rules) {
      if (rule.condition.Eval(env) != expr::Tribool::kTrue) continue;
      ++matches;
      switch (policy) {
        case CombinePolicy::kFirstMatch:
          if (matches == 1) result = rule.contribution(ctx);
          break;
        case CombinePolicy::kLastMatch:
          result = rule.contribution(ctx);
          break;
        case CombinePolicy::kSumNumeric: {
          const Value v = rule.contribution(ctx);
          if (v.is_numeric()) {
            accumulator += v.AsDouble();
            have_numeric = true;
          }
          break;
        }
        case CombinePolicy::kMaxNumeric: {
          const Value v = rule.contribution(ctx);
          if (v.is_numeric()) {
            accumulator = have_numeric ? std::max(accumulator, v.AsDouble())
                                       : v.AsDouble();
            have_numeric = true;
          }
          break;
        }
        case CombinePolicy::kCountMatches:
          break;
      }
      if (policy == CombinePolicy::kFirstMatch) break;
    }

    switch (policy) {
      case CombinePolicy::kFirstMatch:
      case CombinePolicy::kLastMatch:
        return result;
      case CombinePolicy::kSumNumeric:
      case CombinePolicy::kMaxNumeric:
        return have_numeric ? Value::Double(accumulator) : default_value;
      case CombinePolicy::kCountMatches:
        return Value::Int(matches);
    }
    return default_value;
  };
}

}  // namespace dflow::rules
