#ifndef DFLOW_RULES_RULE_SET_H_
#define DFLOW_RULES_RULE_SET_H_

#include <string>
#include <vector>

#include "common/value.h"
#include "core/task.h"
#include "expr/condition.h"

namespace dflow::rules {

// How a RuleSet combines the contributions of its matching rules into the
// attribute's single value.
enum class CombinePolicy {
  kFirstMatch,  // the first matching rule's contribution (classic decision list)
  kLastMatch,   // the last matching rule wins (override semantics)
  kSumNumeric,  // sum of matching numeric contributions (scoring)
  kMaxNumeric,  // maximum matching numeric contribution
  kCountMatches,  // Int(number of matching rules)
};

std::string ToString(CombinePolicy policy);

// A declarative rule list for synthesis attributes — the "generalized form
// of business rules" the paper inherits from the Vortex model [HLS+99a].
// Each rule pairs a condition over the attribute's *data inputs* with a
// contribution; Compile() produces an ordinary TaskFn, so rule-based
// attributes plug into SchemaBuilder::AddSynthesis like any other task.
//
// Rule conditions are evaluated over the task's stable inputs, so they are
// always definite at fire time (disabled inputs appear as ⊥ and satisfy
// IsNull predicates — a rule can explicitly handle missing information).
// Callers must list every attribute referenced by a rule condition or
// contribution among the attribute's data inputs; ConditionAttributes()
// returns the set to include.
class RuleSet {
 public:
  // Adds a rule contributing a computed value.
  RuleSet& Add(std::string name, expr::Condition condition,
               core::TaskFn contribution);
  // Adds a rule contributing a constant.
  RuleSet& Add(std::string name, expr::Condition condition, Value constant);

  int size() const { return static_cast<int>(rules_.size()); }
  const std::string& rule_name(int i) const {
    return rules_[static_cast<size_t>(i)].name;
  }

  // Attributes read by any rule condition (sorted, deduplicated).
  std::vector<AttributeId> ConditionAttributes() const;

  // Compiles to a synthesis task function. When no rule matches the result
  // is `default_value` (kCountMatches ignores it and returns Int(0)).
  core::TaskFn Compile(CombinePolicy policy,
                       Value default_value = Value::Null()) const;

 private:
  struct Rule {
    std::string name;
    expr::Condition condition;
    core::TaskFn contribution;
  };
  std::vector<Rule> rules_;
};

}  // namespace dflow::rules

#endif  // DFLOW_RULES_RULE_SET_H_
