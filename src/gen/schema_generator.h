#ifndef DFLOW_GEN_SCHEMA_GENERATOR_H_
#define DFLOW_GEN_SCHEMA_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/schema.h"
#include "core/snapshot.h"
#include "gen/pattern_params.h"

namespace dflow::gen {

// A generated decision-flow pattern (§5, Figure 4): the schema plus the
// layout metadata benches and tests use.
struct GeneratedSchema {
  core::Schema schema;
  PatternParams params;
  int columns = 0;  // internal columns; the skeleton diameter
  AttributeId source = kInvalidAttribute;
  AttributeId target = kInvalidAttribute;
  // grid[row] lists the internal attributes of that row, in column order.
  // Rows may differ in length by one when nb_rows does not divide nb_nodes.
  std::vector<std::vector<AttributeId>> grid;
};

// Builds a schema pattern from Table 1 parameters. The construction follows
// §5 "Experiment Environment":
//   - a skeleton of one source, nb_nodes internal nodes arranged in nb_rows
//     rows, and one target; data edges run source → row starts, along each
//     row, and row ends → target (Figure 4);
//   - %added_data_edges extra forward data edges within %data_hop columns
//     (negative values delete within-row edges instead);
//   - pct_enabler% of the internal nodes act as enablers; each internal
//     node's enabling condition is a conjunction or disjunction of
//     [min_pred, max_pred] predicates over enablers at most
//     %enabling_hop × columns earlier; the target's condition is `true`;
//   - every internal node and the target is a database query with cost
//     uniform in [min_cost, max_cost] units (Table 1 "module cost");
//   - predicates are *rigged* so that, in expectation over instances, each
//     enabling condition is true with probability pct_enabled/100: a
//     condition with k conjuncts uses per-predicate probability
//     (pct_enabled/100)^(1/k) (dually for disjunctions), realized as
//     threshold tests over the deterministic per-instance attribute values
//     (each generated task returns Int(Mix(instance_seed, seed, attr) %
//     1000), uniform on [0, 1000)); predicates over enablers that may
//     themselves be DISABLED carry a fixed null-branch (IsNull ∨ test)
//     drawn with the same probability.
//
// Dies (assert) on invalid parameters — call params.Validate() first when
// handling untrusted input. Deterministic: same params => same schema.
GeneratedSchema GeneratePattern(const PatternParams& params);

// Source bindings for the i-th instance of a pattern: the source attribute
// takes Int(Mix(instance_seed, seed, source) % 1000), matching the task
// value convention so conditions over the source behave like any other.
core::SourceBinding MakeSourceBinding(const GeneratedSchema& pattern,
                                      uint64_t instance_seed);

// Convenience: a well-spread per-instance seed for instance `index`.
uint64_t InstanceSeed(const PatternParams& params, int index);

}  // namespace dflow::gen

#endif  // DFLOW_GEN_SCHEMA_GENERATOR_H_
