#ifndef DFLOW_GEN_PATTERN_PARAMS_H_
#define DFLOW_GEN_PATTERN_PARAMS_H_

#include <cstdint>
#include <optional>
#include <string>

namespace dflow::gen {

// The simulation parameters of Table 1. Defaults are the paper's fixed
// values; the ranged parameters (nb_rows, %enabled, %added_data_edges,
// module cost) default to the values used by Figures 5–8 unless a bench
// sweeps them.
struct PatternParams {
  int nb_nodes = 64;         // # of internal nodes
  int nb_rows = 4;           // # of schema rows (diameter = nb_nodes/nb_rows)
  int pct_enabled = 75;      // % of enabling conditions true per execution
  int pct_enabler = 50;      // % of attributes used in >= 1 enabling condition
  int pct_enabling_hop = 50; // max enabling-edge hop as % of total # columns
  int min_pred = 1;          // min # of predicates per enabling condition
  int max_pred = 4;          // max # of predicates per enabling condition
  int pct_added_data_edges = 0;  // % of data edges added (< 0: deleted)
  int pct_data_hop = 50;     // max added-data-edge hop as % of total # columns
  int min_cost = 1;          // units of cost for executing a module (query)
  int max_cost = 5;
  uint64_t seed = 0;         // structure seed: same seed => same schema

  // Returns an error message if any parameter is out of its Table 1 range
  // (nb_rows in [1,16] and dividing decisions, percentages in range, etc.);
  // nullopt when valid.
  std::optional<std::string> Validate() const;
};

}  // namespace dflow::gen

#endif  // DFLOW_GEN_PATTERN_PARAMS_H_
