#include "gen/schema_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <string>
#include <utility>

#include "common/rng.h"
#include "core/schema_builder.h"
#include "expr/condition.h"
#include "expr/predicate.h"

namespace dflow::gen {

namespace {

// Attribute values are uniform integers on [0, kValueRange).
constexpr int64_t kValueRange = 1000;

Value GeneratedValue(uint64_t instance_seed, uint64_t schema_seed,
                     AttributeId attr) {
  return Value::Int(static_cast<int64_t>(
      Rng::Mix(instance_seed, schema_seed, static_cast<uint64_t>(attr)) %
      static_cast<uint64_t>(kValueRange)));
}

core::TaskFn MakeTaskFn(uint64_t schema_seed) {
  return [schema_seed](const core::TaskContext& ctx) {
    return GeneratedValue(ctx.instance_seed, schema_seed, ctx.attr);
  };
}

// A predicate that holds with probability ~q over the uniform per-instance
// value of `enabler`, with a fixed null branch (drawn with the same
// probability) so that DISABLED enablers do not systematically bias the
// condition toward false.
expr::Condition MakeLeaf(AttributeId enabler, double q, Rng* rng) {
  const int64_t threshold = static_cast<int64_t>(
      std::llround(q * static_cast<double>(kValueRange)));
  expr::Condition test = expr::Condition::Pred(expr::Predicate::Compare(
      enabler, expr::CompareOp::kLt, Value::Int(threshold)));
  if (rng->Chance(q)) {
    return expr::Condition::Any(
        {expr::Condition::Pred(expr::Predicate::IsNull(enabler)),
         std::move(test)});
  }
  return test;
}

}  // namespace

std::optional<std::string> PatternParams::Validate() const {
  if (nb_nodes < 1) return "nb_nodes must be >= 1";
  if (nb_rows < 1 || nb_rows > nb_nodes) {
    return "nb_rows must be in [1, nb_nodes]";
  }
  if (pct_enabled < 0 || pct_enabled > 100) return "pct_enabled out of [0,100]";
  if (pct_enabler < 0 || pct_enabler > 100) return "pct_enabler out of [0,100]";
  if (pct_enabling_hop < 0 || pct_enabling_hop > 100) {
    return "pct_enabling_hop out of [0,100]";
  }
  if (min_pred < 1 || max_pred < min_pred) {
    return "predicate bounds must satisfy 1 <= min_pred <= max_pred";
  }
  if (pct_added_data_edges < -100 || pct_added_data_edges > 100) {
    return "pct_added_data_edges out of [-100,100]";
  }
  if (pct_data_hop < 0 || pct_data_hop > 100) {
    return "pct_data_hop out of [0,100]";
  }
  if (min_cost < 0 || max_cost < min_cost) {
    return "cost bounds must satisfy 0 <= min_cost <= max_cost";
  }
  return std::nullopt;
}

GeneratedSchema GeneratePattern(const PatternParams& params) {
  assert(!params.Validate().has_value());
  Rng rng(Rng::Mix(params.seed, 0x5eed5eedULL));

  AttributeId source = kInvalidAttribute;
  AttributeId target = kInvalidAttribute;
  std::vector<std::vector<AttributeId>> grid;

  // --- Plan the skeleton grid (Figure 4). Row lengths differ by at most one
  // when nb_rows does not divide nb_nodes; `columns` is the longest row.
  const int base_len = params.nb_nodes / params.nb_rows;
  const int remainder = params.nb_nodes % params.nb_rows;
  const int columns = base_len + (remainder > 0 ? 1 : 0);
  auto row_len = [&](int r) { return base_len + (r < remainder ? 1 : 0); };

  // Nodes are *created in column-major order* (column 1 across all rows,
  // then column 2, ...) so that any node in an earlier column — a legal
  // enabler or added-data-edge origin — already has an id when referenced.
  struct PlannedNode {
    int row = 0;
    int col = 0;                        // 1-based; source is column 0
    std::vector<int> extra_inputs;      // plan indices of added-edge origins
    bool chain_edge_deleted = false;
  };
  std::vector<PlannedNode> plan;
  std::vector<std::vector<int>> plan_at(  // [row][col-1] -> plan index
      static_cast<size_t>(params.nb_rows));
  for (int c = 1; c <= columns; ++c) {
    for (int r = 0; r < params.nb_rows; ++r) {
      if (c > row_len(r)) continue;
      plan_at[static_cast<size_t>(r)].push_back(static_cast<int>(plan.size()));
      plan.push_back(PlannedNode{r, c, {}, false});
    }
  }
  assert(static_cast<int>(plan.size()) == params.nb_nodes);

  // --- Enabler set: pct_enabler% of the internal nodes (uniform sample via
  // a Fisher-Yates prefix shuffle over plan indices).
  const int num_enablers = params.nb_nodes * params.pct_enabler / 100;
  std::vector<int> shuffled(plan.size());
  for (size_t i = 0; i < plan.size(); ++i) shuffled[i] = static_cast<int>(i);
  for (size_t i = 0; i < plan.size(); ++i) {
    const size_t j = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(i), static_cast<int64_t>(plan.size()) - 1));
    std::swap(shuffled[i], shuffled[j]);
  }
  std::vector<char> is_enabler(plan.size(), 0);
  for (int i = 0; i < num_enablers; ++i) {
    is_enabler[static_cast<size_t>(shuffled[static_cast<size_t>(i)])] = 1;
  }

  // --- Data-edge mutations. The skeleton has nb_nodes + nb_rows data edges
  // (source hookups + chains + target hookups counted per §5's skeleton).
  const int skeleton_edges = params.nb_nodes + params.nb_rows;
  const int data_hop = std::max(1, columns * params.pct_data_hop / 100);
  if (params.pct_added_data_edges < 0) {
    // Delete the requested share of within-row chain edges (nodes fall back
    // to the source as input so every task keeps a data input).
    std::vector<int> chain_nodes;
    for (size_t i = 0; i < plan.size(); ++i) {
      if (plan[i].col > 1) chain_nodes.push_back(static_cast<int>(i));
    }
    int to_delete = std::min<int>(
        static_cast<int>(chain_nodes.size()),
        skeleton_edges * (-params.pct_added_data_edges) / 100);
    for (int d = 0; d < to_delete; ++d) {
      const size_t pick = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(chain_nodes.size()) - 1));
      plan[static_cast<size_t>(chain_nodes[pick])].chain_edge_deleted = true;
      chain_nodes.erase(chain_nodes.begin() +
                        static_cast<std::ptrdiff_t>(pick));
    }
  } else if (params.pct_added_data_edges > 0 && columns > 1) {
    const int to_add = skeleton_edges * params.pct_added_data_edges / 100;
    std::vector<std::set<int>> extra(plan.size());
    int added = 0;
    for (int attempt = 0; attempt < to_add * 20 && added < to_add; ++attempt) {
      const int v = static_cast<int>(
          rng.UniformInt(0, static_cast<int64_t>(plan.size()) - 1));
      const int cv = plan[static_cast<size_t>(v)].col;
      if (cv < 2) continue;
      // Origin: uniform over nodes in columns [cv - data_hop, cv - 1].
      std::vector<int> origins;
      for (size_t u = 0; u < plan.size(); ++u) {
        const int cu = plan[u].col;
        if (cu < cv && cv - cu <= data_hop) origins.push_back(static_cast<int>(u));
      }
      if (origins.empty()) continue;
      const int u = origins[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(origins.size()) - 1))];
      // Skip duplicates (including the skeleton chain edge).
      const PlannedNode& pv = plan[static_cast<size_t>(v)];
      const bool is_chain =
          plan[static_cast<size_t>(u)].row == pv.row &&
          plan[static_cast<size_t>(u)].col == pv.col - 1;
      if (is_chain || !extra[static_cast<size_t>(v)].insert(u).second) continue;
      ++added;
    }
    for (size_t v = 0; v < plan.size(); ++v) {
      plan[v].extra_inputs.assign(extra[v].begin(), extra[v].end());
    }
  }

  // --- Create the attributes.
  core::SchemaBuilder builder;
  source = builder.AddSource("src");
  grid.assign(static_cast<size_t>(params.nb_rows), {});

  const int max_hop = std::max(1, columns * params.pct_enabling_hop / 100);
  const double p_enabled = params.pct_enabled / 100.0;
  core::TaskFn task_fn = MakeTaskFn(params.seed);

  std::vector<AttributeId> ids(plan.size(), kInvalidAttribute);
  // by_column[c] lists enabler-eligible attributes at column c (the source
  // occupies column 0 and is always eligible as a fallback).
  std::vector<std::vector<AttributeId>> by_column(
      static_cast<size_t>(columns) + 1);
  by_column[0].push_back(source);
  std::vector<AttributeId> prev_in_row(static_cast<size_t>(params.nb_rows),
                                       kInvalidAttribute);

  for (size_t i = 0; i < plan.size(); ++i) {
    const PlannedNode& node = plan[i];

    std::vector<AttributeId> data_inputs;
    if (node.col == 1 || node.chain_edge_deleted) {
      data_inputs.push_back(source);
    } else {
      data_inputs.push_back(prev_in_row[static_cast<size_t>(node.row)]);
    }
    for (int u : node.extra_inputs) {
      data_inputs.push_back(ids[static_cast<size_t>(u)]);
    }

    // Enabling condition: k predicates over enablers within the hop window.
    const int k =
        static_cast<int>(rng.UniformInt(params.min_pred, params.max_pred));
    std::vector<AttributeId> eligible;
    for (int col = std::max(0, node.col - max_hop); col < node.col; ++col) {
      for (AttributeId e : by_column[static_cast<size_t>(col)]) {
        eligible.push_back(e);
      }
    }
    if (eligible.empty()) eligible.push_back(source);

    const bool conjunction = rng.Chance(0.5);
    const double q = conjunction
                         ? std::pow(p_enabled, 1.0 / k)
                         : 1.0 - std::pow(1.0 - p_enabled, 1.0 / k);
    std::vector<expr::Condition> leaves;
    leaves.reserve(static_cast<size_t>(k));
    for (int leaf = 0; leaf < k; ++leaf) {
      const AttributeId e = eligible[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(eligible.size()) - 1))];
      leaves.push_back(MakeLeaf(e, q, &rng));
    }
    expr::Condition cond = conjunction
                               ? expr::Condition::All(std::move(leaves))
                               : expr::Condition::Any(std::move(leaves));

    const int cost =
        static_cast<int>(rng.UniformInt(params.min_cost, params.max_cost));
    const AttributeId id = builder.AddQuery(
        "n" + std::to_string(node.row) + "_" + std::to_string(node.col), cost,
        task_fn, std::move(data_inputs), std::move(cond));
    ids[i] = id;
    grid[static_cast<size_t>(node.row)].push_back(id);
    prev_in_row[static_cast<size_t>(node.row)] = id;
    if (is_enabler[i] != 0) {
      by_column[static_cast<size_t>(node.col)].push_back(id);
    }
  }

  // Target: fed by every row end; always enabled (the decision itself must
  // complete; disabled sub-decisions reach it as ⊥).
  std::vector<AttributeId> row_ends;
  row_ends.reserve(static_cast<size_t>(params.nb_rows));
  for (int r = 0; r < params.nb_rows; ++r) {
    row_ends.push_back(prev_in_row[static_cast<size_t>(r)]);
  }
  const int target_cost =
      static_cast<int>(rng.UniformInt(params.min_cost, params.max_cost));
  target = builder.AddQuery("target", target_cost, task_fn,
                                std::move(row_ends), expr::Condition::True(),
                                /*is_target=*/true);

  std::string error;
  std::optional<core::Schema> schema = builder.Build(&error);
  assert(schema.has_value() && "generated schema failed validation");
  (void)error;

  GeneratedSchema out{std::move(*schema), params, columns,
                      source,             target, std::move(grid)};
  return out;
}

core::SourceBinding MakeSourceBinding(const GeneratedSchema& pattern,
                                      uint64_t instance_seed) {
  return core::SourceBinding{
      {pattern.source,
       GeneratedValue(instance_seed, pattern.params.seed, pattern.source)}};
}

uint64_t InstanceSeed(const PatternParams& params, int index) {
  return Rng::Mix(params.seed, 0x1257a9e1ULL,
                  static_cast<uint64_t>(index) + 1);
}

}  // namespace dflow::gen
