#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <utility>

#include "common/rng.h"

namespace dflow::obs {
namespace {

// Salt for the sampling hash: independent of the shard-placement and
// cache-key salts, so which requests are sampled is uncorrelated with
// where they execute.
constexpr uint64_t kSampleSalt = 0x0b5e7ab1e5a17ULL;
// Salt folded into assigned trace ids (with a per-recorder counter, so
// repeated seeds still get distinct ids).
constexpr uint64_t kTraceIdSalt = 0x7ace1dULL;

}  // namespace

uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* ToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRouterForward: return "router.forward";
    case SpanKind::kIngressQueue: return "ingress.queue";
    case SpanKind::kShardQueueWait: return "shard.queue_wait";
    case SpanKind::kAdvisorChoose: return "advisor.choose";
    case SpanKind::kCacheLookup: return "cache.lookup";
    case SpanKind::kHarnessExec: return "harness.exec";
    case SpanKind::kOutboxWrite: return "outbox.write";
  }
  return "unknown";
}

void RequestTrace::AddSpan(SpanKind kind, uint64_t start_abs_ns,
                           uint64_t end_abs_ns) {
  Span span;
  span.kind = kind;
  span.start_ns = start_abs_ns > begin_ns_ ? start_abs_ns - begin_ns_ : 0;
  span.duration_ns = end_abs_ns > start_abs_ns ? end_abs_ns - start_abs_ns : 0;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(span);
}

void RequestTrace::SetEnqueue(uint64_t abs_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  enqueue_abs_ns_ = abs_ns;
}

uint64_t RequestTrace::enqueue_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enqueue_abs_ns_;
}

void RequestTrace::SetExecution(int shard, uint64_t queue_depth,
                                std::string strategy, bool cache_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  shard_ = shard;
  queue_depth_ = queue_depth;
  strategy_ = std::move(strategy);
  cache_hit_ = cache_hit;
}

RequestTrace::View RequestTrace::Snapshot() const {
  View view;
  view.trace_id = trace_id_;
  view.seed = seed_;
  std::lock_guard<std::mutex> lock(mu_);
  view.shard = shard_;
  view.queue_depth = queue_depth_;
  view.strategy = strategy_;
  view.cache_hit = cache_hit_;
  view.spans = spans_;
  return view;
}

TraceRecorder::TraceRecorder(TraceRecorderOptions options, std::string node)
    : options_(std::move(options)), node_(std::move(node)) {
  if (!options_.jsonl_path.empty()) {
    sink_.Open(options_.jsonl_path, options_.jsonl_max_bytes);
  }
}

TraceRecorder::~TraceRecorder() = default;

bool TraceRecorder::SampledBySeed(uint64_t seed, uint32_t period) {
  if (period == 0) return false;
  if (period == 1) return true;
  return Rng::Mix(seed, kSampleSalt) % period == 0;
}

bool TraceRecorder::ShouldTrace(uint64_t seed) const {
  // The slow log must see every request (a slow one cannot be predicted
  // from the seed), so arming it means full tracing — documented cost.
  if (options_.slow_ms > 0) return true;
  return SampledBySeed(seed, options_.sample_period);
}

std::shared_ptr<RequestTrace> TraceRecorder::Begin(uint64_t seed,
                                                   uint64_t trace_id) {
  if (trace_id == 0) {
    const uint64_t n = next_id_.fetch_add(1, std::memory_order_relaxed);
    trace_id = Rng::Mix(seed, kTraceIdSalt + n);
    if (trace_id == 0) trace_id = 1;
  }
  started_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<RequestTrace>(trace_id, seed, MonotonicNs());
}

void TraceRecorder::Finish(const std::shared_ptr<RequestTrace>& trace,
                           uint64_t wall_ns) {
  if (trace == nullptr) return;
  RequestTrace::View view = trace->Snapshot();
  view.wall_ns = wall_ns;
  const bool slow = options_.slow_ms > 0 &&
                    static_cast<double>(wall_ns) / 1e6 > options_.slow_ms;
  if (sink_.open()) sink_.Append(ToJsonLine(view, node_));
  if (slow) {
    slow_logged_.fetch_add(1, std::memory_order_relaxed);
    std::string spans;
    for (const Span& span : view.spans) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), " %s=%.1fus@%.1fus",
                    ToString(span.kind),
                    static_cast<double>(span.duration_ns) / 1e3,
                    static_cast<double>(span.start_ns) / 1e3);
      spans += buf;
    }
    std::fprintf(stderr,
                 "[obs] SLOW %s trace=%016" PRIx64 " seed=%" PRIu64
                 " wall=%.2fms shard=%d strategy=%s cache=%s queue_depth=%"
                 PRIu64 "%s\n",
                 node_.c_str(), view.trace_id, view.seed,
                 static_cast<double>(wall_ns) / 1e6, view.shard,
                 view.strategy.c_str(), view.cache_hit ? "hit" : "miss",
                 view.queue_depth, spans.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    if (options_.ring_capacity > 0) {
      while (ring_.size() >= options_.ring_capacity) ring_.pop_front();
      ring_.push_back(std::move(view));
    }
  }
  finished_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<RequestTrace::View> TraceRecorder::Completed() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return {ring_.begin(), ring_.end()};
}

void TraceRecorder::Flush() { sink_.Flush(); }

namespace {

std::vector<Span> SortedSpans(const RequestTrace::View& view) {
  std::vector<Span> spans = view.spans;
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return static_cast<uint8_t>(a.kind) < static_cast<uint8_t>(b.kind);
  });
  return spans;
}

}  // namespace

std::string SpanStructure(const RequestTrace::View& view) {
  std::string out;
  for (const Span& span : SortedSpans(view)) {
    if (!out.empty()) out += ';';
    out += ToString(span.kind);
  }
  return out;
}

bool ValidateSpans(const RequestTrace::View& view, std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  uint64_t start_by_kind[kMaxSpanKind + 1] = {};
  bool seen[kMaxSpanKind + 1] = {};
  for (const Span& span : view.spans) {
    const uint8_t kind = static_cast<uint8_t>(span.kind);
    if (kind < kMinSpanKind || kind > kMaxSpanKind) {
      return fail("unknown span kind " + std::to_string(kind));
    }
    if (seen[kind]) {
      return fail(std::string("duplicate span ") + ToString(span.kind));
    }
    seen[kind] = true;
    start_by_kind[kind] = span.start_ns;
  }
  // Pipeline-order starts: a stage earlier in the taxonomy never starts
  // after a later one (equal starts are fine — clock granularity, and the
  // cross-node router.forward span travels with start 0).
  uint64_t last_start = 0;
  for (uint8_t kind = kMinSpanKind; kind <= kMaxSpanKind; ++kind) {
    if (!seen[kind]) continue;
    if (start_by_kind[kind] < last_start) {
      return fail(std::string(ToString(static_cast<SpanKind>(kind))) +
                  " starts before an earlier pipeline stage");
    }
    last_start = start_by_kind[kind];
  }
  return true;
}

std::string ToJsonLine(const RequestTrace::View& view,
                       const std::string& node) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"trace_id\":\"%016" PRIx64 "\",\"seed\":%" PRIu64
                ",\"node\":\"%s\",\"shard\":%d,\"strategy\":\"%s\","
                "\"cache_hit\":%s,\"queue_depth\":%" PRIu64
                ",\"wall_us\":%.3f,\"spans\":[",
                view.trace_id, view.seed, node.c_str(), view.shard,
                view.strategy.c_str(), view.cache_hit ? "true" : "false",
                view.queue_depth, static_cast<double>(view.wall_ns) / 1e3);
  std::string out = buf;
  bool first = true;
  for (const Span& span : SortedSpans(view)) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"start_ns\":%" PRIu64
                  ",\"dur_ns\":%" PRIu64 "}",
                  first ? "" : ",", ToString(span.kind), span.start_ns,
                  span.duration_ns);
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace dflow::obs
