#ifndef DFLOW_OBS_JSONL_SINK_H_
#define DFLOW_OBS_JSONL_SINK_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace dflow::obs {

// A thread-safe append-only JSONL file sink with an explicit Flush() hook
// and a byte-budget rotation rule, shared by the trace recorder and the
// event journal. Appends are line-buffered through stdio under one mutex;
// nothing is flushed per line (the per-request cost stays one fwrite), so
// owners call Flush() at drain/shutdown to make the tail durable before a
// SIGTERM exit.
//
// Rotation: when max_bytes > 0 and an append would push the current file
// past the budget, the file is closed, renamed to "<path>.1" (replacing
// any previous rotation), and a fresh file is opened — bounding disk use
// at ~2x max_bytes instead of growing without bound. max_bytes == 0 means
// never rotate (the pre-PR-8 behavior).
class JsonlSink {
 public:
  JsonlSink() = default;
  ~JsonlSink();
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  // Opens (appending) the sink. Returns false and logs to stderr when the
  // file cannot be opened; the sink then swallows appends silently.
  bool Open(const std::string& path, uint64_t max_bytes = 0);

  bool open() const;

  // Appends one JSON line (the trailing newline is added here).
  void Append(const std::string& line);

  // Flushes buffered bytes to the OS. Safe to call at any time, including
  // on a never-opened sink.
  void Flush();

  // Flushes and closes. Subsequent appends are dropped.
  void Close();

  int64_t lines_written() const;
  int64_t rotations() const;

 private:
  void RotateLocked();

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t max_bytes_ = 0;
  uint64_t bytes_written_ = 0;
  int64_t lines_written_ = 0;
  int64_t rotations_ = 0;
};

}  // namespace dflow::obs

#endif  // DFLOW_OBS_JSONL_SINK_H_
