#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/event_log.h"

namespace dflow::obs {
namespace {

int64_t WallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

int64_t ReadOrZero(const std::function<int64_t()>& source) {
  return source ? source() : 0;
}

}  // namespace

const char* ToString(HealthStatus status) {
  switch (status) {
    case HealthStatus::kOk: return "ok";
    case HealthStatus::kDegraded: return "degraded";
    case HealthStatus::kCritical: return "critical";
  }
  return "unknown";
}

HealthCollector::HealthCollector(HealthOptions options, HealthSources sources,
                                 EventLog* journal)
    : options_(std::move(options)),
      sources_(std::move(sources)),
      journal_(journal) {}

HealthCollector::~HealthCollector() { Stop(); }

void HealthCollector::Start() {
  if (options_.interval_s <= 0) return;
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void HealthCollector::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(thread_mu_);
  thread_ = std::thread();
}

void HealthCollector::Loop() {
  auto last = std::chrono::steady_clock::now();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(thread_mu_);
      cv_.wait_for(lock,
                   std::chrono::duration<double>(options_.interval_s),
                   [this] { return stop_; });
      if (stop_) return;
    }
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last).count();
    last = now;
    SampleOnce(elapsed > 0 ? elapsed : options_.interval_s);
  }
}

double HealthCollector::P95FromDelta(const Histogram::Snapshot& prev,
                                     const Histogram::Snapshot& cur) {
  const size_t n = cur.counts.size();
  if (n == 0) return 0;
  int64_t total = 0;
  std::vector<int64_t> delta(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const int64_t before =
        i < prev.counts.size() ? prev.counts[i] : 0;
    delta[i] = cur.counts[i] - before;
    if (delta[i] < 0) delta[i] = 0;  // histogram swapped out from under us
    total += delta[i];
  }
  if (total <= 0) return 0;
  const int64_t rank = static_cast<int64_t>(
      std::ceil(0.95 * static_cast<double>(total)));
  int64_t cum = 0;
  for (size_t i = 0; i < n; ++i) {
    if (delta[i] == 0) continue;
    cum += delta[i];
    if (cum < rank) continue;
    const double lower = i == 0 ? 0 : cur.bounds[i - 1];
    if (i >= cur.bounds.size()) return lower;  // +Inf bucket: best estimate
    const double upper = cur.bounds[i];
    const double frac = static_cast<double>(rank - (cum - delta[i])) /
                        static_cast<double>(delta[i]);
    return lower + frac * (upper - lower);
  }
  return 0;
}

HealthSample HealthCollector::SampleOnce(double interval_s) {
  std::lock_guard<std::mutex> sample_lock(sample_mu_);

  HealthSample sample;
  sample.wall_ms = WallMs();
  sample.interval_s = interval_s;

  const int64_t requests = ReadOrZero(sources_.requests_total);
  const int64_t failovers = ReadOrZero(sources_.failovers_total);
  const int64_t hits = ReadOrZero(sources_.cache_hits_total);
  const int64_t misses = ReadOrZero(sources_.cache_misses_total);
  const int64_t explores = ReadOrZero(sources_.advisor_explores_total);
  const int64_t slots_total = ReadOrZero(sources_.slots_total);
  const int64_t slots_down = ReadOrZero(sources_.slots_down);
  Histogram::Snapshot latency;
  if (sources_.wall_latency) latency = sources_.wall_latency();
  // Flap inputs: only the kinds that mean "the fleet itself is unstable".
  // Health-plane events (transitions, watermarks) are deliberately
  // excluded — counting them would feed the rule its own output and pin
  // the status at degraded forever.
  const int64_t flap_events =
      journal_ == nullptr
          ? 0
          : journal_->CountFor(EventKind::kBackendDeath) +
                journal_->CountFor(EventKind::kFailover) +
                journal_->CountFor(EventKind::kDivergenceMismatch);

  if (have_prev_ && interval_s > 0) {
    sample.requests_per_s =
        static_cast<double>(requests - prev_requests_) / interval_s;
    sample.failovers_per_s =
        static_cast<double>(failovers - prev_failovers_) / interval_s;
    const int64_t lookups =
        (hits - prev_cache_hits_) + (misses - prev_cache_misses_);
    sample.cache_hit_rate =
        lookups > 0
            ? static_cast<double>(hits - prev_cache_hits_) / lookups
            : 0;
    // The latency histogram is in microseconds; the sample speaks ms.
    sample.p95_wall_ms = P95FromDelta(prev_latency_, latency) / 1e3;
  }
  const int64_t flap_delta =
      have_prev_ ? flap_events - prev_flap_events_ : 0;
  const int64_t explore_delta = have_prev_ ? explores - prev_explores_ : 0;

  if (sources_.queue_depths) {
    for (uint64_t depth : sources_.queue_depths()) {
      sample.queue_depth_max = std::max(sample.queue_depth_max, depth);
    }
  }
  if (sources_.queue_capacity > 0) {
    sample.queue_utilization =
        static_cast<double>(sample.queue_depth_max) /
        static_cast<double>(sources_.queue_capacity);
  }

  // --- Watermark rules ---------------------------------------------------
  const bool slot_down = slots_down > 0;
  const bool queue_critical =
      sources_.queue_capacity > 0 &&
      sample.queue_utilization >= options_.queue_critical_utilization;
  const bool queue_degraded =
      sources_.queue_capacity > 0 &&
      sample.queue_utilization >= options_.queue_degraded_utilization;
  const bool slo_breach = options_.slo_ms > 0 && sample.p95_wall_ms > 0 &&
                          sample.p95_wall_ms > options_.slo_ms;
  const bool flapping = flap_delta > 0;
  const bool sustained_input = queue_degraded || slo_breach;

  if (sustained_input) {
    ++breach_streak_;
  } else {
    breach_streak_ = 0;
  }

  const HealthStatus before = status();
  HealthStatus next = before;
  std::string reason;

  if (slot_down) {
    // A replica slot with zero live members is a hard topology fact, not a
    // noisy gauge — escalate immediately and hold until it heals.
    next = HealthStatus::kCritical;
    reason = "slots_down=" + std::to_string(slots_down) + "/" +
             std::to_string(slots_total);
  } else {
    if (sustained_input && breach_streak_ >= options_.sustain_samples) {
      next = queue_critical ? HealthStatus::kCritical
                            : HealthStatus::kDegraded;
      if (queue_degraded) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "queue_utilization=%.2f depth=%llu",
                      sample.queue_utilization,
                      static_cast<unsigned long long>(
                          sample.queue_depth_max));
        reason = buf;
      } else {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "p95_ms=%.2f slo_ms=%.2f",
                      sample.p95_wall_ms, options_.slo_ms);
        reason = buf;
      }
      if (journal_ != nullptr && breach_streak_ == options_.sustain_samples) {
        journal_->Emit(EventKind::kWatermark, Severity::kWarn, reason);
      }
    }
    // Fleet instability is event-triggered, not threshold-triggered: one
    // new death/failover/mismatch since the last sample degrades at once.
    if (flapping && next < HealthStatus::kDegraded) {
      next = HealthStatus::kDegraded;
      reason = "flap_events=" + std::to_string(flap_delta);
    }
    const bool any_bad = queue_degraded || slo_breach || flapping;
    if (any_bad) {
      clean_streak_ = 0;
    } else {
      ++clean_streak_;
      if (clean_streak_ >= options_.sustain_samples &&
          next > HealthStatus::kOk) {
        next = HealthStatus::kOk;
        reason = "clean_samples=" + std::to_string(clean_streak_);
      }
    }
  }
  if (slot_down) clean_streak_ = 0;

  if (next != before) {
    status_.store(static_cast<uint8_t>(next), std::memory_order_relaxed);
    if (journal_ != nullptr) {
      const Severity severity =
          next > before ? (next == HealthStatus::kCritical ? Severity::kError
                                                           : Severity::kWarn)
                        : Severity::kInfo;
      journal_->Emit(EventKind::kHealthTransition, severity,
                     std::string("from=") + ToString(before) +
                         " to=" + ToString(next) +
                         (reason.empty() ? "" : " " + reason));
    }
  }
  sample.status = next;

  if (explore_delta > 0 && journal_ != nullptr) {
    journal_->Emit(EventKind::kAdvisorExplore, Severity::kInfo,
                   "explores=" + std::to_string(explore_delta));
  }

  prev_requests_ = requests;
  prev_failovers_ = failovers;
  prev_cache_hits_ = hits;
  prev_cache_misses_ = misses;
  prev_explores_ = explores;
  prev_flap_events_ = flap_events;
  prev_latency_ = std::move(latency);
  have_prev_ = true;

  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    if (options_.ring_capacity > 0) {
      while (ring_.size() >= options_.ring_capacity) ring_.pop_front();
      ring_.push_back(sample);
    }
  }
  samples_taken_.fetch_add(1, std::memory_order_relaxed);
  return sample;
}

std::vector<HealthSample> HealthCollector::Recent(size_t max) const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  const size_t n = std::min(max, ring_.size());
  return {ring_.end() - static_cast<ptrdiff_t>(n), ring_.end()};
}

void HealthCollector::RegisterMetrics(MetricsRegistry* registry) {
  registry->AddGauge("dflow_health_status", {}, [this] {
    return static_cast<double>(status_.load(std::memory_order_relaxed));
  });
}

}  // namespace dflow::obs
