#include "obs/flow_profiler.h"

#include <algorithm>

#include "obs/trace.h"

namespace dflow::obs {

void ProfileSnapshot::MergeFrom(const ProfileSnapshot& other) {
  if (attr_names.empty()) {
    attr_names = other.attr_names;
    has_condition = other.has_condition;
    attrs.resize(other.attrs.size());
    conds.resize(other.conds.size());
  }
  if (sample_period == 0) sample_period = other.sample_period;
  profiled_requests += other.profiled_requests;
  total_requests += other.total_requests;
  const size_t n = std::min(attrs.size(), other.attrs.size());
  for (size_t i = 0; i < n; ++i) {
    AttrProfile& a = attrs[i];
    const AttrProfile& b = other.attrs[i];
    a.launches += b.launches;
    a.work_units += b.work_units;
    a.speculative_launches += b.speculative_launches;
    a.wasted_work += b.wasted_work;
    a.useful_completions += b.useful_completions;
    CondProfile& c = conds[i];
    const CondProfile& d = other.conds[i];
    c.evals += d.evals;
    c.true_outcomes += d.true_outcomes;
    c.false_outcomes += d.false_outcomes;
    c.unknown_outcomes += d.unknown_outcomes;
    c.eager_disables += d.eager_disables;
  }
  for (const auto& [key, cls] : other.classes) {
    ClassProfile& mine = classes[key];
    mine.requests += cls.requests;
    mine.work += cls.work;
    mine.wasted_work += cls.wasted_work;
    mine.cache_hits += cls.cache_hits;
    mine.cache_misses += cls.cache_misses;
  }
}

double ProfileSnapshot::Selectivity(AttributeId attr) const {
  const size_t i = static_cast<size_t>(attr);
  if (i >= conds.size()) return -1.0;
  const CondProfile& c = conds[i];
  const int64_t resolved = c.true_outcomes + c.false_outcomes;
  if (resolved == 0) return -1.0;
  return static_cast<double>(c.true_outcomes) / static_cast<double>(resolved);
}

FlowProfiler::FlowProfiler(const core::Schema* schema,
                           FlowProfilerOptions options)
    : schema_(schema), options_(options) {
  const int n = schema->num_attributes();
  names_.reserve(static_cast<size_t>(n));
  has_condition_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto a = static_cast<AttributeId>(i);
    names_.push_back(schema->attribute(a).name);
    has_condition_.push_back(
        !schema->is_source(a) &&
                !schema->enabling_condition(a).IsLiteralTrue()
            ? 1
            : 0);
  }
  attrs_ = std::make_unique<AttrCounters[]>(static_cast<size_t>(n));
  conds_ = std::make_unique<CondCounters[]>(static_cast<size_t>(n));
}

bool FlowProfiler::Sampled(uint64_t seed) const {
  return TraceRecorder::SampledBySeed(seed, options_.sample_period);
}

void FlowProfiler::RecordClass(uint64_t class_key, int64_t work,
                               int64_t wasted_work, bool cache_hit) {
  profiled_requests_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(classes_mu_);
  ClassProfile& cls = classes_[class_key];
  ++cls.requests;
  cls.work += work;
  cls.wasted_work += wasted_work;
  if (cache_hit) {
    ++cls.cache_hits;
  } else {
    ++cls.cache_misses;
  }
}

void FlowProfiler::RecordInstance(const core::Snapshot& snapshot,
                                  const core::Prequalifier& prequalifier,
                                  const std::vector<char>& launched,
                                  const std::vector<char>& speculative) {
  const int n = schema_->num_attributes();
  for (int i = 0; i < n; ++i) {
    const auto a = static_cast<AttributeId>(i);
    const auto idx = static_cast<size_t>(i);
    AttrCounters& ac = attrs_[idx];
    if (idx < launched.size() && launched[idx] != 0) {
      const int64_t cost = schema_->task(a).cost_units;
      ac.launches.fetch_add(1, std::memory_order_relaxed);
      ac.work_units.fetch_add(cost, std::memory_order_relaxed);
      if (idx < speculative.size() && speculative[idx] != 0) {
        ac.speculative_launches.fetch_add(1, std::memory_order_relaxed);
      }
      if (snapshot.state(a) == core::AttrState::kValue) {
        ac.useful_completions.fetch_add(1, std::memory_order_relaxed);
      } else {
        ac.wasted_work.fetch_add(cost, std::memory_order_relaxed);
      }
    }
    if (has_condition_[idx] != 0) {
      CondCounters& cc = conds_[idx];
      const int evals = prequalifier.cond_evals(a);
      if (evals > 0) {
        cc.evals.fetch_add(evals, std::memory_order_relaxed);
      }
      switch (prequalifier.cond_state(a)) {
        case expr::Tribool::kTrue:
          cc.true_outcomes.fetch_add(1, std::memory_order_relaxed);
          break;
        case expr::Tribool::kFalse:
          cc.false_outcomes.fetch_add(1, std::memory_order_relaxed);
          break;
        case expr::Tribool::kUnknown:
          cc.unknown_outcomes.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      if (prequalifier.eager_disabled(a)) {
        cc.eager_disables.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

ProfileSnapshot FlowProfiler::Snapshot() const {
  ProfileSnapshot out;
  out.sample_period = options_.sample_period;
  out.profiled_requests = profiled_requests_.load(std::memory_order_relaxed);
  out.total_requests = total_requests_.load(std::memory_order_relaxed);
  out.attr_names = names_;
  out.has_condition = has_condition_;
  const size_t n = names_.size();
  out.attrs.resize(n);
  out.conds.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const AttrCounters& ac = attrs_[i];
    AttrProfile& a = out.attrs[i];
    a.launches = ac.launches.load(std::memory_order_relaxed);
    a.work_units = ac.work_units.load(std::memory_order_relaxed);
    a.speculative_launches =
        ac.speculative_launches.load(std::memory_order_relaxed);
    a.wasted_work = ac.wasted_work.load(std::memory_order_relaxed);
    a.useful_completions =
        ac.useful_completions.load(std::memory_order_relaxed);
    const CondCounters& cc = conds_[i];
    CondProfile& c = out.conds[i];
    c.evals = cc.evals.load(std::memory_order_relaxed);
    c.true_outcomes = cc.true_outcomes.load(std::memory_order_relaxed);
    c.false_outcomes = cc.false_outcomes.load(std::memory_order_relaxed);
    c.unknown_outcomes = cc.unknown_outcomes.load(std::memory_order_relaxed);
    c.eager_disables = cc.eager_disables.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(classes_mu_);
    out.classes = classes_;
  }
  return out;
}

int64_t FlowProfiler::attr_work_units(AttributeId attr) const {
  const size_t i = static_cast<size_t>(attr);
  if (i >= names_.size()) return 0;
  return attrs_[i].work_units.load(std::memory_order_relaxed);
}

int64_t FlowProfiler::cond_true_outcomes(AttributeId attr) const {
  const size_t i = static_cast<size_t>(attr);
  if (i >= names_.size()) return 0;
  return conds_[i].true_outcomes.load(std::memory_order_relaxed);
}

int64_t FlowProfiler::cond_false_outcomes(AttributeId attr) const {
  const size_t i = static_cast<size_t>(attr);
  if (i >= names_.size()) return 0;
  return conds_[i].false_outcomes.load(std::memory_order_relaxed);
}

double FlowProfiler::cond_selectivity(AttributeId attr) const {
  const size_t i = static_cast<size_t>(attr);
  if (i >= names_.size()) return -1.0;
  const CondCounters& cc = conds_[i];
  const int64_t t = cc.true_outcomes.load(std::memory_order_relaxed);
  const int64_t f = cc.false_outcomes.load(std::memory_order_relaxed);
  if (t + f == 0) return -1.0;
  return static_cast<double>(t) / static_cast<double>(t + f);
}

}  // namespace dflow::obs
