#ifndef DFLOW_OBS_EVENT_LOG_H_
#define DFLOW_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/jsonl_sink.h"

namespace dflow::obs {

class MetricsRegistry;

// The fleet event taxonomy: everything operationally interesting that is
// NOT a per-request fact (those are traces). The enum value doubles as the
// on-wire kind byte in HEALTH frames, so values are append-only.
enum class EventKind : uint8_t {
  kBackendDeath = 1,       // a pooled backend connection died
  kBackendReconnect = 2,   // a previously-dead backend came back
  kFailover = 3,           // orphaned in-flight work replayed on a sibling
  kDivergenceCheck = 4,    // a sampled replica cross-check completed clean
  kDivergenceMismatch = 5, // replica fingerprints disagreed (data corruption)
  kEpochRefusal = 6,       // handshake refused: fleet-epoch/identity mismatch
  kDrain = 7,              // a node drained its shards on shutdown
  kAdvisorExplore = 8,     // the AUTO advisor ran explore-epoch selections
  kHealthTransition = 9,   // the health status gauge changed level
  kWatermark = 10,         // a watermark rule breached (queue, SLO, flap)
  kProfileSnapshot = 11,   // a plan profile was rotated/promoted (v8)
};

inline constexpr uint8_t kMinEventKind = 1;
inline constexpr uint8_t kMaxEventKind = 11;

enum class Severity : uint8_t {
  kInfo = 0,
  kWarn = 1,
  kError = 2,
};

const char* ToString(EventKind kind);
const char* ToString(Severity severity);

// One journal entry. `detail` is a short free-form "key=value key=value"
// string — structured enough for grep and the dflow_top event pane, cheap
// enough to ship in HEALTH frames.
struct Event {
  EventKind kind = EventKind::kBackendDeath;
  Severity severity = Severity::kInfo;
  int64_t wall_ms = 0;  // unix wall clock, milliseconds
  std::string node;
  std::string detail;

  friend bool operator==(const Event&, const Event&) = default;
};

struct EventLogOptions {
  // Journal entries retained in memory (bounded ring, oldest dropped).
  size_t ring_capacity = 256;
  // When non-empty, every event is appended as one JSON line.
  std::string jsonl_path;
  // Rotation budget for the JSONL sink; 0 = never rotate.
  uint64_t jsonl_max_bytes = 0;
  // Mirror events at kWarn and above to stderr as they happen.
  bool log_to_stderr = false;
};

// A bounded, thread-safe structured event journal: one per front door
// (ingress or router). Emit() is mutex-plus-deque cheap and is only called
// on rare control-plane transitions, never on the request hot path.
// Per-kind counters are plain atomics so watermark rules and Prometheus
// exposition can difference them without touching the ring mutex.
class EventLog {
 public:
  explicit EventLog(EventLogOptions options, std::string node = "");
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Appends an event stamped with the current wall clock and this
  // journal's node id.
  void Emit(EventKind kind, Severity severity, std::string detail);

  // The newest `max` events at or above `min_severity`, oldest first.
  std::vector<Event> Tail(size_t max,
                          Severity min_severity = Severity::kInfo) const;

  // Lifetime count of one kind / of everything (monotonic, lock-free).
  int64_t CountFor(EventKind kind) const;
  int64_t total() const;

  // Registers the per-kind counter family:
  //   dflow_events_total{kind="failover"} 3
  void RegisterCounters(MetricsRegistry* registry);

  // Flushes the JSONL sink (drain/shutdown path).
  void Flush();

  const std::string& node() const { return node_; }

 private:
  const EventLogOptions options_;
  const std::string node_;
  std::atomic<int64_t> counts_[kMaxEventKind + 1] = {};
  std::atomic<int64_t> total_{0};
  mutable std::mutex ring_mu_;
  std::deque<Event> ring_;
  JsonlSink sink_;
};

// One event as a JSONL line (no trailing newline).
std::string ToJsonLine(const Event& event);

}  // namespace dflow::obs

#endif  // DFLOW_OBS_EVENT_LOG_H_
