#ifndef DFLOW_OBS_FLOW_PROFILER_H_
#define DFLOW_OBS_FLOW_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/prequalifier.h"
#include "core/schema.h"
#include "core/snapshot.h"
#include "expr/tribool.h"

namespace dflow::obs {

// Per-attribute execution profile: how often the engine launched this
// attribute's task, what it cost, and how the speculation gamble ended.
struct AttrProfile {
  int64_t launches = 0;             // task launches (queries issued)
  int64_t work_units = 0;           // cost units spent on those launches
  int64_t speculative_launches = 0; // launched in READY (condition open)
  int64_t wasted_work = 0;          // cost of launches that never became VALUE
  int64_t useful_completions = 0;   // launches whose value reached VALUE

  friend bool operator==(const AttrProfile&, const AttrProfile&) = default;
};

// Per-enabling-condition profile: evaluation effort and the measured
// tribool outcome distribution. selectivity = true / (true + false) — the
// quantity Kougka/Gounaris-style task re-ordering needs, observed rather
// than assumed. Attributes whose condition is the literal TRUE are not
// profiled (their selectivity is 1 by construction).
struct CondProfile {
  int64_t evals = 0;            // prequalifier evaluation attempts
  int64_t true_outcomes = 0;    // terminal condition state per instance
  int64_t false_outcomes = 0;
  int64_t unknown_outcomes = 0; // instance finished with the condition open
  int64_t eager_disables = 0;   // resolved false before inputs stabilized

  friend bool operator==(const CondProfile&, const CondProfile&) = default;
};

// Per-request-class rollup (class key = opt::ClassKeyFor over the source
// binding — the same key the CostModel aggregates by, so a profile can
// re-seed a calibration class-for-class). Cache attribution lives here and
// ONLY here: hit patterns depend on shard-local cache state, so they are
// excluded from the attr/cond tables whose merge is shard-count-exact.
struct ClassProfile {
  int64_t requests = 0;
  int64_t work = 0;
  int64_t wasted_work = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  friend bool operator==(const ClassProfile&, const ClassProfile&) = default;
};

// A point-in-time copy of one profiler (or a merge of many). Snapshots
// merge by summation: every counter is a sum of deterministic per-request
// contributions, so the merge over any shard partition of the same
// sampled request set is identical — the cross-shard byte-identity
// contract flow_profiler_test proves for 1/2/8 shards.
struct ProfileSnapshot {
  uint64_t sample_period = 0;
  int64_t profiled_requests = 0;  // requests the sampling predicate chose
  int64_t total_requests = 0;     // everything the shard processed
  std::vector<std::string> attr_names;  // index == AttributeId
  std::vector<char> has_condition;      // non-literal-true condition?
  std::vector<AttrProfile> attrs;
  std::vector<CondProfile> conds;
  std::map<uint64_t, ClassProfile> classes;  // ordered: deterministic walks

  // Sums `other` into this snapshot (names/flags adopted when empty;
  // merging profiles of different schemas is a programming error).
  void MergeFrom(const ProfileSnapshot& other);

  // Measured selectivity of `attr`'s enabling condition: resolved-true
  // over resolved (true + false) outcomes, in [0, 1]. Returns -1 when the
  // condition never resolved (or the attribute has no condition).
  double Selectivity(AttributeId attr) const;

  friend bool operator==(const ProfileSnapshot&,
                         const ProfileSnapshot&) = default;
};

// The --profile-sample default the bench overhead gate is calibrated for:
// the same 1-in-64 deterministic seed hash as request tracing, so the
// profiled subset of a workload is a pure function of the request set —
// identical for every shard count and every node of a fleet.
inline constexpr uint32_t kDefaultProfileSamplePeriod = 64;

struct FlowProfilerOptions {
  // 1-in-N deterministic sampling; 1 profiles everything, 0 disables (the
  // engine then skips even the per-instance sampling hash).
  uint32_t sample_period = kDefaultProfileSamplePeriod;
};

// Per-shard, deterministic profile of engine execution. One instance per
// shard, written only by that shard's worker thread; all counters are
// relaxed atomics so any thread can Snapshot() concurrently without a
// lock, and the hot path never takes one:
//   - an UNSAMPLED request costs one relaxed increment plus one seed hash;
//   - a SAMPLED request additionally pays the per-attribute harvest in
//     ExecutionEngine::Finish (plain array walks + relaxed increments)
//     and one mutex-guarded class-rollup touch here (off the per-request
//     99%-path at the default 1/64 period).
// Determinism: the sampling predicate is a pure function of the seed and
// every recorded quantity is a pure function of the request (engine
// execution is deterministic per the FlowHarness contract), so per-shard
// profiles merge to the same totals for any shard count.
class FlowProfiler {
 public:
  FlowProfiler(const core::Schema* schema, FlowProfilerOptions options);
  FlowProfiler(const FlowProfiler&) = delete;
  FlowProfiler& operator=(const FlowProfiler&) = delete;

  // The deterministic sampling predicate (same hash as trace sampling).
  bool Sampled(uint64_t seed) const;
  uint32_t sample_period() const { return options_.sample_period; }

  // Shard hot path: every processed request, regardless of sampling.
  void CountRequest() {
    total_requests_.fetch_add(1, std::memory_order_relaxed);
  }

  // Shard, sampled requests only: the per-class rollup (work/waste from
  // the result metrics, plus cache attribution).
  void RecordClass(uint64_t class_key, int64_t work, int64_t wasted_work,
                   bool cache_hit);

  // Engine, sampled instances only (called from Finish on the shard's
  // worker thread): folds one completed instance's per-attribute launch
  // outcomes and per-condition tribool tallies into the profile.
  // `launched` / `speculative` are the engine's per-attribute flags.
  void RecordInstance(const core::Snapshot& snapshot,
                      const core::Prequalifier& prequalifier,
                      const std::vector<char>& launched,
                      const std::vector<char>& speculative);

  // Lock-free-read copy of every counter (relaxed loads; a concurrent
  // writer may be mid-instance, which only means the snapshot sits on a
  // request boundary slightly in the past).
  ProfileSnapshot Snapshot() const;

  // Cheap single-family reads for pull-style metrics callbacks.
  int64_t attr_work_units(AttributeId attr) const;
  double cond_selectivity(AttributeId attr) const;  // -1 when unknown
  // Raw resolved-outcome counts, for ratio computation over summed shards.
  int64_t cond_true_outcomes(AttributeId attr) const;
  int64_t cond_false_outcomes(AttributeId attr) const;

  int num_attributes() const { return static_cast<int>(names_.size()); }

 private:
  // Flat atomic counter blocks, indexed by attribute id.
  struct AttrCounters {
    std::atomic<int64_t> launches{0};
    std::atomic<int64_t> work_units{0};
    std::atomic<int64_t> speculative_launches{0};
    std::atomic<int64_t> wasted_work{0};
    std::atomic<int64_t> useful_completions{0};
  };
  struct CondCounters {
    std::atomic<int64_t> evals{0};
    std::atomic<int64_t> true_outcomes{0};
    std::atomic<int64_t> false_outcomes{0};
    std::atomic<int64_t> unknown_outcomes{0};
    std::atomic<int64_t> eager_disables{0};
  };

  const core::Schema* const schema_;
  const FlowProfilerOptions options_;
  std::vector<std::string> names_;
  std::vector<char> has_condition_;
  std::unique_ptr<AttrCounters[]> attrs_;
  std::unique_ptr<CondCounters[]> conds_;
  std::atomic<int64_t> total_requests_{0};
  std::atomic<int64_t> profiled_requests_{0};
  // Class rollups: touched only for sampled requests, never on the
  // unsampled hot path.
  mutable std::mutex classes_mu_;
  std::map<uint64_t, ClassProfile> classes_;
};

}  // namespace dflow::obs

#endif  // DFLOW_OBS_FLOW_PROFILER_H_
