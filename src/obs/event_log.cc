#include "obs/event_log.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <utility>

#include "obs/metrics_registry.h"

namespace dflow::obs {
namespace {

int64_t WallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Minimal JSON string escaping for the detail/node fields (they are
// machine-built "key=value" strings, but a hostname could still carry a
// surprise).
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kBackendDeath: return "backend_death";
    case EventKind::kBackendReconnect: return "backend_reconnect";
    case EventKind::kFailover: return "failover";
    case EventKind::kDivergenceCheck: return "divergence_check";
    case EventKind::kDivergenceMismatch: return "divergence_mismatch";
    case EventKind::kEpochRefusal: return "epoch_refusal";
    case EventKind::kDrain: return "drain";
    case EventKind::kAdvisorExplore: return "advisor_explore";
    case EventKind::kHealthTransition: return "health_transition";
    case EventKind::kWatermark: return "watermark";
    case EventKind::kProfileSnapshot: return "profile_snapshot";
  }
  return "unknown";
}

const char* ToString(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "unknown";
}

EventLog::EventLog(EventLogOptions options, std::string node)
    : options_(std::move(options)), node_(std::move(node)) {
  if (!options_.jsonl_path.empty()) {
    sink_.Open(options_.jsonl_path, options_.jsonl_max_bytes);
  }
}

void EventLog::Emit(EventKind kind, Severity severity, std::string detail) {
  Event event;
  event.kind = kind;
  event.severity = severity;
  event.wall_ms = WallMs();
  event.node = node_;
  event.detail = std::move(detail);

  const uint8_t k = static_cast<uint8_t>(kind);
  if (k >= kMinEventKind && k <= kMaxEventKind) {
    counts_[k].fetch_add(1, std::memory_order_relaxed);
  }
  total_.fetch_add(1, std::memory_order_relaxed);

  if (sink_.open()) sink_.Append(ToJsonLine(event));
  if (options_.log_to_stderr && severity >= Severity::kWarn) {
    std::fprintf(stderr, "[events] %s %s %s %s\n", ToString(severity),
                 node_.c_str(), ToString(kind), event.detail.c_str());
  }

  std::lock_guard<std::mutex> lock(ring_mu_);
  if (options_.ring_capacity == 0) return;
  while (ring_.size() >= options_.ring_capacity) ring_.pop_front();
  ring_.push_back(std::move(event));
}

std::vector<Event> EventLog::Tail(size_t max, Severity min_severity) const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  std::vector<Event> out;
  // Walk newest-to-oldest collecting matches, then reverse to oldest-first.
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < max;
       ++it) {
    if (it->severity >= min_severity) out.push_back(*it);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

int64_t EventLog::CountFor(EventKind kind) const {
  const uint8_t k = static_cast<uint8_t>(kind);
  if (k < kMinEventKind || k > kMaxEventKind) return 0;
  return counts_[k].load(std::memory_order_relaxed);
}

int64_t EventLog::total() const {
  return total_.load(std::memory_order_relaxed);
}

void EventLog::RegisterCounters(MetricsRegistry* registry) {
  for (uint8_t k = kMinEventKind; k <= kMaxEventKind; ++k) {
    const EventKind kind = static_cast<EventKind>(k);
    registry->AddCounter("dflow_events_total",
                         {{"kind", ToString(kind)}},
                         [this, kind] { return CountFor(kind); });
  }
}

void EventLog::Flush() { sink_.Flush(); }

std::string ToJsonLine(const Event& event) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"ts_ms\":%" PRId64 ",\"severity\":\"%s\",\"kind\":\"%s\",",
                event.wall_ms, ToString(event.severity),
                ToString(event.kind));
  std::string out = buf;
  out += "\"node\":\"" + JsonEscape(event.node) + "\",\"detail\":\"" +
         JsonEscape(event.detail) + "\"}";
  return out;
}

}  // namespace dflow::obs
