#ifndef DFLOW_OBS_METRICS_REGISTRY_H_
#define DFLOW_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dflow::obs {

// Fixed-bucket histogram with lock-free observation: Observe() is one
// branchless upper-bound scan plus relaxed atomic increments, safe from
// any thread and cheap enough for per-request paths. Bucket bounds are
// fixed at construction (upper bounds, ascending; an implicit +Inf bucket
// catches the tail).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;     // upper bounds, ascending (no +Inf)
    std::vector<int64_t> counts;    // per-bucket; counts.size() == bounds+1
    int64_t count = 0;
    double sum = 0;
  };
  Snapshot Snap() const;

 private:
  const std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
};

// A pull-style metrics registry: counters and gauges are registered as
// callbacks over state the owner already maintains (the ingress/router
// atomics, the FlowServer report), so the request hot path pays nothing
// for them; histograms are owned by the registry and observed directly.
// RenderText() produces Prometheus-style text exposition:
//
//   # TYPE dflow_requests_accepted_total counter
//   dflow_requests_accepted_total 123
//   dflow_wall_latency_us_bucket{le="100"} 5
//   ...
//   dflow_wall_latency_us_bucket{le="+Inf"} 42
//   dflow_wall_latency_us_sum 98765
//   dflow_wall_latency_us_count 42
//
// Registration happens at server construction/start; rendering takes the
// registry mutex and runs the callbacks, so it is meant for scrapes and
// periodic logs, not per-request paths.
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void AddCounter(std::string name, Labels labels,
                  std::function<int64_t()> read);
  void AddGauge(std::string name, Labels labels, std::function<double()> read);
  // The registry owns the histogram; the returned pointer stays valid for
  // the registry's lifetime and is safe to Observe() from any thread.
  Histogram* AddHistogram(std::string name, Labels labels,
                          std::vector<double> upper_bounds);

  std::string RenderText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    Labels labels;
    std::function<int64_t()> read_counter;
    std::function<double()> read_gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

// Bucket ladders shared by every front door, so dashboards line up.
std::vector<double> DefaultWallLatencyBucketsUs();
std::vector<double> DefaultWorkUnitBuckets();

}  // namespace dflow::obs

#endif  // DFLOW_OBS_METRICS_REGISTRY_H_
