#include "obs/metrics_registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace dflow::obs {
namespace {

// Label values travel inside double quotes; escape per the exposition
// format (backslash, quote, newline).
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderLabels(const MetricsRegistry::Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  out += '}';
  return out;
}

// Labels with one extra pair appended (histogram `le`).
std::string RenderLabelsPlus(const MetricsRegistry::Labels& labels,
                             const std::string& key,
                             const std::string& value) {
  MetricsRegistry::Labels extended = labels;
  extended.emplace_back(key, value);
  return RenderLabels(extended);
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double value) {
  // le semantics: a value equal to a bound belongs to that bound's bucket,
  // so the bucket is the first bound >= value (+Inf bucket past the end).
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts.push_back(counts_[i].load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void MetricsRegistry::AddCounter(std::string name, Labels labels,
                                 std::function<int64_t()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.name = std::move(name);
  entry.labels = std::move(labels);
  entry.read_counter = std::move(read);
  entries_.push_back(std::move(entry));
}

void MetricsRegistry::AddGauge(std::string name, Labels labels,
                               std::function<double()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.name = std::move(name);
  entry.labels = std::move(labels);
  entry.read_gauge = std::move(read);
  entries_.push_back(std::move(entry));
}

Histogram* MetricsRegistry::AddHistogram(std::string name, Labels labels,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.name = std::move(name);
  entry.labels = std::move(labels);
  entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram* raw = entry.histogram.get();
  entries_.push_back(std::move(entry));
  return raw;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_typed;  // one # TYPE line per family, first occurrence
  char buf[128];
  for (const Entry& entry : entries_) {
    const char* type = entry.kind == Kind::kCounter     ? "counter"
                       : entry.kind == Kind::kGauge     ? "gauge"
                                                        : "histogram";
    if (entry.name != last_typed) {
      out += "# TYPE " + entry.name + " " + type + "\n";
      last_typed = entry.name;
    }
    switch (entry.kind) {
      case Kind::kCounter: {
        std::snprintf(buf, sizeof(buf), " %" PRId64 "\n",
                      entry.read_counter());
        out += entry.name + RenderLabels(entry.labels) + buf;
        break;
      }
      case Kind::kGauge: {
        out += entry.name + RenderLabels(entry.labels) + " " +
               FormatDouble(entry.read_gauge()) + "\n";
        break;
      }
      case Kind::kHistogram: {
        const Histogram::Snapshot snap = entry.histogram->Snap();
        int64_t cumulative = 0;
        for (size_t i = 0; i < snap.bounds.size(); ++i) {
          cumulative += snap.counts[i];
          std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", cumulative);
          out += entry.name + "_bucket" +
                 RenderLabelsPlus(entry.labels, "le",
                                  FormatDouble(snap.bounds[i])) +
                 buf;
        }
        std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", snap.count);
        out += entry.name + "_bucket" +
               RenderLabelsPlus(entry.labels, "le", "+Inf") + buf;
        out += entry.name + "_sum" + RenderLabels(entry.labels) + " " +
               FormatDouble(snap.sum) + "\n";
        std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", snap.count);
        out += entry.name + "_count" + RenderLabels(entry.labels) + buf;
        break;
      }
    }
  }
  return out;
}

std::vector<double> DefaultWallLatencyBucketsUs() {
  return {50,    100,   250,    500,    1000,   2500,   5000,
          10000, 25000, 50000,  100000, 250000, 500000, 1000000};
}

std::vector<double> DefaultWorkUnitBuckets() {
  return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000};
}

}  // namespace dflow::obs
