#include "obs/jsonl_sink.h"

#include <sys/stat.h>

namespace dflow::obs {

JsonlSink::~JsonlSink() { Close(); }

bool JsonlSink::Open(const std::string& path, uint64_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  path_ = path;
  max_bytes_ = max_bytes;
  bytes_written_ = 0;
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    std::fprintf(stderr, "[obs] cannot open jsonl sink %s\n", path.c_str());
    return false;
  }
  // Resume the byte budget from the existing file size, so a restart does
  // not double the cap before the first rotation.
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 && st.st_size > 0) {
    bytes_written_ = static_cast<uint64_t>(st.st_size);
  }
  return true;
}

bool JsonlSink::open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

void JsonlSink::RotateLocked() {
  std::fclose(file_);
  file_ = nullptr;
  const std::string rotated = path_ + ".1";
  std::remove(rotated.c_str());
  std::rename(path_.c_str(), rotated.c_str());
  file_ = std::fopen(path_.c_str(), "a");
  bytes_written_ = 0;
  ++rotations_;
  if (file_ == nullptr) {
    std::fprintf(stderr, "[obs] cannot reopen jsonl sink %s after rotation\n",
                 path_.c_str());
  }
}

void JsonlSink::Append(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  if (max_bytes_ > 0 && bytes_written_ > 0 &&
      bytes_written_ + line.size() + 1 > max_bytes_) {
    RotateLocked();
    if (file_ == nullptr) return;
  }
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  bytes_written_ += line.size() + 1;
  ++lines_written_;
}

void JsonlSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

void JsonlSink::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

int64_t JsonlSink::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_written_;
}

int64_t JsonlSink::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

}  // namespace dflow::obs
