#ifndef DFLOW_OBS_TIMESERIES_H_
#define DFLOW_OBS_TIMESERIES_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"

namespace dflow::obs {

class EventLog;

// Fleet health verdict, ordered by badness. The numeric value doubles as
// the dflow_health_status gauge and the on-wire status byte.
enum class HealthStatus : uint8_t {
  kOk = 0,
  kDegraded = 1,
  kCritical = 2,
};

const char* ToString(HealthStatus status);

// The counters/gauges the collector differences each interval. Everything
// is a closure over state the owner already maintains (same philosophy as
// MetricsRegistry registration): the collector holds no references into
// the server beyond these. Closures that do not apply (e.g. slots_total on
// a plain server) are left null and read as zero.
struct HealthSources {
  std::function<int64_t()> requests_total;       // completed requests
  std::function<int64_t()> failovers_total;      // router only
  std::function<int64_t()> cache_hits_total;
  std::function<int64_t()> cache_misses_total;
  std::function<int64_t()> advisor_explores_total;
  // Wall-latency histogram snapshot; p95 is computed from bucket deltas
  // between consecutive snapshots, so it reflects the interval, not the
  // process lifetime. Null when the owner has no latency histogram.
  std::function<Histogram::Snapshot()> wall_latency;
  // Instantaneous queue occupancy across shards.
  std::function<std::vector<uint64_t>()> queue_depths;
  uint64_t queue_capacity = 0;  // per-shard bound; 0 = unbounded
  // Router topology: slots with zero live replicas make status critical.
  std::function<int64_t()> slots_total;
  std::function<int64_t()> slots_down;
};

struct HealthOptions {
  // Snapshot cadence in seconds; <= 0 disables the collector thread
  // entirely (SampleOnce still works for tests and HEALTH serving).
  double interval_s = 1.0;
  // Samples retained in the ring (default: 2 minutes at 1s cadence).
  size_t ring_capacity = 120;
  // SLO bound for the p95 watermark rule; <= 0 disables the rule.
  double slo_ms = 0;
  // Queue watermark: sustained max-shard utilization above `degraded`
  // degrades, above `critical` is critical. Utilization is depth/capacity
  // (skipped when capacity is unbounded).
  double queue_degraded_utilization = 0.75;
  double queue_critical_utilization = 0.95;
  // A watermark must hold for this many consecutive samples before the
  // status moves (and must be clean this many samples before it recovers)
  // — one bad scrape is noise, three in a row is weather.
  int sustain_samples = 3;
};

// One interval snapshot: rates differenced from the monotonic sources,
// plus the status verdict at sample time.
struct HealthSample {
  int64_t wall_ms = 0;       // unix wall clock at sample time
  double interval_s = 0;     // measured (not configured) interval
  double requests_per_s = 0;
  double failovers_per_s = 0;
  double cache_hit_rate = 0;   // of lookups this interval; 0 when none
  double p95_wall_ms = 0;      // from histogram bucket deltas; 0 when idle
  uint64_t queue_depth_max = 0;
  double queue_utilization = 0;  // max-shard depth / capacity
  HealthStatus status = HealthStatus::kOk;

  friend bool operator==(const HealthSample&, const HealthSample&) = default;
};

// Differences monotonic sources into a rate ring on a fixed cadence and
// runs the watermark rules: sustained queue pressure, p95 over the SLO,
// backend flapping (new death/failover/mismatch events in the recent
// window), and dead replica slots. Status transitions and watermark
// breaches are emitted into the journal; the current status is exported as
// the dflow_health_status gauge.
//
// The collector thread is the only writer; SampleOnce() is public so tests
// can drive the exact same math against scripted sources without threads.
class HealthCollector {
 public:
  HealthCollector(HealthOptions options, HealthSources sources,
                  EventLog* journal = nullptr);
  ~HealthCollector();
  HealthCollector(const HealthCollector&) = delete;
  HealthCollector& operator=(const HealthCollector&) = delete;

  // Starts/stops the collector thread (no-ops when interval_s <= 0).
  void Start();
  void Stop();

  // Takes one snapshot now, as if the interval `interval_s` had elapsed
  // since the previous one. Runs the watermark rules and pushes the sample
  // into the ring. Thread-safe, but meant for the collector thread and for
  // scripted tests.
  HealthSample SampleOnce(double interval_s);

  // Newest `max` samples, oldest first.
  std::vector<HealthSample> Recent(size_t max) const;

  HealthStatus status() const {
    return static_cast<HealthStatus>(
        status_.load(std::memory_order_relaxed));
  }
  int64_t samples_taken() const {
    return samples_taken_.load(std::memory_order_relaxed);
  }

  // Registers the dflow_health_status gauge (0 ok / 1 degraded /
  // 2 critical).
  void RegisterMetrics(MetricsRegistry* registry);

  const HealthOptions& options() const { return options_; }

  // Pure rate/percentile helpers, exposed for unit tests.
  // p95 from the count delta between two snapshots of the same histogram:
  // linear interpolation within the bucket holding the 95th percentile of
  // the *new* observations. Returns 0 when nothing landed in between.
  static double P95FromDelta(const Histogram::Snapshot& prev,
                             const Histogram::Snapshot& cur);

 private:
  void Loop();

  const HealthOptions options_;
  const HealthSources sources_;
  EventLog* const journal_;

  // Previous-cycle readings (collector thread / SampleOnce callers only,
  // guarded by sample_mu_).
  std::mutex sample_mu_;
  int64_t prev_requests_ = 0;
  int64_t prev_failovers_ = 0;
  int64_t prev_cache_hits_ = 0;
  int64_t prev_cache_misses_ = 0;
  int64_t prev_explores_ = 0;
  int64_t prev_flap_events_ = 0;
  Histogram::Snapshot prev_latency_;
  bool have_prev_ = false;
  int breach_streak_ = 0;
  int clean_streak_ = 0;

  std::atomic<uint8_t> status_{0};
  std::atomic<int64_t> samples_taken_{0};

  mutable std::mutex ring_mu_;
  std::deque<HealthSample> ring_;

  std::mutex thread_mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dflow::obs

#endif  // DFLOW_OBS_TIMESERIES_H_
