#ifndef DFLOW_OBS_TRACE_H_
#define DFLOW_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/jsonl_sink.h"

namespace dflow::obs {

// Monotonic wall clock in nanoseconds (steady_clock). All span timestamps
// are taken from this clock and stored relative to the trace's begin, so
// they are comparable within one node but NOT across nodes — cross-node
// spans (router.forward) travel with start_ns = 0 by convention.
uint64_t MonotonicNs();

// The per-stage span taxonomy, in canonical pipeline order. The enum value
// doubles as the on-wire kind byte in the SubmitResult timing trailer, and
// the ordering is the nesting invariant ValidateSpans checks: a stage
// earlier in the pipeline must not start after a later one.
enum class SpanKind : uint8_t {
  kRouterForward = 1,  // router: forward sent -> response relayed
  kIngressQueue = 2,   // ingress: submit decoded -> admitted to a shard queue
  kShardQueueWait = 3, // enqueued -> popped by the shard worker
  kAdvisorChoose = 4,  // AUTO only: per-request strategy selection
  kCacheLookup = 5,    // result-cache consult (0-length when caching is off)
  kHarnessExec = 6,    // engine execution (absent on a cache hit)
  kOutboxWrite = 7,    // response assembly on the completion path
};

inline constexpr uint8_t kMinSpanKind = 1;
inline constexpr uint8_t kMaxSpanKind = 7;

const char* ToString(SpanKind kind);

// One completed stage. start_ns is relative to the recording node's trace
// begin; duration_ns is the stage's extent on that node's monotonic clock.
struct Span {
  SpanKind kind = SpanKind::kIngressQueue;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;

  friend bool operator==(const Span&, const Span&) = default;
};

// The trace context one sampled request carries through the pipeline
// (FlowRequest::trace holds a shared_ptr; null means untraced and costs a
// single pointer test per stage). Stages append spans as they complete;
// the tiny per-trace mutex exists because the ingress reader and the shard
// worker can legitimately overlap (a worker may pop a request while the
// submitting reader is still returning from the blocking Submit). No
// global lock is ever taken on the request path.
class RequestTrace {
 public:
  RequestTrace(uint64_t trace_id, uint64_t seed, uint64_t begin_ns)
      : trace_id_(trace_id), seed_(seed), begin_ns_(begin_ns) {}
  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  uint64_t trace_id() const { return trace_id_; }
  uint64_t seed() const { return seed_; }
  uint64_t begin_ns() const { return begin_ns_; }

  // Records one completed stage from absolute monotonic timestamps; the
  // stored start is clamped relative to begin_ns.
  void AddSpan(SpanKind kind, uint64_t start_abs_ns, uint64_t end_abs_ns);

  // The admission timestamp shard.queue_wait measures from. Stamped by the
  // front door immediately before the queue push, so it is visible to the
  // worker no matter how fast the pop lands.
  void SetEnqueue(uint64_t abs_ns);
  uint64_t enqueue_ns() const;

  // Execution facts for the slow-request log and the JSONL sink, stamped
  // by the shard worker.
  void SetExecution(int shard, uint64_t queue_depth, std::string strategy,
                    bool cache_hit);

  // Everything a completed trace carries, copied out under the lock.
  struct View {
    uint64_t trace_id = 0;
    uint64_t seed = 0;
    int shard = -1;
    uint64_t queue_depth = 0;
    std::string strategy;
    bool cache_hit = false;
    uint64_t wall_ns = 0;  // filled by TraceRecorder::Finish
    std::vector<Span> spans;
  };
  View Snapshot() const;

 private:
  const uint64_t trace_id_;
  const uint64_t seed_;
  const uint64_t begin_ns_;
  mutable std::mutex mu_;
  uint64_t enqueue_abs_ns_ = 0;
  int shard_ = -1;
  uint64_t queue_depth_ = 0;
  std::string strategy_;
  bool cache_hit_ = false;
  std::vector<Span> spans_;
};

struct TraceRecorderOptions {
  // Sampling period: 0 disables tracing (zero instrumentation cost beyond
  // a null-pointer test), 1 traces every request, N traces the seeds with
  // Mix(seed, salt) % N == 0 — a pure function of the seed, so every node
  // of a fleet samples the same requests and cross-node traces join.
  uint32_t sample_period = 0;
  // Completed traces retained in memory for inspection (bounded ring; the
  // oldest trace is dropped when full).
  size_t ring_capacity = 256;
  // When non-empty, every finished trace is appended as one JSON line.
  std::string jsonl_path;
  // Rotation budget for the JSONL sink (bytes); 0 = never rotate. When the
  // file would exceed the budget it is renamed to "<path>.1" and restarted,
  // bounding disk use at ~2x the budget.
  uint64_t jsonl_max_bytes = 0;
  // Slow-request log threshold in wall milliseconds. When > 0 EVERY
  // request is traced regardless of sample_period (a slow request must
  // never be missed; the cost is full tracing) and any trace whose wall
  // time exceeds the threshold is dumped to stderr with its full span
  // breakdown, seed, strategy, cache outcome, and queue depth.
  double slow_ms = 0;
};

// The --trace-sample default the bench overhead gate is calibrated for.
inline constexpr uint32_t kDefaultSamplePeriod = 64;

// Owns the sampling decision, trace-id assignment, the bounded ring of
// completed traces, the JSONL sink, and the slow-request log. One per
// front door (ingress or router). Begin/Finish take the recorder mutex
// once per *sampled* request; unsampled requests never touch it.
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceRecorderOptions options, std::string node = "");
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // The deterministic sampling predicate, usable without a recorder.
  static bool SampledBySeed(uint64_t seed, uint32_t period);

  // True when this recorder wants a trace for the seed: the deterministic
  // sample, or everything while the slow-request log is armed.
  bool ShouldTrace(uint64_t seed) const;

  // Tracing configured at all (sampling or slow log)? Front doors use this
  // to skip even the timestamp reads when observability is fully off.
  bool enabled() const {
    return options_.sample_period > 0 || options_.slow_ms > 0;
  }

  // Opens a trace. trace_id == 0 assigns a fresh id (unique per recorder,
  // seed-salted); a nonzero id is adopted verbatim — that is how a trace
  // propagated from an upstream router keeps one identity across nodes.
  std::shared_ptr<RequestTrace> Begin(uint64_t seed, uint64_t trace_id = 0);

  // Completes a trace: stamps the wall time, appends to the ring and the
  // JSONL sink, and emits the slow-request log line when it qualifies.
  void Finish(const std::shared_ptr<RequestTrace>& trace, uint64_t wall_ns);

  // The ring's current contents, oldest first.
  std::vector<RequestTrace::View> Completed() const;

  // Flushes the JSONL sink so the tail survives a SIGTERM-driven exit;
  // called on the drain/shutdown path.
  void Flush();

  int64_t started() const { return started_.load(std::memory_order_relaxed); }
  int64_t finished() const {
    return finished_.load(std::memory_order_relaxed);
  }
  int64_t slow_logged() const {
    return slow_logged_.load(std::memory_order_relaxed);
  }
  const TraceRecorderOptions& options() const { return options_; }
  const std::string& node() const { return node_; }

 private:
  const TraceRecorderOptions options_;
  const std::string node_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<int64_t> started_{0};
  std::atomic<int64_t> finished_{0};
  std::atomic<int64_t> slow_logged_{0};
  mutable std::mutex ring_mu_;
  std::deque<RequestTrace::View> ring_;
  JsonlSink sink_;
};

// Deterministic-by-construction span-structure view: the span kinds in
// start order (ties broken by pipeline order), ';'-joined. Timestamps vary
// run to run; which stages ran, and their order, does not — tests assert
// on this string.
std::string SpanStructure(const RequestTrace::View& view);

// The span parentage/nesting invariants every well-formed trace obeys:
// known kinds only, at most one span per kind per node, and pipeline-order
// starts (a stage earlier in SpanKind order never starts after a later
// one). Returns false and fills *error on the first violation.
bool ValidateSpans(const RequestTrace::View& view, std::string* error);

// One trace as a JSONL line (no trailing newline).
std::string ToJsonLine(const RequestTrace::View& view,
                       const std::string& node);

}  // namespace dflow::obs

#endif  // DFLOW_OBS_TRACE_H_
