#ifndef DFLOW_NET_INGRESS_SERVER_H_
#define DFLOW_NET_INGRESS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/session_outbox.h"
#include "net/socket.h"
#include "net/wire_protocol.h"
#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "runtime/flow_server.h"

namespace dflow::net {

struct IngressOptions {
  // TCP port to listen on; 0 asks the kernel for an ephemeral port (read
  // the result from port() after Start). The listener binds 127.0.0.1 only
  // — exposing the ingress beyond the host is a deliberate non-goal until
  // there is authentication in front of it.
  uint16_t port = 0;
  // Per-frame payload ceiling; larger frames kill the connection with
  // FRAME_TOO_LARGE (framing cannot be trusted past an oversized length).
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  // Upper bound on one blocking send to a client. A client that stops
  // reading cannot wedge a writer (and therefore Stop()) forever: the send
  // times out, the session is marked dead, and its remaining responses are
  // discarded.
  int send_timeout_ms = 10000;
  // Per-connection open/close log lines on stderr.
  bool verbose = false;
  // Identity this server reports in its Info responses (ServerInfo::
  // node_id); a router records it per backend at handshake time. Empty
  // means "serve:<bound port>".
  std::string node_id;
  // Deployment generation stamped into Info responses (ServerInfo::
  // fleet_epoch, the v5 handshake field). A replicated router refuses a
  // fleet whose members disagree on it — bump it together across a
  // replica set whenever a deploy could change served bytes, so a
  // half-upgraded set fails at handshake time instead of diverging.
  uint64_t fleet_epoch = 0;
  // Observability: sampling, JSONL sink, and slow-request-log threshold
  // for the ingress's TraceRecorder. All-default (sample_period 0, no
  // sink, slow_ms 0) means tracing is off — untraced requests pay one
  // pointer test per stage and nothing else. Propagated trace contexts
  // (a submit carrying the v4 trace extension) are honored regardless.
  obs::TraceRecorderOptions trace;
  // Structured event journal: ring size, optional JSONL sink (+ rotation
  // budget), stderr mirroring of warnings. Always on — events are rare
  // control-plane transitions, never per-request.
  obs::EventLogOptions events;
  // Health collector cadence + watermark rules (the v6 health plane).
  // interval_s <= 0 disables the collector thread; kHealthRequest is still
  // answered (with an empty rate series) so fleet polls never fail.
  obs::HealthOptions health;
};

// The network front door of the flow-serving runtime: a TCP listener whose
// acceptor hands each connection to a session (reader thread + writer
// thread), speaking the length-prefixed wire protocol and mapping submit
// frames onto FlowServer::Submit / TrySubmitEx.
//
// Flow of one submit: the session reader decodes the frame, registers a
// pending entry under a fresh ticket (FlowRequest::ticket), and admits the
// request. Completions arrive on shard worker threads via the FlowServer
// result callback, which looks the ticket up, builds the response (summary
// + fingerprint, plus the full terminal snapshot when requested), and
// enqueues it on the owning session's outbox; the session writer owns the
// socket's write side. Responses therefore interleave across a
// connection's in-flight requests in *completion* order — the client
// matches them by request_id.
//
// Backpressure contract: a blocking submit parks the session reader in
// Submit() when the target shard's queue is full, so the connection stops
// consuming bytes and TCP flow control pushes the stall back to the
// client. A non-blocking submit never parks: queue-full comes back as a
// REJECTED_BUSY error frame (and a post-drain submit as SHUTTING_DOWN),
// making shedding explicit instead of silent. Outboxes need no bound of
// their own: a response exists only for an admitted request, so the
// bounded shard queues already cap what any connection can have in flight.
//
// Shutdown (Stop, also run by the destructor): stop accepting, half-close
// every session's read side, join sessions — each reader finishes its
// buffered frames, waits for its in-flight requests to complete, and
// retires its writer after the responses flushed — and only then
// FlowServer::Drain(). No accepted request is dropped without an answer.
class IngressServer {
 public:
  IngressServer(const core::Schema* schema,
                runtime::FlowServerOptions server_options,
                IngressOptions ingress_options);
  ~IngressServer();
  IngressServer(const IngressServer&) = delete;
  IngressServer& operator=(const IngressServer&) = delete;

  // Binds, listens, and starts the acceptor. Returns false and fills
  // *error on failure (e.g. the port is taken). Call at most once.
  bool Start(std::string* error);

  // Graceful shutdown as described above. Idempotent.
  void Stop();

  // The bound port (meaningful after a successful Start).
  uint16_t port() const { return listener_.port(); }

  // The backing FlowServer's report with the ingress counters filled in.
  runtime::FlowServerReport Report() const;
  runtime::IngressStats ingress_stats() const;

  // Prometheus-style text exposition of every registered metric family —
  // what a kMetricsRequest frame answers and what --metrics-dump prints.
  std::string MetricsText() const { return metrics_.RenderText(); }
  const obs::TraceRecorder& recorder() const { return recorder_; }
  const obs::EventLog& journal() const { return journal_; }
  const obs::HealthCollector& health() const { return health_; }

  const runtime::FlowServer& flow_server() const { return server_; }

 private:
  struct Session {
    uint64_t id = 0;
    Socket socket;

    // The response outbox + in-flight accounting (the front-door
    // invariants shared with the Router; see net::SessionOutbox).
    SessionOutbox outbox;

    // Per-connection counters (the same shape as the aggregate
    // IngressStats; summed there as they happen, kept here for the
    // verbose close log and tests).
    std::atomic<int64_t> accepted{0};
    std::atomic<int64_t> rejected_busy{0};
    std::atomic<int64_t> rejected_shutdown{0};
    std::atomic<int64_t> decode_errors{0};
    std::atomic<int64_t> protocol_errors{0};
    std::atomic<int64_t> bytes_in{0};
    std::atomic<int64_t> bytes_out{0};

    std::thread thread;  // reader; joins the writer before exiting
    // Outbox stats already folded into the closed-session accumulator
    // (set, under sessions_mu_, by the session's own teardown); the live
    // scan in ingress_stats() skips folded sessions so each session is
    // counted exactly once.
    bool stats_folded = false;  // guarded by sessions_mu_
    std::atomic<bool> finished{false};  // safe to reap
  };

  struct Pending {
    std::shared_ptr<Session> session;
    uint64_t request_id = 0;
    bool want_snapshot = false;
    // Admission timestamp (the trace's begin when traced): the wall-clock
    // latency histogram and TraceRecorder::Finish measure from here.
    uint64_t start_ns = 0;
    std::shared_ptr<obs::RequestTrace> trace;  // null = untraced
  };

  void AcceptLoop();
  void SessionLoop(const std::shared_ptr<Session>& session);
  void WriterLoop(const std::shared_ptr<Session>& session);
  // Handles one decoded frame on the session reader. Returns false when
  // the connection must close (goodbye or unrecoverable stream state).
  bool HandleFrame(const std::shared_ptr<Session>& session,
                   const Frame& frame);
  void HandleSubmit(const std::shared_ptr<Session>& session,
                    SubmitRequest request);
  // Result callback, invoked on shard worker threads.
  void OnResult(int shard_index, const runtime::FlowRequest& request,
                const core::InstanceResult& result,
                const core::Strategy& executed);
  static void Enqueue(const std::shared_ptr<Session>& session,
                      std::vector<uint8_t> frame);
  void SendError(const std::shared_ptr<Session>& session, uint64_t request_id,
                 WireError code, const std::string& message);
  ServerInfo BuildInfo() const;
  HealthInfo BuildHealth() const;
  obs::HealthSources MakeHealthSources();
  // Joins and drops sessions that finished on their own (client
  // disconnects), so a long-lived server does not accumulate dead
  // sessions. Joins *all* sessions when `all` is set (shutdown path).
  void ReapSessions(bool all);

  const IngressOptions options_;
  runtime::FlowServer server_;
  obs::TraceRecorder recorder_;
  obs::EventLog journal_;
  obs::MetricsRegistry metrics_;
  // Declared after journal_ and the registry sources it differences; the
  // collector thread runs Start() -> Stop().
  obs::HealthCollector health_;
  // Registry-owned latency histograms, observed on the completion path:
  // real wall-clock microseconds (submit decoded -> response built)
  // alongside the paper's work-unit latency, so the two views stay
  // side-by-side in one scrape.
  obs::Histogram* wall_latency_us_ = nullptr;
  obs::Histogram* latency_units_ = nullptr;
  ListenSocket listener_;
  std::thread acceptor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  // serializes Stop()
  bool stopped_ = false;

  mutable std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;
  // Outbox stats of sessions that already tore down (under sessions_mu_);
  // the HWM folds by max, the totals by sum (see IngressStats).
  SessionOutbox::Stats closed_outbox_;

  std::mutex pending_mu_;
  std::unordered_map<uint64_t, Pending> pending_;
  std::atomic<uint64_t> next_ticket_{1};

  // Aggregate ingress counters (see runtime::IngressStats).
  std::atomic<int64_t> connections_opened_{0};
  std::atomic<int64_t> connections_closed_{0};
  std::atomic<int64_t> requests_accepted_{0};
  std::atomic<int64_t> requests_rejected_busy_{0};
  std::atomic<int64_t> requests_rejected_shutdown_{0};
  std::atomic<int64_t> decode_errors_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> info_requests_{0};
  std::atomic<int64_t> bytes_in_{0};
  std::atomic<int64_t> bytes_out_{0};
};

}  // namespace dflow::net

#endif  // DFLOW_NET_INGRESS_SERVER_H_
