#ifndef DFLOW_NET_INGRESS_SERVER_H_
#define DFLOW_NET_INGRESS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/session_outbox.h"
#include "net/socket.h"
#include "net/wire_protocol.h"
#include "obs/event_log.h"
#include "obs/jsonl_sink.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "runtime/flow_server.h"

namespace dflow::net {

struct IngressOptions {
  // TCP port to listen on; 0 asks the kernel for an ephemeral port (read
  // the result from port() after Start). The listener binds 127.0.0.1 only
  // — exposing the ingress beyond the host is a deliberate non-goal until
  // there is authentication in front of it.
  uint16_t port = 0;
  // Per-frame payload ceiling; larger frames kill the connection with
  // FRAME_TOO_LARGE (framing cannot be trusted past an oversized length).
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  // Upper bound on the shutdown flush: how long Stop() lets graceful
  // closes drain their outboxes before force-closing stragglers. A client
  // that stops reading cannot wedge Stop() forever.
  int send_timeout_ms = 10000;
  // Event-loop threads owning the sockets; 0 picks
  // min(4, hardware_concurrency). Socket work is tiny next to shard
  // execution, so a handful of loop threads carries 10k+ connections.
  int event_threads = 0;
  // Per-connection open/close log lines on stderr.
  bool verbose = false;
  // Identity this server reports in its Info responses (ServerInfo::
  // node_id); a router records it per backend at handshake time. Empty
  // means "serve:<bound port>".
  std::string node_id;
  // Deployment generation stamped into Info responses (ServerInfo::
  // fleet_epoch, the v5 handshake field). A replicated router refuses a
  // fleet whose members disagree on it — bump it together across a
  // replica set whenever a deploy could change served bytes, so a
  // half-upgraded set fails at handshake time instead of diverging.
  uint64_t fleet_epoch = 0;
  // Observability: sampling, JSONL sink, and slow-request-log threshold
  // for the ingress's TraceRecorder. All-default (sample_period 0, no
  // sink, slow_ms 0) means tracing is off — untraced requests pay one
  // pointer test per stage and nothing else. Propagated trace contexts
  // (a submit carrying the v4 trace extension) are honored regardless.
  obs::TraceRecorderOptions trace;
  // Structured event journal: ring size, optional JSONL sink (+ rotation
  // budget), stderr mirroring of warnings. Always on — events are rare
  // control-plane transitions, never per-request.
  obs::EventLogOptions events;
  // Health collector cadence + watermark rules (the v6 health plane).
  // interval_s <= 0 disables the collector thread; kHealthRequest is still
  // answered (with an empty rate series) so fleet polls never fail.
  obs::HealthOptions health;
  // v8 profiling plane: optional JSONL sink for merged profile snapshots
  // (one line at every drain), with the same byte-budget rotation rule as
  // the trace/journal sinks. Empty = no sink. Sampling itself lives on
  // FlowServerOptions::profile_sample_period.
  std::string profile_jsonl_path;
  uint64_t profile_jsonl_max_bytes = 0;
};

// The network front door of the flow-serving runtime: a TCP listener whose
// acceptor hands each connection to a shared net::EventLoop (a fixed pool
// of epoll threads owning every socket), speaking the length-prefixed wire
// protocol and mapping submit frames onto FlowServer admission. A
// connection costs one fd and a few hundred bytes of state — not two
// threads — which is what lets one server hold 10k+ concurrent clients.
//
// Flow of one submit: the owning loop thread decodes the frame, registers
// a pending entry under a fresh ticket (FlowRequest::ticket), and admits
// the request. Completions arrive on shard worker threads via the
// FlowServer result callback, which looks the ticket up, builds the
// response (summary + fingerprint, plus the full terminal snapshot when
// requested), and enqueues it on the owning conn's outbox; the outbox wake
// doorbell schedules a drain on the loop thread that owns the socket.
// Responses therefore interleave across a connection's in-flight requests
// in *completion* order — the client matches them by request_id. A
// BATCH_SUBMIT frame (wire v7) admits its items in order under a
// contiguous ticket run and answers with ordinary per-item SubmitResult
// frames, byte-identical to the same requests submitted one frame each.
//
// Backpressure contract: a blocking submit against a full shard queue
// parks as a deferred retry on the loop — the conn stops reading, its
// kernel receive buffer fills, and TCP flow control pushes the stall back
// to the client (no loop thread blocks; other conns on the same thread
// keep being served). A non-blocking submit never stalls: queue-full comes
// back as a REJECTED_BUSY error frame (and a post-drain submit as
// SHUTTING_DOWN), making shedding explicit instead of silent. Outboxes
// need no bound of their own: a response exists only for an admitted
// request, so the bounded shard queues already cap what any connection can
// have in flight.
//
// Shutdown (Stop, also run by the destructor): stop accepting, then
// EventLoop::Stop gracefully closes every conn — buffered frames finish
// dispatching, in-flight requests complete into the outbox, the backlog
// flushes, then the socket closes — and only then FlowServer::Drain(). No
// accepted request is dropped without an answer.
class IngressServer {
 public:
  IngressServer(const core::Schema* schema,
                runtime::FlowServerOptions server_options,
                IngressOptions ingress_options);
  ~IngressServer();
  IngressServer(const IngressServer&) = delete;
  IngressServer& operator=(const IngressServer&) = delete;

  // Binds, listens, starts the event loop and the acceptor. Returns false
  // and fills *error on failure (e.g. the port is taken). Call at most
  // once.
  bool Start(std::string* error);

  // Graceful shutdown as described above. Idempotent.
  void Stop();

  // The bound port (meaningful after a successful Start).
  uint16_t port() const { return listener_.port(); }

  // The backing FlowServer's report with the ingress counters filled in.
  runtime::FlowServerReport Report() const;
  runtime::IngressStats ingress_stats() const;

  // Prometheus-style text exposition of every registered metric family —
  // what a kMetricsRequest frame answers and what --metrics-dump prints.
  std::string MetricsText() const { return metrics_.RenderText(); }
  const obs::TraceRecorder& recorder() const { return recorder_; }
  const obs::EventLog& journal() const { return journal_; }
  const obs::HealthCollector& health() const { return health_; }

  const runtime::FlowServer& flow_server() const { return server_; }

 private:
  // Per-connection session state (EventConn::user). The wire counters the
  // aggregate IngressStats sums live here as atomics because refusals and
  // accepts are counted on loop threads while tests read them from
  // outside; byte counts come from the conn itself (bytes_in) and its
  // outbox (bytes_written).
  struct Session {
    uint64_t id = 0;
    std::atomic<int64_t> accepted{0};
    std::atomic<int64_t> rejected_busy{0};
    std::atomic<int64_t> rejected_shutdown{0};
    std::atomic<int64_t> decode_errors{0};
    std::atomic<int64_t> protocol_errors{0};
    // True once on_close folded this session's stats (or, for a conn that
    // retired before the acceptor could index it, suppresses the index
    // insert). Guarded by sessions_mu_.
    bool retired = false;
  };

  struct Pending {
    std::shared_ptr<EventConn> conn;
    uint64_t request_id = 0;
    bool want_snapshot = false;
    // Admission timestamp (the trace's begin when traced): the wall-clock
    // latency histogram and TraceRecorder::Finish measure from here.
    uint64_t start_ns = 0;
    std::shared_ptr<obs::RequestTrace> trace;  // null = untraced
  };

  // One request's admission state, registered (pending entry + in-flight
  // Begin) before the first offer so a deferred retry can re-offer it
  // without re-registering. Copyable: each offer rebuilds the FlowRequest
  // from these fields (a refused offer consumes its argument).
  struct Admission {
    std::shared_ptr<EventConn> conn;
    std::shared_ptr<Session> session;
    uint64_t ticket = 0;
    uint64_t request_id = 0;
    uint64_t seed = 0;
    core::SourceBinding sources;
    std::shared_ptr<obs::RequestTrace> trace;
    uint64_t start_ns = 0;
  };

  // A BATCH_SUBMIT mid-admission: the decoded frame plus how far the item
  // cursor got, kept alive by the deferred-retry closure across stalls.
  struct BatchState {
    std::shared_ptr<EventConn> conn;
    std::shared_ptr<Session> session;
    BatchSubmitRequest request;
    size_t next = 0;                  // next item to register
    std::optional<Admission> parked;  // registered, not yet admitted
  };

  void AcceptLoop();
  // One decoded frame, on the conn's owning loop thread.
  EventConn::FrameAction HandleFrame(EventConn* conn,
                                     const std::shared_ptr<Session>& session,
                                     Frame& frame);
  EventConn::FrameAction HandleSubmit(EventConn* conn,
                                      const std::shared_ptr<Session>& session,
                                      SubmitRequest request);
  EventConn::FrameAction HandleBatchSubmit(
      EventConn* conn, const std::shared_ptr<Session>& session,
      BatchSubmitRequest request);
  // Whether a strategy override (empty = none) names what this server
  // runs.
  bool StrategyAllowed(const std::string& strategy) const;
  // Validates a strategy override (empty = none). On mismatch, counts the
  // protocol error and answers BAD_STRATEGY; returns false.
  bool CheckStrategy(EventConn* conn, Session* session, uint64_t request_id,
                     const std::string& strategy);
  // Registers one request (trace, ticket, pending entry, in-flight Begin)
  // so its answer — result or refusal — is owed from this moment on.
  Admission PrepareAdmission(const std::shared_ptr<EventConn>& conn,
                             const std::shared_ptr<Session>& session,
                             uint64_t request_id, bool want_snapshot,
                             uint64_t seed, core::SourceBinding sources,
                             bool force_trace, uint64_t trace_id);
  // One non-counting admission offer (see FlowServer::OfferSubmit).
  runtime::TryPushResult Offer(const Admission& admission);
  // Books the offer's outcome: accepted counters on kOk, refusal unwind +
  // typed error frame otherwise. kFull only reaches here non-blocking.
  void Resolve(const Admission& admission, runtime::TryPushResult result);
  // Drives a batch forward: registers and offers items in order. Returns
  // true when every item is resolved; false on a blocking stall (the
  // parked item stays registered; call again to continue).
  bool AdvanceBatch(const std::shared_ptr<BatchState>& state);
  // Result callback, invoked on shard worker threads.
  void OnResult(int shard_index, const runtime::FlowRequest& request,
                const core::InstanceResult& result,
                const core::Strategy& executed);
  void SendError(EventConn* conn, uint64_t request_id, WireError code,
                 const std::string& message);
  // EventConn on_close hook: folds the conn's byte/outbox stats into the
  // closed-session accumulators exactly once.
  void OnConnClosed(EventConn* conn, const std::shared_ptr<Session>& session);
  ServerInfo BuildInfo() const;
  HealthInfo BuildHealth() const;
  // The v8 profile answer: this node's merged profile plus the annotated
  // plan view (EXPLAIN-style dot with measured work/selectivity per node).
  ProfileInfo BuildProfile() const;
  // One merged-profile JSONL line into the profile sink + a
  // profile_snapshot journal event; no-op when the sink is closed or
  // profiling is off.
  void WriteProfileSnapshot();
  obs::HealthSources MakeHealthSources();

  const IngressOptions options_;
  runtime::FlowServer server_;
  obs::TraceRecorder recorder_;
  obs::EventLog journal_;
  obs::MetricsRegistry metrics_;
  // Declared after journal_ and the registry sources it differences; the
  // collector thread runs Start() -> Stop().
  obs::HealthCollector health_;
  // v8 profile snapshot sink (size-capped JSONL), written at drain.
  obs::JsonlSink profile_sink_;
  // Registry-owned latency histograms, observed on the completion path:
  // real wall-clock microseconds (submit decoded -> response built)
  // alongside the paper's work-unit latency, so the two views stay
  // side-by-side in one scrape.
  obs::Histogram* wall_latency_us_ = nullptr;
  obs::Histogram* latency_units_ = nullptr;
  ListenSocket listener_;
  // Declared after server_ so it stops (destructor) before the shards do:
  // graceful closes may be waiting on shard completions.
  EventLoop loop_;
  std::thread acceptor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  // serializes Stop()
  bool stopped_ = false;

  // Live conns indexed by session id, for the stats live-scan; closed
  // conns fold into the accumulators below under the same lock (exactly
  // once, see Session::retired).
  mutable std::mutex sessions_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<EventConn>> conns_;
  uint64_t next_session_id_ = 1;
  SessionOutbox::Stats closed_outbox_;
  int64_t closed_bytes_in_ = 0;

  std::mutex pending_mu_;
  std::unordered_map<uint64_t, Pending> pending_;
  std::atomic<uint64_t> next_ticket_{1};

  // Aggregate ingress counters (see runtime::IngressStats). Byte and
  // outbox counters are folded from the conns instead (ingress_stats()).
  std::atomic<int64_t> connections_opened_{0};
  std::atomic<int64_t> connections_closed_{0};
  std::atomic<int64_t> requests_accepted_{0};
  std::atomic<int64_t> requests_rejected_busy_{0};
  std::atomic<int64_t> requests_rejected_shutdown_{0};
  std::atomic<int64_t> decode_errors_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> info_requests_{0};
};

}  // namespace dflow::net

#endif  // DFLOW_NET_INGRESS_SERVER_H_
