#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <unordered_map>
#include <utility>

namespace dflow::net {

// Per-thread loop state. Cross-thread communication goes through the
// inbox (mu + eventfd doorbell); everything else is loop-thread only.
struct LoopThread {
  EventLoop* loop = nullptr;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;

  std::mutex mu;
  std::vector<std::shared_ptr<EventConn>> to_add;
  std::vector<std::weak_ptr<EventConn>> to_drain;
  bool close_all = false;
  bool force_close = false;
  bool stop = false;

  // Loop-thread only: live conns by fd, and the fds that need 1ms ticks
  // (deferred retries and graceful closes in progress).
  std::unordered_map<int, std::shared_ptr<EventConn>> conns;
  std::vector<int> attention;

  void Wake() {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd, &one, sizeof(one));
  }

  void UpdateEvents(EventConn* conn) {
    if (conn->hangup_) return;  // fd already left the interest set
    epoll_event ev{};
    ev.events = (conn->reading_ ? EPOLLIN : 0u) |
                (conn->want_write_ ? EPOLLOUT : 0u);
    ev.data.fd = conn->socket_.fd();
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->socket_.fd(), &ev);
  }

  void EnsureAttention(EventConn* conn) {
    if (conn->in_attention_) return;
    conn->in_attention_ = true;
    attention.push_back(conn->socket_.fd());
  }

  void LeaveAttention(EventConn* conn) {
    if (!conn->in_attention_) return;
    conn->in_attention_ = false;
    attention.erase(std::find(attention.begin(), attention.end(),
                              conn->socket_.fd()));
  }

  void Register(const std::shared_ptr<EventConn>& conn) {
    const int fd = conn->socket_.fd();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      conn->socket_.Close();
      if (conn->handlers_.on_close) conn->handlers_.on_close(conn.get());
      return;
    }
    conns.emplace(fd, conn);
    loop->OnConnRegistered();
    // An Add() that raced Stop() may land here after the close_all (or
    // even force_close) pass was already processed, so nothing would ever
    // close it again. It was never read and owes nothing — destroy it
    // outright so Stop()'s retirement wait converges.
    if (!loop->running()) Destroy(conn);
  }

  // Tears the conn down NOW: epoll deregistration, socket close, the
  // on_close hook, map removal. The graceful path only reaches this once
  // the outbox reports kComplete; force_close reaches it directly.
  void Destroy(const std::shared_ptr<EventConn>& conn) {
    const int fd = conn->socket_.fd();
    LeaveAttention(conn.get());
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    conn->socket_.Close();
    // Late answers from shard/backend threads (arriving through a
    // still-held shared_ptr) must drop, not accumulate.
    conn->outbox_.Close();
    if (conn->handlers_.on_close) conn->handlers_.on_close(conn.get());
    conns.erase(fd);
    loop->OnConnRetired();
  }

  // The conn for an fd, guarded against stale doorbells referencing a
  // conn already destroyed (its fd is -1 or recycled by a newer conn).
  std::shared_ptr<EventConn> Live(const std::shared_ptr<EventConn>& conn) {
    const auto it = conns.find(conn->socket_.fd());
    if (it == conns.end() || it->second != conn) return nullptr;
    return conn;
  }

  // Drains the outbox as far as the socket allows; arms/disarms EPOLLOUT
  // around the blocked edge. Returns false when the conn was destroyed
  // (outbox complete — closed and fully flushed or discarded).
  bool ServiceWrites(const std::shared_ptr<EventConn>& conn) {
    EventConn* c = conn.get();
    const SessionOutbox::DrainStatus status = c->outbox_.TryDrain(
        [c](const uint8_t* data, size_t size) {
          return c->socket_.SendSome(data, size);
        });
    switch (status) {
      case SessionOutbox::DrainStatus::kBlocked:
        if (!c->want_write_) {
          c->want_write_ = true;
          UpdateEvents(c);
        }
        return true;
      case SessionOutbox::DrainStatus::kDrained:
        if (c->want_write_) {
          c->want_write_ = false;
          UpdateEvents(c);
        }
        return true;
      case SessionOutbox::DrainStatus::kComplete:
        Destroy(conn);
        return false;
    }
    return true;
  }

  void DispatchFrames(EventConn* conn) {
    while (!conn->closing_ && !conn->retry_) {
      std::optional<Frame> frame = conn->assembler_.Next();
      if (frame.has_value()) {
        // Record what version the peer speaks before the handler runs, so
        // every response to this frame — synchronous or from a worker
        // thread later — can be stamped with a version the peer accepts.
        conn->peer_version_.store(conn->assembler_.last_frame_version(),
                                  std::memory_order_relaxed);
      }
      if (!frame.has_value()) {
        if (conn->assembler_.error() != WireError::kNone &&
            !conn->saw_protocol_error_) {
          conn->saw_protocol_error_ = true;
          if (conn->handlers_.on_protocol_error) {
            conn->handlers_.on_protocol_error(conn,
                                              conn->assembler_.error());
          }
          conn->BeginGracefulClose();
        }
        return;
      }
      const EventConn::FrameAction action =
          conn->handlers_.on_frame(conn, *frame);
      if (action == EventConn::FrameAction::kContinue) continue;
      // kStall: stop consuming bytes until the armed retry finishes (the
      // already-buffered frames keep their place in the assembler).
      if (action == EventConn::FrameAction::kStall) conn->PauseReads();
      return;
    }
  }

  void HandleReadable(const std::shared_ptr<EventConn>& conn) {
    if (!conn->reading_ || conn->closing_) return;  // stale LT event
    uint8_t chunk[64 * 1024];
    const IoResult result = conn->socket_.RecvSome(chunk, sizeof(chunk));
    switch (result.status) {
      case IoStatus::kOk:
        conn->bytes_in_.fetch_add(static_cast<int64_t>(result.bytes),
                                  std::memory_order_relaxed);
        conn->assembler_.Feed(chunk, result.bytes);
        DispatchFrames(conn.get());
        break;
      case IoStatus::kWouldBlock:
        break;
      case IoStatus::kEof:
      case IoStatus::kError:
        // Peer gone (or half-closed): stop reading, flush what it is
        // still owed, retire. A truly dead peer fails the first send,
        // which marks the outbox dead and turns the flush into a
        // discard — teardown never wedges either way.
        conn->BeginGracefulClose();
        break;
    }
  }

  // EPOLLHUP/EPOLLERR arrive even with an empty interest mask. While the
  // read path can still make progress it observes the EOF/error itself and
  // begins the close; but a conn whose reads are paused (stalled
  // admission) or that is already closing would leave the dead fd in the
  // interest set, and level-triggered epoll_wait would redeliver the event
  // every iteration — a busy spin pinning the loop thread at 100% CPU
  // until the close completes. Pull the fd out of epoll and let the 1ms
  // attention ticks finish whatever the conn still owes (sends to the dead
  // peer fail, which turns the flush into a discard and retires it).
  void HandleHangup(const std::shared_ptr<EventConn>& conn) {
    if (conn->reading_ && !conn->closing_) return;  // read path owns it
    conn->BeginGracefulClose();
    if (!conn->hangup_) {
      conn->hangup_ = true;
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->socket_.fd(), nullptr);
    }
  }

  // Graceful-close progress: once the armed retry (if any) finished and
  // every admitted request's answer landed in the outbox, push the final
  // frame, close the outbox, and flush until kComplete destroys the conn.
  void TickClose(const std::shared_ptr<EventConn>& conn) {
    if (!conn->finalized_) {
      if (conn->outbox_.Inflight() != 0) return;  // answers still landing
      if (!conn->final_frame_.empty()) {
        // The final frame (goodbye ack) is a response like any other: it
        // must carry a version the peer's assembler accepts.
        if (conn->final_frame_.size() >= kFrameHeaderBytes) {
          conn->final_frame_[2] =
              conn->peer_version_.load(std::memory_order_relaxed);
        }
        conn->outbox_.Push(std::move(conn->final_frame_));
        conn->final_frame_.clear();
      }
      conn->outbox_.Close();
      conn->finalized_ = true;
    }
    ServiceWrites(conn);
  }

  void TickAttention() {
    const std::vector<int> fds = attention;  // ticks mutate the list
    for (const int fd : fds) {
      const auto it = conns.find(fd);
      if (it == conns.end()) continue;
      const std::shared_ptr<EventConn> conn = it->second;
      if (conn->retry_) {
        if (!conn->retry_()) continue;  // not done; tick again in ~1ms
        conn->retry_ = nullptr;
        if (!conn->closing_) {
          // The stalled frame finished: dispatch what was already
          // buffered, then reopen the read side.
          DispatchFrames(conn.get());
          if (!conn->closing_ && !conn->retry_) conn->ResumeReads();
        }
      }
      if (conn->closing_) {
        TickClose(conn);
      } else if (!conn->retry_) {
        LeaveAttention(conn.get());
      }
    }
  }

  // Returns true once the thread should exit.
  bool ProcessInbox() {
    std::vector<std::shared_ptr<EventConn>> add;
    std::vector<std::weak_ptr<EventConn>> drain;
    bool do_close_all = false;
    bool do_force = false;
    bool do_stop = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      add.swap(to_add);
      drain.swap(to_drain);
      do_close_all = close_all;
      close_all = false;
      do_force = force_close;
      force_close = false;
      do_stop = stop;
    }
    for (const std::shared_ptr<EventConn>& conn : add) Register(conn);
    for (const std::weak_ptr<EventConn>& weak : drain) {
      const std::shared_ptr<EventConn> conn = weak.lock();
      if (conn == nullptr) continue;
      const std::shared_ptr<EventConn> live = Live(conn);
      if (live != nullptr) ServiceWrites(live);
    }
    if (do_close_all) {
      std::vector<std::shared_ptr<EventConn>> all;
      all.reserve(conns.size());
      for (const auto& [fd, conn] : conns) all.push_back(conn);
      for (const std::shared_ptr<EventConn>& conn : all) {
        conn->BeginGracefulClose();
        TickClose(conn);
      }
    }
    if (do_force) {
      std::vector<std::shared_ptr<EventConn>> all;
      all.reserve(conns.size());
      for (const auto& [fd, conn] : conns) all.push_back(conn);
      for (const std::shared_ptr<EventConn>& conn : all) Destroy(conn);
    }
    return do_stop;
  }
};

EventConn::EventConn(uint64_t id, Socket socket, Handlers handlers,
                     uint32_t max_payload_bytes)
    : id_(id),
      socket_(std::move(socket)),
      assembler_(max_payload_bytes),
      handlers_(std::move(handlers)) {}

void EventConn::PushResponse(std::vector<uint8_t> frame) {
  if (frame.size() >= kFrameHeaderBytes) {
    frame[2] = peer_version_.load(std::memory_order_relaxed);
  }
  outbox_.Push(std::move(frame));
}

void EventConn::PauseReads() {
  if (!reading_) return;
  reading_ = false;
  owner_->UpdateEvents(this);
}

void EventConn::ResumeReads() {
  if (reading_ || closing_) return;
  reading_ = true;
  owner_->UpdateEvents(this);
}

void EventConn::DeferRetry(std::function<bool()> retry) {
  retry_ = std::move(retry);
  owner_->EnsureAttention(this);
}

void EventConn::BeginGracefulClose(std::vector<uint8_t> final_frame) {
  if (closing_) return;
  closing_ = true;
  final_frame_ = std::move(final_frame);
  if (reading_) {
    reading_ = false;
    owner_->UpdateEvents(this);
  }
  owner_->EnsureAttention(this);
}

EventLoop::EventLoop() : EventLoop(Options{}) {}

EventLoop::EventLoop(Options options) : options_(options) {}

EventLoop::~EventLoop() { Stop(); }

bool EventLoop::Start(std::string* error) {
  int num_threads = options_.num_threads;
  if (num_threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = static_cast<int>(std::min(4u, hw > 0 ? hw : 1u));
  }
  for (int i = 0; i < num_threads; ++i) {
    auto lt = std::make_unique<LoopThread>();
    lt->loop = this;
    lt->epoll_fd = ::epoll_create1(0);
    lt->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (lt->epoll_fd < 0 || lt->wake_fd < 0) {
      if (error != nullptr) *error = "event loop: epoll/eventfd failed";
      if (lt->epoll_fd >= 0) ::close(lt->epoll_fd);
      if (lt->wake_fd >= 0) ::close(lt->wake_fd);
      threads_.clear();
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = lt->wake_fd;
    ::epoll_ctl(lt->epoll_fd, EPOLL_CTL_ADD, lt->wake_fd, &ev);
    threads_.push_back(std::move(lt));
  }
  running_.store(true, std::memory_order_release);
  for (auto& lt : threads_) {
    lt->thread = std::thread([this, raw = lt.get()] { Run(raw); });
  }
  return true;
}

void EventLoop::Stop() {
  if (threads_.empty()) return;
  running_.store(false, std::memory_order_release);
  for (auto& lt : threads_) {
    std::lock_guard<std::mutex> lock(lt->mu);
    lt->close_all = true;
  }
  for (auto& lt : threads_) lt->Wake();
  {
    std::unique_lock<std::mutex> lock(retire_mu_);
    retire_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_timeout_ms),
        [this] { return num_conns_.load(std::memory_order_acquire) == 0; });
  }
  // A peer that never drains its socket does not get to wedge shutdown.
  // The force pass is re-posted in a bounded wait loop rather than awaited
  // once: each pass destroys everything registered at that moment, and a
  // registration that slips in after a pass self-destroys (see Register),
  // so the count reaches zero in at most a few rounds.
  while (num_conns_.load(std::memory_order_acquire) != 0) {
    for (auto& lt : threads_) {
      std::lock_guard<std::mutex> lock(lt->mu);
      lt->force_close = true;
    }
    for (auto& lt : threads_) lt->Wake();
    std::unique_lock<std::mutex> lock(retire_mu_);
    retire_cv_.wait_for(lock, std::chrono::milliseconds(20), [this] {
      return num_conns_.load(std::memory_order_acquire) == 0;
    });
  }
  for (auto& lt : threads_) {
    std::lock_guard<std::mutex> lock(lt->mu);
    lt->stop = true;
  }
  for (auto& lt : threads_) lt->Wake();
  for (auto& lt : threads_) {
    if (lt->thread.joinable()) lt->thread.join();
    ::close(lt->epoll_fd);
    ::close(lt->wake_fd);
  }
  threads_.clear();
}

std::shared_ptr<EventConn> EventLoop::Add(Socket socket,
                                          EventConn::Handlers handlers,
                                          std::shared_ptr<void> user,
                                          uint32_t max_payload_bytes) {
  if (!running_.load(std::memory_order_acquire) || !socket.valid()) {
    return nullptr;
  }
  if (!socket.SetNonBlocking()) return nullptr;
  LoopThread* lt =
      threads_[next_thread_.fetch_add(1, std::memory_order_relaxed) %
               threads_.size()]
          .get();
  std::shared_ptr<EventConn> conn(
      new EventConn(next_conn_id_.fetch_add(1, std::memory_order_relaxed),
                    std::move(socket), std::move(handlers),
                    max_payload_bytes));
  conn->owner_ = lt;
  conn->user = std::move(user);
  // The outbox doorbell: any thread Pushing an answer posts the conn to
  // its owner's drain inbox. A weak_ptr, so late answers after the conn
  // retired degrade to a no-op wake.
  conn->outbox_.SetWakeCallback(
      [lt, weak = std::weak_ptr<EventConn>(conn)] {
        {
          std::lock_guard<std::mutex> lock(lt->mu);
          lt->to_drain.push_back(weak);
        }
        lt->Wake();
      });
  {
    std::lock_guard<std::mutex> lock(lt->mu);
    lt->to_add.push_back(conn);
  }
  lt->Wake();
  return conn;
}

size_t EventLoop::num_conns() const {
  return num_conns_.load(std::memory_order_acquire);
}

void EventLoop::OnConnRegistered() {
  num_conns_.fetch_add(1, std::memory_order_acq_rel);
}

void EventLoop::OnConnRetired() {
  if (num_conns_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(retire_mu_);
    retire_cv_.notify_all();
  }
}

void EventLoop::Run(LoopThread* lt) {
  std::vector<epoll_event> events(128);
  while (true) {
    const int timeout_ms = lt->attention.empty() ? -1 : 1;
    const int n = ::epoll_wait(lt->epoll_fd, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone: unrecoverable, retire the thread
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == lt->wake_fd) {
        uint64_t drained;
        while (::read(lt->wake_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      const auto it = lt->conns.find(fd);
      if (it == lt->conns.end()) continue;  // destroyed earlier this batch
      const std::shared_ptr<EventConn> conn = it->second;
      if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        lt->HandleReadable(conn);
      }
      if ((events[i].events & EPOLLOUT) != 0 &&
          lt->Live(conn) != nullptr) {
        lt->ServiceWrites(conn);
      }
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          lt->Live(conn) != nullptr) {
        lt->HandleHangup(conn);
      }
    }
    const bool should_stop = lt->ProcessInbox();
    lt->TickAttention();
    if (should_stop) return;
  }
}

}  // namespace dflow::net
