#ifndef DFLOW_NET_PROFILE_WIRE_H_
#define DFLOW_NET_PROFILE_WIRE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/wire_protocol.h"
#include "obs/flow_profiler.h"

namespace dflow::net {

// obs -> wire converters for the v8 profiling plane, shared by the ingress
// and the router. The class-rollup cap bounds a PROFILE frame against
// adversarial source diversity (class keys are hashes of the source
// binding, so their count is unbounded); the shipped subset is chosen
// deterministically — hottest by request count, ties by key — so repeated
// scrapes of an idle node are byte-identical.
inline constexpr size_t kProfileWireMaxClasses = 64;

// Flattens a merged ProfileSnapshot into one NodeProfile's tables.
// Identity fields (node_id, is_router) and plan_dot are the caller's
// business. Attr rows are shipped for every launched attribute, cond rows
// for every attribute with a real (non-literal-true) enabling condition
// that was observed at least once — silent zero rows carry no signal and
// would bloat fleet responses linearly in schema size.
inline void FillNodeProfile(const obs::ProfileSnapshot& profile,
                            NodeProfile* node) {
  node->sample_period = profile.sample_period;
  node->profiled_requests = profile.profiled_requests;
  node->total_requests = profile.total_requests;
  for (size_t i = 0; i < profile.attrs.size(); ++i) {
    const obs::AttrProfile& a = profile.attrs[i];
    if (a.launches == 0) continue;
    WireAttrProfile row;
    row.attr = static_cast<AttributeId>(i);
    row.name = i < profile.attr_names.size() ? profile.attr_names[i] : "";
    row.launches = a.launches;
    row.work_units = a.work_units;
    row.speculative_launches = a.speculative_launches;
    row.wasted_work = a.wasted_work;
    row.useful_completions = a.useful_completions;
    node->attrs.push_back(std::move(row));
  }
  for (size_t i = 0; i < profile.conds.size(); ++i) {
    const obs::CondProfile& c = profile.conds[i];
    const bool has_condition =
        i < profile.has_condition.size() && profile.has_condition[i] != 0;
    const bool observed = c.evals != 0 || c.true_outcomes != 0 ||
                          c.false_outcomes != 0 || c.unknown_outcomes != 0;
    if (!has_condition || !observed) continue;
    WireCondProfile row;
    row.attr = static_cast<AttributeId>(i);
    row.name = i < profile.attr_names.size() ? profile.attr_names[i] : "";
    row.evals = c.evals;
    row.true_outcomes = c.true_outcomes;
    row.false_outcomes = c.false_outcomes;
    row.unknown_outcomes = c.unknown_outcomes;
    row.eager_disables = c.eager_disables;
    node->conds.push_back(std::move(row));
  }
  for (const auto& [key, cls] : profile.classes) {
    WireClassProfile row;
    row.class_key = key;
    row.requests = cls.requests;
    row.work = cls.work;
    row.wasted_work = cls.wasted_work;
    row.cache_hits = cls.cache_hits;
    row.cache_misses = cls.cache_misses;
    node->classes.push_back(row);
  }
  if (node->classes.size() > kProfileWireMaxClasses) {
    std::sort(node->classes.begin(), node->classes.end(),
              [](const WireClassProfile& a, const WireClassProfile& b) {
                if (a.requests != b.requests) return a.requests > b.requests;
                return a.class_key < b.class_key;
              });
    node->classes.resize(kProfileWireMaxClasses);
    // Re-sort by key so the shipped subset is in the same order a smaller
    // rollup would travel in (map order), keeping decode-side consumers
    // order-agnostic but byte-stable.
    std::sort(node->classes.begin(), node->classes.end(),
              [](const WireClassProfile& a, const WireClassProfile& b) {
                return a.class_key < b.class_key;
              });
  }
}

// Sums a wire NodeProfile back into a merge accumulator — dflow_top's
// fleet rollup. Rows merge by attribute id, classes by key; names adopt
// the first non-empty spelling seen.
inline void MergeNodeProfile(const NodeProfile& node,
                             std::vector<WireAttrProfile>* attrs,
                             std::vector<WireCondProfile>* conds,
                             std::vector<WireClassProfile>* classes) {
  for (const WireAttrProfile& row : node.attrs) {
    auto it = std::find_if(
        attrs->begin(), attrs->end(),
        [&row](const WireAttrProfile& a) { return a.attr == row.attr; });
    if (it == attrs->end()) {
      attrs->push_back(row);
      continue;
    }
    if (it->name.empty()) it->name = row.name;
    it->launches += row.launches;
    it->work_units += row.work_units;
    it->speculative_launches += row.speculative_launches;
    it->wasted_work += row.wasted_work;
    it->useful_completions += row.useful_completions;
  }
  for (const WireCondProfile& row : node.conds) {
    auto it = std::find_if(
        conds->begin(), conds->end(),
        [&row](const WireCondProfile& c) { return c.attr == row.attr; });
    if (it == conds->end()) {
      conds->push_back(row);
      continue;
    }
    if (it->name.empty()) it->name = row.name;
    it->evals += row.evals;
    it->true_outcomes += row.true_outcomes;
    it->false_outcomes += row.false_outcomes;
    it->unknown_outcomes += row.unknown_outcomes;
    it->eager_disables += row.eager_disables;
  }
  for (const WireClassProfile& row : node.classes) {
    auto it = std::find_if(classes->begin(), classes->end(),
                           [&row](const WireClassProfile& c) {
                             return c.class_key == row.class_key;
                           });
    if (it == classes->end()) {
      classes->push_back(row);
      continue;
    }
    it->requests += row.requests;
    it->work += row.work;
    it->wasted_work += row.wasted_work;
    it->cache_hits += row.cache_hits;
    it->cache_misses += row.cache_misses;
  }
}

// Measured selectivity of one wire cond row; -1 when unresolved.
inline double WireSelectivity(const WireCondProfile& row) {
  const int64_t resolved = row.true_outcomes + row.false_outcomes;
  if (resolved == 0) return -1.0;
  return static_cast<double>(row.true_outcomes) /
         static_cast<double>(resolved);
}

}  // namespace dflow::net

#endif  // DFLOW_NET_PROFILE_WIRE_H_
