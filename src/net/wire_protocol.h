#ifndef DFLOW_NET_WIRE_PROTOCOL_H_
#define DFLOW_NET_WIRE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "core/attribute_state.h"
#include "core/engine.h"
#include "core/snapshot.h"
#include "runtime/server_stats.h"

namespace dflow::net {

// The dflow wire protocol, version 1: length-prefixed binary frames over a
// TCP byte stream. Every frame is
//
//   +------+------+---------+------+----------------+===============+
//   | 'D'  | 'F'  | version | type |  payload_len   |    payload    |
//   | u8   | u8   |   u8    |  u8  |    u32 LE      | payload_len B |
//   +------+------+---------+------+----------------+===============+
//    <------------- 8-byte header ------------------>
//
// All integers are little-endian; doubles travel as the bit pattern of
// their IEEE-754 representation in a u64. Strings and the variable-length
// sections are length-prefixed, never NUL-terminated. A receiver that sees
// a bad magic, an unsupported version, or a payload length above its limit
// cannot resynchronize the stream and must close the connection; a frame
// whose *payload* fails to decode is reported with a typed error and the
// connection stays usable (framing is still intact).
inline constexpr uint8_t kMagic0 = 'D';
inline constexpr uint8_t kMagic1 = 'F';
// Version history: v1 was the original ingress protocol; v2 extended the
// Info payload with the node identity and the routing-tier section
// (node_id, RouterStats); v3 added the executed strategy to SubmitResult
// and the strategy-advisor section (AUTO flag, calibration fingerprint,
// selection histogram) to Info. v4 added observability: an OPTIONAL
// trace-context extension on Submit (flag-gated trailing bytes — a client
// that never sets the flag produces payloads byte-identical to v3 apart
// from the version byte, so v3-era client code recompiled against v4 is
// unaffected), an always-present span timing trailer on SubmitResult, and
// the MetricsRequest/Metrics scrape pair. v5 added the replicated-fleet
// fields: a fleet-epoch stamp on ServerInfo (a router refuses a replica
// set whose members disagree on it), replica/failover counters on the
// routing-tier section, and per-backend slot/replica placement. v6 added
// the fleet health plane: the HealthRequest/Health scrape pair carrying a
// node's journal tail (structured events), its recent rate time series,
// and the ok/degraded/critical status verdict — a router answers with its
// own plane plus one entry per polled backend, so one request sees the
// whole fleet. v7 added pipelined batch submission: the BATCH_SUBMIT frame
// carries many requests under one header and one contiguous ticket range
// (request_id_base .. base+count-1), each answered by an ordinary
// SUBMIT_RESULT/ERROR frame byte-identical to what the same request
// submitted alone would have produced. v7 is purely additive — every v6
// payload is unchanged — so v7 receivers accept v6 frames
// (kMinSupportedWireVersion), and both front doors echo the version a
// peer spoke when stamping response headers (EventConn::PushResponse): a
// v6-era client sends v6 frames AND receives v6-stamped replies its own
// assembler accepts, so it keeps working against a v7 server as long as
// it never sends the new frame type. Earlier bumps make a mixed-version
// fleet fail with a detectable UNSUPPORTED_VERSION instead of a silent
// decode error. v8 added the plan-profiling plane: the
// PROFILE_REQUEST/PROFILE scrape pair carrying a node's merged
// obs::FlowProfiler snapshot — per-attribute launch/work/speculation
// outcomes, per-condition tribool tallies (measured selectivity), the
// per-request-class rollups, and an EXPLAIN-style annotated plan DOT — a
// router answers with its own (engine-less) entry plus one per polled
// backend, mirroring the v6 health fan-out. Like v7, v8 is purely
// additive: every v6/v7 payload is unchanged, so v6-era clients keep
// working as long as they never send the new frame types.
inline constexpr uint8_t kWireVersion = 8;
// Oldest version this build still accepts on ingest. Clients stamp
// kWireVersion on requests; the FrameAssembler accepts the closed range
// [kMinSupportedWireVersion, kWireVersion], and servers stamp each
// response with the version its connection's peer last spoke (see
// FrameAssembler::last_frame_version) so every reply is readable by a
// genuine build of that version.
inline constexpr uint8_t kMinSupportedWireVersion = 6;
inline constexpr size_t kFrameHeaderBytes = 8;
// Default ceiling on one frame's payload. Generous for request/response
// traffic (a submit is dominated by its source bindings) while bounding
// what one connection can make the peer buffer.
inline constexpr uint32_t kDefaultMaxPayloadBytes = 1u << 20;

// Frame types. Requests flow client -> server, responses server -> client.
enum class MsgType : uint8_t {
  kSubmit = 1,        // execute one decision-flow instance
  kSubmitResult = 2,  // result summary (+ optional full snapshot)
  kError = 3,         // typed failure, attributable via request_id
  kInfoRequest = 4,   // server info/stats query (empty payload)
  kInfo = 5,          // info response
  kGoodbye = 6,       // graceful close: server flushes, acks, disconnects
  kGoodbyeAck = 7,    // goodbye acknowledgment (empty payload)
  kMetricsRequest = 8,  // metrics scrape (empty payload)
  kMetrics = 9,         // text exposition response (one length-prefixed string)
  kHealthRequest = 10,  // fleet health scrape (empty payload)
  kHealth = 11,         // health response: status + journal tail + series
  kBatchSubmit = 12,    // v7: many submits, one frame, one ticket range
  kProfileRequest = 13,  // v8: plan-profile scrape (empty payload)
  kProfile = 14,         // v8: profile response (fleet-merged on routers)
};

// Typed error codes carried by kError frames.
enum class WireError : uint16_t {
  kNone = 0,
  kRejectedBusy = 1,     // non-blocking admission refused: shard queue full
  kMalformedFrame = 2,   // payload failed to decode
  kUnsupportedVersion = 3,
  kUnsupportedType = 4,  // unknown MsgType
  kFrameTooLarge = 5,    // payload_len above the receiver's limit
  kBadStrategy = 6,      // strategy override unparsable or not served here
  kShuttingDown = 7,     // server draining; no further admissions
  kInternal = 8,
  // Routing tier only: the backend this request hashes to is disconnected
  // and the router fails fast instead of queueing into the void. Transient
  // (the router reconnects with backoff); a client may retry.
  kBackendUnavailable = 9,
};

const char* ToString(WireError error);

// --- Typed messages. Field-for-field equality (used by the round-trip
// property tests) is the defaulted operator== on each struct.

// Client -> server: execute one instance.
struct SubmitRequest {
  // Client-chosen correlation id echoed in the response; responses may
  // arrive out of submission order when requests land on different shards.
  uint64_t request_id = 0;
  uint64_t seed = 0;
  // Admission mode: blocking Submit (backpressure stalls this connection's
  // reader — TCP flow control propagates it to the client) or non-blocking
  // TrySubmit (queue-full surfaces as a kRejectedBusy error frame).
  bool blocking = true;
  // When set, the response carries the full terminal snapshot (every
  // attribute's state and value), not just the summary + fingerprint.
  bool want_snapshot = false;
  // Optional strategy override in the paper's notation ("PSE100"). Empty
  // means "whatever the server runs". A server shard's engine is bound to
  // one strategy, so an override naming any *other* strategy is refused
  // with kBadStrategy rather than silently executed differently.
  std::string strategy;
  core::SourceBinding sources;
  // Optional trace context (the v4 extension). When has_trace is set the
  // payload carries trailing trace bytes after the sources and the server
  // traces this request regardless of its own sampling. trace_id == 0
  // means "assign one at this entry point" (what a client forcing a trace
  // sends); a nonzero id is adopted verbatim (what a router propagates, so
  // one request keeps one identity across nodes). Clients that leave
  // has_trace unset produce payloads identical to v3 — old client code is
  // unaffected by the extension.
  bool has_trace = false;
  uint64_t trace_id = 0;

  friend bool operator==(const SubmitRequest&, const SubmitRequest&) = default;
};

// One instance inside a BATCH_SUBMIT frame: just the per-request
// variation (seed + sources). Everything shared — admission mode,
// snapshot wish, strategy override — travels once per batch.
struct BatchItem {
  uint64_t seed = 0;
  core::SourceBinding sources;

  friend bool operator==(const BatchItem&, const BatchItem&) = default;
};

// Client -> server (v7): many instances under one header, one length
// prefix, and one contiguous ticket range. Item i is answered with an
// ordinary kSubmitResult (or kError) frame whose request_id is
// request_id_base + i — byte-identical to submitting it alone, so the
// batched and singleton paths share every response invariant. Responses
// may arrive out of order across shards, exactly like singleton submits.
// Batches carry no trace-context extension (per-item tracing still
// happens under the server's own sampling); a batch is the throughput
// path, traces ride the singleton path.
struct BatchSubmitRequest {
  uint64_t request_id_base = 0;  // tickets base .. base + items.size() - 1
  bool blocking = true;          // admission mode, shared by every item
  bool want_snapshot = false;    // snapshot wish, shared by every item
  std::string strategy;          // optional override, shared by every item
  std::vector<BatchItem> items;

  friend bool operator==(const BatchSubmitRequest&,
                         const BatchSubmitRequest&) = default;
};

// One attribute of a terminal snapshot on the wire.
struct SnapshotEntry {
  AttributeId attr = 0;
  core::AttrState state = core::AttrState::kUninitialized;
  Value value;

  friend bool operator==(const SnapshotEntry&, const SnapshotEntry&) = default;
};

// One span of the SubmitResult timing trailer: a per-stage timing the
// serving node (or a router on the way back) measured for this request.
// kind is an obs::SpanKind value; start_ns is relative to the recording
// node's trace begin (0 for router spans — cross-node monotonic clocks are
// not comparable, so only durations travel meaningfully across nodes).
struct WireSpan {
  uint8_t kind = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;

  friend bool operator==(const WireSpan&, const WireSpan&) = default;
};

// Server -> client: the outcome of one submitted instance.
struct SubmitResult {
  uint64_t request_id = 0;
  int32_t shard = 0;  // which shard executed it (diagnostic, deterministic)
  int64_t work = 0;
  int64_t wasted_work = 0;
  double response_time = 0;  // TimeInUnits (infinite) / sim ms (bounded)
  int32_t queries_launched = 0;
  int32_t speculative_launches = 0;
  // FingerprintResult() over the full result (every snapshot state/value
  // pair and every metrics field), so a client can verify byte-identical
  // execution without shipping the snapshot.
  uint64_t fingerprint = 0;
  // The concrete strategy that executed this instance, in paper notation:
  // the server's fixed strategy, or — on AUTO servers — the advisor's
  // per-request choice. Lets clients build per-strategy histograms and
  // audit AUTO decisions.
  std::string strategy;
  // Full terminal snapshot; present iff the request set want_snapshot.
  bool has_snapshot = false;
  std::vector<SnapshotEntry> snapshot;
  // Server timing block (the v4 trailer, ALWAYS present on the wire).
  // trace_id == 0 means "this request was not traced" and spans is empty;
  // otherwise each stage the serving node timed contributes one span, and
  // a router relaying the result appends its own router.forward span
  // without decoding the payload (the trailer is count-terminated for
  // exactly that O(1) append). At most 255 spans travel.
  uint64_t trace_id = 0;
  std::vector<WireSpan> spans;

  friend bool operator==(const SubmitResult&, const SubmitResult&) = default;
};

// Server -> client: typed failure.
struct ErrorReply {
  // The request this error answers, or 0 when the failure is not
  // attributable to one request (e.g. a framing-level decode error).
  uint64_t request_id = 0;
  WireError code = WireError::kInternal;
  std::string message;

  friend bool operator==(const ErrorReply&, const ErrorReply&) = default;
};

// One downstream server as seen by a routing tier: its address, the
// identity it reported in the connect-time Info handshake, and the
// router's per-backend counters. Surfaced inside the router's own Info
// response so a client (or operator probe) can see the whole fleet.
struct RouterBackendStats {
  std::string address;  // "host:port" as configured on the router
  std::string node_id;  // backend's self-reported identity (handshake)
  uint8_t connected = 0;  // >=1 pool connection is live right now
  int32_t shards = 0;     // backend's num_shards (handshake)
  // v5 replica placement: which hash slot this backend belongs to and its
  // position inside that slot's replica group (0 = preferred primary).
  int32_t slot = 0;
  int32_t replica = 0;
  int64_t forwarded = 0;  // submits sent to this backend
  int64_t answered = 0;   // results/typed errors relayed back from it
  int64_t unavailable = 0;  // submits refused: backend was disconnected
  int64_t reconnects = 0;   // successful re-handshakes after a drop
  // In-flight tickets transparently re-issued to a sibling replica after
  // this backend's connection dropped (the client never saw the failure).
  int64_t failovers = 0;

  friend bool operator==(const RouterBackendStats&,
                         const RouterBackendStats&) = default;
};

// The routing-tier section of ServerInfo. is_router discriminates a
// net::Router's Info from a plain dflow_serve's (whose section is empty).
struct RouterStats {
  uint8_t is_router = 0;
  // v5 fleet shape/health: replica group width (1 = unreplicated), total
  // transparent failovers, and the replica-divergence cross-check
  // counters (checks started, fingerprint mismatches — any nonzero
  // mismatch count means the determinism contract is broken somewhere —
  // and checks abandoned because a replica died mid-check).
  int32_t replicas = 1;
  int64_t failovers = 0;
  int64_t divergence_checks = 0;
  int64_t divergence_mismatches = 0;
  int64_t divergence_incomplete = 0;
  std::vector<RouterBackendStats> backends;

  friend bool operator==(const RouterStats&, const RouterStats&) = default;
};

// One row of the advisor's per-strategy selection histogram.
struct AdvisorStrategyCount {
  std::string strategy;
  int64_t count = 0;

  friend bool operator==(const AdvisorStrategyCount&,
                         const AdvisorStrategyCount&) = default;
};

// The strategy-advisor section of ServerInfo; all zero/empty unless the
// answering server runs AUTO. `fingerprint` digests everything that
// determines AUTO choices (calibration model, candidates, objective,
// explore schedule, schema salt) — a router refuses a fleet whose AUTO
// backends disagree on it, since they would serve different bytes for the
// same seed.
struct AdvisorInfo {
  uint8_t enabled = 0;
  uint64_t fingerprint = 0;
  int64_t selections = 0;
  int64_t explores = 0;
  std::vector<AdvisorStrategyCount> by_strategy;

  friend bool operator==(const AdvisorInfo&, const AdvisorInfo&) = default;
};

// Server -> client: configuration + live counters, answering kInfoRequest.
struct ServerInfo {
  int32_t num_shards = 0;
  std::string strategy;   // paper notation
  uint8_t backend = 0;    // core::BackendKind as its underlying value
  uint64_t queue_capacity_per_shard = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  // Self-reported identity of the answering process ("serve:<port>" /
  // "router:<port>" by default). The router's connect-time handshake
  // records it per backend, so misrouted fleet configs are visible.
  std::string node_id;
  // v5 fleet-epoch stamp: an operator-chosen deployment generation
  // (--fleet-epoch). A router refuses to start — and refuses to re-attach
  // a restarted backend — when replica-set members disagree on it, so a
  // half-upgraded or mixed-calibration fleet fails loudly at handshake
  // time instead of serving divergent bytes. 0 is a valid epoch (the
  // default); homogeneity is what is enforced, not a particular value.
  uint64_t fleet_epoch = 0;
  runtime::IngressStats ingress;
  // Filled in (is_router = 1) only when a net::Router answers.
  RouterStats router;
  // Filled in (enabled = 1) only when the answering server runs AUTO.
  AdvisorInfo advisor;

  friend bool operator==(const ServerInfo&, const ServerInfo&) = default;
};

// One structured journal entry on the wire (the v6 health plane). kind is
// an obs::EventKind value and severity an obs::Severity value; both travel
// as raw bytes and are range-checked on decode.
struct WireEvent {
  uint8_t kind = 1;
  uint8_t severity = 0;
  int64_t wall_ms = 0;
  std::string node;
  std::string detail;

  friend bool operator==(const WireEvent&, const WireEvent&) = default;
};

// One interval snapshot of a node's rate ring (obs::HealthSample on the
// wire). status is an obs::HealthStatus value (0 ok / 1 degraded /
// 2 critical), range-checked on decode.
struct WireHealthSample {
  int64_t wall_ms = 0;
  double interval_s = 0;
  double requests_per_s = 0;
  double failovers_per_s = 0;
  double cache_hit_rate = 0;
  double p95_wall_ms = 0;
  uint64_t queue_depth_max = 0;
  double queue_utilization = 0;
  uint8_t status = 0;

  friend bool operator==(const WireHealthSample&,
                         const WireHealthSample&) = default;
};

// One node's health plane: identity, verdict, the counters dflow_top
// cross-checks against the Prometheus exposition, the recent rate series
// (oldest first), and the journal tail (oldest first).
struct NodeHealth {
  std::string node_id;
  uint8_t status = 0;     // obs::HealthStatus
  uint8_t is_router = 0;  // discriminates a router's own plane
  int64_t completed = 0;  // requests completed (router: results relayed)
  int64_t failovers = 0;
  int64_t divergence_checks = 0;
  int64_t divergence_mismatches = 0;
  int64_t events_total = 0;  // journal lifetime count (tail may be shorter)
  std::vector<WireHealthSample> series;
  std::vector<WireEvent> events;

  friend bool operator==(const NodeHealth&, const NodeHealth&) = default;
};

// Answers kHealthRequest. A plain server sends only `self`; a router sends
// its own plane as `self` plus one entry per backend it could poll (a
// backend that is down or timed out contributes a synthesized critical
// entry, so the fleet view never silently omits a member).
struct HealthInfo {
  NodeHealth self;
  std::vector<NodeHealth> backends;

  friend bool operator==(const HealthInfo&, const HealthInfo&) = default;
};

// One attribute's execution profile on the wire (the v8 profiling plane):
// obs::AttrProfile plus the identity that makes rows self-describing, so
// dflow_top needs no schema to render the hot-attribute table.
struct WireAttrProfile {
  AttributeId attr = 0;
  std::string name;
  int64_t launches = 0;
  int64_t work_units = 0;
  int64_t speculative_launches = 0;
  int64_t wasted_work = 0;
  int64_t useful_completions = 0;

  friend bool operator==(const WireAttrProfile&,
                         const WireAttrProfile&) = default;
};

// One enabling condition's profile on the wire (obs::CondProfile + the
// guarded attribute's identity). Selectivity is derived client-side as
// true / (true + false); raw tallies travel so fleet merges stay exact.
struct WireCondProfile {
  AttributeId attr = 0;
  std::string name;
  int64_t evals = 0;
  int64_t true_outcomes = 0;
  int64_t false_outcomes = 0;
  int64_t unknown_outcomes = 0;
  int64_t eager_disables = 0;

  friend bool operator==(const WireCondProfile&,
                         const WireCondProfile&) = default;
};

// One request-class rollup row (obs::ClassProfile keyed by the CostModel
// class key).
struct WireClassProfile {
  uint64_t class_key = 0;
  int64_t requests = 0;
  int64_t work = 0;
  int64_t wasted_work = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  friend bool operator==(const WireClassProfile&,
                         const WireClassProfile&) = default;
};

// One node's plan profile: identity, sampling shape, the three profile
// tables, and the EXPLAIN-style plan view (the schema DAG in DOT notation
// annotated with measured stats — rendered server-side because only the
// serving node holds the schema). A router's own entry is engine-less
// (is_router = 1, empty tables); the fleet data lives in `backends`.
struct NodeProfile {
  std::string node_id;
  uint8_t is_router = 0;
  uint64_t sample_period = 0;
  int64_t profiled_requests = 0;
  int64_t total_requests = 0;
  std::vector<WireAttrProfile> attrs;
  std::vector<WireCondProfile> conds;
  std::vector<WireClassProfile> classes;
  std::string plan_dot;

  friend bool operator==(const NodeProfile&, const NodeProfile&) = default;
};

// Answers kProfileRequest, mirroring the HealthInfo fan-out: a plain
// server sends only `self`; a router sends its own entry plus one per
// polled backend (a down backend contributes a synthesized empty entry so
// the fleet view never silently omits a member).
struct ProfileInfo {
  NodeProfile self;
  std::vector<NodeProfile> backends;

  friend bool operator==(const ProfileInfo&, const ProfileInfo&) = default;
};

// --- Encoders. Each appends one complete frame (header + payload) to
// `out`, so consecutive encodes into the same buffer form a valid stream.
void EncodeSubmit(const SubmitRequest& msg, std::vector<uint8_t>* out);
void EncodeBatchSubmit(const BatchSubmitRequest& msg,
                       std::vector<uint8_t>* out);
void EncodeSubmitResult(const SubmitResult& msg, std::vector<uint8_t>* out);
void EncodeError(const ErrorReply& msg, std::vector<uint8_t>* out);
void EncodeInfoRequest(std::vector<uint8_t>* out);
void EncodeInfo(const ServerInfo& msg, std::vector<uint8_t>* out);
void EncodeGoodbye(std::vector<uint8_t>* out);
void EncodeGoodbyeAck(std::vector<uint8_t>* out);
void EncodeMetricsRequest(std::vector<uint8_t>* out);
void EncodeMetrics(const std::string& text, std::vector<uint8_t>* out);
void EncodeHealthRequest(std::vector<uint8_t>* out);
void EncodeHealth(const HealthInfo& msg, std::vector<uint8_t>* out);
void EncodeProfileRequest(std::vector<uint8_t>* out);
void EncodeProfile(const ProfileInfo& msg, std::vector<uint8_t>* out);

// --- Decoders. Each parses the *payload* of a frame whose header named the
// matching type. Returns false (leaving *out unspecified) when the payload
// is truncated, has trailing garbage, or contains an out-of-range tag —
// the receiver should answer kMalformedFrame.
bool DecodeSubmit(const std::vector<uint8_t>& payload, SubmitRequest* out);
bool DecodeBatchSubmit(const std::vector<uint8_t>& payload,
                       BatchSubmitRequest* out);
bool DecodeSubmitResult(const std::vector<uint8_t>& payload,
                        SubmitResult* out);
bool DecodeError(const std::vector<uint8_t>& payload, ErrorReply* out);
bool DecodeInfo(const std::vector<uint8_t>& payload, ServerInfo* out);
bool DecodeMetrics(const std::vector<uint8_t>& payload, std::string* out);
bool DecodeHealth(const std::vector<uint8_t>& payload, HealthInfo* out);
bool DecodeProfile(const std::vector<uint8_t>& payload, ProfileInfo* out);

// One complete frame as split off the stream by the FrameAssembler. `type`
// is the raw on-wire byte: values outside MsgType are surfaced to the
// caller (who answers kUnsupportedType) rather than swallowed here.
struct Frame {
  uint8_t type = 0;
  std::vector<uint8_t> payload;
};

// Appends one complete frame carrying an already-built payload under a raw
// type byte. The router's fast path: it forwards frames after patching the
// correlation id in the payload, never re-encoding the message body.
void EncodeRawFrame(uint8_t type, const std::vector<uint8_t>& payload,
                    std::vector<uint8_t>* out);

// Appends one span to a raw kSubmitResult *payload* in place — the router's
// O(1) relay-path hook, no body decode. The v4 trailer is count-terminated
// (the last payload byte is the span count) precisely so this can patch it:
// insert 17 span bytes before the count, bump the count. When the trailer's
// trace_id is 0 (backend did not trace) it is patched to `trace_id` so the
// appended span still belongs to an identified trace. Returns false (payload
// untouched) when the payload is too short to carry a trailer or the span
// count is saturated at 255.
bool AppendResultSpan(std::vector<uint8_t>* payload, uint64_t trace_id,
                      uint8_t kind, uint64_t start_ns, uint64_t duration_ns);

// Little-endian peek/poke over raw payload bytes — the single home of the
// fixed-offset contract that submit/result/error payloads lead with the
// u64 correlation id (and a submit's seed follows at offset 8). The
// ingress uses ReadLe64 to answer undecodable submits attributably; the
// routing tier uses all three to route and translate tickets without
// decoding message bodies. Callers must bounds-check first.
uint64_t ReadLe64(const uint8_t* p);
void WriteLe64(uint64_t v, uint8_t* p);
uint16_t ReadLe16(const uint8_t* p);

// The correlation id led by every submit/result/error payload, or 0 when
// the payload is too short to carry one. Both front doors use it to keep
// even undecodable submits attributable (an unattributable error cannot
// be matched to a router ticket).
uint64_t PeekRequestId(const std::vector<uint8_t>& payload);

// Incremental stream decoder: feed it the bytes recv() produced, in
// whatever chunking the transport chose, and pop complete frames. After
// any error() != kNone the stream is unrecoverable (resynchronization is
// impossible once framing is lost) and Next() returns nullopt forever.
class FrameAssembler {
 public:
  explicit FrameAssembler(uint32_t max_payload_bytes = kDefaultMaxPayloadBytes);

  void Feed(const uint8_t* data, size_t size);
  // The next complete frame, or nullopt when more bytes are needed or the
  // stream is broken (check error()).
  std::optional<Frame> Next();

  WireError error() const { return error_; }
  // Bytes buffered but not yet consumed as frames (diagnostics).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }
  // Header version of the most recent frame Next() yielded (kWireVersion
  // until the first one) — the version this peer speaks, within the
  // accepted range. Servers echo it when stamping responses so an
  // older-version peer receives frames its own assembler accepts.
  uint8_t last_frame_version() const { return last_version_; }

 private:
  const uint32_t max_payload_bytes_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out as frames
  WireError error_ = WireError::kNone;
  uint8_t last_version_ = kWireVersion;
};

// A 64-bit digest of everything the determinism contract promises about an
// InstanceResult: every terminal-snapshot (state, value) pair and every
// InstanceMetrics field except instance_id (which numbers arrivals per
// engine and is excluded from the contract). Two results with equal
// fingerprints are byte-identical for the contract's purposes; the ingress
// stamps it into every SubmitResult so clients can verify remote execution
// against a local reference without shipping snapshots.
uint64_t FingerprintResult(const core::InstanceResult& result);

}  // namespace dflow::net

#endif  // DFLOW_NET_WIRE_PROTOCOL_H_
