#ifndef DFLOW_NET_WIRE_PROTOCOL_H_
#define DFLOW_NET_WIRE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "core/attribute_state.h"
#include "core/engine.h"
#include "core/snapshot.h"
#include "runtime/server_stats.h"

namespace dflow::net {

// The dflow wire protocol, version 1: length-prefixed binary frames over a
// TCP byte stream. Every frame is
//
//   +------+------+---------+------+----------------+===============+
//   | 'D'  | 'F'  | version | type |  payload_len   |    payload    |
//   | u8   | u8   |   u8    |  u8  |    u32 LE      | payload_len B |
//   +------+------+---------+------+----------------+===============+
//    <------------- 8-byte header ------------------>
//
// All integers are little-endian; doubles travel as the bit pattern of
// their IEEE-754 representation in a u64. Strings and the variable-length
// sections are length-prefixed, never NUL-terminated. A receiver that sees
// a bad magic, an unsupported version, or a payload length above its limit
// cannot resynchronize the stream and must close the connection; a frame
// whose *payload* fails to decode is reported with a typed error and the
// connection stays usable (framing is still intact).
inline constexpr uint8_t kMagic0 = 'D';
inline constexpr uint8_t kMagic1 = 'F';
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 8;
// Default ceiling on one frame's payload. Generous for request/response
// traffic (a submit is dominated by its source bindings) while bounding
// what one connection can make the peer buffer.
inline constexpr uint32_t kDefaultMaxPayloadBytes = 1u << 20;

// Frame types. Requests flow client -> server, responses server -> client.
enum class MsgType : uint8_t {
  kSubmit = 1,        // execute one decision-flow instance
  kSubmitResult = 2,  // result summary (+ optional full snapshot)
  kError = 3,         // typed failure, attributable via request_id
  kInfoRequest = 4,   // server info/stats query (empty payload)
  kInfo = 5,          // info response
  kGoodbye = 6,       // graceful close: server flushes, acks, disconnects
  kGoodbyeAck = 7,    // goodbye acknowledgment (empty payload)
};

// Typed error codes carried by kError frames.
enum class WireError : uint16_t {
  kNone = 0,
  kRejectedBusy = 1,     // non-blocking admission refused: shard queue full
  kMalformedFrame = 2,   // payload failed to decode
  kUnsupportedVersion = 3,
  kUnsupportedType = 4,  // unknown MsgType
  kFrameTooLarge = 5,    // payload_len above the receiver's limit
  kBadStrategy = 6,      // strategy override unparsable or not served here
  kShuttingDown = 7,     // server draining; no further admissions
  kInternal = 8,
};

const char* ToString(WireError error);

// --- Typed messages. Field-for-field equality (used by the round-trip
// property tests) is the defaulted operator== on each struct.

// Client -> server: execute one instance.
struct SubmitRequest {
  // Client-chosen correlation id echoed in the response; responses may
  // arrive out of submission order when requests land on different shards.
  uint64_t request_id = 0;
  uint64_t seed = 0;
  // Admission mode: blocking Submit (backpressure stalls this connection's
  // reader — TCP flow control propagates it to the client) or non-blocking
  // TrySubmit (queue-full surfaces as a kRejectedBusy error frame).
  bool blocking = true;
  // When set, the response carries the full terminal snapshot (every
  // attribute's state and value), not just the summary + fingerprint.
  bool want_snapshot = false;
  // Optional strategy override in the paper's notation ("PSE100"). Empty
  // means "whatever the server runs". A server shard's engine is bound to
  // one strategy, so an override naming any *other* strategy is refused
  // with kBadStrategy rather than silently executed differently.
  std::string strategy;
  core::SourceBinding sources;

  friend bool operator==(const SubmitRequest&, const SubmitRequest&) = default;
};

// One attribute of a terminal snapshot on the wire.
struct SnapshotEntry {
  AttributeId attr = 0;
  core::AttrState state = core::AttrState::kUninitialized;
  Value value;

  friend bool operator==(const SnapshotEntry&, const SnapshotEntry&) = default;
};

// Server -> client: the outcome of one submitted instance.
struct SubmitResult {
  uint64_t request_id = 0;
  int32_t shard = 0;  // which shard executed it (diagnostic, deterministic)
  int64_t work = 0;
  int64_t wasted_work = 0;
  double response_time = 0;  // TimeInUnits (infinite) / sim ms (bounded)
  int32_t queries_launched = 0;
  int32_t speculative_launches = 0;
  // FingerprintResult() over the full result (every snapshot state/value
  // pair and every metrics field), so a client can verify byte-identical
  // execution without shipping the snapshot.
  uint64_t fingerprint = 0;
  // Full terminal snapshot; present iff the request set want_snapshot.
  bool has_snapshot = false;
  std::vector<SnapshotEntry> snapshot;

  friend bool operator==(const SubmitResult&, const SubmitResult&) = default;
};

// Server -> client: typed failure.
struct ErrorReply {
  // The request this error answers, or 0 when the failure is not
  // attributable to one request (e.g. a framing-level decode error).
  uint64_t request_id = 0;
  WireError code = WireError::kInternal;
  std::string message;

  friend bool operator==(const ErrorReply&, const ErrorReply&) = default;
};

// Server -> client: configuration + live counters, answering kInfoRequest.
struct ServerInfo {
  int32_t num_shards = 0;
  std::string strategy;   // paper notation
  uint8_t backend = 0;    // core::BackendKind as its underlying value
  uint64_t queue_capacity_per_shard = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  runtime::IngressStats ingress;

  friend bool operator==(const ServerInfo&, const ServerInfo&) = default;
};

// --- Encoders. Each appends one complete frame (header + payload) to
// `out`, so consecutive encodes into the same buffer form a valid stream.
void EncodeSubmit(const SubmitRequest& msg, std::vector<uint8_t>* out);
void EncodeSubmitResult(const SubmitResult& msg, std::vector<uint8_t>* out);
void EncodeError(const ErrorReply& msg, std::vector<uint8_t>* out);
void EncodeInfoRequest(std::vector<uint8_t>* out);
void EncodeInfo(const ServerInfo& msg, std::vector<uint8_t>* out);
void EncodeGoodbye(std::vector<uint8_t>* out);
void EncodeGoodbyeAck(std::vector<uint8_t>* out);

// --- Decoders. Each parses the *payload* of a frame whose header named the
// matching type. Returns false (leaving *out unspecified) when the payload
// is truncated, has trailing garbage, or contains an out-of-range tag —
// the receiver should answer kMalformedFrame.
bool DecodeSubmit(const std::vector<uint8_t>& payload, SubmitRequest* out);
bool DecodeSubmitResult(const std::vector<uint8_t>& payload,
                        SubmitResult* out);
bool DecodeError(const std::vector<uint8_t>& payload, ErrorReply* out);
bool DecodeInfo(const std::vector<uint8_t>& payload, ServerInfo* out);

// One complete frame as split off the stream by the FrameAssembler. `type`
// is the raw on-wire byte: values outside MsgType are surfaced to the
// caller (who answers kUnsupportedType) rather than swallowed here.
struct Frame {
  uint8_t type = 0;
  std::vector<uint8_t> payload;
};

// Incremental stream decoder: feed it the bytes recv() produced, in
// whatever chunking the transport chose, and pop complete frames. After
// any error() != kNone the stream is unrecoverable (resynchronization is
// impossible once framing is lost) and Next() returns nullopt forever.
class FrameAssembler {
 public:
  explicit FrameAssembler(uint32_t max_payload_bytes = kDefaultMaxPayloadBytes);

  void Feed(const uint8_t* data, size_t size);
  // The next complete frame, or nullopt when more bytes are needed or the
  // stream is broken (check error()).
  std::optional<Frame> Next();

  WireError error() const { return error_; }
  // Bytes buffered but not yet consumed as frames (diagnostics).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const uint32_t max_payload_bytes_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out as frames
  WireError error_ = WireError::kNone;
};

// A 64-bit digest of everything the determinism contract promises about an
// InstanceResult: every terminal-snapshot (state, value) pair and every
// InstanceMetrics field except instance_id (which numbers arrivals per
// engine and is excluded from the contract). Two results with equal
// fingerprints are byte-identical for the contract's purposes; the ingress
// stamps it into every SubmitResult so clients can verify remote execution
// against a local reference without shipping snapshots.
uint64_t FingerprintResult(const core::InstanceResult& result);

}  // namespace dflow::net

#endif  // DFLOW_NET_WIRE_PROTOCOL_H_
