#include "net/router.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/rng.h"
#include "net/health_wire.h"
#include "runtime/flow_server.h"

namespace dflow::net {

namespace {

// Recv ceiling during the connect-time Info handshake only; steady-state
// backend reads block forever (responses can legitimately be minutes away
// behind a deep queue).
constexpr int kHandshakeRecvTimeoutMs = 5000;

// Fixed payload offsets the router peeks/patches without decoding:
//   Submit:        request_id u64 | seed u64 | flags u32 | ...
//   SubmitResult:  request_id u64 | shard u32 | work i64 | wasted i64 |
//                  response_time f64 | queries u32 | speculative u32 |
//                  fingerprint u64 | ...
//   Error:         request_id u64 | code u16 | ...
constexpr size_t kSubmitPeekBytes = 20;
// The divergence check compares replica answers by the fingerprint field,
// peeked at its fixed offset — still no body decode on the relay path.
constexpr size_t kResultFingerprintOffset = 44;
constexpr size_t kResultPeekBytes = kResultFingerprintOffset + 8;

// Salt for the deterministic 1-in-N divergence sampling hash (the same
// Mix(seed, salt) % N idiom trace sampling uses, with a different salt so
// the two samples are uncorrelated).
constexpr uint64_t kDivergenceSalt = 0xd1fe6e9ceull;

// A ticket is re-issued at most this many times across backend deaths — a
// flapping fleet degrades to BACKEND_UNAVAILABLE instead of bouncing one
// request forever.
constexpr int kMaxFailoverAttempts = 8;

// A connection must survive this long past its handshake before a later
// drop resets the reconnect backoff: a backend that handshakes and then
// dies immediately keeps doubling instead of hot-looping at the initial
// delay.
constexpr auto kHealthyConnectionUptime = std::chrono::seconds(1);

// Upper bound on one backend health poll. The request shares the pooled
// stream with forwarded submits, so a backend parked on a full shard
// queue delays the answer — after this long the poll gives up and
// BuildHealth synthesizes a critical entry instead of blocking forever.
constexpr int kHealthProbeTimeoutMs = 1000;

std::string AddressText(const BackendAddress& address) {
  return address.host + ":" + std::to_string(address.port);
}

}  // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      recorder_(options_.trace, options_.node_id.empty() ? "router"
                                                         : options_.node_id),
      journal_(options_.events,
               options_.node_id.empty() ? "router" : options_.node_id),
      health_(options_.health, MakeHealthSources(), &journal_),
      loop_(EventLoop::Options{options_.event_threads,
                               options_.send_timeout_ms}) {
  // Counters and gauges are callbacks over counters the router maintains
  // anyway, so registering them costs the relay path nothing. Per-backend
  // families are registered in Start(), once the fleet is known.
  const auto counter = [this](const char* name, std::atomic<int64_t>* src) {
    metrics_.AddCounter(name, {}, [src] { return src->load(); });
  };
  counter("dflow_connections_opened_total", &connections_opened_);
  counter("dflow_connections_closed_total", &connections_closed_);
  counter("dflow_requests_routed_total", &requests_routed_);
  counter("dflow_relayed_results_total", &relayed_results_);
  counter("dflow_relayed_busy_total", &relayed_busy_);
  counter("dflow_relayed_shutdown_total", &relayed_shutdown_);
  counter("dflow_unavailable_total", &unavailable_total_);
  counter("dflow_decode_errors_total", &decode_errors_);
  counter("dflow_protocol_errors_total", &protocol_errors_);
  // Byte counters fold across live conns + the closed-session accumulator
  // (scrape-time work, so the per-read hot path stays a single atomic add
  // on the conn).
  metrics_.AddCounter("dflow_bytes_in_total", {},
                      [this] { return front_stats().bytes_in; });
  metrics_.AddCounter("dflow_bytes_out_total", {},
                      [this] { return front_stats().bytes_out; });
  counter("dflow_replica_failover_total", &failovers_total_);
  counter("dflow_replica_divergence_checks_total", &divergence_checks_);
  counter("dflow_replica_divergence_total", &divergence_mismatches_);
  counter("dflow_replica_divergence_incomplete_total",
          &divergence_incomplete_);
  metrics_.AddCounter("dflow_traces_started_total", {},
                      [this] { return recorder_.started(); });
  metrics_.AddCounter("dflow_traces_finished_total", {},
                      [this] { return recorder_.finished(); });
  wall_latency_us_ = metrics_.AddHistogram(
      "dflow_wall_latency_us", {}, obs::DefaultWallLatencyBucketsUs());
  journal_.RegisterCounters(&metrics_);
  health_.RegisterMetrics(&metrics_);
}

Router::~Router() { Stop(); }

bool Router::Start(std::string* error) {
  if (started_.exchange(true)) {
    if (error != nullptr) *error = "Start() called twice";
    return false;
  }
  if (options_.backends.empty()) {
    if (error != nullptr) *error = "no backends configured";
    return false;
  }
  replicas_ = std::max(1, options_.replicas);
  if (options_.backends.size() % static_cast<size_t>(replicas_) != 0) {
    if (error != nullptr) {
      *error = "backend count (" + std::to_string(options_.backends.size()) +
               ") is not a multiple of --replicas=" +
               std::to_string(replicas_);
    }
    return false;
  }
  num_slots_ = static_cast<int>(options_.backends.size()) / replicas_;
  const int pool = std::max(1, options_.connections_per_backend);
  backends_.reserve(options_.backends.size());
  for (const BackendAddress& address : options_.backends) {
    auto backend = std::make_unique<Backend>();
    backend->address = address;
    backend->slot = static_cast<int>(backends_.size()) / replicas_;
    backend->replica = static_cast<int>(backends_.size()) % replicas_;
    backends_.push_back(std::move(backend));
  }
  for (size_t b = 0; b < backends_.size(); ++b) {
    Backend* backend = backends_[b].get();
    for (int c = 0; c < pool; ++c) {
      auto conn = std::make_unique<BackendConn>();
      conn->backend_index = static_cast<int>(b);
      conn->conn_index = c;
      BackendConn* raw = conn.get();
      backend->conns.push_back(std::move(conn));
      raw->thread = std::thread([this, backend, raw] {
        BackendLoop(backend, raw);
      });
    }
  }
  // Per-backend metric families, one labeled series per backend. The
  // Backend objects (and their conns vectors) are append-only from here,
  // so the raw pointers the callbacks capture stay valid for the router's
  // lifetime. Family-outer loops keep each family's series contiguous in
  // the text exposition.
  const auto backend_counter = [this](const char* name,
                                      std::atomic<int64_t> Backend::*member) {
    for (const std::unique_ptr<Backend>& backend : backends_) {
      Backend* raw = backend.get();
      metrics_.AddCounter(name, {{"backend", AddressText(raw->address)}},
                          [raw, member] { return (raw->*member).load(); });
    }
  };
  backend_counter("dflow_backend_forwarded_total", &Backend::forwarded);
  backend_counter("dflow_backend_answered_total", &Backend::answered);
  backend_counter("dflow_backend_unavailable_total", &Backend::unavailable);
  backend_counter("dflow_backend_reconnects_total", &Backend::reconnects);
  backend_counter("dflow_backend_failover_total", &Backend::failovers);
  for (const std::unique_ptr<Backend>& backend : backends_) {
    Backend* raw = backend.get();
    metrics_.AddGauge(
        "dflow_backend_connected", {{"backend", AddressText(raw->address)}},
        [raw] {
          for (const std::unique_ptr<BackendConn>& conn : raw->conns) {
            if (conn->ready.load(std::memory_order_acquire)) return 1.0;
          }
          return 0.0;
        });
  }
  // Admit no client until the whole fleet answered its identity handshake:
  // a router that starts half-connected would deterministically fail every
  // seed hashing to the missing node.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.connect_timeout_s));
  while (true) {
    const Backend* missing = nullptr;
    for (const std::unique_ptr<Backend>& backend : backends_) {
      bool any = false;
      for (const std::unique_ptr<BackendConn>& conn : backend->conns) {
        any = any || conn->ready.load(std::memory_order_acquire);
      }
      if (!any) {
        missing = backend.get();
        break;
      }
    }
    if (missing == nullptr) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      if (error != nullptr) {
        *error = "backend " + AddressText(missing->address) +
                 " unreachable within " +
                 std::to_string(options_.connect_timeout_s) + "s";
      }
      Stop();
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // All backends must serve the same strategy: routing by seed assumes any
  // node would produce the same bytes for a request, which only holds for
  // a homogeneous fleet. An AUTO fleet is homogeneous iff every backend
  // also reports the same advisor fingerprint (same calibration, same
  // candidates => identical per-request choices); AUTO backends with
  // different calibrations would serve different bytes for the same seed.
  // The v5 fleet-epoch stamp extends the same rule to whole deployments: a
  // mixed-epoch replica set (half-upgraded, mixed calibration data, ...)
  // refuses to start rather than serving divergent bytes — replication
  // makes this existential, since replicas stand in for each other.
  // (Re-handshakes enforce the same invariants later.)
  for (const std::unique_ptr<Backend>& backend : backends_) {
    std::string backend_strategy;
    uint64_t backend_advisor = 0;
    uint64_t backend_epoch = 0;
    {
      std::lock_guard<std::mutex> lock(backend->info_mu);
      backend_strategy = backend->strategy;
      backend_advisor = backend->advisor_fingerprint;
      backend_epoch = backend->fleet_epoch;
    }
    bool mismatch = false;
    {
      std::lock_guard<std::mutex> lock(strategy_mu_);
      if (!epoch_set_) {
        fleet_epoch_ = backend_epoch;
        epoch_set_ = true;
      }
      if (backend_epoch != fleet_epoch_) {
        if (error != nullptr) {
          *error = "backend " + AddressText(backend->address) +
                   " reports fleet epoch " + std::to_string(backend_epoch) +
                   " but the fleet runs epoch " + std::to_string(fleet_epoch_);
        }
        mismatch = true;
      } else if (strategy_.empty()) {
        strategy_ = backend_strategy;
        advisor_fingerprint_ = backend_advisor;
      } else if (backend_strategy != strategy_) {
        if (error != nullptr) {
          *error = "backend " + AddressText(backend->address) + " runs " +
                   backend_strategy + " but the fleet runs " + strategy_;
        }
        mismatch = true;
      } else if (backend_advisor != advisor_fingerprint_) {
        if (error != nullptr) {
          *error = "backend " + AddressText(backend->address) +
                   " runs AUTO with a different calibration (advisor "
                   "fingerprint mismatch)";
        }
        mismatch = true;
      }
    }
    if (mismatch) {
      Stop();
      return false;
    }
  }
  if (!listener_.Listen(options_.port, error)) {
    Stop();
    return false;
  }
  if (!loop_.Start(error)) {
    Stop();
    return false;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  health_.Start();
  return true;
}

void Router::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_seq_cst);
  // 1. Stop accepting; retire the acceptor.
  listener_.Shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  // 2. Gracefully close every front-door conn. The loop waits for each
  // conn's in-flight tickets to be answered (the backend pool is still
  // live, so forwarded submits complete) and flushes the responses before
  // the sockets close — this is the "every admitted request answered"
  // barrier.
  loop_.Stop();
  // 3. Only now retire the pool: nothing is owed to any client, so the
  // backends get a best-effort Goodbye and the conn threads exit instead
  // of reconnecting (stopping_ is visible under each send_mu).
  backoff_cv_.notify_all();
  for (const std::unique_ptr<Backend>& backend : backends_) {
    for (const std::unique_ptr<BackendConn>& conn : backend->conns) {
      std::lock_guard<std::mutex> lock(conn->send_mu);
      if (conn->client != nullptr) {
        conn->client->SendGoodbye();
        conn->client->Shutdown();
      }
    }
  }
  for (const std::unique_ptr<Backend>& backend : backends_) {
    for (const std::unique_ptr<BackendConn>& conn : backend->conns) {
      if (conn->thread.joinable()) conn->thread.join();
    }
  }
  // 4. Retire the health plane last: the drain event closes the journal's
  // story for this process, then both JSONL sinks flush.
  health_.Stop();
  journal_.Emit(obs::EventKind::kDrain, obs::Severity::kInfo,
                "relayed=" + std::to_string(relayed_results_.load()));
  journal_.Flush();
  recorder_.Flush();
}

runtime::IngressStats Router::front_stats() const {
  runtime::IngressStats stats;
  stats.connections_opened = connections_opened_.load();
  stats.connections_closed = connections_closed_.load();
  stats.requests_accepted = requests_routed_.load();
  stats.requests_rejected_busy = relayed_busy_.load();
  stats.requests_rejected_shutdown = relayed_shutdown_.load();
  stats.decode_errors = decode_errors_.load();
  stats.protocol_errors = protocol_errors_.load();
  stats.info_requests = info_requests_.load();
  // Byte and outbox stats: the closed-session accumulators plus a
  // live-conn scan, all under sessions_mu_ so a conn retiring concurrently
  // is counted exactly once (on_close folds and unindexes under the same
  // lock). bytes_out IS the outbox flush count — the outbox is the only
  // writer a front-door conn has.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  stats.bytes_in = closed_bytes_in_;
  stats.outbox_inflight_hwm = closed_outbox_.inflight_hwm;
  stats.outbox_bytes_written = closed_outbox_.bytes_written;
  stats.outbox_write_stalls = closed_outbox_.write_stalls;
  for (const auto& [id, conn] : conns_) {
    const SessionOutbox::Stats live = conn->outbox().GetStats();
    stats.bytes_in += conn->bytes_in();
    stats.outbox_inflight_hwm =
        std::max(stats.outbox_inflight_hwm, live.inflight_hwm);
    stats.outbox_bytes_written += live.bytes_written;
    stats.outbox_write_stalls += live.write_stalls;
  }
  stats.bytes_out = stats.outbox_bytes_written;
  return stats;
}

RouterStats Router::router_stats() const {
  RouterStats stats;
  stats.is_router = 1;
  stats.replicas = replicas_;
  stats.failovers = failovers_total_.load();
  stats.divergence_checks = divergence_checks_.load();
  stats.divergence_mismatches = divergence_mismatches_.load();
  stats.divergence_incomplete = divergence_incomplete_.load();
  stats.backends.reserve(backends_.size());
  for (const std::unique_ptr<Backend>& backend : backends_) {
    RouterBackendStats entry;
    entry.address = AddressText(backend->address);
    entry.slot = backend->slot;
    entry.replica = backend->replica;
    {
      std::lock_guard<std::mutex> lock(backend->info_mu);
      entry.node_id = backend->node_id;
      entry.shards = backend->shards;
    }
    for (const std::unique_ptr<BackendConn>& conn : backend->conns) {
      if (conn->ready.load(std::memory_order_acquire)) {
        entry.connected = 1;
        break;
      }
    }
    entry.forwarded = backend->forwarded.load();
    entry.answered = backend->answered.load();
    entry.unavailable = backend->unavailable.load();
    entry.reconnects = backend->reconnects.load();
    entry.failovers = backend->failovers.load();
    stats.backends.push_back(std::move(entry));
  }
  return stats;
}

ServerInfo Router::BuildInfo() const {
  ServerInfo info;
  info.router = router_stats();
  int64_t total_shards = 0;
  for (const RouterBackendStats& backend : info.router.backends) {
    total_shards += backend.shards;
  }
  info.num_shards = static_cast<int32_t>(total_shards);
  {
    std::lock_guard<std::mutex> lock(strategy_mu_);
    info.strategy = strategy_;
    info.fleet_epoch = fleet_epoch_;
    if (advisor_fingerprint_ != 0) {
      info.advisor.enabled = 1;
      info.advisor.fingerprint = advisor_fingerprint_;
    }
  }
  if (!backends_.empty()) {
    std::lock_guard<std::mutex> lock(backends_.front()->info_mu);
    info.backend = backends_.front()->backend_kind;
    info.queue_capacity_per_shard = backends_.front()->queue_capacity;
  }
  info.completed = relayed_results_.load();
  info.rejected = relayed_busy_.load() + relayed_shutdown_.load() +
                  unavailable_total_.load();
  info.node_id = options_.node_id.empty()
                     ? "router:" + std::to_string(listener_.port())
                     : options_.node_id;
  info.ingress = front_stats();
  return info;
}

HealthInfo Router::BuildHealth() {
  // One fleet poll at a time: concurrent kHealthRequests would otherwise
  // race per-backend probes (the map holds one probe per backend).
  std::lock_guard<std::mutex> poll_lock(health_poll_mu_);
  HealthInfo health;
  health.self.node_id = options_.node_id.empty()
                            ? "router:" + std::to_string(listener_.port())
                            : options_.node_id;
  health.self.is_router = 1;
  health.self.completed = relayed_results_.load();
  health.self.failovers = failovers_total_.load();
  health.self.divergence_checks = divergence_checks_.load();
  health.self.divergence_mismatches = divergence_mismatches_.load();
  FillNodeHealthPlane(journal_, &health_, &health.self);
  health.backends.reserve(backends_.size());
  for (const std::unique_ptr<Backend>& backend : backends_) {
    NodeHealth node;
    if (!PollBackendHealth(backend.get(), &node)) {
      // Down or unresponsive: a synthesized critical entry, so the fleet
      // view never silently omits a member.
      std::lock_guard<std::mutex> lock(backend->info_mu);
      node.node_id = backend->node_id.empty() ? AddressText(backend->address)
                                              : backend->node_id;
      node.status = static_cast<uint8_t>(obs::HealthStatus::kCritical);
    }
    health.backends.push_back(std::move(node));
  }
  return health;
}

ProfileInfo Router::BuildProfile() {
  // One fleet poll at a time, like BuildHealth: the probe map holds one
  // profile probe per backend.
  std::lock_guard<std::mutex> poll_lock(profile_poll_mu_);
  ProfileInfo info;
  info.self.node_id = options_.node_id.empty()
                          ? "router:" + std::to_string(listener_.port())
                          : options_.node_id;
  info.self.is_router = 1;
  // A router executes no attributes: its self entry is identity only, and
  // the fleet's substance is the per-backend profiles below (dflow_top
  // merges them into the fleet view).
  info.backends.reserve(backends_.size());
  for (const std::unique_ptr<Backend>& backend : backends_) {
    NodeProfile node;
    if (!PollBackendProfile(backend.get(), &node)) {
      // Down or unresponsive: an empty identity entry, so the fleet view
      // never silently omits a member.
      std::lock_guard<std::mutex> lock(backend->info_mu);
      node.node_id = backend->node_id.empty() ? AddressText(backend->address)
                                              : backend->node_id;
    }
    info.backends.push_back(std::move(node));
  }
  return info;
}

bool Router::PollBackendProfile(const Backend* backend, NodeProfile* out) {
  auto probe = std::make_shared<ProfileProbe>();
  {
    std::lock_guard<std::mutex> lock(probes_mu_);
    profile_probes_[backend] = probe;
  }
  bool sent = false;
  for (const std::unique_ptr<BackendConn>& conn : backend->conns) {
    if (!conn->ready.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lock(conn->send_mu);
    if (!conn->ready.load(std::memory_order_acquire) ||
        conn->client == nullptr) {
      continue;
    }
    std::vector<uint8_t> frame;
    EncodeProfileRequest(&frame);
    if (conn->client->SendFrame(frame)) {
      sent = true;
      break;
    }
  }
  bool ok = false;
  if (sent) {
    std::unique_lock<std::mutex> lock(probe->mu);
    probe->cv.wait_for(lock, std::chrono::milliseconds(kHealthProbeTimeoutMs),
                       [&] { return probe->done; });
    if (probe->done && probe->ok) {
      *out = std::move(probe->info.self);
      ok = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(probes_mu_);
    const auto it = profile_probes_.find(backend);
    if (it != profile_probes_.end() && it->second == probe) {
      profile_probes_.erase(it);
    }
  }
  return ok;
}

bool Router::PollBackendHealth(const Backend* backend, NodeHealth* out) {
  auto probe = std::make_shared<HealthProbe>();
  {
    std::lock_guard<std::mutex> lock(probes_mu_);
    health_probes_[backend] = probe;
  }
  bool sent = false;
  for (const std::unique_ptr<BackendConn>& conn : backend->conns) {
    if (!conn->ready.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lock(conn->send_mu);
    if (!conn->ready.load(std::memory_order_acquire) ||
        conn->client == nullptr) {
      continue;
    }
    std::vector<uint8_t> frame;
    EncodeHealthRequest(&frame);
    if (conn->client->SendFrame(frame)) {
      sent = true;
      break;
    }
  }
  bool ok = false;
  if (sent) {
    std::unique_lock<std::mutex> lock(probe->mu);
    probe->cv.wait_for(lock, std::chrono::milliseconds(kHealthProbeTimeoutMs),
                       [&] { return probe->done; });
    if (probe->done && probe->ok) {
      *out = std::move(probe->info.self);
      ok = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(probes_mu_);
    const auto it = health_probes_.find(backend);
    if (it != health_probes_.end() && it->second == probe) {
      health_probes_.erase(it);
    }
  }
  return ok;
}

obs::HealthSources Router::MakeHealthSources() {
  obs::HealthSources sources;
  sources.requests_total = [this] { return relayed_results_.load(); };
  sources.failovers_total = [this] { return failovers_total_.load(); };
  // wall_latency_us_ is assigned later in the constructor body; the lazy
  // read (first used once the collector thread runs) makes the ordering
  // benign.
  sources.wall_latency = [this] {
    return wall_latency_us_ != nullptr ? wall_latency_us_->Snap()
                                       : obs::Histogram::Snapshot{};
  };
  sources.slots_total = [this] { return static_cast<int64_t>(num_slots_); };
  sources.slots_down = [this] { return CountSlotsDown(); };
  return sources;
}

int64_t Router::CountSlotsDown() const {
  int64_t down = 0;
  for (int slot = 0; slot < num_slots_; ++slot) {
    bool live = false;
    for (int r = 0; r < replicas_ && !live; ++r) {
      const Backend* backend =
          backends_[static_cast<size_t>(slot * replicas_ + r)].get();
      for (const std::unique_ptr<BackendConn>& conn : backend->conns) {
        if (conn->ready.load(std::memory_order_acquire)) {
          live = true;
          break;
        }
      }
    }
    if (!live) ++down;
  }
  return down;
}

// --- Front door: acceptor + event-loop conns (the same EventLoop shape as
// the ingress server's front door).

void Router::AcceptLoop() {
  int backoff_ms = 10;
  while (true) {
    ListenSocket::AcceptStatus status = ListenSocket::AcceptStatus::kShutdown;
    Socket socket = listener_.Accept(&status);
    if (status == ListenSocket::AcceptStatus::kTransient) {
      // Out of fds (or kernel buffers): survive it instead of exiting.
      // Pausing the accept path sheds politely — unaccepted peers wait in
      // the listen backlog — and the journal entry names the ceiling so an
      // operator raises ulimit instead of chasing drops.
      journal_.Emit(obs::EventKind::kWatermark, obs::Severity::kWarn,
                    "accept: fd/buffer exhaustion; backing off " +
                        std::to_string(backoff_ms) + "ms");
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 100);
      continue;
    }
    backoff_ms = 10;
    if (status != ListenSocket::AcceptStatus::kOk) break;
    if (stopping_.load(std::memory_order_acquire)) break;
    auto session = std::make_shared<Session>();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      session->id = next_session_id_++;
    }
    EventConn::Handlers handlers;
    handlers.on_frame = [this, session](EventConn* conn, Frame& frame) {
      return HandleFrame(conn, session, frame);
    };
    handlers.on_protocol_error = [this, session](EventConn* conn,
                                                 WireError error) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, 0, error, "unrecoverable frame stream");
    };
    handlers.on_close = [this, session](EventConn* conn) {
      OnConnClosed(conn, session);
    };
    const std::shared_ptr<EventConn> conn =
        loop_.Add(std::move(socket), std::move(handlers), session,
                  options_.max_payload_bytes);
    if (conn == nullptr) continue;  // loop stopped under us; socket dropped
    connections_opened_.fetch_add(1, std::memory_order_relaxed);
    if (options_.verbose) {
      std::fprintf(stderr, "[router] connection %llu open\n",
                   static_cast<unsigned long long>(session->id));
    }
    {
      // Index for the stats live-scan — unless the conn already retired
      // (a connect-and-vanish client can close before this line runs).
      std::lock_guard<std::mutex> lock(sessions_mu_);
      if (!session->retired) conns_.emplace(session->id, conn);
    }
  }
}

void Router::OnConnClosed(EventConn* conn,
                          const std::shared_ptr<Session>& session) {
  const SessionOutbox::Stats outbox = conn->outbox().GetStats();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session->retired = true;
    conns_.erase(session->id);
    closed_bytes_in_ += conn->bytes_in();
    closed_outbox_.inflight_hwm =
        std::max(closed_outbox_.inflight_hwm, outbox.inflight_hwm);
    closed_outbox_.bytes_written += outbox.bytes_written;
    closed_outbox_.write_stalls += outbox.write_stalls;
  }
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  if (options_.verbose) {
    std::fprintf(stderr,
                 "[router] connection %llu closed: accepted=%lld "
                 "bytes_in=%lld bytes_out=%lld\n",
                 static_cast<unsigned long long>(session->id),
                 static_cast<long long>(session->accepted.load()),
                 static_cast<long long>(conn->bytes_in()),
                 static_cast<long long>(outbox.bytes_written));
  }
}

EventConn::FrameAction Router::HandleFrame(
    EventConn* conn, const std::shared_ptr<Session>& session, Frame& frame) {
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::kSubmit:
      HandleSubmit(conn, session, std::move(frame));
      return EventConn::FrameAction::kContinue;
    case MsgType::kBatchSubmit:
      return HandleBatchSubmit(conn, session, frame);
    case MsgType::kInfoRequest: {
      info_requests_.fetch_add(1, std::memory_order_relaxed);
      std::vector<uint8_t> out;
      EncodeInfo(BuildInfo(), &out);
      conn->PushResponse(std::move(out));
      return EventConn::FrameAction::kContinue;
    }
    case MsgType::kMetricsRequest: {
      std::vector<uint8_t> out;
      EncodeMetrics(metrics_.RenderText(), &out);
      conn->PushResponse(std::move(out));
      return EventConn::FrameAction::kContinue;
    }
    case MsgType::kHealthRequest: {
      // The fleet-wide poll runs on this conn's loop thread; it is a
      // monitoring request, and the per-backend probe timeout bounds it.
      std::vector<uint8_t> out;
      EncodeHealth(BuildHealth(), &out);
      conn->PushResponse(std::move(out));
      return EventConn::FrameAction::kContinue;
    }
    case MsgType::kProfileRequest: {
      // Fleet-wide profile poll, bounded per backend exactly like health.
      std::vector<uint8_t> out;
      EncodeProfile(BuildProfile(), &out);
      conn->PushResponse(std::move(out));
      return EventConn::FrameAction::kContinue;
    }
    case MsgType::kGoodbye: {
      // Flush-then-ack, exactly like the ingress: the ack rides as the
      // graceful close's final frame, which the loop pushes only after
      // every submit this connection forwarded has its answer in the
      // outbox.
      std::vector<uint8_t> ack;
      EncodeGoodbyeAck(&ack);
      conn->BeginGracefulClose(std::move(ack));
      return EventConn::FrameAction::kClose;
    }
    default:
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, 0, WireError::kUnsupportedType,
                "unknown frame type " + std::to_string(frame.type));
      return EventConn::FrameAction::kContinue;
  }
}

EventConn::FrameAction Router::HandleBatchSubmit(
    EventConn* conn, const std::shared_ptr<Session>& session, Frame& frame) {
  // The router cannot relay a batch wholesale: its items hash to different
  // slots. Unbundle into per-item singleton submit frames — request_id
  // base + i, everything shared stamped per item — and feed each through
  // the ordinary forward path, so ticket translation, failover replay, and
  // divergence sampling hold per item by construction. This is the one
  // tier that pays a decode on the batch path; the per-item forwards are
  // still the O(1) fixed-offset relay.
  BatchSubmitRequest request;
  if (!DecodeBatchSubmit(frame.payload, &request)) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    // The owed completion count is part of what failed to decode, so the
    // connection's accounting is broken: typed error, then close, exactly
    // like the ingress — a client draining the range unblocks on EOF.
    SendError(conn, PeekRequestId(frame.payload), WireError::kMalformedFrame,
              "undecodable batch payload");
    conn->BeginGracefulClose();
    return EventConn::FrameAction::kClose;
  }
  for (size_t i = 0; i < request.items.size(); ++i) {
    SubmitRequest item;
    item.request_id = request.request_id_base + i;
    item.seed = request.items[i].seed;
    item.blocking = request.blocking;
    item.want_snapshot = request.want_snapshot;
    item.strategy = request.strategy;
    item.sources = std::move(request.items[i].sources);
    std::vector<uint8_t> bytes;
    EncodeSubmit(item, &bytes);
    Frame singleton;
    singleton.type = static_cast<uint8_t>(MsgType::kSubmit);
    singleton.payload.assign(bytes.begin() + kFrameHeaderBytes, bytes.end());
    HandleSubmit(conn, session, std::move(singleton));
  }
  return EventConn::FrameAction::kContinue;
}

void Router::HandleSubmit(EventConn* conn,
                          const std::shared_ptr<Session>& session,
                          Frame frame) {
  // The routing key and correlation id sit at fixed offsets; anything
  // shorter cannot be a submit. Deeper validation is the backend's job —
  // its typed MALFORMED_FRAME answer relays back like any other response.
  // Like the ingress, echo the correlation id whenever the payload is
  // long enough to carry one, so the error stays attributable.
  if (frame.payload.size() < kSubmitPeekBytes) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, PeekRequestId(frame.payload), WireError::kMalformedFrame,
              "short submit payload");
    return;
  }
  const uint64_t request_id = ReadLe64(frame.payload.data());
  const uint64_t seed = ReadLe64(frame.payload.data() + 8);
  // The same hash the FlowServer uses for shard placement, over the slot
  // count: slot choice is a pure function of the seed, so any fleet size
  // serves byte-identical results — and within a slot every replica serves
  // the same bytes, so replica choice is free.
  const int slot = runtime::FlowServer::ShardFor(seed, num_slots_);
  // Trace decision at the fleet's entry point: a client-set trace flag is
  // always honored, otherwise the router's own deterministic sample
  // applies. Either way the forwarded frame carries the v4 trace extension
  // with the router-minted id, so the backend adopts one identity and the
  // router.forward span appended on the way back joins the backend's spans
  // under a single trace. Still no payload decode: the flag is one bit of
  // the fixed-offset flags word, and the extension is the payload's last
  // nine bytes.
  std::shared_ptr<obs::RequestTrace> trace;
  const bool client_flagged = (frame.payload[16] & 0x04) != 0;
  if (client_flagged || recorder_.ShouldTrace(seed)) {
    const bool has_extension =
        client_flagged && frame.payload.size() >= kSubmitPeekBytes + 9;
    uint64_t upstream_id = 0;
    if (has_extension) {
      upstream_id =
          ReadLe64(frame.payload.data() + frame.payload.size() - 9);
    }
    trace = recorder_.Begin(seed, upstream_id);
    if (has_extension) {
      // trace_id 0 in a client extension means "assign at the entry
      // point" — that is us; a nonzero id came from further upstream and
      // Begin() adopted it, so this write is then a no-op.
      WriteLe64(trace->trace_id(),
                frame.payload.data() + frame.payload.size() - 9);
    } else {
      frame.payload[16] |= 0x04;  // kFlagHasTrace (flags u32 LE @ 16)
      uint8_t extension[9] = {0};
      WriteLe64(trace->trace_id(), extension);
      frame.payload.insert(frame.payload.end(), extension, extension + 9);
    }
  }
  const uint64_t start_ns =
      trace != nullptr ? trace->begin_ns() : obs::MonotonicNs();
  const uint64_t ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  WriteLe64(ticket, frame.payload.data());
  std::vector<uint8_t> forward;
  forward.reserve(kFrameHeaderBytes + frame.payload.size());
  EncodeRawFrame(frame.type, frame.payload, &forward);
  // The sampled divergence cross-check: decide (deterministically, by seed
  // hash) BEFORE forwarding and pre-register the check, so the primary's
  // answer — which can arrive the instant the bytes leave — finds the
  // check no matter how the race goes. The shadow copy itself is launched
  // only after the primary forward succeeded.
  const bool cross_check =
      replicas_ > 1 && options_.divergence_sample_period > 0 &&
      Rng::Mix(seed, kDivergenceSalt) % options_.divergence_sample_period == 0;
  uint64_t check_id = 0;
  std::vector<uint8_t> shadow_frame;
  if (cross_check) {
    check_id = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    shadow_frame = forward;
    WriteLe64(check_id, shadow_frame.data() + kFrameHeaderBytes);
    std::lock_guard<std::mutex> lock(pending_mu_);
    checks_.emplace(check_id, DivergenceCheck{seed});
  }
  Pending pending;
  pending.conn = conn->shared_from_this();
  pending.request_id = request_id;
  pending.start_ns = start_ns;
  pending.trace = trace;
  pending.frame =
      std::make_shared<const std::vector<uint8_t>>(std::move(forward));
  pending.check_id = check_id;
  conn->outbox().BeginRequest();
  int served = -1;
  switch (ForwardToSlot(slot, ticket, &pending, &served)) {
    case ForwardOutcome::kForwarded:
      session->accepted.fetch_add(1, std::memory_order_relaxed);
      requests_routed_.fetch_add(1, std::memory_order_relaxed);
      backends_[static_cast<size_t>(served)]->forwarded.fetch_add(
          1, std::memory_order_relaxed);
      if (cross_check) {
        LaunchShadow(slot, served, check_id, request_id, start_ns,
                     std::move(shadow_frame));
      }
      return;
    case ForwardOutcome::kAnsweredElsewhere:
      if (cross_check) {
        std::lock_guard<std::mutex> lock(pending_mu_);
        checks_.erase(check_id);
      }
      return;  // a death sweep answered (and decremented) already
    case ForwardOutcome::kUnavailable: {
      if (cross_check) {
        std::lock_guard<std::mutex> lock(pending_mu_);
        checks_.erase(check_id);
      }
      for (int r = 0; r < replicas_; ++r) {
        backends_[static_cast<size_t>(slot * replicas_ + r)]
            ->unavailable.fetch_add(1, std::memory_order_relaxed);
      }
      unavailable_total_.fetch_add(1, std::memory_order_relaxed);
      // A refused-but-traced request still finishes its trace: fast-fail
      // storms are exactly what the slow log and JSONL sink investigate.
      if (trace != nullptr) {
        recorder_.Finish(trace, obs::MonotonicNs() - start_ns);
      }
      const std::string what =
          replicas_ > 1
              ? "slot " + std::to_string(slot) + ": all " +
                    std::to_string(replicas_) + " replicas disconnected"
              : "backend " +
                    AddressText(
                        backends_[static_cast<size_t>(slot)]->address) +
                    " disconnected";
      SendError(conn, request_id, WireError::kBackendUnavailable, what);
      conn->outbox().FinishRequest();
      return;
    }
  }
}

Router::ForwardOutcome Router::Forward(Backend* backend, uint64_t ticket,
                                       Pending* pending) {
  const int pool = static_cast<int>(backend->conns.size());
  const uint32_t start = backend->rr.fetch_add(1, std::memory_order_relaxed);
  for (int k = 0; k < pool; ++k) {
    BackendConn* conn =
        backend->conns[(start + static_cast<uint32_t>(k)) %
                       static_cast<uint32_t>(pool)]
            .get();
    if (!conn->ready.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lock(conn->send_mu);
    // Recheck under the lock: a conn that died since the relaxed peek has
    // ready=false here (the conn thread clears it before taking send_mu).
    if (!conn->ready.load(std::memory_order_acquire) ||
        conn->client == nullptr) {
      continue;
    }
    // Register before sending — the response can arrive on the conn
    // thread the instant the bytes leave. Whoever erases the entry
    // (response relay, death sweep, or the unwind below) owns answering.
    // Send from our own reference to the shared frame bytes, NOT from the
    // map node: a fast response (or death sweep) can move the Pending out
    // of the map while SendFrame is still reading, and only pending_mu_
    // guards the node — this conn's send_mu does not.
    std::shared_ptr<const std::vector<uint8_t>> frame;
    {
      std::lock_guard<std::mutex> pending_lock(pending_mu_);
      pending->backend_index = conn->backend_index;
      pending->conn_index = conn->conn_index;
      frame = pending->frame;
      auto [it, inserted] = pending_.emplace(ticket, std::move(*pending));
      if (!inserted) return ForwardOutcome::kAnsweredElsewhere;
    }
    // May block on a full TCP window — that is the end-to-end
    // backpressure path (downstream queue full -> downstream reader
    // parked -> our send stalls -> our session reader stalls -> the
    // client's TCP stalls).
    if (conn->client->SendFrame(*frame)) return ForwardOutcome::kForwarded;
    // Not fully delivered, so no response can exist: reclaim the ticket
    // (unless a sweep already took it over) and try the next conn.
    {
      std::lock_guard<std::mutex> pending_lock(pending_mu_);
      const auto it = pending_.find(ticket);
      if (it == pending_.end()) return ForwardOutcome::kAnsweredElsewhere;
      if (it->second.backend_index != conn->backend_index ||
          it->second.conn_index != conn->conn_index) {
        // A death sweep re-issued it to a sibling while we unwound: the
        // ticket is in flight there and that path owns answering it.
        return ForwardOutcome::kForwarded;
      }
      *pending = std::move(it->second);
      pending_.erase(it);
    }
  }
  return ForwardOutcome::kUnavailable;
}

Router::ForwardOutcome Router::ForwardToSlot(int slot, uint64_t ticket,
                                             Pending* pending, int* served) {
  // Index order makes the lowest live replica the slot's primary: every
  // session prefers the same member, so a healthy slot concentrates load
  // (and cache locality) instead of spraying, and failover preference is
  // deterministic.
  for (int r = 0; r < replicas_; ++r) {
    const int index = slot * replicas_ + r;
    Backend* backend = backends_[static_cast<size_t>(index)].get();
    switch (Forward(backend, ticket, pending)) {
      case ForwardOutcome::kForwarded:
        if (served != nullptr) *served = index;
        return ForwardOutcome::kForwarded;
      case ForwardOutcome::kAnsweredElsewhere:
        return ForwardOutcome::kAnsweredElsewhere;
      case ForwardOutcome::kUnavailable:
        continue;  // dead replica; try the next sibling
    }
  }
  return ForwardOutcome::kUnavailable;
}

void Router::LaunchShadow(int slot, int served, uint64_t shadow_ticket,
                          uint64_t request_id, uint64_t start_ns,
                          std::vector<uint8_t> shadow_frame) {
  Pending shadow;
  shadow.request_id = request_id;
  shadow.start_ns = start_ns;
  shadow.frame =
      std::make_shared<const std::vector<uint8_t>>(std::move(shadow_frame));
  shadow.check_id = shadow_ticket;
  shadow.shadow = true;
  for (int r = 0; r < replicas_; ++r) {
    const int index = slot * replicas_ + r;
    if (index == served) continue;  // the cross-check needs a SECOND replica
    Backend* backend = backends_[static_cast<size_t>(index)].get();
    if (Forward(backend, shadow_ticket, &shadow) !=
        ForwardOutcome::kUnavailable) {
      divergence_checks_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // No second live replica: the sample is skipped, not failed. The primary
  // side finds no check entry when it answers and relays as usual.
  std::lock_guard<std::mutex> lock(pending_mu_);
  checks_.erase(shadow_ticket);
}

void Router::ResolveDivergence(uint64_t check_id, bool is_primary, bool ok,
                               uint64_t fingerprint) {
  bool settled = false;
  bool incomplete = false;
  DivergenceCheck done;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    const auto it = checks_.find(check_id);
    if (it == checks_.end()) return;  // skipped or already settled
    DivergenceCheck& check = it->second;
    if (!ok) check.failed = true;
    if (is_primary) {
      check.primary_done = true;
      check.primary_fingerprint = fingerprint;
    } else {
      check.shadow_done = true;
      check.shadow_fingerprint = fingerprint;
    }
    if (check.failed) {
      // An errored side (reject, malformed relay, ...) leaves nothing to
      // compare; settle immediately rather than waiting for the peer.
      incomplete = true;
      settled = true;
    } else if (check.primary_done && check.shadow_done) {
      settled = true;
    }
    if (settled) {
      done = check;
      checks_.erase(it);
    }
  }
  if (!settled) return;
  if (incomplete) {
    divergence_incomplete_.fetch_add(1, std::memory_order_relaxed);
    // One side errored before producing a fingerprint: journal it (warn,
    // not error — nothing diverged, the sample just yielded no verdict).
    // Clean settles stay out of the journal on purpose: at a 1-in-N
    // sample rate they would flood the bounded ring and evict the rare
    // events the tail exists to preserve; their count lives in
    // dflow_replica_divergence_checks_total.
    char seed_hex[17];
    std::snprintf(seed_hex, sizeof(seed_hex), "%016llx",
                  static_cast<unsigned long long>(done.seed));
    journal_.Emit(obs::EventKind::kDivergenceCheck, obs::Severity::kWarn,
                  std::string("incomplete seed=") + seed_hex);
    return;
  }
  if (done.primary_fingerprint == done.shadow_fingerprint) return;
  // Byte-divergent replicas: the determinism contract — the very thing
  // that makes failover provable — is broken. Always loud; fatal when the
  // operator asked for it (dflow_router does).
  divergence_mismatches_.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr,
               "[router] REPLICA DIVERGENCE seed=%016llx: primary "
               "fingerprint %016llx != replica fingerprint %016llx\n",
               static_cast<unsigned long long>(done.seed),
               static_cast<unsigned long long>(done.primary_fingerprint),
               static_cast<unsigned long long>(done.shadow_fingerprint));
  {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "seed=%016llx primary=%016llx shadow=%016llx",
                  static_cast<unsigned long long>(done.seed),
                  static_cast<unsigned long long>(done.primary_fingerprint),
                  static_cast<unsigned long long>(done.shadow_fingerprint));
    journal_.Emit(obs::EventKind::kDivergenceMismatch, obs::Severity::kError,
                  detail);
    journal_.Flush();
  }
  if (options_.abort_on_divergence) {
    std::fflush(nullptr);
    std::_Exit(3);
  }
}

void Router::SendError(EventConn* conn, uint64_t request_id, WireError code,
                       const std::string& message) {
  std::vector<uint8_t> out;
  EncodeError(ErrorReply{request_id, code, message}, &out);
  conn->PushResponse(std::move(out));
}

// --- Backend pool: one thread per pooled connection owns its whole
// connect / handshake / read / reconnect lifecycle.

void Router::BackendLoop(Backend* backend, BackendConn* conn) {
  int backoff_ms = options_.backoff_initial_ms;
  bool connected_before = false;
  bool first_attempt = true;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!first_attempt) {
      // Exponential backoff between attempts, abandoned instantly on Stop.
      std::unique_lock<std::mutex> lock(backoff_mu_);
      backoff_cv_.wait_for(lock, std::chrono::milliseconds(backoff_ms), [&] {
        return stopping_.load(std::memory_order_acquire);
      });
      if (stopping_.load(std::memory_order_acquire)) break;
    }
    first_attempt = false;
    auto client = std::make_unique<Client>();
    std::string error;
    if (!client->Connect(backend->address.host, backend->address.port,
                         &error) ||
        !Handshake(backend, client.get())) {
      backoff_ms = std::min(backoff_ms * 2, options_.backoff_max_ms);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conn->send_mu);
      // Stop() shuts down installed clients under this mutex; a client
      // installed after that pass would never be unblocked, so check here.
      if (stopping_.load(std::memory_order_acquire)) break;
      conn->client = std::move(client);
    }
    conn->ready.store(true, std::memory_order_release);
    if (connected_before) {
      backend->reconnects.fetch_add(1, std::memory_order_relaxed);
      journal_.Emit(obs::EventKind::kBackendReconnect, obs::Severity::kInfo,
                    "backend=" + AddressText(backend->address) +
                        " conn=" + std::to_string(conn->conn_index));
    }
    connected_before = true;
    const auto up_since = std::chrono::steady_clock::now();
    if (options_.verbose) {
      std::fprintf(stderr, "[router] backend %s conn %d up\n",
                   AddressText(backend->address).c_str(), conn->conn_index);
    }
    while (true) {
      std::optional<Frame> frame = conn->client->ReadFrame();
      if (!frame.has_value()) break;  // EOF, error, or Stop's Shutdown
      HandleBackendFrame(backend, std::move(*frame));
    }
    // Reset the reconnect backoff only once a connection PROVED healthy by
    // surviving a while: a backend that completes the handshake and then
    // dies right away (crash loop, bad deploy) keeps doubling toward the
    // cap instead of hot-looping at the initial delay.
    if (std::chrono::steady_clock::now() - up_since >=
        kHealthyConnectionUptime) {
      backoff_ms = options_.backoff_initial_ms;
    } else {
      backoff_ms = std::min(backoff_ms * 2, options_.backoff_max_ms);
    }
    // Disconnected. Clear ready first, then take send_mu: any sender
    // mid-SendAll finishes (failing), and no new ticket can be registered
    // on this conn until the next handshake completes — so the sweep
    // below is complete.
    conn->ready.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(conn->send_mu);
      conn->client->Close();
    }
    // A drop during graceful shutdown is the Goodbye exchange, not a
    // death — only unexpected disconnects make the journal.
    if (!stopping_.load(std::memory_order_acquire)) {
      journal_.Emit(obs::EventKind::kBackendDeath, obs::Severity::kError,
                    "backend=" + AddressText(backend->address) +
                        " conn=" + std::to_string(conn->conn_index));
    }
    FailPendingOn(conn->backend_index, conn->conn_index);
    if (options_.verbose) {
      std::fprintf(stderr, "[router] backend %s conn %d down\n",
                   AddressText(backend->address).c_str(), conn->conn_index);
    }
  }
}

bool Router::Handshake(Backend* backend, Client* client) {
  client->SetRecvTimeout(kHandshakeRecvTimeoutMs);
  if (!client->SendInfoRequest()) return false;
  ServerInfo info;
  bool got = false;
  // Tolerate a few stray frames, but a fresh connection should answer the
  // info request first.
  for (int i = 0; i < 8 && !got; ++i) {
    const std::optional<Frame> frame = client->ReadFrame();
    if (!frame.has_value()) return false;
    if (frame->type == static_cast<uint8_t>(MsgType::kInfo)) {
      if (!DecodeInfo(frame->payload, &info)) return false;
      got = true;
    }
  }
  if (!got) return false;
  // Re-handshakes must keep the fleet homogeneous: a backend restarted
  // with a different strategy — or, on an AUTO fleet, a different advisor
  // calibration — is refused (the conn keeps backing off, its seeds keep
  // failing fast); re-attaching it would silently serve different bytes
  // for those seeds. strategy_ is empty only during the initial Start()
  // handshakes, which Start() itself cross-validates.
  {
    std::lock_guard<std::mutex> lock(strategy_mu_);
    if (!strategy_.empty() &&
        (info.strategy != strategy_ ||
         info.advisor.fingerprint != advisor_fingerprint_)) {
      if (options_.verbose) {
        std::fprintf(
            stderr,
            "[router] backend %s refused: runs %s (advisor %016llx), fleet "
            "runs %s (advisor %016llx)\n",
            AddressText(backend->address).c_str(), info.strategy.c_str(),
            static_cast<unsigned long long>(info.advisor.fingerprint),
            strategy_.c_str(),
            static_cast<unsigned long long>(advisor_fingerprint_));
      }
      journal_.Emit(obs::EventKind::kEpochRefusal, obs::Severity::kWarn,
                    "backend=" + AddressText(backend->address) +
                        " runs=" + info.strategy + " fleet=" + strategy_);
      return false;
    }
    // Same rule for the v5 fleet-epoch stamp: a backend restarted under a
    // different deployment generation is refused — with replicas standing
    // in for each other, re-attaching it would let failover silently swap
    // a request onto divergent bytes.
    if (epoch_set_ && info.fleet_epoch != fleet_epoch_) {
      if (options_.verbose) {
        std::fprintf(
            stderr,
            "[router] backend %s refused: fleet epoch %llu, fleet runs "
            "%llu\n",
            AddressText(backend->address).c_str(),
            static_cast<unsigned long long>(info.fleet_epoch),
            static_cast<unsigned long long>(fleet_epoch_));
      }
      journal_.Emit(obs::EventKind::kEpochRefusal, obs::Severity::kWarn,
                    "backend=" + AddressText(backend->address) +
                        " epoch=" + std::to_string(info.fleet_epoch) +
                        " fleet=" + std::to_string(fleet_epoch_));
      return false;
    }
  }
  client->SetRecvTimeout(0);
  std::lock_guard<std::mutex> lock(backend->info_mu);
  backend->node_id = info.node_id;
  backend->strategy = info.strategy;
  backend->shards = info.num_shards;
  backend->backend_kind = info.backend;
  backend->queue_capacity = info.queue_capacity_per_shard;
  backend->advisor_fingerprint = info.advisor.fingerprint;
  backend->fleet_epoch = info.fleet_epoch;
  return true;
}

void Router::HandleBackendFrame(Backend* backend, Frame frame) {
  const MsgType type = static_cast<MsgType>(frame.type);
  if (type == MsgType::kInfo || type == MsgType::kGoodbyeAck) return;
  if (type == MsgType::kHealth) {
    // Fulfills the in-flight probe BuildHealth parked on this backend.
    // No probe (a stale answer after the poll timed out) is fine: the
    // shared_ptr keeps lifetimes safe and the bytes are simply dropped.
    std::shared_ptr<HealthProbe> probe;
    {
      std::lock_guard<std::mutex> lock(probes_mu_);
      const auto it = health_probes_.find(backend);
      if (it != health_probes_.end()) probe = it->second;
    }
    if (probe != nullptr) {
      std::lock_guard<std::mutex> lock(probe->mu);
      probe->ok = DecodeHealth(frame.payload, &probe->info);
      probe->done = true;
      probe->cv.notify_all();
    }
    return;
  }
  if (type == MsgType::kProfile) {
    // Fulfills the in-flight probe BuildProfile parked on this backend,
    // with the same stale-answer tolerance as the health path.
    std::shared_ptr<ProfileProbe> probe;
    {
      std::lock_guard<std::mutex> lock(probes_mu_);
      const auto it = profile_probes_.find(backend);
      if (it != profile_probes_.end()) probe = it->second;
    }
    if (probe != nullptr) {
      std::lock_guard<std::mutex> lock(probe->mu);
      probe->ok = DecodeProfile(frame.payload, &probe->info);
      probe->done = true;
      probe->cv.notify_all();
    }
    return;
  }
  if (type != MsgType::kSubmitResult && type != MsgType::kError) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (frame.payload.size() < 8) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint64_t ticket = ReadLe64(frame.payload.data());
  if (type == MsgType::kError && ticket == 0) {
    // A stream-level complaint not attributable to one request. The
    // router only relays well-formed frames, so this is a backend-side
    // anomaly; it will be followed by the connection dropping.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    const auto it = pending_.find(ticket);
    if (it == pending_.end()) return;  // swept after a drop; already answered
    pending = std::move(it->second);
    pending_.erase(it);
  }
  // Divergence bookkeeping: a checked side contributes its fingerprint
  // (peeked at its fixed result offset — still no body decode). The
  // shadow copy ends here: it has no session, no outbox slot, and is
  // never relayed.
  if (pending.check_id != 0) {
    const bool result_ok = type == MsgType::kSubmitResult &&
                           frame.payload.size() >= kResultPeekBytes;
    const uint64_t fingerprint =
        result_ok ? ReadLe64(frame.payload.data() + kResultFingerprintOffset)
                  : 0;
    ResolveDivergence(pending.check_id, /*is_primary=*/!pending.shadow,
                      result_ok, fingerprint);
  }
  if (pending.shadow) return;
  if (type == MsgType::kSubmitResult) {
    relayed_results_.fetch_add(1, std::memory_order_relaxed);
  } else if (frame.payload.size() >= 10) {
    const uint16_t code = ReadLe16(frame.payload.data() + 8);
    if (code == static_cast<uint16_t>(WireError::kRejectedBusy)) {
      relayed_busy_.fetch_add(1, std::memory_order_relaxed);
    } else if (code == static_cast<uint16_t>(WireError::kShuttingDown)) {
      relayed_shutdown_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  backend->answered.fetch_add(1, std::memory_order_relaxed);
  const uint64_t now_ns = obs::MonotonicNs();
  if (type == MsgType::kSubmitResult) {
    wall_latency_us_->Observe(
        static_cast<double>(now_ns - pending.start_ns) / 1e3);
  }
  // Restore the client's correlation id in place and relay the frame
  // byte-for-byte otherwise (one re-framing copy, no decode).
  WriteLe64(pending.request_id, frame.payload.data());
  if (pending.trace != nullptr) {
    if (type == MsgType::kSubmitResult) {
      // The cross-node span: start_ns 0 by convention (the two nodes'
      // monotonic clocks are not comparable), duration the router's
      // forward->relay extent. O(1) in-place append to the v4 timing
      // trailer; a saturated trailer relays untouched.
      AppendResultSpan(&frame.payload, pending.trace->trace_id(),
                       static_cast<uint8_t>(obs::SpanKind::kRouterForward),
                       /*start_ns=*/0, now_ns - pending.start_ns);
      pending.trace->AddSpan(obs::SpanKind::kRouterForward, pending.start_ns,
                             now_ns);
    }
    // Errors finish the trace too — relayed rejections are investigation
    // material, and an unfinished trace would leak from the started/
    // finished counters' point of view.
    recorder_.Finish(pending.trace, now_ns - pending.start_ns);
  }
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  EncodeRawFrame(frame.type, frame.payload, &out);
  // Any-thread outbox surface: Push + Finish from this backend thread; the
  // wake doorbell schedules the flush on the loop thread that owns the
  // socket. Push before Finish, so a graceful close seeing in-flight zero
  // finds every answer already in the outbox. PushResponse re-stamps the
  // relayed header with the version the front-door peer spoke (the
  // backend stamped its own).
  pending.conn->PushResponse(std::move(out));
  pending.conn->outbox().FinishRequest();
}

void Router::FailPendingOn(int backend_index, int conn_index) {
  std::vector<std::pair<uint64_t, Pending>> victims;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.backend_index == backend_index &&
          it->second.conn_index == conn_index) {
        victims.emplace_back(it->first, std::move(it->second));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (victims.empty()) return;
  Backend* backend = backends_[static_cast<size_t>(backend_index)].get();
  const int slot = backend->slot;
  const std::string message =
      "backend " + AddressText(backend->address) + " connection lost";
  int failed_over = 0;
  int unavailable = 0;
  for (auto& [ticket, pending] : victims) {
    // Divergence shadows are abandoned, never re-issued: the check is a
    // sample, and re-running it against a THIRD party would not audit the
    // pair it started on.
    if (pending.shadow) {
      bool had_check;
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        had_check = checks_.erase(pending.check_id) > 0;
      }
      if (had_check) {
        divergence_incomplete_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    // Transparent failover: replay the retained frame — same ticket, same
    // bytes — against a live sibling replica. Deterministic, side-effect-
    // free execution makes the re-run byte-identical, and the ticket
    // lives in at most one pending entry, so the client still gets
    // exactly one answer. Whatever the dead backend computed but never
    // delivered is simply recomputed.
    if (pending.attempts < kMaxFailoverAttempts) {
      ++pending.attempts;
      const ForwardOutcome outcome =
          ForwardToSlot(slot, ticket, &pending, nullptr);
      if (outcome != ForwardOutcome::kUnavailable) {
        backend->failovers.fetch_add(1, std::memory_order_relaxed);
        failovers_total_.fetch_add(1, std::memory_order_relaxed);
        ++failed_over;
        if (options_.verbose) {
          std::fprintf(stderr,
                       "[router] ticket %llu failed over off %s\n",
                       static_cast<unsigned long long>(ticket),
                       AddressText(backend->address).c_str());
        }
        continue;
      }
    }
    // Whole slot down (or a flapping fleet exhausted the attempt cap):
    // answer with the typed error, exactly the pre-replication semantics.
    if (pending.check_id != 0) {
      bool had_check;
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        had_check = checks_.erase(pending.check_id) > 0;
      }
      if (had_check) {
        divergence_incomplete_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    const uint64_t now_ns = obs::MonotonicNs();
    backend->unavailable.fetch_add(1, std::memory_order_relaxed);
    unavailable_total_.fetch_add(1, std::memory_order_relaxed);
    ++unavailable;
    if (pending.trace != nullptr) {
      recorder_.Finish(pending.trace, now_ns - pending.start_ns);
    }
    SendError(pending.conn.get(), pending.request_id,
              WireError::kBackendUnavailable, message);
    pending.conn->outbox().FinishRequest();
  }
  // One journal entry per sweep, not per ticket: a death orphaning 500
  // in-flight requests is one operational fact, and the bounded ring must
  // not trade the death/reconnect story for 500 copies of it.
  if (failed_over > 0) {
    journal_.Emit(obs::EventKind::kFailover, obs::Severity::kWarn,
                  "backend=" + AddressText(backend->address) +
                      " tickets=" + std::to_string(failed_over));
  }
  if (unavailable > 0) {
    journal_.Emit(obs::EventKind::kFailover, obs::Severity::kError,
                  "backend=" + AddressText(backend->address) +
                      " slot=" + std::to_string(slot) +
                      " unanswerable=" + std::to_string(unavailable));
  }
}

}  // namespace dflow::net
