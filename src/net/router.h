#ifndef DFLOW_NET_ROUTER_H_
#define DFLOW_NET_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/client.h"
#include "net/event_loop.h"
#include "net/session_outbox.h"
#include "net/socket.h"
#include "net/wire_protocol.h"
#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "runtime/server_stats.h"

namespace dflow::net {

// One downstream dflow_serve instance the router fans out to.
struct BackendAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterOptions {
  // Front-door TCP port; 0 asks the kernel for an ephemeral port (read the
  // result from port() after Start). Loopback-only, like the ingress.
  uint16_t port = 0;
  // The fleet. Routing is FlowServer::ShardFor(seed, num_slots) where
  // num_slots = backends.size() / replicas, so the slot a request lands on
  // — and therefore every result byte — is a pure function of the
  // submitted request set, for any fleet size.
  std::vector<BackendAddress> backends;
  // Replica group width: consecutive runs of `replicas` backends form one
  // hash slot (backends [0, replicas) are slot 0, and so on), every member
  // serving byte-identical results for the slot's seeds. Submits go to the
  // slot's primary (its lowest-index live replica); when a replica's
  // connection drops, its unanswered in-flight tickets are transparently
  // re-issued to a live sibling. backends.size() must be a multiple of
  // this; 1 (the default) is the PR-4 unreplicated behavior.
  int replicas = 1;
  // Replica-divergence cross-check sampling: 1-in-N submits (chosen by a
  // deterministic seed hash, like trace sampling) are additionally sent to
  // a second live replica of their slot, and the two result fingerprints
  // must agree — byte-identity across replicas is the invariant that makes
  // failover safe, so it is continuously audited rather than assumed.
  // Shadow copies never reach the client and are invisible to front-door
  // accounting. 0 disables the check; meaningless unless replicas > 1.
  uint32_t divergence_sample_period = 0;
  // Treat a divergence-check fingerprint mismatch as fatal: log the pair
  // and terminate the process with exit code 3 (what dflow_router runs
  // with). Off, the mismatch only feeds dflow_replica_divergence_total and
  // the RouterStats counters — what the tests use.
  bool abort_on_divergence = false;
  // Wire connections kept to each backend. 1 gives strict fan-in (all
  // sessions share one stream per backend, so one full downstream queue
  // stalls everything routed there, exactly like in-process Submit); more
  // connections let unrelated sessions bypass a stalled stream.
  int connections_per_backend = 1;
  // Per-frame payload ceiling on the front door.
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  // Upper bound on the shutdown flush: how long Stop() lets graceful
  // closes drain their outboxes before force-closing stragglers (a client
  // that stops reading cannot wedge Stop()). Backend sends are
  // deliberately unbounded: a stalled backend send IS the backpressure
  // path.
  int send_timeout_ms = 10000;
  // Event-loop threads owning the front-door sockets; 0 picks
  // min(4, hardware_concurrency).
  int event_threads = 0;
  // Start() fails unless every backend completed its Info handshake within
  // this window (connection attempts retry with backoff inside it).
  double connect_timeout_s = 10.0;
  // Reconnect backoff after a backend drop: initial delay, doubling per
  // failed attempt up to the cap.
  int backoff_initial_ms = 50;
  int backoff_max_ms = 2000;
  bool verbose = false;
  // Identity reported in Info responses; empty means "router:<port>".
  std::string node_id;
  // Observability for the routing tier's own TraceRecorder. The router is
  // the entry point of a multi-node deployment, so this is where sampled
  // trace ids are minted: a sampled submit gets the v4 trace extension
  // patched in before forwarding, the backend adopts the id, and the
  // router appends its router.forward span to the relayed result — one
  // trace identity across nodes. All-default means tracing off.
  obs::TraceRecorderOptions trace;
  // Structured event journal for the routing tier's control-plane
  // transitions (backend death/reconnect, failover, divergence verdicts,
  // epoch refusals): ring size, optional JSONL sink (+ rotation budget),
  // stderr mirroring of warnings. Always on.
  obs::EventLogOptions events;
  // Health collector cadence + watermark rules (the v6 health plane).
  // interval_s <= 0 disables the collector thread; kHealthRequest is still
  // answered (with an empty rate series) so fleet polls never fail.
  obs::HealthOptions health;
};

// The multi-node routing tier: a standalone ingress process that speaks
// the wire protocol to clients on the front and fans every submit out to
// N downstream dflow_serve instances over pooled net::Client connections.
//
// Routing is the same seed hash the FlowServer uses internally
// (ShardFor(seed, num_backends)), so placement is stateless and results
// stay byte-identical to a direct single-server run for any fleet size:
// each instance still executes against a quiescent deterministic harness,
// wherever it lands.
//
// Forwarding is O(1) per frame: the router never decodes message bodies.
// A submit's routing key (seed) and correlation id sit at fixed offsets in
// the payload, so the router peeks them, rewrites the correlation id to a
// router-issued ticket, and relays the frame wholesale; the response path
// patches the client's original id back in. Ticket state lives in one map
// (ticket -> session + original id + backend connection), and whoever
// erases an entry — response relay, backend-death sweep, or a failed
// forward unwinding — owns answering it, so every admitted request is
// answered exactly once.
//
// Backpressure is end to end: a blocking submit that lands on a full
// downstream shard queue parks the *backend's* conn, TCP pushes the stall
// back to the router's backend send, which parks the loop thread holding
// that frame, and TCP pushes the stall on to the client. No queue in the
// chain is unbounded. (A parked backend send coarsens the stall to every
// conn on that loop thread — deliberate: a full downstream queue is a
// fleet-wide condition, and the alternative — buffering unsent forwards —
// would unbound the very queue the stall exists to bound.)
//
// Failure semantics: when a backend connection drops, every unanswered
// in-flight ticket on it is transparently re-issued to a live replica of
// the same slot (the stored forward frame is replayed under the same
// ticket; deterministic, side-effect-free execution makes the re-run
// byte-identical, and at-most-one pending entry per ticket keeps the
// answer exactly-once), and new submits prefer the slot's lowest-index
// live replica. Only when a slot has NO live replica do its tickets and
// new submits fail fast with a typed BACKEND_UNAVAILABLE error, while a
// per-connection thread reconnects with exponential backoff (re-running
// the Info identity handshake); seeds hashing to healthy slots are
// unaffected. The router never re-routes a seed outside its replica slot —
// that would silently break the determinism contract; within a slot every
// member serves the same bytes, which the sampled divergence cross-check
// (see RouterOptions) continuously audits.
//
// Shutdown (Stop, also run by the destructor) answers every admitted
// request before Goodbye: stop accepting, then gracefully close every
// front-door conn — the event loop waits for each conn's in-flight
// tickets to be answered (the backend pool is still live) and flushes the
// responses — and only then send Goodbye to the backends and retire the
// pool.
class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Connects the backend pool (retrying within connect_timeout_s), runs
  // the identity handshake against every backend, verifies they all serve
  // the same strategy, then binds the front listener and starts accepting.
  // Returns false and fills *error on failure. Call at most once.
  bool Start(std::string* error);

  // Graceful shutdown as described above. Idempotent.
  void Stop();

  // The bound front port (meaningful after a successful Start).
  uint16_t port() const { return listener_.port(); }

  int num_backends() const { return static_cast<int>(backends_.size()); }

  // Live counters: the front door in IngressStats shape, and the
  // per-backend RouterStats — the same objects a client reads via Info.
  runtime::IngressStats front_stats() const;
  RouterStats router_stats() const;
  ServerInfo BuildInfo() const;

  // Prometheus-style text exposition of every registered metric family —
  // what a kMetricsRequest frame answers and what --metrics-dump prints.
  // Per-backend families carry a {backend="host:port"} label.
  std::string MetricsText() const { return metrics_.RenderText(); }
  const obs::TraceRecorder& recorder() const { return recorder_; }
  const obs::EventLog& journal() const { return journal_; }
  const obs::HealthCollector& health() const { return health_; }

  // The fleet-wide health view a kHealthRequest answers: the router's own
  // plane plus one NodeHealth per backend, polled live over the pool (a
  // down or unresponsive backend contributes a synthesized critical
  // entry). Serialized internally; safe from any thread after Start().
  HealthInfo BuildHealth();

  // The fleet-wide profile view a kProfileRequest answers (wire v8): an
  // identity-only self entry (a router executes nothing) plus one
  // NodeProfile per backend, polled live over the pool exactly like
  // BuildHealth (a down backend contributes an empty identity entry).
  // Serialized internally; safe from any thread after Start().
  ProfileInfo BuildProfile();

 private:
  // Per-connection session state on the front door (EventConn::user) —
  // the same shape as the ingress server's sessions: the conn itself and
  // its outbox carry the byte counters, this carries the rest.
  struct Session {
    uint64_t id = 0;
    std::atomic<int64_t> accepted{0};
    // True once on_close folded this session's stats (or, for a conn that
    // retired before the acceptor could index it, suppresses the index
    // insert). Guarded by sessions_mu_.
    bool retired = false;
  };

  // One pooled wire connection to a backend. The conn thread owns the
  // connect/handshake/read/reconnect lifecycle and is the only writer of
  // `client`; senders use it under send_mu while `ready` is true.
  struct BackendConn {
    int backend_index = 0;
    int conn_index = 0;
    std::mutex send_mu;              // serializes sends; held to swap client
    std::unique_ptr<Client> client;  // swapped only by the conn thread
    std::atomic<bool> ready{false};  // handshake done, sends allowed
    std::thread thread;
  };

  struct Backend {
    BackendAddress address;
    std::vector<std::unique_ptr<BackendConn>> conns;
    std::atomic<uint32_t> rr{0};  // round-robin cursor over the pool
    // Replica placement (fixed at Start): slot = index / replicas,
    // replica = index % replicas.
    int slot = 0;
    int replica = 0;

    // Identity from the latest Info handshake, guarded by info_mu.
    mutable std::mutex info_mu;
    std::string node_id;
    std::string strategy;
    int32_t shards = 0;
    uint8_t backend_kind = 0;
    uint64_t queue_capacity = 0;
    uint64_t advisor_fingerprint = 0;  // nonzero only on AUTO backends
    uint64_t fleet_epoch = 0;

    std::atomic<int64_t> forwarded{0};
    std::atomic<int64_t> answered{0};
    std::atomic<int64_t> unavailable{0};
    std::atomic<int64_t> reconnects{0};
    // In-flight tickets moved OFF this backend to a sibling after a drop.
    std::atomic<int64_t> failovers{0};
  };

  struct Pending {
    std::shared_ptr<EventConn> conn;  // null on divergence-shadow copies
    uint64_t request_id = 0;  // client-chosen id, restored on the way back
    int backend_index = 0;
    int conn_index = 0;  // which pool connection carried it (death sweep)
    // Forward timestamp: the wall-clock latency histogram and the
    // router.forward span measure from here.
    uint64_t start_ns = 0;
    std::shared_ptr<obs::RequestTrace> trace;  // null = untraced
    // The exact frame that was forwarded (ticket already patched in) —
    // what a backend-death sweep replays against a sibling replica. One
    // retained copy per in-flight request, bounded by the same end-to-end
    // backpressure that bounds in-flight requests themselves. Shared (and
    // immutable) because Forward sends from it after releasing
    // pending_mu_, while a fast response can move this Pending out of the
    // map concurrently — the sender's reference keeps the bytes pinned.
    std::shared_ptr<const std::vector<uint8_t>> frame;
    // Failover re-issues so far; capped so a flapping fleet cannot bounce
    // one ticket forever.
    int attempts = 0;
    // Nonzero links this pending to a divergence check (checks_ key).
    uint64_t check_id = 0;
    // True for the cross-check's shadow copy: its answer feeds the check
    // and is never relayed (no session, no outbox accounting).
    bool shadow = false;
  };

  // One in-flight replica-divergence cross-check: the same request sent to
  // two replicas, fingerprints compared when both answered. Guarded by
  // pending_mu_ (the checks live and die with their pending entries).
  struct DivergenceCheck {
    uint64_t seed = 0;
    bool primary_done = false;
    bool shadow_done = false;
    bool failed = false;  // a side answered an error: nothing to compare
    uint64_t primary_fingerprint = 0;
    uint64_t shadow_fingerprint = 0;
  };

  // How one forward attempt ended (see HandleSubmit).
  enum class ForwardOutcome { kForwarded, kUnavailable, kAnsweredElsewhere };

  // One in-flight health poll of a backend, sent over its pooled
  // connection and fulfilled by the conn thread when the kHealth answer
  // arrives (conn threads own all reads, so the poll cannot read
  // synchronously). Keyed by backend index in health_probes_; shared_ptr
  // so a timed-out waiter and a late fulfillment never race lifetimes.
  struct HealthProbe {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    HealthInfo info;
  };

  // The profile plane's twin of HealthProbe: one in-flight kProfileRequest
  // per backend, fulfilled by the conn thread when the kProfile answer
  // arrives.
  struct ProfileProbe {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    ProfileInfo info;
  };

  void AcceptLoop();
  // One decoded frame, on the conn's owning loop thread. The router never
  // stalls a front-door conn: forwarding either succeeds (the blocking
  // backend send IS the backpressure path) or fails fast with a typed
  // error, so kStall is never returned here.
  EventConn::FrameAction HandleFrame(EventConn* conn,
                                     const std::shared_ptr<Session>& session,
                                     Frame& frame);
  void HandleSubmit(EventConn* conn, const std::shared_ptr<Session>& session,
                    Frame frame);
  // Unbundles a v7 BATCH_SUBMIT into per-item singleton submit frames fed
  // through HandleSubmit (items hash to different slots, so the router is
  // the one tier that cannot relay a batch wholesale). Item i forwards
  // under request_id_base + i; every ticket/failover/divergence invariant
  // is then the singleton path's by construction. An undecodable batch
  // closes the connection (kClose): the owed completion count is
  // unknowable, so the stream's accounting cannot be repaired.
  EventConn::FrameAction HandleBatchSubmit(
      EventConn* conn, const std::shared_ptr<Session>& session, Frame& frame);
  // One forward attempt against one backend: registers *pending under
  // `ticket` (consuming it) and sends its frame. On kUnavailable the
  // pending is handed back untouched so the caller can try a sibling.
  ForwardOutcome Forward(Backend* backend, uint64_t ticket, Pending* pending);
  // Tries every replica of `slot` in index order (lowest live index is the
  // primary). On kForwarded, *served names the backend that took it.
  ForwardOutcome ForwardToSlot(int slot, uint64_t ticket, Pending* pending,
                               int* served);
  // Launches the sampled cross-check: sends a shadow copy of the frame
  // just forwarded to a live replica of `slot` other than `served`.
  void LaunchShadow(int slot, int served, uint64_t shadow_ticket,
                    uint64_t request_id, uint64_t start_ns,
                    std::vector<uint8_t> shadow_frame);
  // Feeds one side's answer into its divergence check; compares and
  // settles the check when both sides are in.
  void ResolveDivergence(uint64_t check_id, bool is_primary, bool ok,
                         uint64_t fingerprint);
  static void SendError(EventConn* conn, uint64_t request_id, WireError code,
                        const std::string& message);
  // EventConn on_close hook: folds the conn's byte/outbox stats into the
  // closed-session accumulators exactly once.
  void OnConnClosed(EventConn* conn, const std::shared_ptr<Session>& session);

  // Backend-pool machinery, all on the per-connection thread.
  void BackendLoop(Backend* backend, BackendConn* conn);
  bool Handshake(Backend* backend, Client* client);
  void HandleBackendFrame(Backend* backend, Frame frame);
  // Sweeps every pending ticket carried by the given backend connection:
  // client tickets are re-issued to a live sibling replica (transparent
  // failover) or, when the whole slot is down, answered with a typed
  // BACKEND_UNAVAILABLE; divergence shadows are abandoned.
  void FailPendingOn(int backend_index, int conn_index);

  // Health plane. PollBackendHealth sends a kHealthRequest on one of the
  // backend's ready connections and waits (bounded) for the conn thread to
  // fulfill the probe; false on a down backend or timeout.
  bool PollBackendHealth(const Backend* backend, NodeHealth* out);
  // Same machinery for the v8 profile plane; false on a down backend or
  // timeout.
  bool PollBackendProfile(const Backend* backend, NodeProfile* out);
  obs::HealthSources MakeHealthSources();
  // Live replica slots with zero ready connections (the critical-status
  // topology input).
  int64_t CountSlotsDown() const;

  const RouterOptions options_;
  obs::TraceRecorder recorder_;
  obs::EventLog journal_;
  obs::MetricsRegistry metrics_;
  // Declared after journal_ and the counters it differences; the collector
  // thread runs Start() -> Stop().
  obs::HealthCollector health_;
  // Serializes fleet-wide BuildHealth polls; probes_mu_ guards the
  // per-backend probe map the conn threads fulfill.
  std::mutex health_poll_mu_;
  std::mutex profile_poll_mu_;
  std::mutex probes_mu_;
  std::unordered_map<const Backend*, std::shared_ptr<HealthProbe>>
      health_probes_;
  std::unordered_map<const Backend*, std::shared_ptr<ProfileProbe>>
      profile_probes_;
  // Registry-owned wall-clock latency histogram, observed on the relay
  // path (submit forwarded -> result relayed): the cross-node counterpart
  // of the ingress's dflow_wall_latency_us.
  obs::Histogram* wall_latency_us_ = nullptr;
  ListenSocket listener_;
  // The front door: a fixed pool of epoll threads owning every accepted
  // socket (see EventLoop). Declared after listener_; stopped by Stop()
  // before the backend pool retires, because graceful closes wait for
  // in-flight tickets the backends still owe answers to.
  EventLoop loop_;
  std::thread acceptor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  // serializes Stop()
  bool stopped_ = false;

  std::vector<std::unique_ptr<Backend>> backends_;
  // Fixed at Start(): normalized replica group width and the slot count
  // the seed hash routes over (backends_.size() / replicas_).
  int replicas_ = 1;
  int num_slots_ = 0;
  // The fleet-wide strategy: set once by Start() from the initial
  // handshakes, then enforced by every re-handshake (a restarted backend
  // serving a different strategy is refused — re-attaching it would
  // silently break byte-identity). An AUTO fleet is compatible as long as
  // every backend also reports the same advisor fingerprint: equal
  // fingerprints mean identical per-request choices, so byte-identity
  // holds exactly as it does for a fixed-strategy fleet. Guarded by
  // strategy_mu_ because conn threads revalidate against it while Start()
  // may still be writing it.
  mutable std::mutex strategy_mu_;
  std::string strategy_;
  uint64_t advisor_fingerprint_ = 0;  // fleet-wide; 0 unless AUTO
  // Fleet-epoch stamp (v5): set by Start() from the initial handshakes and
  // enforced — alongside strategy/advisor — on every re-handshake, so a
  // replica restarted under a different deployment generation is refused
  // instead of silently serving different bytes. epoch_set_ discriminates
  // "not yet learned" from the valid epoch 0.
  uint64_t fleet_epoch_ = 0;
  bool epoch_set_ = false;

  // Wakes conn threads out of their backoff sleep on Stop.
  std::mutex backoff_mu_;
  std::condition_variable backoff_cv_;

  // Live conns indexed by session id, for the stats live-scan; closed
  // conns fold into the accumulators below under the same lock (exactly
  // once, see Session::retired).
  mutable std::mutex sessions_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<EventConn>> conns_;
  uint64_t next_session_id_ = 1;
  // Byte/outbox stats of sessions that already tore down (under
  // sessions_mu_); the HWM folds by max, the totals by sum.
  SessionOutbox::Stats closed_outbox_;
  int64_t closed_bytes_in_ = 0;

  std::mutex pending_mu_;
  std::unordered_map<uint64_t, Pending> pending_;
  // In-flight divergence checks, keyed by the shadow copy's ticket (also
  // stamped into both participating Pending entries as check_id).
  std::unordered_map<uint64_t, DivergenceCheck> checks_;  // pending_mu_
  std::atomic<uint64_t> next_ticket_{1};

  // Replicated-fleet counters (RouterStats + the obs registry).
  std::atomic<int64_t> failovers_total_{0};
  std::atomic<int64_t> divergence_checks_{0};
  std::atomic<int64_t> divergence_mismatches_{0};
  std::atomic<int64_t> divergence_incomplete_{0};

  // Front-door aggregates (IngressStats shape; `accepted` means forwarded
  // to a backend — the router's notion of admission).
  std::atomic<int64_t> connections_opened_{0};
  std::atomic<int64_t> connections_closed_{0};
  std::atomic<int64_t> requests_routed_{0};
  std::atomic<int64_t> relayed_results_{0};
  std::atomic<int64_t> relayed_busy_{0};
  std::atomic<int64_t> relayed_shutdown_{0};
  std::atomic<int64_t> unavailable_total_{0};
  std::atomic<int64_t> decode_errors_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> info_requests_{0};
};

}  // namespace dflow::net

#endif  // DFLOW_NET_ROUTER_H_
