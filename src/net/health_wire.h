#ifndef DFLOW_NET_HEALTH_WIRE_H_
#define DFLOW_NET_HEALTH_WIRE_H_

#include <vector>

#include "net/wire_protocol.h"
#include "obs/event_log.h"
#include "obs/timeseries.h"

namespace dflow::net {

// obs -> wire converters for the v6 health plane, shared by the ingress
// and the router. The wire caps below bound a HEALTH frame: both front
// doors ship at most this many journal entries / ring samples per node,
// so a fleet-wide response stays a few KB regardless of ring capacities.
inline constexpr size_t kHealthWireMaxEvents = 32;
inline constexpr size_t kHealthWireMaxSamples = 30;

inline WireEvent ToWire(const obs::Event& event) {
  WireEvent out;
  out.kind = static_cast<uint8_t>(event.kind);
  out.severity = static_cast<uint8_t>(event.severity);
  out.wall_ms = event.wall_ms;
  out.node = event.node;
  out.detail = event.detail;
  return out;
}

inline WireHealthSample ToWire(const obs::HealthSample& sample) {
  WireHealthSample out;
  out.wall_ms = sample.wall_ms;
  out.interval_s = sample.interval_s;
  out.requests_per_s = sample.requests_per_s;
  out.failovers_per_s = sample.failovers_per_s;
  out.cache_hit_rate = sample.cache_hit_rate;
  out.p95_wall_ms = sample.p95_wall_ms;
  out.queue_depth_max = sample.queue_depth_max;
  out.queue_utilization = sample.queue_utilization;
  out.status = static_cast<uint8_t>(sample.status);
  return out;
}

// Fills a NodeHealth's journal tail and rate series from a node's own
// plane (identity/counters are the caller's business).
inline void FillNodeHealthPlane(const obs::EventLog& journal,
                                const obs::HealthCollector* collector,
                                NodeHealth* node) {
  node->events_total = journal.total();
  for (const obs::Event& event : journal.Tail(kHealthWireMaxEvents)) {
    node->events.push_back(ToWire(event));
  }
  if (collector != nullptr) {
    node->status = static_cast<uint8_t>(collector->status());
    for (const obs::HealthSample& sample :
         collector->Recent(kHealthWireMaxSamples)) {
      node->series.push_back(ToWire(sample));
    }
  }
}

}  // namespace dflow::net

#endif  // DFLOW_NET_HEALTH_WIRE_H_
