#include "net/session_outbox.h"

#include <utility>

namespace dflow::net {

void SessionOutbox::Push(std::vector<uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    if (out_closed_) return;  // session tearing down; drop
    if (!outbox_.empty()) ++write_stalls_;  // queued behind unsent frames
    outbox_.push_back(std::move(frame));
  }
  out_cv_.notify_one();
}

void SessionOutbox::Close() {
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    out_closed_ = true;
  }
  out_cv_.notify_all();
}

void SessionOutbox::DrainTo(
    const std::function<bool(const std::vector<uint8_t>&)>& send) {
  while (true) {
    std::vector<uint8_t> frame;
    {
      std::unique_lock<std::mutex> lock(out_mu_);
      out_cv_.wait(lock, [&] { return !outbox_.empty() || out_closed_; });
      if (outbox_.empty()) return;  // closed and drained
      frame = std::move(outbox_.front());
      outbox_.pop_front();
      if (dead_) continue;  // discard; peer is unreachable
    }
    const bool sent = send(frame);
    {
      std::lock_guard<std::mutex> lock(out_mu_);
      if (sent) {
        bytes_written_ += static_cast<int64_t>(frame.size());
      } else {
        dead_ = true;
      }
    }
  }
}

void SessionOutbox::BeginRequest() {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  ++inflight_;
  if (inflight_ > inflight_hwm_) inflight_hwm_ = inflight_;
}

void SessionOutbox::FinishRequest() {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --inflight_;
  }
  inflight_cv_.notify_all();
}

void SessionOutbox::WaitDrained() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [&] { return inflight_ == 0; });
}

SessionOutbox::Stats SessionOutbox::GetStats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    stats.bytes_written = bytes_written_;
    stats.write_stalls = write_stalls_;
  }
  std::lock_guard<std::mutex> lock(inflight_mu_);
  stats.inflight_hwm = inflight_hwm_;
  return stats;
}

}  // namespace dflow::net
