#include "net/session_outbox.h"

#include <utility>

namespace dflow::net {

void SessionOutbox::Push(std::vector<uint8_t> frame) {
  std::function<void()> wake;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    if (out_closed_) return;  // session tearing down; drop
    if (!outbox_.empty()) ++write_stalls_;  // queued behind unsent frames
    outbox_.push_back(std::move(frame));
    wake = wake_;
  }
  out_cv_.notify_one();
  if (wake) wake();
}

void SessionOutbox::Close() {
  std::function<void()> wake;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    out_closed_ = true;
    wake = wake_;
  }
  out_cv_.notify_all();
  if (wake) wake();
}

void SessionOutbox::SetWakeCallback(std::function<void()> wake) {
  std::lock_guard<std::mutex> lock(out_mu_);
  wake_ = std::move(wake);
}

void SessionOutbox::DrainTo(
    const std::function<bool(const std::vector<uint8_t>&)>& send) {
  while (true) {
    std::vector<uint8_t> frame;
    {
      std::unique_lock<std::mutex> lock(out_mu_);
      out_cv_.wait(lock, [&] { return !outbox_.empty() || out_closed_; });
      if (outbox_.empty()) return;  // closed and drained
      frame = std::move(outbox_.front());
      outbox_.pop_front();
      if (dead_) continue;  // discard; peer is unreachable
    }
    const bool sent = send(frame);
    {
      std::lock_guard<std::mutex> lock(out_mu_);
      if (sent) {
        bytes_written_ += static_cast<int64_t>(frame.size());
      } else {
        dead_ = true;
      }
    }
  }
}

SessionOutbox::DrainStatus SessionOutbox::TryDrain(
    const std::function<IoResult(const uint8_t*, size_t)>& send_some) {
  std::unique_lock<std::mutex> lock(out_mu_);
  while (true) {
    if (dead_ && !outbox_.empty()) {
      // Peer unreachable: discard, as DrainTo does, so Close() still
      // converges to kComplete and teardown never wedges.
      outbox_.clear();
      write_offset_ = 0;
    }
    if (outbox_.empty()) {
      return out_closed_ ? DrainStatus::kComplete : DrainStatus::kDrained;
    }
    // Send outside the lock so shard workers can keep Pushing. Safe: only
    // this (single-drainer) thread pops, and push_back on a deque does not
    // invalidate the front reference.
    std::vector<uint8_t>& frame = outbox_.front();
    const size_t offset = write_offset_;
    lock.unlock();
    const IoResult result =
        send_some(frame.data() + offset, frame.size() - offset);
    lock.lock();
    switch (result.status) {
      case IoStatus::kOk:
        bytes_written_ += static_cast<int64_t>(result.bytes);
        write_offset_ += result.bytes;
        if (write_offset_ == outbox_.front().size()) {
          outbox_.pop_front();
          write_offset_ = 0;
        }
        break;
      case IoStatus::kWouldBlock:
        return DrainStatus::kBlocked;
      case IoStatus::kEof:
      case IoStatus::kError:
        dead_ = true;
        break;
    }
  }
}

void SessionOutbox::BeginRequest() {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  ++inflight_;
  if (inflight_ > inflight_hwm_) inflight_hwm_ = inflight_;
}

void SessionOutbox::FinishRequest() {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --inflight_;
  }
  inflight_cv_.notify_all();
}

void SessionOutbox::WaitDrained() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [&] { return inflight_ == 0; });
}

int64_t SessionOutbox::Inflight() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  return inflight_;
}

SessionOutbox::Stats SessionOutbox::GetStats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    stats.bytes_written = bytes_written_;
    stats.write_stalls = write_stalls_;
  }
  std::lock_guard<std::mutex> lock(inflight_mu_);
  stats.inflight_hwm = inflight_hwm_;
  return stats;
}

}  // namespace dflow::net
