#ifndef DFLOW_NET_SOCKET_H_
#define DFLOW_NET_SOCKET_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>

namespace dflow::net {

// Thin RAII wrappers over POSIX TCP sockets — just enough transport for the
// wire protocol: connect/accept, full-buffer sends, chunk receives, and the
// shutdown() calls the server's drain protocol needs to unblock readers.
// Deliberately not a general networking layer; IPv4 only ("localhost" is
// accepted as an alias for 127.0.0.1).

// Outcome of one non-blocking transfer attempt (SendSome/RecvSome).
// kWouldBlock is the event loop's "arm epoll and come back" signal; kEof
// only occurs on the receive side (orderly peer close).
enum class IoStatus : uint8_t { kOk, kWouldBlock, kEof, kError };

struct IoResult {
  IoStatus status = IoStatus::kError;
  size_t bytes = 0;  // transferred this call; meaningful only for kOk
};

// A connected stream socket. Move-only; the destructor closes.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  // Connects to host:port with TCP_NODELAY set (the protocol is
  // request/response; Nagle would add latency for nothing). Returns an
  // invalid socket and fills *error on failure.
  static Socket ConnectTcp(const std::string& host, uint16_t port,
                           std::string* error);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Caps how long one send may block (SO_SNDTIMEO); a timed-out SendAll
  // returns false. 0 restores "block forever".
  void SetSendTimeout(int timeout_ms);

  // Caps how long one Recv may block (SO_RCVTIMEO); a timed-out Recv
  // returns <0. 0 restores "block forever". The router bounds its backend
  // Info handshake with this, so a wedged backend cannot pin a connection
  // thread forever.
  void SetRecvTimeout(int timeout_ms);

  // Sends the whole buffer, retrying short writes and EINTR. Returns false
  // once the peer is gone (EPIPE/ECONNRESET/...) or a send timed out.
  bool SendAll(const void* data, size_t size);

  // Receives up to `size` bytes: >0 bytes received, 0 orderly peer close
  // (or a local ShutdownRead), <0 error.
  ssize_t Recv(void* data, size_t size);

  // Switches the fd to O_NONBLOCK (the event-loop mode; SendAll/Recv above
  // assume blocking sockets and must not be mixed in afterwards). Returns
  // false when the fcntl fails.
  bool SetNonBlocking();

  // One non-blocking send attempt: transfers what the socket buffer takes
  // right now. EINTR is retried; a full buffer is kWouldBlock (arm
  // EPOLLOUT), a vanished peer is kError. Never raises SIGPIPE.
  IoResult SendSome(const void* data, size_t size);

  // One non-blocking receive attempt. EINTR is retried; an empty buffer is
  // kWouldBlock, an orderly peer close is kEof.
  IoResult RecvSome(void* data, size_t size);

  // Half-close helpers. ShutdownRead unblocks a Recv() parked in the
  // kernel — the server uses it to retire session readers during drain
  // while their pending responses still flush out the write side.
  void ShutdownRead();
  void ShutdownWrite();
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

// A listening TCP socket bound to 127.0.0.1.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  // Binds 127.0.0.1:port (0 asks the kernel for an ephemeral port — read
  // the result from port()) and listens. SO_REUSEADDR is set so restarts
  // do not trip over TIME_WAIT. Returns false and fills *error on failure.
  bool Listen(uint16_t port, std::string* error);

  bool valid() const { return fd_ >= 0; }
  // The actually bound port (resolves port 0 via getsockname).
  uint16_t port() const { return port_; }

  // Why an Accept() returned an invalid Socket. kTransient is resource
  // exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM): the listener is fine, the
  // caller should back off and retry instead of exiting — under a
  // connection flood, treating out-of-fds as fatal turns load into an
  // outage. kShutdown is the poisoned listener (or a genuinely fatal
  // accept error): the acceptor's exit signal.
  enum class AcceptStatus : uint8_t { kOk, kTransient, kShutdown };

  // Blocks for the next connection; the accepted socket has TCP_NODELAY
  // set. Returns an invalid Socket once Shutdown() was called (the
  // acceptor's exit signal) or on a fatal error; `status` (when non-null)
  // distinguishes transient resource exhaustion from the terminal cases.
  // EINTR and ECONNABORTED (peer gone before accept) are retried
  // internally and never surface.
  Socket Accept(AcceptStatus* status = nullptr);

  // Unblocks a pending Accept() and poisons the listener. Idempotent.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace dflow::net

#endif  // DFLOW_NET_SOCKET_H_
