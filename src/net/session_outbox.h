#ifndef DFLOW_NET_SESSION_OUTBOX_H_
#define DFLOW_NET_SESSION_OUTBOX_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "net/socket.h"

namespace dflow::net {

// The front-door session plumbing IngressServer and Router share: the
// encoded-frame outbox a dedicated writer drains, and the in-flight
// request accounting behind the drain-answers-everything shutdown
// invariant. Extracted so the invariants live in one place:
//
//   - Push() after Close() drops the frame (the session is tearing down;
//     nothing may be appended once the writer was told the stream is
//     complete);
//   - a failed send marks the session dead, and the writer then *drains
//     without sending* — teardown never wedges on an unreachable peer;
//   - the reader-side teardown order is WaitDrained() (every admitted
//     request answered into the outbox) then Close() then joining the
//     writer, so a client that waits for its responses sees all of them
//     before the FIN.
//
// Threading: Push/Begin/Finish from any thread (session readers, shard
// workers, backend conn threads); DrainTo from the single writer thread;
// WaitDrained/Close from the session reader during teardown.
class SessionOutbox {
 public:
  SessionOutbox() = default;
  SessionOutbox(const SessionOutbox&) = delete;
  SessionOutbox& operator=(const SessionOutbox&) = delete;

  // Enqueues one encoded frame for the writer, unless the outbox is
  // closed (then the frame is dropped — the peer already got everything
  // it was owed).
  void Push(std::vector<uint8_t> frame);

  // Marks the stream complete: the writer retires once the backlog is
  // drained, and further Push()es are dropped.
  void Close();

  // The writer loop: blocks for frames and hands each to `send` until the
  // outbox is closed and drained. `send` returns false on transport
  // failure, after which the session is dead and the remaining frames are
  // discarded (the loop still runs to completion so Close() releases it).
  void DrainTo(const std::function<bool(const std::vector<uint8_t>&)>& send);

  // Outcome of one TryDrain pass (the event-loop writer).
  enum class DrainStatus : uint8_t {
    kDrained,   // outbox empty; the stream is still open
    kBlocked,   // the socket buffer filled mid-frame — arm EPOLLOUT
    kComplete,  // Close() seen and every frame flushed (or discarded)
  };

  // Non-blocking drain for an event-loop conn: sends as much of the
  // backlog as the socket takes right now, tracking a partial-write offset
  // into the front frame across calls. A failed send marks the session
  // dead exactly like DrainTo (subsequent frames are discarded, the
  // status converges to kDrained/kComplete so teardown never wedges).
  // Single-drainer: only the conn's owning loop thread may call this (or
  // DrainTo — never both on one outbox).
  DrainStatus TryDrain(
      const std::function<IoResult(const uint8_t*, size_t)>& send_some);

  // Installs a callback invoked (outside the lock) after every Push that
  // enqueued a frame and after Close() — the event loop's cross-thread
  // "this conn has bytes to write" doorbell. Install before the conn
  // starts handling frames; not synchronized against in-flight Pushes.
  void SetWakeCallback(std::function<void()> wake);

  // In-flight accounting: one Begin per admitted request, one Finish per
  // answer enqueued (or per unwound refusal). WaitDrained blocks until
  // they balance — the "every admitted request answered" barrier.
  void BeginRequest();
  void FinishRequest();
  void WaitDrained();
  // Current Begin/Finish imbalance — the event loop polls this instead of
  // parking a thread in WaitDrained during graceful close.
  int64_t Inflight() const;

  // Write-side health counters for this session. inflight_hwm is the peak
  // Begin/Finish imbalance (how deep the session ever ran); bytes_written
  // counts bytes actually handed to a *successful* send; write_stalls
  // counts Pushes that queued behind unsent frames (the writer was not
  // keeping up at that instant — a per-event signal, not a duration).
  struct Stats {
    int64_t inflight_hwm = 0;
    int64_t bytes_written = 0;
    int64_t write_stalls = 0;
  };
  Stats GetStats() const;

 private:
  mutable std::mutex out_mu_;
  std::condition_variable out_cv_;
  std::deque<std::vector<uint8_t>> outbox_;
  bool out_closed_ = false;
  bool dead_ = false;  // a send failed; drain without sending
  int64_t bytes_written_ = 0;  // under out_mu_
  int64_t write_stalls_ = 0;   // under out_mu_
  size_t write_offset_ = 0;  // bytes of outbox_.front() already sent
  std::function<void()> wake_;  // under out_mu_ (copied out to invoke)

  mutable std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  int64_t inflight_ = 0;
  int64_t inflight_hwm_ = 0;  // under inflight_mu_
};

}  // namespace dflow::net

#endif  // DFLOW_NET_SESSION_OUTBOX_H_
