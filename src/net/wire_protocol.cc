#include "net/wire_protocol.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/rng.h"

namespace dflow::net {
namespace {

// --- Little-endian primitive writers appending to a byte vector.

void PutU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(int64_t v, std::vector<uint8_t>* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutDouble(double v, std::vector<uint8_t>* out) {
  PutU64(std::bit_cast<uint64_t>(v), out);
}

void PutString(const std::string& s, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->insert(out->end(), s.begin(), s.end());
}

void PutValue(const Value& value, std::vector<uint8_t>* out) {
  PutU8(static_cast<uint8_t>(value.type()), out);
  switch (value.type()) {
    case Value::Type::kNull:
      break;
    case Value::Type::kBool:
      PutU8(value.bool_value() ? 1 : 0, out);
      break;
    case Value::Type::kInt:
      PutI64(value.int_value(), out);
      break;
    case Value::Type::kDouble:
      PutDouble(value.double_value(), out);
      break;
    case Value::Type::kString:
      PutString(value.string_value(), out);
      break;
  }
}

// --- Bounds-checked little-endian reader over a payload. Every Get fails
// (returns false, poisoning the reader) on a short read; Done() afterwards
// rejects trailing garbage, so a decode succeeds only on an exact parse.

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (!Need(1)) return false;
    *v = data_[pos_++];
    return true;
  }

  bool GetU16(uint16_t* v) {
    if (!Need(2)) return false;
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (!Need(4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (!Need(8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t raw;
    if (!GetU64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }

  bool GetDouble(double* v) {
    uint64_t raw;
    if (!GetU64(&raw)) return false;
    *v = std::bit_cast<double>(raw);
    return true;
  }

  bool GetString(std::string* s) {
    uint32_t size;
    if (!GetU32(&size) || !Need(size)) return false;
    s->assign(reinterpret_cast<const char*>(data_.data()) + pos_, size);
    pos_ += size;
    return true;
  }

  bool GetValue(Value* value) {
    uint8_t tag;
    if (!GetU8(&tag)) return false;
    // Range-check before casting: Value::Type has no fixed underlying
    // type, so static_cast from an out-of-range wire byte would be UB.
    if (tag > static_cast<uint8_t>(Value::Type::kString)) return Fail();
    switch (static_cast<Value::Type>(tag)) {
      case Value::Type::kNull:
        *value = Value::Null();
        return true;
      case Value::Type::kBool: {
        uint8_t b;
        if (!GetU8(&b) || b > 1) return Fail();
        *value = Value::Bool(b == 1);
        return true;
      }
      case Value::Type::kInt: {
        int64_t i;
        if (!GetI64(&i)) return false;
        *value = Value::Int(i);
        return true;
      }
      case Value::Type::kDouble: {
        double d;
        if (!GetDouble(&d)) return false;
        *value = Value::Double(d);
        return true;
      }
      case Value::Type::kString: {
        std::string s;
        if (!GetString(&s)) return false;
        *value = Value::String(std::move(s));
        return true;
      }
    }
    return Fail();  // unknown type tag
  }

  // True iff every byte was consumed and nothing failed.
  bool Done() const { return ok_ && pos_ == data_.size(); }

  // Unconsumed bytes (0 once poisoned) — lets the SubmitResult decoder
  // size the count-terminated timing trailer before walking it.
  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) return Fail();
    return true;
  }
  bool Fail() {
    ok_ = false;
    return false;
  }

  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Reserves a frame header in `out`, returning the patch offset; the
// payload is then appended in place and SealFrame fills in its length.
size_t BeginFrame(MsgType type, std::vector<uint8_t>* out) {
  const size_t header_at = out->size();
  PutU8(kMagic0, out);
  PutU8(kMagic1, out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(type), out);
  PutU32(0, out);  // payload length, patched by SealFrame
  return header_at;
}

void SealFrame(size_t header_at, std::vector<uint8_t>* out) {
  const uint32_t payload_len =
      static_cast<uint32_t>(out->size() - header_at - kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    (*out)[header_at + 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(payload_len >> (8 * i));
  }
}

constexpr uint32_t kFlagBlocking = 1u << 0;
constexpr uint32_t kFlagWantSnapshot = 1u << 1;
// v4: the submit payload carries a trailing trace-context extension
// ([trace_id u64][trace_flags u8], after the sources). The routing tier
// sets this bit by patching the flags word in place at offset 16 — keep
// that offset stable.
constexpr uint32_t kFlagHasTrace = 1u << 2;
constexpr uint32_t kKnownFlags =
    kFlagBlocking | kFlagWantSnapshot | kFlagHasTrace;

// The SubmitResult timing trailer: [trace_id u64][count x 17-byte spans]
// [count u8]. The span count terminates the payload (rather than leading
// the trailer) so a router can append its own span without decoding the
// body: insert 17 bytes before the last byte, bump it.
constexpr size_t kWireSpanBytes = 17;
constexpr size_t kMinTrailerBytes = 9;  // trace_id + count, zero spans
// Valid obs::SpanKind range on the wire (kMinSpanKind..kMaxSpanKind).
constexpr uint8_t kMinWireSpanKind = 1;
constexpr uint8_t kMaxWireSpanKind = 7;

bool GetSnapshotEntry(Reader* reader, SnapshotEntry* entry) {
  uint32_t attr;
  uint8_t state;
  if (!reader->GetU32(&attr) || !reader->GetU8(&state) ||
      !reader->GetValue(&entry->value)) {
    return false;
  }
  if (state > static_cast<uint8_t>(core::AttrState::kDisabled)) return false;
  entry->attr = static_cast<AttributeId>(attr);
  entry->state = static_cast<core::AttrState>(state);
  return true;
}

void PutIngressStats(const runtime::IngressStats& s,
                     std::vector<uint8_t>* out) {
  PutI64(s.connections_opened, out);
  PutI64(s.connections_closed, out);
  PutI64(s.requests_accepted, out);
  PutI64(s.requests_rejected_busy, out);
  PutI64(s.requests_rejected_shutdown, out);
  PutI64(s.decode_errors, out);
  PutI64(s.protocol_errors, out);
  PutI64(s.info_requests, out);
  PutI64(s.bytes_in, out);
  PutI64(s.bytes_out, out);
  PutI64(s.outbox_inflight_hwm, out);
  PutI64(s.outbox_bytes_written, out);
  PutI64(s.outbox_write_stalls, out);
}

// --- v6 health-plane helpers. Wire byte ranges for the obs enums carried
// as raw u8 (obs::EventKind, obs::Severity, obs::HealthStatus); decoders
// range-check before the structs ever reach obs code.
constexpr uint8_t kMinWireEventKind = 1;
constexpr uint8_t kMaxWireEventKind = 11;  // v8: + profile_snapshot
constexpr uint8_t kMaxWireSeverity = 2;
constexpr uint8_t kMaxWireHealthStatus = 2;
// Minimum payload bytes of each variable-count entry, bounding hostile
// counts before a reserve: an event is 2 flag bytes + wall_ms + two empty
// strings; a sample is a fixed 65-byte block; a node entry is an empty
// node_id + 2 flag bytes + five i64 counters + two empty vectors.
constexpr size_t kMinWireEventBytes = 18;
constexpr size_t kWireHealthSampleBytes = 65;
constexpr size_t kMinNodeHealthBytes = 54;

void PutWireEvent(const WireEvent& event, std::vector<uint8_t>* out) {
  PutU8(event.kind, out);
  PutU8(event.severity, out);
  PutI64(event.wall_ms, out);
  PutString(event.node, out);
  PutString(event.detail, out);
}

bool GetWireEvent(Reader* reader, WireEvent* event) {
  return reader->GetU8(&event->kind) && event->kind >= kMinWireEventKind &&
         event->kind <= kMaxWireEventKind &&
         reader->GetU8(&event->severity) &&
         event->severity <= kMaxWireSeverity &&
         reader->GetI64(&event->wall_ms) && reader->GetString(&event->node) &&
         reader->GetString(&event->detail);
}

void PutHealthSample(const WireHealthSample& sample,
                     std::vector<uint8_t>* out) {
  PutI64(sample.wall_ms, out);
  PutDouble(sample.interval_s, out);
  PutDouble(sample.requests_per_s, out);
  PutDouble(sample.failovers_per_s, out);
  PutDouble(sample.cache_hit_rate, out);
  PutDouble(sample.p95_wall_ms, out);
  PutU64(sample.queue_depth_max, out);
  PutDouble(sample.queue_utilization, out);
  PutU8(sample.status, out);
}

bool GetHealthSample(Reader* reader, WireHealthSample* sample) {
  return reader->GetI64(&sample->wall_ms) &&
         reader->GetDouble(&sample->interval_s) &&
         reader->GetDouble(&sample->requests_per_s) &&
         reader->GetDouble(&sample->failovers_per_s) &&
         reader->GetDouble(&sample->cache_hit_rate) &&
         reader->GetDouble(&sample->p95_wall_ms) &&
         reader->GetU64(&sample->queue_depth_max) &&
         reader->GetDouble(&sample->queue_utilization) &&
         reader->GetU8(&sample->status) &&
         sample->status <= kMaxWireHealthStatus;
}

void PutNodeHealth(const NodeHealth& node, std::vector<uint8_t>* out) {
  PutString(node.node_id, out);
  PutU8(node.status, out);
  PutU8(node.is_router, out);
  PutI64(node.completed, out);
  PutI64(node.failovers, out);
  PutI64(node.divergence_checks, out);
  PutI64(node.divergence_mismatches, out);
  PutI64(node.events_total, out);
  PutU32(static_cast<uint32_t>(node.series.size()), out);
  for (const WireHealthSample& sample : node.series) {
    PutHealthSample(sample, out);
  }
  PutU32(static_cast<uint32_t>(node.events.size()), out);
  for (const WireEvent& event : node.events) PutWireEvent(event, out);
}

bool GetNodeHealth(Reader* reader, const std::vector<uint8_t>& payload,
                   NodeHealth* node) {
  uint32_t num_samples;
  if (!reader->GetString(&node->node_id) || !reader->GetU8(&node->status) ||
      node->status > kMaxWireHealthStatus || !reader->GetU8(&node->is_router) ||
      node->is_router > 1 || !reader->GetI64(&node->completed) ||
      !reader->GetI64(&node->failovers) ||
      !reader->GetI64(&node->divergence_checks) ||
      !reader->GetI64(&node->divergence_mismatches) ||
      !reader->GetI64(&node->events_total) || !reader->GetU32(&num_samples)) {
    return false;
  }
  if (num_samples > payload.size() / kWireHealthSampleBytes) return false;
  node->series.clear();
  node->series.reserve(num_samples);
  for (uint32_t i = 0; i < num_samples; ++i) {
    WireHealthSample sample;
    if (!GetHealthSample(reader, &sample)) return false;
    node->series.push_back(sample);
  }
  uint32_t num_events;
  if (!reader->GetU32(&num_events)) return false;
  if (num_events > payload.size() / kMinWireEventBytes) return false;
  node->events.clear();
  node->events.reserve(num_events);
  for (uint32_t i = 0; i < num_events; ++i) {
    WireEvent event;
    if (!GetWireEvent(reader, &event)) return false;
    node->events.push_back(std::move(event));
  }
  return true;
}

// --- v8 profiling-plane helpers. Minimum bytes per variable-count entry,
// bounding hostile counts before a reserve: an attr/cond row is a u32 id +
// an empty string + five i64 counters; a class row is a fixed 48-byte
// block; a node entry is an empty node_id + flag byte + sample_period +
// two i64 counters + three empty vectors + an empty plan_dot.
constexpr size_t kMinWireAttrProfileBytes = 48;
constexpr size_t kMinWireCondProfileBytes = 48;
constexpr size_t kWireClassProfileBytes = 48;
constexpr size_t kMinNodeProfileBytes = 45;

void PutWireAttrProfile(const WireAttrProfile& row, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(row.attr), out);
  PutString(row.name, out);
  PutI64(row.launches, out);
  PutI64(row.work_units, out);
  PutI64(row.speculative_launches, out);
  PutI64(row.wasted_work, out);
  PutI64(row.useful_completions, out);
}

bool GetWireAttrProfile(Reader* reader, WireAttrProfile* row) {
  uint32_t attr;
  if (!reader->GetU32(&attr) || !reader->GetString(&row->name) ||
      !reader->GetI64(&row->launches) || !reader->GetI64(&row->work_units) ||
      !reader->GetI64(&row->speculative_launches) ||
      !reader->GetI64(&row->wasted_work) ||
      !reader->GetI64(&row->useful_completions)) {
    return false;
  }
  row->attr = static_cast<AttributeId>(attr);
  return true;
}

void PutWireCondProfile(const WireCondProfile& row, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(row.attr), out);
  PutString(row.name, out);
  PutI64(row.evals, out);
  PutI64(row.true_outcomes, out);
  PutI64(row.false_outcomes, out);
  PutI64(row.unknown_outcomes, out);
  PutI64(row.eager_disables, out);
}

bool GetWireCondProfile(Reader* reader, WireCondProfile* row) {
  uint32_t attr;
  if (!reader->GetU32(&attr) || !reader->GetString(&row->name) ||
      !reader->GetI64(&row->evals) || !reader->GetI64(&row->true_outcomes) ||
      !reader->GetI64(&row->false_outcomes) ||
      !reader->GetI64(&row->unknown_outcomes) ||
      !reader->GetI64(&row->eager_disables)) {
    return false;
  }
  row->attr = static_cast<AttributeId>(attr);
  return true;
}

void PutWireClassProfile(const WireClassProfile& row,
                         std::vector<uint8_t>* out) {
  PutU64(row.class_key, out);
  PutI64(row.requests, out);
  PutI64(row.work, out);
  PutI64(row.wasted_work, out);
  PutI64(row.cache_hits, out);
  PutI64(row.cache_misses, out);
}

bool GetWireClassProfile(Reader* reader, WireClassProfile* row) {
  return reader->GetU64(&row->class_key) && reader->GetI64(&row->requests) &&
         reader->GetI64(&row->work) && reader->GetI64(&row->wasted_work) &&
         reader->GetI64(&row->cache_hits) && reader->GetI64(&row->cache_misses);
}

void PutNodeProfile(const NodeProfile& node, std::vector<uint8_t>* out) {
  PutString(node.node_id, out);
  PutU8(node.is_router, out);
  PutU64(node.sample_period, out);
  PutI64(node.profiled_requests, out);
  PutI64(node.total_requests, out);
  PutU32(static_cast<uint32_t>(node.attrs.size()), out);
  for (const WireAttrProfile& row : node.attrs) PutWireAttrProfile(row, out);
  PutU32(static_cast<uint32_t>(node.conds.size()), out);
  for (const WireCondProfile& row : node.conds) PutWireCondProfile(row, out);
  PutU32(static_cast<uint32_t>(node.classes.size()), out);
  for (const WireClassProfile& row : node.classes) {
    PutWireClassProfile(row, out);
  }
  PutString(node.plan_dot, out);
}

bool GetNodeProfile(Reader* reader, const std::vector<uint8_t>& payload,
                    NodeProfile* node) {
  uint32_t num_attrs;
  if (!reader->GetString(&node->node_id) || !reader->GetU8(&node->is_router) ||
      node->is_router > 1 || !reader->GetU64(&node->sample_period) ||
      !reader->GetI64(&node->profiled_requests) ||
      !reader->GetI64(&node->total_requests) || !reader->GetU32(&num_attrs)) {
    return false;
  }
  if (num_attrs > payload.size() / kMinWireAttrProfileBytes) return false;
  node->attrs.clear();
  node->attrs.reserve(num_attrs);
  for (uint32_t i = 0; i < num_attrs; ++i) {
    WireAttrProfile row;
    if (!GetWireAttrProfile(reader, &row)) return false;
    node->attrs.push_back(std::move(row));
  }
  uint32_t num_conds;
  if (!reader->GetU32(&num_conds)) return false;
  if (num_conds > payload.size() / kMinWireCondProfileBytes) return false;
  node->conds.clear();
  node->conds.reserve(num_conds);
  for (uint32_t i = 0; i < num_conds; ++i) {
    WireCondProfile row;
    if (!GetWireCondProfile(reader, &row)) return false;
    node->conds.push_back(std::move(row));
  }
  uint32_t num_classes;
  if (!reader->GetU32(&num_classes)) return false;
  if (num_classes > payload.size() / kWireClassProfileBytes) return false;
  node->classes.clear();
  node->classes.reserve(num_classes);
  for (uint32_t i = 0; i < num_classes; ++i) {
    WireClassProfile row;
    if (!GetWireClassProfile(reader, &row)) return false;
    node->classes.push_back(row);
  }
  return reader->GetString(&node->plan_dot);
}

bool GetIngressStats(Reader* reader, runtime::IngressStats* s) {
  return reader->GetI64(&s->connections_opened) &&
         reader->GetI64(&s->connections_closed) &&
         reader->GetI64(&s->requests_accepted) &&
         reader->GetI64(&s->requests_rejected_busy) &&
         reader->GetI64(&s->requests_rejected_shutdown) &&
         reader->GetI64(&s->decode_errors) &&
         reader->GetI64(&s->protocol_errors) &&
         reader->GetI64(&s->info_requests) && reader->GetI64(&s->bytes_in) &&
         reader->GetI64(&s->bytes_out) &&
         reader->GetI64(&s->outbox_inflight_hwm) &&
         reader->GetI64(&s->outbox_bytes_written) &&
         reader->GetI64(&s->outbox_write_stalls);
}

}  // namespace

const char* ToString(WireError error) {
  switch (error) {
    case WireError::kNone: return "OK";
    case WireError::kRejectedBusy: return "REJECTED_BUSY";
    case WireError::kMalformedFrame: return "MALFORMED_FRAME";
    case WireError::kUnsupportedVersion: return "UNSUPPORTED_VERSION";
    case WireError::kUnsupportedType: return "UNSUPPORTED_TYPE";
    case WireError::kFrameTooLarge: return "FRAME_TOO_LARGE";
    case WireError::kBadStrategy: return "BAD_STRATEGY";
    case WireError::kShuttingDown: return "SHUTTING_DOWN";
    case WireError::kInternal: return "INTERNAL";
    case WireError::kBackendUnavailable: return "BACKEND_UNAVAILABLE";
  }
  return "UNKNOWN";
}

void EncodeSubmit(const SubmitRequest& msg, std::vector<uint8_t>* out) {
  const size_t frame = BeginFrame(MsgType::kSubmit, out);
  PutU64(msg.request_id, out);
  PutU64(msg.seed, out);
  uint32_t flags = 0;
  if (msg.blocking) flags |= kFlagBlocking;
  if (msg.want_snapshot) flags |= kFlagWantSnapshot;
  if (msg.has_trace) flags |= kFlagHasTrace;
  PutU32(flags, out);
  PutString(msg.strategy, out);
  PutU32(static_cast<uint32_t>(msg.sources.size()), out);
  for (const auto& [attr, value] : msg.sources) {
    PutU32(static_cast<uint32_t>(attr), out);
    PutValue(value, out);
  }
  if (msg.has_trace) {
    PutU64(msg.trace_id, out);
    PutU8(0, out);  // trace_flags, reserved; receivers reject nonzero
  }
  SealFrame(frame, out);
}

bool DecodeSubmit(const std::vector<uint8_t>& payload, SubmitRequest* out) {
  Reader reader(payload);
  uint32_t flags, num_sources;
  if (!reader.GetU64(&out->request_id) || !reader.GetU64(&out->seed) ||
      !reader.GetU32(&flags) || !reader.GetString(&out->strategy) ||
      !reader.GetU32(&num_sources)) {
    return false;
  }
  if ((flags & ~kKnownFlags) != 0) return false;
  out->blocking = (flags & kFlagBlocking) != 0;
  out->want_snapshot = (flags & kFlagWantSnapshot) != 0;
  out->has_trace = (flags & kFlagHasTrace) != 0;
  out->trace_id = 0;
  // An attacker-controlled count must not drive a huge reserve; each
  // binding is at least 5 payload bytes, so the payload length bounds it.
  if (num_sources > payload.size() / 5) return false;
  out->sources.clear();
  out->sources.reserve(num_sources);
  for (uint32_t i = 0; i < num_sources; ++i) {
    uint32_t attr;
    Value value;
    if (!reader.GetU32(&attr) || !reader.GetValue(&value)) return false;
    out->sources.emplace_back(static_cast<AttributeId>(attr),
                              std::move(value));
  }
  if (out->has_trace) {
    uint8_t trace_flags;
    if (!reader.GetU64(&out->trace_id) || !reader.GetU8(&trace_flags) ||
        trace_flags != 0) {
      return false;
    }
  }
  return reader.Done();
}

void EncodeBatchSubmit(const BatchSubmitRequest& msg,
                       std::vector<uint8_t>* out) {
  const size_t frame = BeginFrame(MsgType::kBatchSubmit, out);
  // request_id_base leads the payload at offset 0 like every correlation
  // id, so PeekRequestId attributes even an undecodable batch.
  PutU64(msg.request_id_base, out);
  uint32_t flags = 0;
  if (msg.blocking) flags |= kFlagBlocking;
  if (msg.want_snapshot) flags |= kFlagWantSnapshot;
  PutU32(flags, out);
  PutString(msg.strategy, out);
  PutU32(static_cast<uint32_t>(msg.items.size()), out);
  for (const BatchItem& item : msg.items) {
    PutU64(item.seed, out);
    PutU32(static_cast<uint32_t>(item.sources.size()), out);
    for (const auto& [attr, value] : item.sources) {
      PutU32(static_cast<uint32_t>(attr), out);
      PutValue(value, out);
    }
  }
  SealFrame(frame, out);
}

bool DecodeBatchSubmit(const std::vector<uint8_t>& payload,
                       BatchSubmitRequest* out) {
  Reader reader(payload);
  uint32_t flags, num_items;
  if (!reader.GetU64(&out->request_id_base) || !reader.GetU32(&flags) ||
      !reader.GetString(&out->strategy) || !reader.GetU32(&num_items)) {
    return false;
  }
  // Batches share the singleton flag word but carry no trace-context
  // extension, so kFlagHasTrace is out of range here, not just unknown.
  if ((flags & ~(kFlagBlocking | kFlagWantSnapshot)) != 0) return false;
  out->blocking = (flags & kFlagBlocking) != 0;
  out->want_snapshot = (flags & kFlagWantSnapshot) != 0;
  // The ticket range base + count must not wrap uint64 (responses carry
  // base + i), and an item is at least 12 payload bytes (seed + empty
  // source count), bounding a hostile count before the reserve.
  if (num_items > payload.size() / 12) return false;
  if (out->request_id_base > UINT64_MAX - num_items) return false;
  out->items.clear();
  out->items.reserve(num_items);
  for (uint32_t i = 0; i < num_items; ++i) {
    BatchItem item;
    uint32_t num_sources;
    if (!reader.GetU64(&item.seed) || !reader.GetU32(&num_sources)) {
      return false;
    }
    if (num_sources > payload.size() / 5) return false;
    item.sources.reserve(num_sources);
    for (uint32_t j = 0; j < num_sources; ++j) {
      uint32_t attr;
      Value value;
      if (!reader.GetU32(&attr) || !reader.GetValue(&value)) return false;
      item.sources.emplace_back(static_cast<AttributeId>(attr),
                                std::move(value));
    }
    out->items.push_back(std::move(item));
  }
  return reader.Done();
}

void EncodeSubmitResult(const SubmitResult& msg, std::vector<uint8_t>* out) {
  const size_t frame = BeginFrame(MsgType::kSubmitResult, out);
  PutU64(msg.request_id, out);
  PutU32(static_cast<uint32_t>(msg.shard), out);
  PutI64(msg.work, out);
  PutI64(msg.wasted_work, out);
  PutDouble(msg.response_time, out);
  PutU32(static_cast<uint32_t>(msg.queries_launched), out);
  PutU32(static_cast<uint32_t>(msg.speculative_launches), out);
  PutU64(msg.fingerprint, out);
  PutString(msg.strategy, out);
  PutU8(msg.has_snapshot ? 1 : 0, out);
  if (msg.has_snapshot) {
    PutU32(static_cast<uint32_t>(msg.snapshot.size()), out);
    for (const SnapshotEntry& entry : msg.snapshot) {
      PutU32(static_cast<uint32_t>(entry.attr), out);
      PutU8(static_cast<uint8_t>(entry.state), out);
      PutValue(entry.value, out);
    }
  }
  // v4 timing trailer, always present, count-terminated so a relaying
  // router can append spans in place (AppendResultSpan). The count byte
  // caps spans at 255 — far above the 7-kind taxonomy times any sane
  // router depth; excess spans are dropped rather than corrupting framing.
  PutU64(msg.trace_id, out);
  const size_t num_spans = std::min<size_t>(msg.spans.size(), 255);
  for (size_t i = 0; i < num_spans; ++i) {
    PutU8(msg.spans[i].kind, out);
    PutU64(msg.spans[i].start_ns, out);
    PutU64(msg.spans[i].duration_ns, out);
  }
  PutU8(static_cast<uint8_t>(num_spans), out);
  SealFrame(frame, out);
}

bool DecodeSubmitResult(const std::vector<uint8_t>& payload,
                        SubmitResult* out) {
  Reader reader(payload);
  uint32_t shard, queries, speculative;
  uint8_t has_snapshot;
  if (!reader.GetU64(&out->request_id) || !reader.GetU32(&shard) ||
      !reader.GetI64(&out->work) || !reader.GetI64(&out->wasted_work) ||
      !reader.GetDouble(&out->response_time) || !reader.GetU32(&queries) ||
      !reader.GetU32(&speculative) || !reader.GetU64(&out->fingerprint) ||
      !reader.GetString(&out->strategy) || !reader.GetU8(&has_snapshot)) {
    return false;
  }
  if (has_snapshot > 1) return false;
  out->shard = static_cast<int32_t>(shard);
  out->queries_launched = static_cast<int32_t>(queries);
  out->speculative_launches = static_cast<int32_t>(speculative);
  out->has_snapshot = has_snapshot == 1;
  out->snapshot.clear();
  if (out->has_snapshot) {
    uint32_t count;
    if (!reader.GetU32(&count) || count > payload.size() / 6) return false;
    out->snapshot.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      SnapshotEntry entry;
      if (!GetSnapshotEntry(&reader, &entry)) return false;
      out->snapshot.push_back(std::move(entry));
    }
  }
  // Timing trailer: trace_id, then exactly (remaining - 9) / 17 spans as
  // named by the terminating count byte — anything else is malformed.
  if (reader.remaining() < kMinTrailerBytes || !reader.GetU64(&out->trace_id)) {
    return false;
  }
  const uint8_t span_count = payload.back();
  if (reader.remaining() != kWireSpanBytes * span_count + 1) return false;
  if (out->trace_id == 0 && span_count != 0) return false;
  out->spans.clear();
  out->spans.reserve(span_count);
  for (uint8_t i = 0; i < span_count; ++i) {
    WireSpan span;
    if (!reader.GetU8(&span.kind) || span.kind < kMinWireSpanKind ||
        span.kind > kMaxWireSpanKind || !reader.GetU64(&span.start_ns) ||
        !reader.GetU64(&span.duration_ns)) {
      return false;
    }
    out->spans.push_back(span);
  }
  uint8_t trailing_count;
  if (!reader.GetU8(&trailing_count)) return false;
  return reader.Done();
}

void EncodeError(const ErrorReply& msg, std::vector<uint8_t>* out) {
  const size_t frame = BeginFrame(MsgType::kError, out);
  PutU64(msg.request_id, out);
  PutU16(static_cast<uint16_t>(msg.code), out);
  PutString(msg.message, out);
  SealFrame(frame, out);
}

bool DecodeError(const std::vector<uint8_t>& payload, ErrorReply* out) {
  Reader reader(payload);
  uint16_t code;
  if (!reader.GetU64(&out->request_id) || !reader.GetU16(&code) ||
      !reader.GetString(&out->message)) {
    return false;
  }
  if (code == 0 ||
      code > static_cast<uint16_t>(WireError::kBackendUnavailable)) {
    return false;
  }
  out->code = static_cast<WireError>(code);
  return reader.Done();
}

void EncodeInfoRequest(std::vector<uint8_t>* out) {
  SealFrame(BeginFrame(MsgType::kInfoRequest, out), out);
}

void EncodeInfo(const ServerInfo& msg, std::vector<uint8_t>* out) {
  const size_t frame = BeginFrame(MsgType::kInfo, out);
  PutU32(static_cast<uint32_t>(msg.num_shards), out);
  PutString(msg.strategy, out);
  PutU8(msg.backend, out);
  PutU64(msg.queue_capacity_per_shard, out);
  PutI64(msg.completed, out);
  PutI64(msg.rejected, out);
  PutI64(msg.cache_hits, out);
  PutI64(msg.cache_misses, out);
  PutString(msg.node_id, out);
  PutU64(msg.fleet_epoch, out);
  PutIngressStats(msg.ingress, out);
  PutU8(msg.router.is_router, out);
  PutU32(static_cast<uint32_t>(msg.router.replicas), out);
  PutI64(msg.router.failovers, out);
  PutI64(msg.router.divergence_checks, out);
  PutI64(msg.router.divergence_mismatches, out);
  PutI64(msg.router.divergence_incomplete, out);
  PutU32(static_cast<uint32_t>(msg.router.backends.size()), out);
  for (const RouterBackendStats& backend : msg.router.backends) {
    PutString(backend.address, out);
    PutString(backend.node_id, out);
    PutU8(backend.connected, out);
    PutU32(static_cast<uint32_t>(backend.shards), out);
    PutU32(static_cast<uint32_t>(backend.slot), out);
    PutU32(static_cast<uint32_t>(backend.replica), out);
    PutI64(backend.forwarded, out);
    PutI64(backend.answered, out);
    PutI64(backend.unavailable, out);
    PutI64(backend.reconnects, out);
    PutI64(backend.failovers, out);
  }
  PutU8(msg.advisor.enabled, out);
  PutU64(msg.advisor.fingerprint, out);
  PutI64(msg.advisor.selections, out);
  PutI64(msg.advisor.explores, out);
  PutU32(static_cast<uint32_t>(msg.advisor.by_strategy.size()), out);
  for (const AdvisorStrategyCount& entry : msg.advisor.by_strategy) {
    PutString(entry.strategy, out);
    PutI64(entry.count, out);
  }
  SealFrame(frame, out);
}

bool DecodeInfo(const std::vector<uint8_t>& payload, ServerInfo* out) {
  Reader reader(payload);
  uint32_t shards;
  if (!reader.GetU32(&shards) || !reader.GetString(&out->strategy) ||
      !reader.GetU8(&out->backend) ||
      !reader.GetU64(&out->queue_capacity_per_shard) ||
      !reader.GetI64(&out->completed) || !reader.GetI64(&out->rejected) ||
      !reader.GetI64(&out->cache_hits) ||
      !reader.GetI64(&out->cache_misses) ||
      !reader.GetString(&out->node_id) ||
      !reader.GetU64(&out->fleet_epoch) ||
      !GetIngressStats(&reader, &out->ingress)) {
    return false;
  }
  out->num_shards = static_cast<int32_t>(shards);
  uint8_t is_router;
  uint32_t replicas;
  uint32_t num_backends;
  if (!reader.GetU8(&is_router) || is_router > 1 ||
      !reader.GetU32(&replicas) ||
      !reader.GetI64(&out->router.failovers) ||
      !reader.GetI64(&out->router.divergence_checks) ||
      !reader.GetI64(&out->router.divergence_mismatches) ||
      !reader.GetI64(&out->router.divergence_incomplete) ||
      !reader.GetU32(&num_backends)) {
    return false;
  }
  out->router.is_router = is_router;
  out->router.replicas = static_cast<int32_t>(replicas);
  // Each backend entry is at least 61 payload bytes (two empty strings:
  // 2×4 length headers + 1 connected + 3×4 shards/slot/replica + 5×8
  // counters), so the payload length bounds a hostile count before the
  // reserve.
  if (num_backends > payload.size() / 61) return false;
  out->router.backends.clear();
  out->router.backends.reserve(num_backends);
  for (uint32_t i = 0; i < num_backends; ++i) {
    RouterBackendStats backend;
    uint32_t backend_shards;
    uint32_t slot;
    uint32_t replica;
    if (!reader.GetString(&backend.address) ||
        !reader.GetString(&backend.node_id) ||
        !reader.GetU8(&backend.connected) || backend.connected > 1 ||
        !reader.GetU32(&backend_shards) || !reader.GetU32(&slot) ||
        !reader.GetU32(&replica) ||
        !reader.GetI64(&backend.forwarded) ||
        !reader.GetI64(&backend.answered) ||
        !reader.GetI64(&backend.unavailable) ||
        !reader.GetI64(&backend.reconnects) ||
        !reader.GetI64(&backend.failovers)) {
      return false;
    }
    backend.shards = static_cast<int32_t>(backend_shards);
    backend.slot = static_cast<int32_t>(slot);
    backend.replica = static_cast<int32_t>(replica);
    out->router.backends.push_back(std::move(backend));
  }
  uint32_t num_counts;
  if (!reader.GetU8(&out->advisor.enabled) || out->advisor.enabled > 1 ||
      !reader.GetU64(&out->advisor.fingerprint) ||
      !reader.GetI64(&out->advisor.selections) ||
      !reader.GetI64(&out->advisor.explores) || !reader.GetU32(&num_counts)) {
    return false;
  }
  // Each histogram row is at least 12 payload bytes (4-byte string header
  // + 8-byte count), bounding a hostile count before the reserve.
  if (num_counts > payload.size() / 12) return false;
  out->advisor.by_strategy.clear();
  out->advisor.by_strategy.reserve(num_counts);
  for (uint32_t i = 0; i < num_counts; ++i) {
    AdvisorStrategyCount entry;
    if (!reader.GetString(&entry.strategy) || !reader.GetI64(&entry.count)) {
      return false;
    }
    out->advisor.by_strategy.push_back(std::move(entry));
  }
  return reader.Done();
}

uint64_t ReadLe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

void WriteLe64(uint64_t v, uint8_t* p) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint16_t ReadLe16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint64_t PeekRequestId(const std::vector<uint8_t>& payload) {
  return payload.size() >= 8 ? ReadLe64(payload.data()) : 0;
}

void EncodeRawFrame(uint8_t type, const std::vector<uint8_t>& payload,
                    std::vector<uint8_t>* out) {
  PutU8(kMagic0, out);
  PutU8(kMagic1, out);
  PutU8(kWireVersion, out);
  PutU8(type, out);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  out->insert(out->end(), payload.begin(), payload.end());
}

void EncodeGoodbye(std::vector<uint8_t>* out) {
  SealFrame(BeginFrame(MsgType::kGoodbye, out), out);
}

void EncodeGoodbyeAck(std::vector<uint8_t>* out) {
  SealFrame(BeginFrame(MsgType::kGoodbyeAck, out), out);
}

void EncodeMetricsRequest(std::vector<uint8_t>* out) {
  SealFrame(BeginFrame(MsgType::kMetricsRequest, out), out);
}

void EncodeMetrics(const std::string& text, std::vector<uint8_t>* out) {
  const size_t frame = BeginFrame(MsgType::kMetrics, out);
  PutString(text, out);
  SealFrame(frame, out);
}

bool DecodeMetrics(const std::vector<uint8_t>& payload, std::string* out) {
  Reader reader(payload);
  return reader.GetString(out) && reader.Done();
}

void EncodeHealthRequest(std::vector<uint8_t>* out) {
  SealFrame(BeginFrame(MsgType::kHealthRequest, out), out);
}

void EncodeHealth(const HealthInfo& msg, std::vector<uint8_t>* out) {
  const size_t frame = BeginFrame(MsgType::kHealth, out);
  PutNodeHealth(msg.self, out);
  PutU32(static_cast<uint32_t>(msg.backends.size()), out);
  for (const NodeHealth& backend : msg.backends) {
    PutNodeHealth(backend, out);
  }
  SealFrame(frame, out);
}

bool DecodeHealth(const std::vector<uint8_t>& payload, HealthInfo* out) {
  Reader reader(payload);
  if (!GetNodeHealth(&reader, payload, &out->self)) return false;
  uint32_t num_backends;
  if (!reader.GetU32(&num_backends)) return false;
  if (num_backends > payload.size() / kMinNodeHealthBytes) return false;
  out->backends.clear();
  out->backends.reserve(num_backends);
  for (uint32_t i = 0; i < num_backends; ++i) {
    NodeHealth backend;
    if (!GetNodeHealth(&reader, payload, &backend)) return false;
    out->backends.push_back(std::move(backend));
  }
  return reader.Done();
}

void EncodeProfileRequest(std::vector<uint8_t>* out) {
  SealFrame(BeginFrame(MsgType::kProfileRequest, out), out);
}

void EncodeProfile(const ProfileInfo& msg, std::vector<uint8_t>* out) {
  const size_t frame = BeginFrame(MsgType::kProfile, out);
  PutNodeProfile(msg.self, out);
  PutU32(static_cast<uint32_t>(msg.backends.size()), out);
  for (const NodeProfile& backend : msg.backends) {
    PutNodeProfile(backend, out);
  }
  SealFrame(frame, out);
}

bool DecodeProfile(const std::vector<uint8_t>& payload, ProfileInfo* out) {
  Reader reader(payload);
  if (!GetNodeProfile(&reader, payload, &out->self)) return false;
  uint32_t num_backends;
  if (!reader.GetU32(&num_backends)) return false;
  if (num_backends > payload.size() / kMinNodeProfileBytes) return false;
  out->backends.clear();
  out->backends.reserve(num_backends);
  for (uint32_t i = 0; i < num_backends; ++i) {
    NodeProfile backend;
    if (!GetNodeProfile(&reader, payload, &backend)) return false;
    out->backends.push_back(std::move(backend));
  }
  return reader.Done();
}

bool AppendResultSpan(std::vector<uint8_t>* payload, uint64_t trace_id,
                      uint8_t kind, uint64_t start_ns, uint64_t duration_ns) {
  if (payload->size() < kMinTrailerBytes) return false;
  const uint8_t count = payload->back();
  if (count == 255) return false;  // trailer saturated; drop the span
  const size_t trailer_bytes = kMinTrailerBytes + kWireSpanBytes * count;
  if (payload->size() < trailer_bytes) return false;
  // An untraced backend result (trace_id 0) adopts the appender's id, so
  // the span still belongs to an identified trace downstream.
  uint8_t* trace_id_at = payload->data() + payload->size() - trailer_bytes;
  if (ReadLe64(trace_id_at) == 0) WriteLe64(trace_id, trace_id_at);
  uint8_t span[kWireSpanBytes];
  span[0] = kind;
  WriteLe64(start_ns, span + 1);
  WriteLe64(duration_ns, span + 9);
  payload->insert(payload->end() - 1, span, span + kWireSpanBytes);
  payload->back() = static_cast<uint8_t>(count + 1);
  return true;
}

FrameAssembler::FrameAssembler(uint32_t max_payload_bytes)
    : max_payload_bytes_(max_payload_bytes) {}

void FrameAssembler::Feed(const uint8_t* data, size_t size) {
  if (error_ != WireError::kNone) return;
  // Compact the consumed prefix before growing, so a long-lived connection
  // keeps its buffer proportional to in-flight data, not total traffic.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameAssembler::Next() {
  if (error_ != WireError::kNone) return std::nullopt;
  if (buffer_.size() - consumed_ < kFrameHeaderBytes) return std::nullopt;
  const uint8_t* header = buffer_.data() + consumed_;
  if (header[0] != kMagic0 || header[1] != kMagic1) {
    error_ = WireError::kMalformedFrame;
    return std::nullopt;
  }
  if (header[2] < kMinSupportedWireVersion || header[2] > kWireVersion) {
    error_ = WireError::kUnsupportedVersion;
    return std::nullopt;
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
  }
  if (payload_len > max_payload_bytes_) {
    error_ = WireError::kFrameTooLarge;
    return std::nullopt;
  }
  if (buffer_.size() - consumed_ < kFrameHeaderBytes + payload_len) {
    return std::nullopt;  // wait for the rest of the payload
  }
  Frame frame;
  frame.type = header[3];
  frame.payload.assign(header + kFrameHeaderBytes,
                       header + kFrameHeaderBytes + payload_len);
  last_version_ = header[2];
  consumed_ += kFrameHeaderBytes + payload_len;
  return frame;
}

uint64_t FingerprintResult(const core::InstanceResult& result) {
  uint64_t h = 0xd5f10f1e55a1ULL;
  const core::Snapshot& snapshot = result.snapshot;
  const int n = snapshot.schema().num_attributes();
  h = Rng::Mix(h, static_cast<uint64_t>(n));
  for (int a = 0; a < n; ++a) {
    const auto attr = static_cast<AttributeId>(a);
    h = Rng::Mix(h, static_cast<uint64_t>(snapshot.state(attr)));
    h = HashValue(h, snapshot.value(attr));
  }
  const core::InstanceMetrics& m = result.metrics;
  h = Rng::Mix(h, static_cast<uint64_t>(m.work));
  h = Rng::Mix(h, static_cast<uint64_t>(m.wasted_work));
  h = Rng::Mix(h, std::bit_cast<uint64_t>(m.ResponseTime()));
  h = Rng::Mix(h, static_cast<uint64_t>(m.queries_launched));
  h = Rng::Mix(h, static_cast<uint64_t>(m.speculative_launches));
  h = Rng::Mix(h, static_cast<uint64_t>(m.eager_disables));
  h = Rng::Mix(h, static_cast<uint64_t>(m.unneeded_skipped));
  h = Rng::Mix(h, static_cast<uint64_t>(m.prequalifier_passes));
  h = Rng::Mix(h, std::bit_cast<uint64_t>(m.inflight_area));
  return h;
}

}  // namespace dflow::net
