#include "net/client.h"

#include <vector>

namespace dflow::net {

bool Client::Connect(const std::string& host, uint16_t port,
                     std::string* error) {
  socket_ = Socket::ConnectTcp(host, port, error);
  return socket_.valid();
}

bool Client::SendFrame(const std::vector<uint8_t>& frame) {
  if (!socket_.valid()) return false;
  if (!socket_.SendAll(frame.data(), frame.size())) return false;
  bytes_sent_ += static_cast<int64_t>(frame.size());
  return true;
}

bool Client::SendSubmit(const SubmitRequest& request) {
  std::vector<uint8_t> frame;
  EncodeSubmit(request, &frame);
  if (!SendFrame(frame)) return false;
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

TicketRange Client::SubmitBatch(std::span<const BatchItem> items,
                                const BatchOptions& options) {
  if (items.empty()) return {};
  BatchSubmitRequest request;
  request.request_id_base = next_request_id_;
  request.blocking = options.blocking;
  request.want_snapshot = options.want_snapshot;
  request.strategy = options.strategy;
  request.items.assign(items.begin(), items.end());
  std::vector<uint8_t> frame;
  EncodeBatchSubmit(request, &frame);
  if (!SendFrame(frame)) return {};
  const TicketRange range{next_request_id_,
                          static_cast<uint32_t>(items.size())};
  next_request_id_ += items.size();
  outstanding_.fetch_add(items.size(), std::memory_order_relaxed);
  return range;
}

std::optional<Completion> Client::NextCompletion() {
  while (true) {
    std::optional<ServerMessage> message = ReadMessage();
    if (!message.has_value()) return std::nullopt;
    Completion completion;
    switch (message->type) {
      case MsgType::kSubmitResult:
        completion.request_id = message->result.request_id;
        completion.type = MsgType::kSubmitResult;
        completion.result = std::move(message->result);
        return completion;
      case MsgType::kError:
        completion.request_id = message->error.request_id;
        completion.type = MsgType::kError;
        completion.error = std::move(message->error);
        return completion;
      default:
        continue;  // not a completion; skip (see header contract)
    }
  }
}

bool Client::DrainCompletions(
    const std::function<void(const Completion&)>& on_done,
    uint64_t remaining) {
  // remaining == 0 means "until everything outstanding settled";
  // ReadMessage decrements outstanding_ as completions arrive.
  const bool until_idle = remaining == 0;
  while (until_idle ? outstanding_ > 0 : remaining-- > 0) {
    std::optional<Completion> completion = NextCompletion();
    if (!completion.has_value()) return false;
    on_done(*completion);
  }
  return true;
}

bool Client::SendInfoRequest() {
  std::vector<uint8_t> frame;
  EncodeInfoRequest(&frame);
  return SendFrame(frame);
}

bool Client::SendMetricsRequest() {
  std::vector<uint8_t> frame;
  EncodeMetricsRequest(&frame);
  return SendFrame(frame);
}

bool Client::SendHealthRequest() {
  std::vector<uint8_t> frame;
  EncodeHealthRequest(&frame);
  return SendFrame(frame);
}

bool Client::SendProfileRequest() {
  std::vector<uint8_t> frame;
  EncodeProfileRequest(&frame);
  return SendFrame(frame);
}

bool Client::SendGoodbye() {
  std::vector<uint8_t> frame;
  EncodeGoodbye(&frame);
  return SendFrame(frame);
}

std::optional<Frame> Client::ReadFrame() {
  uint8_t chunk[16 * 1024];
  while (true) {
    if (std::optional<Frame> frame = assembler_.Next()) return frame;
    if (assembler_.error() != WireError::kNone) {
      last_error_ = assembler_.error();
      return std::nullopt;
    }
    const ssize_t n = socket_.Recv(chunk, sizeof(chunk));
    if (n <= 0) return std::nullopt;  // EOF or transport error
    bytes_received_ += n;
    assembler_.Feed(chunk, static_cast<size_t>(n));
  }
}

void Client::SettleOne() {
  // Only the reader side decrements, so check-then-sub cannot underflow;
  // the guard absorbs unsolicited completions (e.g. a server error frame
  // answering a request this client never counted).
  if (outstanding_.load(std::memory_order_relaxed) > 0) {
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::optional<ServerMessage> Client::ReadMessage() {
  const std::optional<Frame> frame = ReadFrame();
  if (!frame.has_value()) return std::nullopt;
  ServerMessage message;
  switch (static_cast<MsgType>(frame->type)) {
    case MsgType::kSubmitResult:
      message.type = MsgType::kSubmitResult;
      if (!DecodeSubmitResult(frame->payload, &message.result)) break;
      SettleOne();
      return message;
    case MsgType::kError:
      message.type = MsgType::kError;
      if (!DecodeError(frame->payload, &message.error)) break;
      SettleOne();
      return message;
    case MsgType::kInfo:
      message.type = MsgType::kInfo;
      if (!DecodeInfo(frame->payload, &message.info)) break;
      return message;
    case MsgType::kMetrics:
      message.type = MsgType::kMetrics;
      if (!DecodeMetrics(frame->payload, &message.metrics)) break;
      return message;
    case MsgType::kHealth:
      message.type = MsgType::kHealth;
      if (!DecodeHealth(frame->payload, &message.health)) break;
      return message;
    case MsgType::kProfile:
      message.type = MsgType::kProfile;
      if (!DecodeProfile(frame->payload, &message.profile)) break;
      return message;
    case MsgType::kGoodbyeAck:
      message.type = MsgType::kGoodbyeAck;
      return message;
    default:
      break;
  }
  // A server frame we cannot decode: the stream can no longer be trusted
  // (responses would silently go missing).
  last_error_ = WireError::kMalformedFrame;
  return std::nullopt;
}

std::optional<ServerMessage> Client::Call(const SubmitRequest& request) {
  if (!SendSubmit(request)) return std::nullopt;
  return ReadMessage();
}

std::optional<ServerInfo> Client::Info() {
  if (!SendInfoRequest()) return std::nullopt;
  const std::optional<ServerMessage> message = ReadMessage();
  if (!message.has_value() || message->type != MsgType::kInfo) {
    return std::nullopt;
  }
  return message->info;
}

std::optional<std::string> Client::Metrics() {
  if (!SendMetricsRequest()) return std::nullopt;
  const std::optional<ServerMessage> message = ReadMessage();
  if (!message.has_value() || message->type != MsgType::kMetrics) {
    return std::nullopt;
  }
  return message->metrics;
}

std::optional<HealthInfo> Client::Health() {
  if (!SendHealthRequest()) return std::nullopt;
  const std::optional<ServerMessage> message = ReadMessage();
  if (!message.has_value() || message->type != MsgType::kHealth) {
    return std::nullopt;
  }
  return message->health;
}

std::optional<ProfileInfo> Client::Profile() {
  if (!SendProfileRequest()) return std::nullopt;
  const std::optional<ServerMessage> message = ReadMessage();
  if (!message.has_value() || message->type != MsgType::kProfile) {
    return std::nullopt;
  }
  return message->profile;
}

bool Client::Goodbye() {
  if (!SendGoodbye()) return false;
  // Late results for requests this client abandoned may precede the ack;
  // skip them (documented: Goodbye discards unread responses).
  while (std::optional<ServerMessage> message = ReadMessage()) {
    if (message->type == MsgType::kGoodbyeAck) {
      Close();
      return true;
    }
  }
  Close();
  return false;
}

}  // namespace dflow::net
