#ifndef DFLOW_NET_SERVER_CONFIG_H_
#define DFLOW_NET_SERVER_CONFIG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dflow::net {

// Validated command-line parsing driven by a single flag table.
//
// Every dflow binary used to carry its own strcmp chain; the chains
// drifted (same flag, three slightly different doc comments, no --help
// anywhere). ServerConfig replaces them: a binary registers each flag
// once — name, typed target, one doc line — and both the parser and the
// generated --help text come from that same table, so a flag cannot
// exist undocumented and the help cannot drift from what Parse accepts.
//
//   net::ServerConfig config("dflow_serve", "The flow-serving runtime.");
//   config.Int("port", &port, "TCP listen port", 0, 65535)
//         .Bool("verbose", &verbose, "per-connection log lines");
//   switch (config.Parse(argc, argv, &error)) {
//     case net::ServerConfig::ParseStatus::kHelp: ... print Help(), exit 0
//     case net::ServerConfig::ParseStatus::kError: ... print error, exit 2
//     case net::ServerConfig::ParseStatus::kOk: break;
//   }
//
// Value flags are --name=VALUE only (no space-separated form — the old
// parsers never accepted one either). Bool flags are bare --name.
// --help / -h is built in. Targets keep their pre-registration values as
// defaults, and those defaults are captured into the help text at
// registration time.
class ServerConfig {
 public:
  enum class ParseStatus {
    kOk,     // every flag parsed and validated; targets are written
    kHelp,   // --help/-h seen; print Help() and exit 0
    kError,  // unknown flag or failed validation; *error says which
  };

  // `summary` is the one-paragraph description printed under the usage
  // line in --help.
  ServerConfig(std::string program, std::string summary);

  // Typed registrations. Each binds --name to *target with inclusive
  // range validation where a range makes sense. The doc string is one
  // sentence; Help() wraps it.
  ServerConfig& Int(const char* name, int* target, const char* doc,
                    long long min_value = INT64_MIN,
                    long long max_value = INT64_MAX);
  ServerConfig& Int64(const char* name, long long* target, const char* doc,
                      long long min_value = INT64_MIN,
                      long long max_value = INT64_MAX);
  ServerConfig& Uint64(const char* name, uint64_t* target, const char* doc);
  ServerConfig& Double(const char* name, double* target, const char* doc);
  ServerConfig& String(const char* name, std::string* target, const char* doc);
  // Bare --name sets *target = true (there is no --no-name form; register
  // an inverse flag where the default must be on).
  ServerConfig& Bool(const char* name, bool* target, const char* doc);
  // 1-in-N sampling period: accepts "N" or "1/N"; 0 disables.
  ServerConfig& SamplePeriod(const char* name, uint32_t* target,
                             const char* doc);
  // Fractional megabytes to bytes ("--name=1.5" -> 1572864).
  ServerConfig& Megabytes(const char* name, uint64_t* target, const char* doc);
  // Escape hatch for shapes the typed registrations don't cover (enum
  // words, address lists). `parse` returns false and fills *error with
  // the reason on bad input; `value_name` is the placeholder in --help
  // (e.g. "PORT[,PORT...]").
  ServerConfig& Custom(const char* name, const char* value_name,
                       const char* doc,
                       std::function<bool(const char* value,
                                          std::string* error)> parse);

  // Matches argv[1..] against the table. On kError, *error holds a
  // one-line message naming the offending flag.
  ParseStatus Parse(int argc, char** argv, std::string* error) const;

  // The full flag reference, generated from the table (usage line,
  // summary paragraph, one wrapped entry per flag with its default).
  std::string Help() const;

 private:
  struct Row {
    std::string name;        // without the leading --
    std::string value_name;  // placeholder in help; empty for bool flags
    std::string doc;
    std::string default_text;  // captured at registration
    bool* bool_target = nullptr;  // set => bare flag, no value
    std::function<bool(const char* value, std::string* error)> parse;
  };

  ServerConfig& AddRow(Row row);
  const Row* Find(const std::string& name) const;

  std::string program_;
  std::string summary_;
  std::vector<Row> rows_;
};

}  // namespace dflow::net

#endif  // DFLOW_NET_SERVER_CONFIG_H_
