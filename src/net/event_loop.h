#ifndef DFLOW_NET_EVENT_LOOP_H_
#define DFLOW_NET_EVENT_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/session_outbox.h"
#include "net/socket.h"
#include "net/wire_protocol.h"

namespace dflow::net {

class EventLoop;
struct LoopThread;

// One socket owned by an event-loop thread: the non-blocking Socket, its
// FrameAssembler, and its SessionOutbox, advanced entirely by the owning
// thread's epoll loop. This replaces the reader-thread + writer-thread
// pair of the session-per-connection model: a fixed pool of loop threads
// owns every connection, so 10k connections cost 10k fds, not 20k stacks.
//
// Threading contract: every method below is loop-thread only (call them
// from the Handlers callbacks, which the owning thread invokes) — EXCEPT
// outbox(), whose Push/Begin/Finish side is any-thread (shard workers and
// backend threads answer through it; its wake callback is the doorbell
// that schedules a drain on the owning thread), and the const counters.
class EventConn : public std::enable_shared_from_this<EventConn> {
 public:
  // What a frame handler tells the loop to do next.
  //   kContinue — frame fully handled; keep dispatching.
  //   kStall    — the handler could not finish (e.g. blocking admission
  //               against a full shard queue). It has called DeferRetry()
  //               with a continuation; the loop pauses reads, retries the
  //               continuation on 1ms ticks, and resumes dispatching the
  //               already-buffered frames once it reports done. The unread
  //               socket backlog then fills the kernel buffer and TCP
  //               pushes the stall back to the client — backpressure
  //               without parking a thread.
  //   kClose    — the handler began teardown (BeginGracefulClose);
  //               dispatching stops.
  enum class FrameAction : uint8_t { kContinue, kStall, kClose };

  struct Handlers {
    // One complete frame, on the owning loop thread.
    std::function<FrameAction(EventConn*, Frame&)> on_frame;
    // Framing-level stream error (bad magic/version/oversized frame). The
    // stream is unrecoverable; the handler may Push a final typed error
    // frame, after which the loop flushes and closes. Optional.
    std::function<void(EventConn*, WireError)> on_protocol_error;
    // Called exactly once, on the owning loop thread, after the socket is
    // closed and the conn is about to be destroyed — the stats-folding
    // hook. Optional.
    std::function<void(EventConn*)> on_close;
  };

  SessionOutbox& outbox() { return outbox_; }
  uint64_t id() const { return id_; }
  int64_t bytes_in() const {
    return bytes_in_.load(std::memory_order_relaxed);
  }

  // The wire version this peer most recently spoke (kWireVersion until its
  // first frame arrives). Any-thread.
  uint8_t peer_version() const {
    return peer_version_.load(std::memory_order_relaxed);
  }

  // Stamps `frame`'s header version byte down to peer_version() and pushes
  // it on the outbox. Response frames must carry a version the peer's own
  // assembler accepts — a genuine v6-era build rejects a v7-stamped reply
  // as UNSUPPORTED_VERSION — and every response payload is v6-shaped (v7
  // only added a request type), so echoing the peer's version is always
  // valid. Any-thread, like outbox().Push; use it for every server->client
  // response frame.
  void PushResponse(std::vector<uint8_t> frame);

  // Arbitrary per-connection session state, destroyed with the conn.
  std::shared_ptr<void> user;

  // Disarms EPOLLIN: no further bytes are read (already-buffered frames
  // still dispatch). The kernel receive buffer then fills and TCP stalls
  // the sender — this is how a stalled handler propagates backpressure.
  void PauseReads();
  void ResumeReads();

  // Arms a continuation retried on ~1ms loop ticks until it returns true.
  // The kStall contract: a handler that cannot finish synchronously parks
  // its remaining work here instead of blocking the loop thread. At most
  // one may be armed.
  void DeferRetry(std::function<bool()> retry);

  // Begins teardown: reads stop; once any armed retry completes and the
  // in-flight count (outbox Begin/Finish) reaches zero — i.e. every
  // admitted request's answer is in the outbox — `final_frame` (if
  // non-empty; the goodbye-ack hook) is pushed as the last frame, the
  // outbox closes, the backlog flushes, and the socket closes. Safe to
  // call more than once; later calls are ignored.
  void BeginGracefulClose(std::vector<uint8_t> final_frame = {});

  bool closing() const { return closing_; }

 private:
  friend class EventLoop;
  friend struct LoopThread;

  EventConn(uint64_t id, Socket socket, Handlers handlers,
            uint32_t max_payload_bytes);

  LoopThread* owner_ = nullptr;
  const uint64_t id_;
  Socket socket_;
  FrameAssembler assembler_;
  SessionOutbox outbox_;
  Handlers handlers_;
  std::atomic<int64_t> bytes_in_{0};
  std::atomic<uint8_t> peer_version_{kWireVersion};

  // Loop-thread-only state machine.
  bool reading_ = true;        // EPOLLIN armed
  bool want_write_ = false;    // EPOLLOUT armed
  bool closing_ = false;       // BeginGracefulClose seen
  bool finalized_ = false;     // final frame pushed + outbox closed
  bool hangup_ = false;        // EPOLLHUP/EPOLLERR seen; fd left epoll
  bool saw_protocol_error_ = false;
  std::vector<uint8_t> final_frame_;
  std::function<bool()> retry_;
  bool in_attention_ = false;  // on the owner's 1ms-tick list
};

// A fixed pool of epoll threads (level-triggered, EINTR-safe) owning all
// of a server's accepted sockets. Connections are assigned round-robin at
// Add() and never migrate; each loop thread blocks in epoll_wait on its
// own fds plus an eventfd doorbell (new conns, outbox wakes, stop), and
// switches to 1ms ticks only while some conn on it has a deferred retry
// or a graceful close in progress.
class EventLoop {
 public:
  struct Options {
    // Loop threads in the pool; 0 picks min(4, hardware_concurrency).
    // Socket work per connection is tiny compared to shard execution, so
    // a handful of loop threads saturates well past 10k connections.
    int num_threads = 0;
    // How long Stop() waits for graceful closes to flush before
    // force-closing stragglers (a peer that never drains its socket must
    // not wedge shutdown).
    int drain_timeout_ms = 30000;
  };

  EventLoop();
  explicit EventLoop(Options options);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool Start(std::string* error);

  // Gracefully closes every conn (in-flight answers flushed, see
  // EventConn::BeginGracefulClose), waits for them to retire (up to
  // drain_timeout_ms, then force-closes in a bounded re-posted loop — a
  // straggler or late registration cannot wedge shutdown), and joins the
  // threads. Idempotent.
  void Stop();

  // Hands a connected socket to the pool (round-robin). The socket is
  // switched to non-blocking here. Thread-safe against other Add()s and
  // the loop threads, but must NOT race Stop(): the caller must stop
  // producing sockets before stopping the loop (IngressServer/Router join
  // their acceptor first). A conn whose Add slipped in just before Stop is
  // destroyed, not served. Returns null when the loop is not running. The
  // returned handle shares ownership: after the loop destroys the conn
  // (socket closed, on_close delivered) the handle only keeps the
  // any-thread surface alive — outbox() drops further Pushes, the counters
  // stay readable. The loop-thread-only methods remain loop-thread-only; a
  // caller may not invoke them through this handle.
  std::shared_ptr<EventConn> Add(
      Socket socket, EventConn::Handlers handlers,
      std::shared_ptr<void> user,
      uint32_t max_payload_bytes = kDefaultMaxPayloadBytes);

  size_t num_conns() const;
  int num_threads() const { return static_cast<int>(threads_.size()); }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  friend struct LoopThread;

  void Run(LoopThread* lt);
  void OnConnRegistered();
  void OnConnRetired();

  Options options_;
  std::vector<std::unique_ptr<LoopThread>> threads_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<size_t> next_thread_{0};
  std::atomic<size_t> num_conns_{0};
  mutable std::mutex retire_mu_;
  std::condition_variable retire_cv_;  // signaled as conns retire
};

}  // namespace dflow::net

#endif  // DFLOW_NET_EVENT_LOOP_H_
