#ifndef DFLOW_NET_CLIENT_H_
#define DFLOW_NET_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "net/socket.h"
#include "net/wire_protocol.h"

namespace dflow::net {

// One message from the server, already decoded. `type` says which member
// is meaningful.
struct ServerMessage {
  MsgType type = MsgType::kError;
  SubmitResult result;  // when kSubmitResult
  ErrorReply error;     // when kError
  ServerInfo info;      // when kInfo
  std::string metrics;  // when kMetrics (text exposition)
  HealthInfo health;    // when kHealth
};

// Client side of the wire protocol: one TCP connection, blocking calls.
//
// Two usage styles:
//   - synchronous RPC: Call() / Info() / Goodbye() pair one request with
//     one response — the simplest correct loop for a closed-loop driver;
//   - pipelined: issue several SendSubmit()s, then ReadMessage() until
//     every request_id is answered. Responses arrive in *completion*
//     order, not submission order; correlate by request_id.
//
// Threading: not generally thread-safe, with one supported overlap — a
// dedicated sender thread (Send*) concurrent with a dedicated reader
// thread (ReadMessage), as the open-loop load driver does; send-side and
// receive-side state are disjoint. ReadMessage returning nullopt means the
// connection is unusable — EOF, transport error, or an unrecoverable
// protocol error (see last_error()).
class Client {
 public:
  Client() = default;
  ~Client() = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Connect(const std::string& host, uint16_t port, std::string* error);
  bool connected() const { return socket_.valid(); }

  // Bounds one blocking read (see Socket::SetRecvTimeout); 0 restores
  // "block forever". A timed-out read surfaces as nullopt.
  void SetRecvTimeout(int timeout_ms) { socket_.SetRecvTimeout(timeout_ms); }

  // Fire-and-record senders; false on transport failure.
  bool SendSubmit(const SubmitRequest& request);
  bool SendInfoRequest();
  bool SendMetricsRequest();
  bool SendHealthRequest();
  bool SendGoodbye();

  // --- Raw-frame layer. The router's backend pool is built on these: it
  // forwards frames wholesale (after patching the correlation id in the
  // payload) without decoding message bodies, so a routing hop costs O(1)
  // per frame regardless of snapshot or source-binding size.

  // Sends one pre-encoded frame (or a run of concatenated frames) as-is;
  // false on transport failure.
  bool SendFrame(const std::vector<uint8_t>& frame);

  // Blocks for the next complete frame, without interpreting its payload.
  // nullopt means the connection is unusable (EOF, transport error, or
  // broken framing — see last_error()).
  std::optional<Frame> ReadFrame();

  // Blocks for the next server frame, decoded. kGoodbyeAck is surfaced as
  // a message with that type (empty members).
  std::optional<ServerMessage> ReadMessage();

  // Synchronous conveniences.
  std::optional<ServerMessage> Call(const SubmitRequest& request);
  std::optional<ServerInfo> Info();
  // Scrapes the server's metrics endpoint (Prometheus text exposition).
  std::optional<std::string> Metrics();
  // Scrapes the v6 health plane: status, journal tail, rate series (a
  // router answers with the whole fleet's view).
  std::optional<HealthInfo> Health();
  // Graceful close: sends kGoodbye, waits for the ack (the server flushes
  // every outstanding response first — any still-pending results arrive
  // before the ack and are DISCARDED here, so call this only after reading
  // everything you care about), then closes. Returns false if the ack
  // never came.
  bool Goodbye();

  // Unblocks a ReadFrame/ReadMessage parked in the kernel from another
  // thread (shuts down both directions; the blocked read returns nullopt).
  // The fd stays valid until Close()/destruction, so a concurrent reader
  // never races a reused descriptor.
  void Shutdown() { socket_.ShutdownBoth(); }

  void Close() { socket_.Close(); }

  // Protocol-level failure of the *stream* (framing), if any.
  WireError last_error() const { return last_error_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  int64_t bytes_received() const { return bytes_received_; }

 private:
  Socket socket_;
  FrameAssembler assembler_;
  WireError last_error_ = WireError::kNone;
  int64_t bytes_sent_ = 0;
  int64_t bytes_received_ = 0;
};

}  // namespace dflow::net

#endif  // DFLOW_NET_CLIENT_H_
