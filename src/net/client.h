#ifndef DFLOW_NET_CLIENT_H_
#define DFLOW_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>

#include "net/socket.h"
#include "net/wire_protocol.h"

namespace dflow::net {

// One message from the server, already decoded. `type` says which member
// is meaningful.
struct ServerMessage {
  MsgType type = MsgType::kError;
  SubmitResult result;  // when kSubmitResult
  ErrorReply error;     // when kError
  ServerInfo info;      // when kInfo
  std::string metrics;  // when kMetrics (text exposition)
  HealthInfo health;    // when kHealth
  ProfileInfo profile;  // when kProfile
};

// The contiguous correlation-id range a SubmitBatch claimed: ids
// first_id .. first_id + count - 1, item i answering under first_id + i.
// count == 0 means the send failed and nothing is owed.
struct TicketRange {
  uint64_t first_id = 0;
  uint32_t count = 0;

  bool ok() const { return count > 0; }
  bool Contains(uint64_t id) const {
    return id >= first_id && id - first_id < count;
  }
};

// Everything a batch shares across its items (the per-item variation —
// seed + sources — travels in the BatchItems themselves).
struct BatchOptions {
  bool blocking = true;      // admission mode for every item
  bool want_snapshot = false;
  std::string strategy;      // optional override, empty = server default
};

// One settled request from the pipelined stream: the answer to correlation
// id `request_id`, either a result (type == kSubmitResult) or a typed
// refusal (type == kError).
struct Completion {
  uint64_t request_id = 0;
  MsgType type = MsgType::kError;
  SubmitResult result;  // when kSubmitResult
  ErrorReply error;     // when kError
};

// Client side of the wire protocol: one TCP connection, blocking calls.
//
// Three usage styles:
//   - asynchronous batches (the throughput path): SubmitBatch() ships many
//     requests under one v7 BATCH_SUBMIT frame and returns the TicketRange
//     they answer under; completions are consumed with NextCompletion()
//     (poll style) or DrainCompletions() (callback style), in *completion*
//     order — correlate by request_id. outstanding() tracks what is still
//     owed across every SubmitBatch/SendSubmit on this connection.
//   - synchronous RPC: Call() / Info() / Goodbye() pair one request with
//     one response — the simplest correct loop for a closed-loop driver;
//   - pipelined singletons: issue several SendSubmit()s, then
//     ReadMessage() (or NextCompletion()) until every request_id is
//     answered.
//
// Threading: not generally thread-safe, with one supported overlap — a
// dedicated sender thread (Send*/SubmitBatch) concurrent with a dedicated
// reader thread (ReadMessage/NextCompletion), as the open-loop load driver
// does; send-side and receive-side state are disjoint (outstanding() is
// approximate under this overlap). ReadMessage returning nullopt means the
// connection is unusable — EOF, transport error, or an unrecoverable
// protocol error (see last_error()).
class Client {
 public:
  Client() = default;
  ~Client() = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Connect(const std::string& host, uint16_t port, std::string* error);
  bool connected() const { return socket_.valid(); }

  // Bounds one blocking read (see Socket::SetRecvTimeout); 0 restores
  // "block forever". A timed-out read surfaces as nullopt.
  void SetRecvTimeout(int timeout_ms) { socket_.SetRecvTimeout(timeout_ms); }

  // --- Asynchronous batch surface (wire v7).

  // Ships `items` as one BATCH_SUBMIT frame under a contiguous
  // correlation-id range claimed from this connection's counter, and
  // returns that range (item i answers under first_id + i). Returns a
  // !ok() range on transport failure or an empty span; a returned ok()
  // range owes exactly count completions. The server admits items in
  // order and answers each with an ordinary SUBMIT_RESULT/ERROR frame,
  // byte-identical to the same request submitted alone — batching changes
  // how requests travel, never what they answer. That accounting holds
  // for refusals too: a batch-level refusal (e.g. a strategy override the
  // server does not run) comes back as count per-item error frames,
  // exactly as count singleton submits would have.
  TicketRange SubmitBatch(std::span<const BatchItem> items,
                          const BatchOptions& options = {});

  // Blocks for the next settled request — the answer to any outstanding
  // SubmitBatch item or SendSubmit. Non-completion frames (a stray Info/
  // Metrics/Health answer, a GoodbyeAck) are skipped, so do not interleave
  // unread RPC answers with a completion drain. nullopt means the stream
  // broke (EOF, transport error, or last_error()).
  std::optional<Completion> NextCompletion();

  // Callback-style drain: reads completions until `remaining` of them
  // settled (0 = until outstanding() hits zero), invoking `on_done` for
  // each. Returns false if the stream broke first.
  bool DrainCompletions(const std::function<void(const Completion&)>& on_done,
                        uint64_t remaining = 0);

  // Requests sent but not yet settled on this connection (batch items +
  // singleton submits).
  uint64_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }

  // Fire-and-record senders; false on transport failure.
  bool SendSubmit(const SubmitRequest& request);
  bool SendInfoRequest();
  bool SendMetricsRequest();
  bool SendHealthRequest();
  bool SendProfileRequest();
  bool SendGoodbye();

  // --- Raw-frame layer. The router's backend pool is built on these: it
  // forwards frames wholesale (after patching the correlation id in the
  // payload) without decoding message bodies, so a routing hop costs O(1)
  // per frame regardless of snapshot or source-binding size.

  // Sends one pre-encoded frame (or a run of concatenated frames) as-is;
  // false on transport failure.
  bool SendFrame(const std::vector<uint8_t>& frame);

  // Blocks for the next complete frame, without interpreting its payload.
  // nullopt means the connection is unusable (EOF, transport error, or
  // broken framing — see last_error()).
  std::optional<Frame> ReadFrame();

  // Blocks for the next server frame, decoded. kGoodbyeAck is surfaced as
  // a message with that type (empty members).
  std::optional<ServerMessage> ReadMessage();

  // Synchronous conveniences.
  std::optional<ServerMessage> Call(const SubmitRequest& request);
  std::optional<ServerInfo> Info();
  // Scrapes the server's metrics endpoint (Prometheus text exposition).
  std::optional<std::string> Metrics();
  // Scrapes the v6 health plane: status, journal tail, rate series (a
  // router answers with the whole fleet's view).
  std::optional<HealthInfo> Health();
  // Scrapes the v8 profiling plane: per-attribute work, per-condition
  // selectivities, class rollups (a router answers with every backend's
  // profile alongside its own).
  std::optional<ProfileInfo> Profile();
  // Graceful close: sends kGoodbye, waits for the ack (the server flushes
  // every outstanding response first — any still-pending results arrive
  // before the ack and are DISCARDED here, so call this only after reading
  // everything you care about), then closes. Returns false if the ack
  // never came.
  bool Goodbye();

  // Unblocks a ReadFrame/ReadMessage parked in the kernel from another
  // thread (shuts down both directions; the blocked read returns nullopt).
  // The fd stays valid until Close()/destruction, so a concurrent reader
  // never races a reused descriptor.
  void Shutdown() { socket_.ShutdownBoth(); }

  void Close() { socket_.Close(); }

  // Protocol-level failure of the *stream* (framing), if any.
  WireError last_error() const { return last_error_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  int64_t bytes_received() const { return bytes_received_; }

 private:
  // One completion settled: decrements outstanding_ (reader side only,
  // floored at zero).
  void SettleOne();

  Socket socket_;
  FrameAssembler assembler_;
  WireError last_error_ = WireError::kNone;
  int64_t bytes_sent_ = 0;
  int64_t bytes_received_ = 0;
  // Next correlation id SubmitBatch claims from. Starts high so auto-
  // assigned ranges never collide with hand-chosen singleton ids in mixed
  // use (the id space is per-connection, so this is convention, not
  // correctness).
  uint64_t next_request_id_ = 1ull << 32;
  // Send-side increments, receive-side decrements. Atomic because the
  // supported dedicated-sender/dedicated-reader overlap makes the two
  // sides genuinely concurrent (relaxed suffices: the socket itself
  // orders a completion after its submit); exact in single-threaded use,
  // momentarily approximate mid-overlap but eventually zero.
  std::atomic<uint64_t> outstanding_{0};
};

}  // namespace dflow::net

#endif  // DFLOW_NET_CLIENT_H_
