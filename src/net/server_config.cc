#include "net/server_config.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace dflow::net {
namespace {

// Strict integer parse: the whole token must be one base-10 integer.
bool ParseInt64(const char* text, long long* out) {
  if (*text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseUint64(const char* text, uint64_t* out) {
  if (*text == '\0' || *text == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseDouble(const char* text, double* out) {
  if (*text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text, &end);
  if (errno == ERANGE || end == text || *end != '\0') return false;
  *out = parsed;
  return true;
}

std::string RangeError(long long min_value, long long max_value) {
  return "must be an integer in [" + std::to_string(min_value) + ", " +
         std::to_string(max_value) + "]";
}

// Appends `doc` word-wrapped to `width` columns with a hanging indent.
void AppendWrapped(const std::string& doc, size_t indent, size_t width,
                   std::string* out) {
  size_t column = out->size() - out->rfind('\n') - 1;
  size_t start = 0;
  while (start < doc.size()) {
    size_t end = doc.find(' ', start);
    if (end == std::string::npos) end = doc.size();
    const size_t word_len = end - start;
    if (column + word_len + 1 > width && column > indent) {
      *out += '\n';
      out->append(indent, ' ');
      column = indent;
    } else if (column > indent) {
      *out += ' ';
      ++column;
    }
    out->append(doc, start, word_len);
    column += word_len;
    start = end + 1;
  }
  *out += '\n';
}

}  // namespace

ServerConfig::ServerConfig(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

ServerConfig& ServerConfig::AddRow(Row row) {
  rows_.push_back(std::move(row));
  return *this;
}

const ServerConfig::Row* ServerConfig::Find(const std::string& name) const {
  for (const Row& row : rows_) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

ServerConfig& ServerConfig::Int(const char* name, int* target, const char* doc,
                                long long min_value, long long max_value) {
  Row row;
  row.name = name;
  row.value_name = "N";
  row.doc = doc;
  row.default_text = std::to_string(*target);
  row.parse = [target, min_value, max_value](const char* value,
                                             std::string* error) {
    long long parsed = 0;
    if (!ParseInt64(value, &parsed) || parsed < min_value ||
        parsed > max_value || parsed < INT32_MIN || parsed > INT32_MAX) {
      *error = RangeError(min_value < INT32_MIN ? INT32_MIN : min_value,
                          max_value > INT32_MAX ? INT32_MAX : max_value);
      return false;
    }
    *target = static_cast<int>(parsed);
    return true;
  };
  return AddRow(std::move(row));
}

ServerConfig& ServerConfig::Int64(const char* name, long long* target,
                                  const char* doc, long long min_value,
                                  long long max_value) {
  Row row;
  row.name = name;
  row.value_name = "N";
  row.doc = doc;
  row.default_text = std::to_string(*target);
  row.parse = [target, min_value, max_value](const char* value,
                                             std::string* error) {
    long long parsed = 0;
    if (!ParseInt64(value, &parsed) || parsed < min_value ||
        parsed > max_value) {
      *error = RangeError(min_value, max_value);
      return false;
    }
    *target = parsed;
    return true;
  };
  return AddRow(std::move(row));
}

ServerConfig& ServerConfig::Uint64(const char* name, uint64_t* target,
                                   const char* doc) {
  Row row;
  row.name = name;
  row.value_name = "N";
  row.doc = doc;
  row.default_text = std::to_string(*target);
  row.parse = [target](const char* value, std::string* error) {
    uint64_t parsed = 0;
    if (!ParseUint64(value, &parsed)) {
      *error = "must be a non-negative integer";
      return false;
    }
    *target = parsed;
    return true;
  };
  return AddRow(std::move(row));
}

ServerConfig& ServerConfig::Double(const char* name, double* target,
                                   const char* doc) {
  Row row;
  row.name = name;
  row.value_name = "X";
  row.doc = doc;
  row.default_text = std::to_string(*target);
  // Trim trailing zeros ("2.000000" -> "2"); keeps the help readable.
  while (row.default_text.find('.') != std::string::npos &&
         (row.default_text.back() == '0' || row.default_text.back() == '.')) {
    const char dropped = row.default_text.back();
    row.default_text.pop_back();
    if (dropped == '.') break;
  }
  row.parse = [target](const char* value, std::string* error) {
    if (!ParseDouble(value, target)) {
      *error = "must be a number";
      return false;
    }
    return true;
  };
  return AddRow(std::move(row));
}

ServerConfig& ServerConfig::String(const char* name, std::string* target,
                                   const char* doc) {
  Row row;
  row.name = name;
  row.value_name = "TEXT";
  row.doc = doc;
  row.default_text = target->empty() ? "" : *target;
  row.parse = [target](const char* value, std::string*) {
    *target = value;
    return true;
  };
  return AddRow(std::move(row));
}

ServerConfig& ServerConfig::Bool(const char* name, bool* target,
                                 const char* doc) {
  Row row;
  row.name = name;
  row.doc = doc;
  row.bool_target = target;
  return AddRow(std::move(row));
}

ServerConfig& ServerConfig::SamplePeriod(const char* name, uint32_t* target,
                                         const char* doc) {
  Row row;
  row.name = name;
  row.value_name = "N|1/N";
  row.doc = doc;
  row.default_text = std::to_string(*target);
  row.parse = [target](const char* value, std::string* error) {
    // "--flag=64" and "--flag=1/64" both mean "1 in 64"; 0 disables.
    if (std::strncmp(value, "1/", 2) == 0) value += 2;
    long long parsed = 0;
    if (!ParseInt64(value, &parsed) || parsed < 0 || parsed > UINT32_MAX) {
      *error = "must be N or 1/N with N a non-negative integer";
      return false;
    }
    *target = static_cast<uint32_t>(parsed);
    return true;
  };
  return AddRow(std::move(row));
}

ServerConfig& ServerConfig::Megabytes(const char* name, uint64_t* target,
                                      const char* doc) {
  Row row;
  row.name = name;
  row.value_name = "MB";
  row.doc = doc;
  row.default_text = std::to_string(*target / (1024.0 * 1024.0));
  while (row.default_text.find('.') != std::string::npos &&
         (row.default_text.back() == '0' || row.default_text.back() == '.')) {
    const char dropped = row.default_text.back();
    row.default_text.pop_back();
    if (dropped == '.') break;
  }
  row.parse = [target](const char* value, std::string* error) {
    double megabytes = 0;
    if (!ParseDouble(value, &megabytes) || megabytes < 0) {
      *error = "must be a non-negative number of megabytes";
      return false;
    }
    *target = static_cast<uint64_t>(megabytes * 1024 * 1024);
    return true;
  };
  return AddRow(std::move(row));
}

ServerConfig& ServerConfig::Custom(
    const char* name, const char* value_name, const char* doc,
    std::function<bool(const char* value, std::string* error)> parse) {
  Row row;
  row.name = name;
  row.value_name = value_name;
  row.doc = doc;
  row.parse = std::move(parse);
  return AddRow(std::move(row));
}

ServerConfig::ParseStatus ServerConfig::Parse(int argc, char** argv,
                                              std::string* error) const {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return ParseStatus::kHelp;
    }
    if (std::strncmp(arg, "--", 2) != 0) {
      *error = "unexpected argument '" + std::string(arg) +
               "' (flags are --name=VALUE; see --help)";
      return ParseStatus::kError;
    }
    const char* eq = std::strchr(arg + 2, '=');
    const std::string name =
        eq == nullptr ? std::string(arg + 2)
                      : std::string(arg + 2, static_cast<size_t>(eq - arg - 2));
    const Row* row = Find(name);
    if (row == nullptr) {
      *error = "unknown flag '--" + name + "' (see --help)";
      return ParseStatus::kError;
    }
    if (row->bool_target != nullptr) {
      if (eq != nullptr) {
        *error = "--" + name + " takes no value";
        return ParseStatus::kError;
      }
      *row->bool_target = true;
      continue;
    }
    if (eq == nullptr) {
      *error = "--" + name + " needs a value (--" + name + "=" +
               row->value_name + ")";
      return ParseStatus::kError;
    }
    std::string detail;
    if (!row->parse(eq + 1, &detail)) {
      *error = "--" + name + "='" + std::string(eq + 1) + "': " +
               (detail.empty() ? "invalid value" : detail);
      return ParseStatus::kError;
    }
  }
  return ParseStatus::kOk;
}

std::string ServerConfig::Help() const {
  std::string out = "usage: " + program_ + " [--flag=VALUE ...]\n\n";
  AppendWrapped(summary_, 0, 78, &out);
  out += '\n';
  constexpr size_t kDocColumn = 30;
  for (const Row& row : rows_) {
    std::string head = "  --" + row.name;
    if (row.bool_target == nullptr) head += "=" + row.value_name;
    if (head.size() + 2 > kDocColumn) {
      out += head + '\n';
      out.append(kDocColumn, ' ');
    } else {
      head.append(kDocColumn - head.size(), ' ');
      out += head;
    }
    std::string doc = row.doc;
    if (!row.default_text.empty()) {
      doc += " [default " + row.default_text + "]";
    }
    AppendWrapped(doc, kDocColumn, 78, &out);
  }
  out += "  --help                      print this reference and exit\n";
  return out;
}

}  // namespace dflow::net
