#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dflow::net {
namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr,
              std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) {
      *error = "not an IPv4 address: '" + host + "'";
    }
    return false;
  }
  return true;
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::ConnectTcp(const std::string& host, uint16_t port,
                          std::string* error) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr, error)) return Socket();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return Socket();
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // EINTR does NOT abort a connect: POSIX keeps the attempt going
    // asynchronously, and a second connect() would fail with EALREADY. The
    // signal-safe completion is to wait for writability and read the
    // outcome from SO_ERROR — without this, any signal landing during the
    // three-way handshake (profilers, the serve binaries' signal handling)
    // surfaces as a spurious connection failure.
    bool connected = false;
    if (errno == EINTR) {
      pollfd pfd{fd, POLLOUT, 0};
      while (::poll(&pfd, 1, -1) < 0 && errno == EINTR) {
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) == 0 &&
          so_error == 0) {
        connected = true;
      } else {
        errno = so_error != 0 ? so_error : errno;
      }
    }
    if (!connected) {
      if (error != nullptr) *error = std::strerror(errno);
      ::close(fd);
      return Socket();
    }
  }
  SetNoDelay(fd);
  return Socket(fd);
}

void Socket::SetSendTimeout(int timeout_ms) {
  if (fd_ < 0 || timeout_ms < 0) return;
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void Socket::SetRecvTimeout(int timeout_ms) {
  if (fd_ < 0 || timeout_ms < 0) return;
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool Socket::SendAll(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a vanished peer must surface as an error return, not a
    // process-killing SIGPIPE on the shard worker or writer thread.
    const ssize_t n =
        ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

ssize_t Socket::Recv(void* data, size_t size) {
  while (true) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

bool Socket::SetNonBlocking() {
  if (fd_ < 0) return false;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0;
}

IoResult Socket::SendSome(const void* data, size_t size) {
  while (true) {
    const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::kOk, static_cast<size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

IoResult Socket::RecvSome(void* data, size_t size) {
  while (true) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n > 0) return {IoStatus::kOk, static_cast<size_t>(n)};
    if (n == 0) return {IoStatus::kEof, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::~ListenSocket() { Close(); }

bool ListenSocket::Listen(uint16_t port, std::string* error) {
  sockaddr_in addr;
  if (!FillAddr("127.0.0.1", port, &addr, error)) return false;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, SOMAXCONN) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    Close();
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    Close();
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

Socket ListenSocket::Accept(AcceptStatus* status) {
  while (fd_ >= 0) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      // Signals and peers that gave up during the handshake are retried
      // here, invisibly to the caller.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        if (status != nullptr) *status = AcceptStatus::kTransient;
        return Socket();
      }
      // Shutdown() poisons the listener: accept fails with EINVAL, the
      // acceptor thread's signal to exit.
      if (status != nullptr) *status = AcceptStatus::kShutdown;
      return Socket();
    }
    SetNoDelay(fd);
    if (status != nullptr) *status = AcceptStatus::kOk;
    return Socket(fd);
  }
  if (status != nullptr) *status = AcceptStatus::kShutdown;
  return Socket();
}

void ListenSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace dflow::net
