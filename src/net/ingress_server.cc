#include "net/ingress_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "core/dot_export.h"
#include "core/strategy.h"
#include "net/health_wire.h"
#include "net/profile_wire.h"

namespace dflow::net {
namespace {

// One merged-profile snapshot as a JSONL line (the --profile-jsonl sink
// format). Zero rows are skipped exactly as on the wire: a row that never
// fired carries no signal.
std::string ProfileJson(const std::string& node_id,
                        const obs::ProfileSnapshot& p) {
  std::ostringstream os;
  os << "{\"kind\":\"profile_snapshot\",\"node\":\"" << node_id << "\""
     << ",\"sample_period\":" << p.sample_period
     << ",\"profiled_requests\":" << p.profiled_requests
     << ",\"total_requests\":" << p.total_requests << ",\"attrs\":[";
  bool first = true;
  for (size_t i = 0; i < p.attrs.size(); ++i) {
    const obs::AttrProfile& a = p.attrs[i];
    if (a.launches == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"attr\":" << i << ",\"name\":\""
       << (i < p.attr_names.size() ? p.attr_names[i] : "")
       << "\",\"launches\":" << a.launches
       << ",\"work_units\":" << a.work_units
       << ",\"speculative\":" << a.speculative_launches
       << ",\"wasted_work\":" << a.wasted_work << "}";
  }
  os << "],\"conds\":[";
  first = true;
  for (size_t i = 0; i < p.conds.size(); ++i) {
    const obs::CondProfile& c = p.conds[i];
    if (c.evals == 0 && c.true_outcomes == 0 && c.false_outcomes == 0) {
      continue;
    }
    if (!first) os << ",";
    first = false;
    os << "{\"attr\":" << i << ",\"evals\":" << c.evals
       << ",\"true\":" << c.true_outcomes
       << ",\"false\":" << c.false_outcomes
       << ",\"unknown\":" << c.unknown_outcomes
       << ",\"eager_disables\":" << c.eager_disables << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace

IngressServer::IngressServer(const core::Schema* schema,
                             runtime::FlowServerOptions server_options,
                             IngressOptions ingress_options)
    : options_(ingress_options),
      server_(schema, server_options),
      recorder_(ingress_options.trace,
                ingress_options.node_id.empty() ? "serve"
                                                : ingress_options.node_id),
      journal_(ingress_options.events, ingress_options.node_id.empty()
                                           ? "serve"
                                           : ingress_options.node_id),
      health_(ingress_options.health, MakeHealthSources(), &journal_),
      loop_(EventLoop::Options{ingress_options.event_threads,
                               ingress_options.send_timeout_ms}) {
  // Installed before the listener exists, so it observes every request the
  // ingress will ever admit.
  server_.SetResultCallback(
      [this](int shard_index, const runtime::FlowRequest& request,
             const core::InstanceResult& result,
             const core::Strategy& executed) {
        OnResult(shard_index, request, result, executed);
      });
  // Counters and gauges are callbacks over state the server maintains
  // anyway, so registering them costs the request path nothing.
  const auto counter = [this](const char* name, std::atomic<int64_t>* src) {
    metrics_.AddCounter(name, {}, [src] { return src->load(); });
  };
  counter("dflow_connections_opened_total", &connections_opened_);
  counter("dflow_connections_closed_total", &connections_closed_);
  counter("dflow_requests_accepted_total", &requests_accepted_);
  counter("dflow_requests_rejected_busy_total", &requests_rejected_busy_);
  counter("dflow_requests_rejected_shutdown_total",
          &requests_rejected_shutdown_);
  counter("dflow_decode_errors_total", &decode_errors_);
  counter("dflow_protocol_errors_total", &protocol_errors_);
  // Byte counters fold across live conns + the closed-session accumulator
  // (scrape-time work, so the per-read hot path stays a single atomic add
  // on the conn).
  metrics_.AddCounter("dflow_bytes_in_total", {},
                      [this] { return ingress_stats().bytes_in; });
  metrics_.AddCounter("dflow_bytes_out_total", {},
                      [this] { return ingress_stats().bytes_out; });
  metrics_.AddCounter("dflow_completed_total", {},
                      [this] { return server_.total_processed(); });
  metrics_.AddCounter("dflow_cache_hits_total", {},
                      [this] { return server_.cache_totals().hits; });
  metrics_.AddCounter("dflow_cache_misses_total", {},
                      [this] { return server_.cache_totals().misses; });
  metrics_.AddCounter("dflow_traces_started_total", {},
                      [this] { return recorder_.started(); });
  metrics_.AddCounter("dflow_traces_finished_total", {},
                      [this] { return recorder_.finished(); });
  for (int i = 0; i < server_.num_shards(); ++i) {
    metrics_.AddGauge(
        "dflow_queue_depth", {{"shard", std::to_string(i)}}, [this, i] {
          return static_cast<double>(server_.queue_depths()[static_cast<
              size_t>(i)]);
        });
  }
  wall_latency_us_ = metrics_.AddHistogram(
      "dflow_wall_latency_us", {}, obs::DefaultWallLatencyBucketsUs());
  latency_units_ = metrics_.AddHistogram("dflow_latency_units", {},
                                         obs::DefaultWorkUnitBuckets());
  journal_.RegisterCounters(&metrics_);
  health_.RegisterMetrics(&metrics_);
  // v8 profiling families: measured per-attribute work and per-condition
  // selectivity, labeled by attribute name. Registered only when the
  // profilers exist — a profiling-off server scrapes no empty families.
  if (server_.profiling_enabled()) {
    const core::Schema& schema = server_.schema();
    for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
      metrics_.AddCounter("dflow_attr_work_units_total",
                          {{"attr", schema.attribute(a).name}},
                          [this, a] { return server_.ProfiledAttrWork(a); });
      if (!schema.is_source(a) &&
          !schema.enabling_condition(a).IsLiteralTrue()) {
        metrics_.AddGauge("dflow_cond_selectivity",
                          {{"attr", schema.attribute(a).name}}, [this, a] {
                            return server_.ProfiledCondSelectivity(a);
                          });
      }
    }
  }
  if (!options_.profile_jsonl_path.empty()) {
    profile_sink_.Open(options_.profile_jsonl_path,
                       options_.profile_jsonl_max_bytes);
  }
}

obs::HealthSources IngressServer::MakeHealthSources() {
  // Closures over state the server maintains anyway, resolved at sample
  // time (wall_latency_us_ is assigned later in the constructor; the
  // closure reads it lazily).
  obs::HealthSources sources;
  sources.requests_total = [this] { return server_.total_processed(); };
  sources.cache_hits_total = [this] { return server_.cache_totals().hits; };
  sources.cache_misses_total = [this] {
    return server_.cache_totals().misses;
  };
  sources.advisor_explores_total = [this] {
    return server_.advisor() != nullptr
               ? server_.Report().stats.advisor_explores
               : 0;
  };
  sources.wall_latency = [this] {
    return wall_latency_us_ != nullptr ? wall_latency_us_->Snap()
                                       : obs::Histogram::Snapshot{};
  };
  sources.queue_depths = [this] {
    const std::vector<size_t> depths = server_.queue_depths();
    return std::vector<uint64_t>(depths.begin(), depths.end());
  };
  sources.queue_capacity = server_.options().queue_capacity_per_shard;
  return sources;
}

IngressServer::~IngressServer() { Stop(); }

bool IngressServer::Start(std::string* error) {
  if (started_.exchange(true)) {
    if (error != nullptr) *error = "Start() called twice";
    return false;
  }
  if (!listener_.Listen(options_.port, error)) return false;
  if (!loop_.Start(error)) {
    listener_.Close();
    return false;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  health_.Start();
  return true;
}

void IngressServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  // 1. Stop accepting; retire the acceptor.
  listener_.Shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  // 2. Gracefully close every conn: already-buffered frames finish
  // dispatching (which may still admit requests — the shards are still
  // running, so stalled admissions unwedge), every in-flight answer lands
  // in its outbox, and the backlogs flush before the sockets close.
  loop_.Stop();
  // 3. Only now quiesce the execution layer: every accepted request was
  // answered, so the drain has nothing the wire still owes a client.
  server_.Drain();
  // Profile epilogue: the drained server's merged profile is final, so this
  // one snapshot covers everything the process ever served.
  WriteProfileSnapshot();
  // 4. Health plane teardown: journal the drain, stop the collector, and
  // flush both JSONL sinks so a SIGTERM-driven exit loses no tail.
  journal_.Emit(obs::EventKind::kDrain, obs::Severity::kInfo,
                "completed=" + std::to_string(server_.total_processed()));
  health_.Stop();
  journal_.Flush();
  recorder_.Flush();
  profile_sink_.Flush();
}

runtime::IngressStats IngressServer::ingress_stats() const {
  runtime::IngressStats stats;
  stats.connections_opened = connections_opened_.load();
  stats.connections_closed = connections_closed_.load();
  stats.requests_accepted = requests_accepted_.load();
  stats.requests_rejected_busy = requests_rejected_busy_.load();
  stats.requests_rejected_shutdown = requests_rejected_shutdown_.load();
  stats.decode_errors = decode_errors_.load();
  stats.protocol_errors = protocol_errors_.load();
  stats.info_requests = info_requests_.load();
  // Byte and outbox stats: the closed-session accumulators plus a
  // live-conn scan, all under sessions_mu_ so a conn retiring concurrently
  // is counted exactly once (on_close folds and unindexes under the same
  // lock). bytes_out IS the outbox flush count — the outbox is the only
  // writer a conn has.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  stats.bytes_in = closed_bytes_in_;
  stats.outbox_inflight_hwm = closed_outbox_.inflight_hwm;
  stats.outbox_bytes_written = closed_outbox_.bytes_written;
  stats.outbox_write_stalls = closed_outbox_.write_stalls;
  for (const auto& [id, conn] : conns_) {
    const SessionOutbox::Stats live = conn->outbox().GetStats();
    stats.bytes_in += conn->bytes_in();
    stats.outbox_inflight_hwm =
        std::max(stats.outbox_inflight_hwm, live.inflight_hwm);
    stats.outbox_bytes_written += live.bytes_written;
    stats.outbox_write_stalls += live.write_stalls;
  }
  stats.bytes_out = stats.outbox_bytes_written;
  return stats;
}

runtime::FlowServerReport IngressServer::Report() const {
  runtime::FlowServerReport report = server_.Report();
  report.ingress = ingress_stats();
  return report;
}

void IngressServer::AcceptLoop() {
  int backoff_ms = 10;
  while (true) {
    ListenSocket::AcceptStatus status = ListenSocket::AcceptStatus::kShutdown;
    Socket socket = listener_.Accept(&status);
    if (status == ListenSocket::AcceptStatus::kTransient) {
      // Out of fds (or kernel buffers): survive it instead of exiting.
      // Pausing the accept path sheds politely — unaccepted peers wait in
      // the listen backlog — and the journal entry names the ceiling so an
      // operator raises ulimit instead of chasing drops.
      journal_.Emit(obs::EventKind::kWatermark, obs::Severity::kWarn,
                    "accept: fd/buffer exhaustion; backing off " +
                        std::to_string(backoff_ms) + "ms");
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 100);
      continue;
    }
    backoff_ms = 10;
    if (status != ListenSocket::AcceptStatus::kOk) break;
    if (stopping_.load(std::memory_order_acquire)) break;
    auto session = std::make_shared<Session>();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      session->id = next_session_id_++;
    }
    EventConn::Handlers handlers;
    handlers.on_frame = [this, session](EventConn* conn, Frame& frame) {
      return HandleFrame(conn, session, frame);
    };
    handlers.on_protocol_error = [this, session](EventConn* conn,
                                                 WireError error) {
      // Framing is lost: answer with the reason, then hang up (the loop
      // begins the graceful close) — there is no way to find the next
      // frame boundary in the stream.
      session->decode_errors.fetch_add(1, std::memory_order_relaxed);
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, 0, error, "unrecoverable frame stream");
    };
    handlers.on_close = [this, session](EventConn* conn) {
      OnConnClosed(conn, session);
    };
    const std::shared_ptr<EventConn> conn =
        loop_.Add(std::move(socket), std::move(handlers), session,
                  options_.max_payload_bytes);
    if (conn == nullptr) continue;  // loop stopped under us; socket dropped
    connections_opened_.fetch_add(1, std::memory_order_relaxed);
    if (options_.verbose) {
      std::fprintf(stderr, "[ingress] connection %llu open\n",
                   static_cast<unsigned long long>(session->id));
    }
    {
      // Index for the stats live-scan — unless the conn already retired
      // (a connect-and-vanish client can close before this line runs).
      std::lock_guard<std::mutex> lock(sessions_mu_);
      if (!session->retired) conns_.emplace(session->id, conn);
    }
  }
}

void IngressServer::OnConnClosed(EventConn* conn,
                                 const std::shared_ptr<Session>& session) {
  const SessionOutbox::Stats outbox = conn->outbox().GetStats();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session->retired = true;
    conns_.erase(session->id);
    closed_bytes_in_ += conn->bytes_in();
    closed_outbox_.inflight_hwm =
        std::max(closed_outbox_.inflight_hwm, outbox.inflight_hwm);
    closed_outbox_.bytes_written += outbox.bytes_written;
    closed_outbox_.write_stalls += outbox.write_stalls;
  }
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  if (options_.verbose) {
    std::fprintf(
        stderr,
        "[ingress] connection %llu closed: accepted=%lld busy=%lld "
        "shutdown=%lld decode_errors=%lld bytes_in=%lld bytes_out=%lld\n",
        static_cast<unsigned long long>(session->id),
        static_cast<long long>(session->accepted.load()),
        static_cast<long long>(session->rejected_busy.load()),
        static_cast<long long>(session->rejected_shutdown.load()),
        static_cast<long long>(session->decode_errors.load()),
        static_cast<long long>(conn->bytes_in()),
        static_cast<long long>(outbox.bytes_written));
  }
}

EventConn::FrameAction IngressServer::HandleFrame(
    EventConn* conn, const std::shared_ptr<Session>& session, Frame& frame) {
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::kSubmit: {
      SubmitRequest request;
      if (!DecodeSubmit(frame.payload, &request)) {
        // The payload was bad but framing held: report and keep serving.
        session->decode_errors.fetch_add(1, std::memory_order_relaxed);
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, PeekRequestId(frame.payload),
                  WireError::kMalformedFrame, "undecodable submit payload");
        return EventConn::FrameAction::kContinue;
      }
      return HandleSubmit(conn, session, std::move(request));
    }
    case MsgType::kBatchSubmit: {
      BatchSubmitRequest request;
      if (!DecodeBatchSubmit(frame.payload, &request)) {
        session->decode_errors.fetch_add(1, std::memory_order_relaxed);
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        // How many completions this frame owes is unknowable (the item
        // count is part of what failed to decode), so per-item errors are
        // impossible and the connection's completion accounting is broken.
        // Answer the typed error, then close: a client blocked draining
        // the batch's ticket range unblocks on EOF instead of hanging.
        SendError(conn, PeekRequestId(frame.payload),
                  WireError::kMalformedFrame, "undecodable batch payload");
        conn->BeginGracefulClose();
        return EventConn::FrameAction::kClose;
      }
      return HandleBatchSubmit(conn, session, std::move(request));
    }
    case MsgType::kInfoRequest: {
      info_requests_.fetch_add(1, std::memory_order_relaxed);
      std::vector<uint8_t> out;
      EncodeInfo(BuildInfo(), &out);
      conn->PushResponse(std::move(out));
      return EventConn::FrameAction::kContinue;
    }
    case MsgType::kMetricsRequest: {
      std::vector<uint8_t> out;
      EncodeMetrics(metrics_.RenderText(), &out);
      conn->PushResponse(std::move(out));
      return EventConn::FrameAction::kContinue;
    }
    case MsgType::kHealthRequest: {
      std::vector<uint8_t> out;
      EncodeHealth(BuildHealth(), &out);
      conn->PushResponse(std::move(out));
      return EventConn::FrameAction::kContinue;
    }
    case MsgType::kProfileRequest: {
      std::vector<uint8_t> out;
      EncodeProfile(BuildProfile(), &out);
      conn->PushResponse(std::move(out));
      return EventConn::FrameAction::kContinue;
    }
    case MsgType::kGoodbye: {
      // Flush-then-ack, without parking the loop thread: the ack rides as
      // the graceful close's final frame, which the loop pushes only after
      // every accepted submit on this connection has its answer in the
      // outbox — a client that waits for the ack has seen all its results.
      std::vector<uint8_t> ack;
      EncodeGoodbyeAck(&ack);
      conn->BeginGracefulClose(std::move(ack));
      return EventConn::FrameAction::kClose;
    }
    default:
      session->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, 0, WireError::kUnsupportedType,
                "unknown frame type " + std::to_string(frame.type));
      return EventConn::FrameAction::kContinue;
  }
}

bool IngressServer::StrategyAllowed(const std::string& strategy) const {
  if (strategy.empty()) return true;
  const std::optional<core::Strategy> parsed = core::Strategy::Parse(strategy);
  // An override may only name what this server already runs: its fixed
  // strategy, or the AUTO sentinel on an advisor-driven server (the
  // advisor still picks the concrete strategy — per-request pinning on
  // an AUTO server is a ROADMAP item, as are multi-strategy shard
  // pools).
  return parsed.has_value() &&
         parsed->ToString() == server_.strategy().ToString();
}

bool IngressServer::CheckStrategy(EventConn* conn, Session* session,
                                  uint64_t request_id,
                                  const std::string& strategy) {
  if (StrategyAllowed(strategy)) return true;
  session->protocol_errors.fetch_add(1, std::memory_order_relaxed);
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  SendError(conn, request_id, WireError::kBadStrategy,
            "server runs " + server_.strategy().ToString());
  return false;
}

IngressServer::Admission IngressServer::PrepareAdmission(
    const std::shared_ptr<EventConn>& conn,
    const std::shared_ptr<Session>& session, uint64_t request_id,
    bool want_snapshot, uint64_t seed, core::SourceBinding sources,
    bool force_trace, uint64_t trace_id) {
  // Trace when the client (or an upstream router) asked for one via the
  // wire extension, or when this recorder's own sampling picks the seed.
  // The id travels: a propagated nonzero id is adopted verbatim.
  std::shared_ptr<obs::RequestTrace> trace;
  if (force_trace || recorder_.ShouldTrace(seed)) {
    trace = recorder_.Begin(seed, trace_id);
  }
  const uint64_t start_ns =
      trace != nullptr ? trace->begin_ns() : obs::MonotonicNs();
  const uint64_t ticket =
      next_ticket_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.emplace(ticket, Pending{conn, request_id, want_snapshot,
                                     start_ns, trace});
  }
  conn->outbox().BeginRequest();
  // Stamped before the first admission offer so both are visible to the
  // shard worker no matter how quickly the pop lands — the worker may
  // snapshot the trace for the reply while this loop thread is still
  // returning. ingress.queue therefore covers decode -> admission attempt;
  // a blocking submit stalled on a full queue shows the wait in
  // shard.queue_wait, which measures from this same instant.
  if (trace != nullptr) {
    const uint64_t enqueue_ns = obs::MonotonicNs();
    trace->AddSpan(obs::SpanKind::kIngressQueue, start_ns, enqueue_ns);
    trace->SetEnqueue(enqueue_ns);
  }
  return Admission{conn,  session, ticket, request_id,
                   seed,  std::move(sources), trace,  start_ns};
}

runtime::TryPushResult IngressServer::Offer(const Admission& admission) {
  runtime::FlowRequest flow_request{admission.sources, admission.seed,
                                    admission.ticket, admission.trace};
  return server_.OfferSubmit(std::move(flow_request));
}

void IngressServer::Resolve(const Admission& admission,
                            runtime::TryPushResult result) {
  if (result == runtime::TryPushResult::kOk) {
    admission.session->accepted.fetch_add(1, std::memory_order_relaxed);
    requests_accepted_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Refused: unwind the pending entry and answer with the typed reason.
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.erase(admission.ticket);
  }
  admission.conn->outbox().FinishRequest();
  // A refused traced request still finishes its trace (with only the
  // admission attempt in it): refusals are exactly what a latency
  // investigation wants to see.
  if (admission.trace != nullptr) {
    recorder_.Finish(admission.trace,
                     obs::MonotonicNs() - admission.start_ns);
  }
  if (result == runtime::TryPushResult::kFull) {
    admission.session->rejected_busy.fetch_add(1, std::memory_order_relaxed);
    requests_rejected_busy_.fetch_add(1, std::memory_order_relaxed);
    // Parity with the counted TrySubmitEx path this refusal used to take.
    SendError(admission.conn.get(), admission.request_id,
              WireError::kRejectedBusy, "shard queue full");
  } else {
    admission.session->rejected_shutdown.fetch_add(1,
                                                   std::memory_order_relaxed);
    requests_rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    SendError(admission.conn.get(), admission.request_id,
              WireError::kShuttingDown, "server draining");
  }
}

EventConn::FrameAction IngressServer::HandleSubmit(
    EventConn* conn, const std::shared_ptr<Session>& session,
    SubmitRequest request) {
  if (!CheckStrategy(conn, session.get(), request.request_id,
                     request.strategy)) {
    return EventConn::FrameAction::kContinue;
  }
  Admission admission = PrepareAdmission(
      conn->shared_from_this(), session, request.request_id,
      request.want_snapshot, request.seed, std::move(request.sources),
      request.has_trace, request.trace_id);
  if (!request.blocking) {
    // Non-blocking refusals are shed load and count as rejections
    // server-side, exactly like the old TrySubmitEx path.
    runtime::FlowRequest flow_request{admission.sources, admission.seed,
                                      admission.ticket, admission.trace};
    Resolve(admission, server_.TrySubmitEx(std::move(flow_request)));
    return EventConn::FrameAction::kContinue;
  }
  const runtime::TryPushResult result = Offer(admission);
  if (result != runtime::TryPushResult::kFull) {
    Resolve(admission, result);
    return EventConn::FrameAction::kContinue;
  }
  // Blocking submit against a full queue: park the admission as a deferred
  // retry. The loop pauses reads (kStall), so TCP pushes the stall back to
  // the client while other conns on this thread keep being served.
  conn->DeferRetry([this, admission = std::move(admission)] {
    const runtime::TryPushResult retry = Offer(admission);
    if (retry == runtime::TryPushResult::kFull) return false;
    Resolve(admission, retry);
    return true;
  });
  return EventConn::FrameAction::kStall;
}

EventConn::FrameAction IngressServer::HandleBatchSubmit(
    EventConn* conn, const std::shared_ptr<Session>& session,
    BatchSubmitRequest request) {
  if (!StrategyAllowed(request.strategy)) {
    // A refused batch still owes exactly one completion per item: answer
    // ids base..base+count-1 individually, exactly as `count` singleton
    // submits carrying the same override would have (count BAD_STRATEGY
    // errors), so the client's TicketRange settles instead of a drain
    // waiting forever on completions that never come.
    for (size_t i = 0; i < request.items.size(); ++i) {
      session->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, request.request_id_base + i, WireError::kBadStrategy,
                "server runs " + server_.strategy().ToString());
    }
    return EventConn::FrameAction::kContinue;
  }
  auto state = std::make_shared<BatchState>();
  state->conn = conn->shared_from_this();
  state->session = session;
  state->request = std::move(request);
  if (AdvanceBatch(state)) return EventConn::FrameAction::kContinue;
  conn->DeferRetry([this, state] { return AdvanceBatch(state); });
  return EventConn::FrameAction::kStall;
}

bool IngressServer::AdvanceBatch(const std::shared_ptr<BatchState>& state) {
  while (true) {
    if (!state->parked.has_value()) {
      if (state->next >= state->request.items.size()) return true;
      BatchItem& item = state->request.items[state->next];
      // Item i answers under request_id_base + i — the contiguous ticket
      // range the client was promised. Per-item admission, refusals and
      // responses are then exactly the singleton path's, which is what
      // makes a batch byte-identical to its unbatched equivalent.
      const uint64_t request_id =
          state->request.request_id_base + state->next;
      ++state->next;
      state->parked = PrepareAdmission(
          state->conn, state->session, request_id,
          state->request.want_snapshot, item.seed, std::move(item.sources),
          /*force_trace=*/false, /*trace_id=*/0);
    }
    if (state->request.blocking) {
      const runtime::TryPushResult result = Offer(*state->parked);
      if (result == runtime::TryPushResult::kFull) return false;  // stall
      Resolve(*state->parked, result);
    } else {
      runtime::FlowRequest flow_request{
          state->parked->sources, state->parked->seed, state->parked->ticket,
          state->parked->trace};
      Resolve(*state->parked, server_.TrySubmitEx(std::move(flow_request)));
    }
    state->parked.reset();
  }
}

void IngressServer::OnResult(int shard_index,
                             const runtime::FlowRequest& request,
                             const core::InstanceResult& result,
                             const core::Strategy& executed) {
  if (request.ticket == 0) return;  // not one of ours
  const uint64_t completion_ns = obs::MonotonicNs();
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    const auto it = pending_.find(request.ticket);
    if (it == pending_.end()) return;
    pending = std::move(it->second);
    pending_.erase(it);
  }
  // Real wall-clock latency (submit decoded -> completion) next to the
  // paper's work-unit latency, for every request — traced or not.
  wall_latency_us_->Observe(
      static_cast<double>(completion_ns - pending.start_ns) / 1e3);
  latency_units_->Observe(result.metrics.ResponseTime());
  SubmitResult reply;
  reply.request_id = pending.request_id;
  reply.shard = shard_index;
  reply.work = result.metrics.work;
  reply.wasted_work = result.metrics.wasted_work;
  reply.response_time = result.metrics.ResponseTime();
  reply.queries_launched = result.metrics.queries_launched;
  reply.speculative_launches = result.metrics.speculative_launches;
  reply.fingerprint = FingerprintResult(result);
  reply.strategy = executed.ToString();
  if (pending.want_snapshot) {
    reply.has_snapshot = true;
    const int n = result.snapshot.schema().num_attributes();
    reply.snapshot.reserve(static_cast<size_t>(n));
    for (int a = 0; a < n; ++a) {
      const auto attr = static_cast<AttributeId>(a);
      reply.snapshot.push_back(SnapshotEntry{
          attr, result.snapshot.state(attr), result.snapshot.value(attr)});
    }
  }
  if (pending.trace != nullptr) {
    // outbox.write covers the response assembly above; it cannot extend
    // into the encode below because the span must land inside the very
    // trailer that encode serializes.
    pending.trace->AddSpan(obs::SpanKind::kOutboxWrite, completion_ns,
                           obs::MonotonicNs());
    const obs::RequestTrace::View view = pending.trace->Snapshot();
    reply.trace_id = pending.trace->trace_id();
    reply.spans.reserve(view.spans.size());
    for (const obs::Span& span : view.spans) {
      reply.spans.push_back(WireSpan{static_cast<uint8_t>(span.kind),
                                     span.start_ns, span.duration_ns});
    }
  }
  std::vector<uint8_t> out;
  EncodeSubmitResult(reply, &out);
  // Push before Finish: once the in-flight count hits zero during a
  // graceful close, every answer is already in the outbox.
  pending.conn->PushResponse(std::move(out));
  pending.conn->outbox().FinishRequest();
  if (pending.trace != nullptr) {
    recorder_.Finish(pending.trace,
                     obs::MonotonicNs() - pending.start_ns);
  }
}

void IngressServer::SendError(EventConn* conn, uint64_t request_id,
                              WireError code, const std::string& message) {
  std::vector<uint8_t> out;
  EncodeError(ErrorReply{request_id, code, message}, &out);
  conn->PushResponse(std::move(out));
}

ServerInfo IngressServer::BuildInfo() const {
  const runtime::FlowServerReport report = server_.Report();
  ServerInfo info;
  info.num_shards = report.num_shards;
  info.strategy = server_.strategy().ToString();
  info.backend = static_cast<uint8_t>(server_.options().backend);
  info.queue_capacity_per_shard = server_.options().queue_capacity_per_shard;
  info.completed = report.stats.completed;
  info.rejected = report.stats.rejected;
  info.cache_hits = report.cache.hits;
  info.cache_misses = report.cache.misses;
  info.node_id = options_.node_id.empty()
                     ? "serve:" + std::to_string(listener_.port())
                     : options_.node_id;
  info.fleet_epoch = options_.fleet_epoch;
  info.ingress = ingress_stats();
  if (server_.advisor() != nullptr) {
    info.advisor.enabled = 1;
    info.advisor.fingerprint = server_.advisor()->Fingerprint();
    info.advisor.selections = report.stats.advisor_selections;
    info.advisor.explores = report.stats.advisor_explores;
    info.advisor.by_strategy.reserve(report.stats.strategy_selections.size());
    for (const auto& [strategy, count] : report.stats.strategy_selections) {
      info.advisor.by_strategy.push_back({strategy, count});
    }
  }
  return info;
}

ProfileInfo IngressServer::BuildProfile() const {
  ProfileInfo info;
  info.self.node_id = options_.node_id.empty()
                          ? "serve:" + std::to_string(listener_.port())
                          : options_.node_id;
  info.self.is_router = 0;
  const obs::ProfileSnapshot merged = server_.MergedProfile();
  FillNodeProfile(merged, &info.self);
  // EXPLAIN-style plan view: the schema's dependency graph with measured
  // work and selectivity as extra label lines on every observed attribute.
  info.self.plan_dot =
      core::ToDot(server_.schema(), [&merged](AttributeId a) {
        std::string note;
        const auto i = static_cast<size_t>(a);
        if (i < merged.attrs.size() && merged.attrs[i].launches > 0) {
          note += "work=" + std::to_string(merged.attrs[i].work_units) +
                  " runs=" + std::to_string(merged.attrs[i].launches);
        }
        const double sel = merged.Selectivity(a);
        if (sel >= 0) {
          char text[32];
          std::snprintf(text, sizeof(text), "sel=%.2f", sel);
          if (!note.empty()) note += "\n";
          note += text;
        }
        return note;
      });
  return info;
}

void IngressServer::WriteProfileSnapshot() {
  if (!server_.profiling_enabled()) return;
  const obs::ProfileSnapshot merged = server_.MergedProfile();
  const std::string node_id = options_.node_id.empty()
                                  ? "serve:" + std::to_string(listener_.port())
                                  : options_.node_id;
  if (profile_sink_.open()) {
    profile_sink_.Append(ProfileJson(node_id, merged));
  }
  journal_.Emit(obs::EventKind::kProfileSnapshot, obs::Severity::kInfo,
                "profiled=" + std::to_string(merged.profiled_requests) + "/" +
                    std::to_string(merged.total_requests) +
                    " sink_lines=" +
                    std::to_string(profile_sink_.lines_written()));
}

HealthInfo IngressServer::BuildHealth() const {
  HealthInfo health;
  health.self.node_id = options_.node_id.empty()
                            ? "serve:" + std::to_string(listener_.port())
                            : options_.node_id;
  health.self.is_router = 0;
  health.self.completed = server_.total_processed();
  FillNodeHealthPlane(journal_, &health_, &health.self);
  return health;
}

}  // namespace dflow::net
