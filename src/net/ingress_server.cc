#include "net/ingress_server.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/strategy.h"
#include "net/health_wire.h"

namespace dflow::net {

namespace {
constexpr size_t kRecvChunkBytes = 64 * 1024;
}  // namespace

IngressServer::IngressServer(const core::Schema* schema,
                             runtime::FlowServerOptions server_options,
                             IngressOptions ingress_options)
    : options_(ingress_options),
      server_(schema, server_options),
      recorder_(ingress_options.trace,
                ingress_options.node_id.empty() ? "serve"
                                                : ingress_options.node_id),
      journal_(ingress_options.events, ingress_options.node_id.empty()
                                           ? "serve"
                                           : ingress_options.node_id),
      health_(ingress_options.health, MakeHealthSources(), &journal_) {
  // Installed before the listener exists, so it observes every request the
  // ingress will ever admit.
  server_.SetResultCallback(
      [this](int shard_index, const runtime::FlowRequest& request,
             const core::InstanceResult& result,
             const core::Strategy& executed) {
        OnResult(shard_index, request, result, executed);
      });
  // Counters and gauges are callbacks over state the server maintains
  // anyway, so registering them costs the request path nothing.
  const auto counter = [this](const char* name, std::atomic<int64_t>* src) {
    metrics_.AddCounter(name, {}, [src] { return src->load(); });
  };
  counter("dflow_connections_opened_total", &connections_opened_);
  counter("dflow_connections_closed_total", &connections_closed_);
  counter("dflow_requests_accepted_total", &requests_accepted_);
  counter("dflow_requests_rejected_busy_total", &requests_rejected_busy_);
  counter("dflow_requests_rejected_shutdown_total",
          &requests_rejected_shutdown_);
  counter("dflow_decode_errors_total", &decode_errors_);
  counter("dflow_protocol_errors_total", &protocol_errors_);
  counter("dflow_bytes_in_total", &bytes_in_);
  counter("dflow_bytes_out_total", &bytes_out_);
  metrics_.AddCounter("dflow_completed_total", {},
                      [this] { return server_.total_processed(); });
  metrics_.AddCounter("dflow_cache_hits_total", {},
                      [this] { return server_.cache_totals().hits; });
  metrics_.AddCounter("dflow_cache_misses_total", {},
                      [this] { return server_.cache_totals().misses; });
  metrics_.AddCounter("dflow_traces_started_total", {},
                      [this] { return recorder_.started(); });
  metrics_.AddCounter("dflow_traces_finished_total", {},
                      [this] { return recorder_.finished(); });
  for (int i = 0; i < server_.num_shards(); ++i) {
    metrics_.AddGauge(
        "dflow_queue_depth", {{"shard", std::to_string(i)}}, [this, i] {
          return static_cast<double>(server_.queue_depths()[static_cast<
              size_t>(i)]);
        });
  }
  wall_latency_us_ = metrics_.AddHistogram(
      "dflow_wall_latency_us", {}, obs::DefaultWallLatencyBucketsUs());
  latency_units_ = metrics_.AddHistogram("dflow_latency_units", {},
                                         obs::DefaultWorkUnitBuckets());
  journal_.RegisterCounters(&metrics_);
  health_.RegisterMetrics(&metrics_);
}

obs::HealthSources IngressServer::MakeHealthSources() {
  // Closures over state the server maintains anyway, resolved at sample
  // time (wall_latency_us_ is assigned later in the constructor; the
  // closure reads it lazily).
  obs::HealthSources sources;
  sources.requests_total = [this] { return server_.total_processed(); };
  sources.cache_hits_total = [this] { return server_.cache_totals().hits; };
  sources.cache_misses_total = [this] {
    return server_.cache_totals().misses;
  };
  sources.advisor_explores_total = [this] {
    return server_.advisor() != nullptr
               ? server_.Report().stats.advisor_explores
               : 0;
  };
  sources.wall_latency = [this] {
    return wall_latency_us_ != nullptr ? wall_latency_us_->Snap()
                                       : obs::Histogram::Snapshot{};
  };
  sources.queue_depths = [this] {
    const std::vector<size_t> depths = server_.queue_depths();
    return std::vector<uint64_t>(depths.begin(), depths.end());
  };
  sources.queue_capacity = server_.options().queue_capacity_per_shard;
  return sources;
}

IngressServer::~IngressServer() { Stop(); }

bool IngressServer::Start(std::string* error) {
  if (started_.exchange(true)) {
    if (error != nullptr) *error = "Start() called twice";
    return false;
  }
  if (!listener_.Listen(options_.port, error)) return false;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  health_.Start();
  return true;
}

void IngressServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  // 1. Stop accepting; retire the acceptor.
  listener_.Shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  // 2. Half-close every session's read side: readers finish what they
  // already buffered (which may still admit requests), then drain their
  // in-flight responses and retire their writers.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const std::shared_ptr<Session>& session : sessions_) {
      session->socket.ShutdownRead();
    }
  }
  ReapSessions(/*all=*/true);
  // 3. Only now quiesce the execution layer: every accepted request was
  // answered, so the drain has nothing the wire still owes a client.
  server_.Drain();
  // 4. Health plane teardown: journal the drain, stop the collector, and
  // flush both JSONL sinks so a SIGTERM-driven exit loses no tail.
  journal_.Emit(obs::EventKind::kDrain, obs::Severity::kInfo,
                "completed=" + std::to_string(server_.total_processed()));
  health_.Stop();
  journal_.Flush();
  recorder_.Flush();
}

runtime::IngressStats IngressServer::ingress_stats() const {
  runtime::IngressStats stats;
  stats.connections_opened = connections_opened_.load();
  stats.connections_closed = connections_closed_.load();
  stats.requests_accepted = requests_accepted_.load();
  stats.requests_rejected_busy = requests_rejected_busy_.load();
  stats.requests_rejected_shutdown = requests_rejected_shutdown_.load();
  stats.decode_errors = decode_errors_.load();
  stats.protocol_errors = protocol_errors_.load();
  stats.info_requests = info_requests_.load();
  stats.bytes_in = bytes_in_.load();
  stats.bytes_out = bytes_out_.load();
  // Outbox stats: the closed-session accumulator plus a live-session scan,
  // all under sessions_mu_ so a session tearing down concurrently is
  // counted exactly once (stats_folded flips under the same lock).
  std::lock_guard<std::mutex> lock(sessions_mu_);
  stats.outbox_inflight_hwm = closed_outbox_.inflight_hwm;
  stats.outbox_bytes_written = closed_outbox_.bytes_written;
  stats.outbox_write_stalls = closed_outbox_.write_stalls;
  for (const std::shared_ptr<Session>& session : sessions_) {
    if (session->stats_folded) continue;
    const SessionOutbox::Stats live = session->outbox.GetStats();
    stats.outbox_inflight_hwm =
        std::max(stats.outbox_inflight_hwm, live.inflight_hwm);
    stats.outbox_bytes_written += live.bytes_written;
    stats.outbox_write_stalls += live.write_stalls;
  }
  return stats;
}

runtime::FlowServerReport IngressServer::Report() const {
  runtime::FlowServerReport report = server_.Report();
  report.ingress = ingress_stats();
  return report;
}

void IngressServer::AcceptLoop() {
  while (true) {
    Socket socket = listener_.Accept();
    if (!socket.valid()) break;  // Shutdown() poisoned the listener
    if (stopping_.load(std::memory_order_acquire)) break;
    socket.SetSendTimeout(options_.send_timeout_ms);
    auto session = std::make_shared<Session>();
    session->socket = std::move(socket);
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      session->id = next_session_id_++;
      sessions_.push_back(session);
    }
    connections_opened_.fetch_add(1, std::memory_order_relaxed);
    if (options_.verbose) {
      std::fprintf(stderr, "[ingress] connection %llu open\n",
                   static_cast<unsigned long long>(session->id));
    }
    session->thread = std::thread([this, session] { SessionLoop(session); });
    ReapSessions(/*all=*/false);
  }
}

void IngressServer::ReapSessions(bool all) {
  std::vector<std::shared_ptr<Session>> to_join;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto keep = sessions_.begin();
    for (auto& session : sessions_) {
      if (all || session->finished.load(std::memory_order_acquire)) {
        to_join.push_back(std::move(session));
      } else {
        *keep++ = std::move(session);
      }
    }
    sessions_.erase(keep, sessions_.end());
  }
  for (const std::shared_ptr<Session>& session : to_join) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void IngressServer::SessionLoop(const std::shared_ptr<Session>& session) {
  std::thread writer([this, session] { WriterLoop(session); });
  FrameAssembler assembler(options_.max_payload_bytes);
  std::vector<uint8_t> chunk(kRecvChunkBytes);
  bool open = true;
  while (open) {
    const ssize_t n = session->socket.Recv(chunk.data(), chunk.size());
    if (n <= 0) break;  // peer closed, error, or our drain's ShutdownRead
    session->bytes_in.fetch_add(n, std::memory_order_relaxed);
    bytes_in_.fetch_add(n, std::memory_order_relaxed);
    assembler.Feed(chunk.data(), static_cast<size_t>(n));
    while (std::optional<Frame> frame = assembler.Next()) {
      if (!HandleFrame(session, *frame)) {
        open = false;
        break;
      }
    }
    if (open && assembler.error() != WireError::kNone) {
      // Framing is lost: answer with the reason, then hang up — there is
      // no way to find the next frame boundary in the stream.
      session->decode_errors.fetch_add(1, std::memory_order_relaxed);
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(session, 0, assembler.error(), "unrecoverable frame stream");
      break;
    }
  }
  // Flush: answered everything we admitted, then retire the writer.
  session->outbox.WaitDrained();
  session->outbox.Close();
  writer.join();
  // Send the FIN now (the peer is owed an orderly close), but deliberately
  // do NOT close(): Stop() may be calling ShutdownRead on this socket
  // concurrently, and closing would free the fd for reuse under that call.
  // shutdown() leaves the fd valid; the Socket destructor closes it once
  // the last shared_ptr (sessions_ vector / pending map) lets go.
  session->socket.ShutdownBoth();
  {
    // Fold this session's outbox stats into the closed-session accumulator
    // before it disappears from the live scan (same lock as that scan).
    const SessionOutbox::Stats outbox = session->outbox.GetStats();
    std::lock_guard<std::mutex> lock(sessions_mu_);
    closed_outbox_.inflight_hwm =
        std::max(closed_outbox_.inflight_hwm, outbox.inflight_hwm);
    closed_outbox_.bytes_written += outbox.bytes_written;
    closed_outbox_.write_stalls += outbox.write_stalls;
    session->stats_folded = true;
  }
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  if (options_.verbose) {
    std::fprintf(
        stderr,
        "[ingress] connection %llu closed: accepted=%lld busy=%lld "
        "shutdown=%lld decode_errors=%lld bytes_in=%lld bytes_out=%lld\n",
        static_cast<unsigned long long>(session->id),
        static_cast<long long>(session->accepted.load()),
        static_cast<long long>(session->rejected_busy.load()),
        static_cast<long long>(session->rejected_shutdown.load()),
        static_cast<long long>(session->decode_errors.load()),
        static_cast<long long>(session->bytes_in.load()),
        static_cast<long long>(session->bytes_out.load()));
  }
  session->finished.store(true, std::memory_order_release);
}

void IngressServer::WriterLoop(const std::shared_ptr<Session>& session) {
  session->outbox.DrainTo([this, &session](const std::vector<uint8_t>& frame) {
    if (!session->socket.SendAll(frame.data(), frame.size())) return false;
    session->bytes_out.fetch_add(static_cast<int64_t>(frame.size()),
                                 std::memory_order_relaxed);
    bytes_out_.fetch_add(static_cast<int64_t>(frame.size()),
                         std::memory_order_relaxed);
    return true;
  });
}

bool IngressServer::HandleFrame(const std::shared_ptr<Session>& session,
                                const Frame& frame) {
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::kSubmit: {
      SubmitRequest request;
      if (!DecodeSubmit(frame.payload, &request)) {
        // The payload was bad but framing held: report and keep serving.
        session->decode_errors.fetch_add(1, std::memory_order_relaxed);
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(session, PeekRequestId(frame.payload),
                  WireError::kMalformedFrame, "undecodable submit payload");
        return true;
      }
      HandleSubmit(session, std::move(request));
      return true;
    }
    case MsgType::kInfoRequest: {
      info_requests_.fetch_add(1, std::memory_order_relaxed);
      std::vector<uint8_t> out;
      EncodeInfo(BuildInfo(), &out);
      Enqueue(session, std::move(out));
      return true;
    }
    case MsgType::kMetricsRequest: {
      std::vector<uint8_t> out;
      EncodeMetrics(metrics_.RenderText(), &out);
      Enqueue(session, std::move(out));
      return true;
    }
    case MsgType::kHealthRequest: {
      std::vector<uint8_t> out;
      EncodeHealth(BuildHealth(), &out);
      Enqueue(session, std::move(out));
      return true;
    }
    case MsgType::kGoodbye: {
      // Flush-then-ack: every accepted submit on this connection is
      // answered before the ack, so a client that waits for the ack has
      // seen all its results.
      session->outbox.WaitDrained();
      std::vector<uint8_t> out;
      EncodeGoodbyeAck(&out);
      Enqueue(session, std::move(out));
      return false;  // reader retires; teardown flushes the ack
    }
    default:
      session->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(session, 0, WireError::kUnsupportedType,
                "unknown frame type " + std::to_string(frame.type));
      return true;
  }
}

void IngressServer::HandleSubmit(const std::shared_ptr<Session>& session,
                                 SubmitRequest request) {
  if (!request.strategy.empty()) {
    const std::optional<core::Strategy> parsed =
        core::Strategy::Parse(request.strategy);
    // An override may only name what this server already runs: its fixed
    // strategy, or the AUTO sentinel on an advisor-driven server (the
    // advisor still picks the concrete strategy — per-request pinning on
    // an AUTO server is a ROADMAP item, as are multi-strategy shard
    // pools).
    if (!parsed.has_value() ||
        parsed->ToString() != server_.strategy().ToString()) {
      session->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(session, request.request_id, WireError::kBadStrategy,
                "server runs " + server_.strategy().ToString());
      return;
    }
  }
  // Trace when the client (or an upstream router) asked for one via the
  // wire extension, or when this recorder's own sampling picks the seed.
  // The id travels: a propagated nonzero id is adopted verbatim.
  std::shared_ptr<obs::RequestTrace> trace;
  if (request.has_trace || recorder_.ShouldTrace(request.seed)) {
    trace = recorder_.Begin(request.seed, request.trace_id);
  }
  const uint64_t start_ns =
      trace != nullptr ? trace->begin_ns() : obs::MonotonicNs();
  const uint64_t ticket =
      next_ticket_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.emplace(ticket,
                     Pending{session, request.request_id,
                             request.want_snapshot, start_ns, trace});
  }
  session->outbox.BeginRequest();
  runtime::FlowRequest flow_request{std::move(request.sources), request.seed,
                                    ticket, trace};
  // Stamped before the queue push so both are visible to the shard worker
  // no matter how quickly the pop lands — the worker may snapshot the
  // trace for the reply while this reader is still returning from Submit.
  // ingress.queue therefore covers decode -> admission attempt; a blocking
  // submit that parks on a full queue shows the stall in shard.queue_wait,
  // which measures from this same instant.
  if (trace != nullptr) {
    const uint64_t enqueue_ns = obs::MonotonicNs();
    trace->AddSpan(obs::SpanKind::kIngressQueue, start_ns, enqueue_ns);
    trace->SetEnqueue(enqueue_ns);
  }
  WireError refusal = WireError::kNone;
  if (request.blocking) {
    // May park this reader on the shard's bounded queue: that is the
    // backpressure contract (TCP pushes the stall back to the client).
    if (!server_.Submit(std::move(flow_request))) {
      refusal = WireError::kShuttingDown;
    }
  } else {
    switch (server_.TrySubmitEx(std::move(flow_request))) {
      case runtime::TryPushResult::kOk:
        break;
      case runtime::TryPushResult::kFull:
        refusal = WireError::kRejectedBusy;
        break;
      case runtime::TryPushResult::kClosed:
        refusal = WireError::kShuttingDown;
        break;
    }
  }
  if (refusal == WireError::kNone) {
    session->accepted.fetch_add(1, std::memory_order_relaxed);
    requests_accepted_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Refused: unwind the pending entry and answer with the typed reason.
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.erase(ticket);
  }
  session->outbox.FinishRequest();
  // A refused traced request still finishes its trace (with only the
  // admission attempt in it): refusals are exactly what a latency
  // investigation wants to see.
  if (trace != nullptr) {
    recorder_.Finish(trace, obs::MonotonicNs() - start_ns);
  }
  if (refusal == WireError::kRejectedBusy) {
    session->rejected_busy.fetch_add(1, std::memory_order_relaxed);
    requests_rejected_busy_.fetch_add(1, std::memory_order_relaxed);
    SendError(session, request.request_id, refusal, "shard queue full");
  } else {
    session->rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    requests_rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    SendError(session, request.request_id, refusal, "server draining");
  }
}

void IngressServer::OnResult(int shard_index,
                             const runtime::FlowRequest& request,
                             const core::InstanceResult& result,
                             const core::Strategy& executed) {
  if (request.ticket == 0) return;  // not one of ours
  const uint64_t completion_ns = obs::MonotonicNs();
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    const auto it = pending_.find(request.ticket);
    if (it == pending_.end()) return;
    pending = std::move(it->second);
    pending_.erase(it);
  }
  // Real wall-clock latency (submit decoded -> completion) next to the
  // paper's work-unit latency, for every request — traced or not.
  wall_latency_us_->Observe(
      static_cast<double>(completion_ns - pending.start_ns) / 1e3);
  latency_units_->Observe(result.metrics.ResponseTime());
  SubmitResult reply;
  reply.request_id = pending.request_id;
  reply.shard = shard_index;
  reply.work = result.metrics.work;
  reply.wasted_work = result.metrics.wasted_work;
  reply.response_time = result.metrics.ResponseTime();
  reply.queries_launched = result.metrics.queries_launched;
  reply.speculative_launches = result.metrics.speculative_launches;
  reply.fingerprint = FingerprintResult(result);
  reply.strategy = executed.ToString();
  if (pending.want_snapshot) {
    reply.has_snapshot = true;
    const int n = result.snapshot.schema().num_attributes();
    reply.snapshot.reserve(static_cast<size_t>(n));
    for (int a = 0; a < n; ++a) {
      const auto attr = static_cast<AttributeId>(a);
      reply.snapshot.push_back(SnapshotEntry{
          attr, result.snapshot.state(attr), result.snapshot.value(attr)});
    }
  }
  if (pending.trace != nullptr) {
    // outbox.write covers the response assembly above; it cannot extend
    // into the encode below because the span must land inside the very
    // trailer that encode serializes.
    pending.trace->AddSpan(obs::SpanKind::kOutboxWrite, completion_ns,
                           obs::MonotonicNs());
    const obs::RequestTrace::View view = pending.trace->Snapshot();
    reply.trace_id = pending.trace->trace_id();
    reply.spans.reserve(view.spans.size());
    for (const obs::Span& span : view.spans) {
      reply.spans.push_back(WireSpan{static_cast<uint8_t>(span.kind),
                                     span.start_ns, span.duration_ns});
    }
  }
  std::vector<uint8_t> out;
  EncodeSubmitResult(reply, &out);
  Enqueue(pending.session, std::move(out));
  pending.session->outbox.FinishRequest();
  if (pending.trace != nullptr) {
    recorder_.Finish(pending.trace,
                     obs::MonotonicNs() - pending.start_ns);
  }
}

void IngressServer::Enqueue(const std::shared_ptr<Session>& session,
                            std::vector<uint8_t> frame) {
  session->outbox.Push(std::move(frame));
}

void IngressServer::SendError(const std::shared_ptr<Session>& session,
                              uint64_t request_id, WireError code,
                              const std::string& message) {
  std::vector<uint8_t> out;
  EncodeError(ErrorReply{request_id, code, message}, &out);
  Enqueue(session, std::move(out));
}

ServerInfo IngressServer::BuildInfo() const {
  const runtime::FlowServerReport report = server_.Report();
  ServerInfo info;
  info.num_shards = report.num_shards;
  info.strategy = server_.strategy().ToString();
  info.backend = static_cast<uint8_t>(server_.options().backend);
  info.queue_capacity_per_shard = server_.options().queue_capacity_per_shard;
  info.completed = report.stats.completed;
  info.rejected = report.stats.rejected;
  info.cache_hits = report.cache.hits;
  info.cache_misses = report.cache.misses;
  info.node_id = options_.node_id.empty()
                     ? "serve:" + std::to_string(listener_.port())
                     : options_.node_id;
  info.fleet_epoch = options_.fleet_epoch;
  info.ingress = ingress_stats();
  if (server_.advisor() != nullptr) {
    info.advisor.enabled = 1;
    info.advisor.fingerprint = server_.advisor()->Fingerprint();
    info.advisor.selections = report.stats.advisor_selections;
    info.advisor.explores = report.stats.advisor_explores;
    info.advisor.by_strategy.reserve(report.stats.strategy_selections.size());
    for (const auto& [strategy, count] : report.stats.strategy_selections) {
      info.advisor.by_strategy.push_back({strategy, count});
    }
  }
  return info;
}

HealthInfo IngressServer::BuildHealth() const {
  HealthInfo health;
  health.self.node_id = options_.node_id.empty()
                            ? "serve:" + std::to_string(listener_.port())
                            : options_.node_id;
  health.self.is_router = 0;
  health.self.completed = server_.total_processed();
  FillNodeHealthPlane(journal_, &health_, &health.self);
  return health;
}

}  // namespace dflow::net
