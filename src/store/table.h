#ifndef DFLOW_STORE_TABLE_H_
#define DFLOW_STORE_TABLE_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace dflow::store {

// A row: named fields. Missing fields read as the null Value, mirroring how
// decision flows treat missing information.
class Row {
 public:
  Row() = default;
  Row(std::initializer_list<std::pair<const std::string, Value>> fields)
      : fields_(fields) {}

  void Set(const std::string& field, Value v) { fields_[field] = std::move(v); }
  // Null when the field is absent.
  const Value& Get(const std::string& field) const;
  bool Has(const std::string& field) const { return fields_.count(field) > 0; }

 private:
  std::map<std::string, Value> fields_;
};

// An in-memory table with predicate scans — the stand-in for the customer
// profile / inventory / catalog databases of the Figure 1 example. This is
// deliberately minimal: decision-flow foreign tasks wrap lookups on these
// tables, with their *latency* modeled separately by sim::QueryService.
class Table {
 public:
  using RowPredicate = std::function<bool(const Row&)>;

  void Insert(Row row) { rows_.push_back(std::move(row)); }

  int64_t size() const { return static_cast<int64_t>(rows_.size()); }

  std::vector<Row> Select(const RowPredicate& pred) const;
  std::optional<Row> FindFirst(const RowPredicate& pred) const;
  int64_t Count(const RowPredicate& pred) const;

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

// A named collection of tables.
class Database {
 public:
  Table& CreateTable(const std::string& name) { return tables_[name]; }
  // nullptr when the table does not exist.
  const Table* table(const std::string& name) const;
  Table* mutable_table(const std::string& name);

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace dflow::store

#endif  // DFLOW_STORE_TABLE_H_
