#include "store/table.h"

namespace dflow::store {

namespace {
const Value& NullValue() {
  static const Value& kNull = *new Value();
  return kNull;
}
}  // namespace

const Value& Row::Get(const std::string& field) const {
  const auto it = fields_.find(field);
  if (it == fields_.end()) return NullValue();
  return it->second;
}

std::vector<Row> Table::Select(const RowPredicate& pred) const {
  std::vector<Row> out;
  for (const Row& row : rows_) {
    if (pred(row)) out.push_back(row);
  }
  return out;
}

std::optional<Row> Table::FindFirst(const RowPredicate& pred) const {
  for (const Row& row : rows_) {
    if (pred(row)) return row;
  }
  return std::nullopt;
}

int64_t Table::Count(const RowPredicate& pred) const {
  int64_t n = 0;
  for (const Row& row : rows_) {
    if (pred(row)) ++n;
  }
  return n;
}

const Table* Database::table(const std::string& name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Table* Database::mutable_table(const std::string& name) {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

}  // namespace dflow::store
