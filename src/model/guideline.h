#ifndef DFLOW_MODEL_GUIDELINE_H_
#define DFLOW_MODEL_GUIDELINE_H_

#include <string>
#include <vector>

namespace dflow::model {

// One measured execution strategy on one schema pattern: mean Work and mean
// TimeInUnits over a set of instances (infinite-resource setting).
struct StrategyOutcome {
  std::string strategy;  // e.g. "PSE80"
  double mean_work = 0;
  double mean_time_units = 0;
};

// One point of a guideline map (Figure 8): under a Work budget of
// `work_bound`, `min_time_units` is the best achievable response time and
// `strategy` attains it. Maps are produced sorted by work_bound, with
// strictly decreasing min_time_units (only frontier points are kept).
struct GuidelinePoint {
  double work_bound = 0;
  double min_time_units = 0;
  std::string strategy;
};

// Builds the minT-vs-Work frontier from measured strategy outcomes: for a
// work budget w, the minimum mean_time_units over outcomes with
// mean_work <= w. Outcomes dominated in both dimensions are dropped.
std::vector<GuidelinePoint> BuildGuidelineMap(
    std::vector<StrategyOutcome> outcomes);

// Convenience lookup: the frontier point honoring `work_bound`, i.e. the
// last point with work_bound <= the budget; nullptr when no strategy fits.
const GuidelinePoint* LookupGuideline(
    const std::vector<GuidelinePoint>& map, double work_bound);

}  // namespace dflow::model

#endif  // DFLOW_MODEL_GUIDELINE_H_
