#include "model/analytic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace dflow::model {

namespace {

// Iteration guards for the Equation (6) fixed point.
constexpr int kMaxIterations = 100000;
constexpr double kDivergenceCeilingMs = 1e9;
constexpr double kRelativeTolerance = 1e-10;

}  // namespace

DbCurve::DbCurve(std::vector<std::pair<double, double>> samples)
    : samples_(std::move(samples)) {
  assert(!samples_.empty());
  for (size_t i = 0; i < samples_.size(); ++i) {
    assert(samples_[i].second > 0);
    assert(i == 0 || samples_[i].first > samples_[i - 1].first);
    // Empirically measured curves can jitter slightly; enforce the
    // monotonicity the model relies on by clamping to a running maximum.
    if (i > 0 && samples_[i].second < samples_[i - 1].second) {
      samples_[i].second = samples_[i - 1].second;
    }
  }
  // Tail slope for extrapolation: least-squares fit over the last few
  // samples, which is far more robust to measurement noise than the final
  // segment alone (the fixed-point divergence test depends on it).
  const size_t n = samples_.size();
  const size_t k = std::min<size_t>(5, n);
  if (k >= 2) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t i = n - k; i < n; ++i) {
      sx += samples_[i].first;
      sy += samples_[i].second;
      sxx += samples_[i].first * samples_[i].first;
      sxy += samples_[i].first * samples_[i].second;
    }
    const double denom = k * sxx - sx * sx;
    tail_slope_ = denom > 0 ? (k * sxy - sx * sy) / denom : 0;
    if (tail_slope_ < 0) tail_slope_ = 0;
  }
}

double DbCurve::Eval(double gmpl) const {
  if (gmpl <= samples_.front().first) return samples_.front().second;
  if (gmpl >= samples_.back().first) {
    return samples_.back().second +
           tail_slope_ * (gmpl - samples_.back().first);
  }
  // Binary search for the surrounding segment.
  size_t lo = 0;
  size_t hi = samples_.size() - 1;
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (samples_[mid].first <= gmpl) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const auto& [x1, y1] = samples_[lo];
  const auto& [x2, y2] = samples_[hi];
  const double t = (gmpl - x1) / (x2 - x1);
  return y1 + t * (y2 - y1);
}

std::optional<double> AnalyticModel::SolveUnitTimeMs(double th_per_sec,
                                                     double work) const {
  const double th_per_ms = th_per_sec / 1000.0;
  const double c = th_per_ms * work;  // Gmpl = c * UnitTime
  // Monotone iteration from below: u0 = Db(0) <= f(u0), and f is
  // non-decreasing, so u_n increases to the least fixed point if one exists
  // and diverges past the ceiling otherwise.
  double u = db_.Eval(0);
  for (int i = 0; i < kMaxIterations; ++i) {
    const double next = db_.Eval(c * u);
    if (!(next < kDivergenceCeilingMs)) return std::nullopt;
    if (std::abs(next - u) <= kRelativeTolerance * u) return next;
    u = next;
  }
  return std::nullopt;
}

double AnalyticModel::MaxWorkForThroughput(double th_per_sec) const {
  double lo = 0;         // feasible
  double hi = 1.0;       // grow until infeasible
  while (SolveUnitTimeMs(th_per_sec, hi).has_value()) {
    lo = hi;
    hi *= 2;
    if (hi > 1e12) return lo;  // effectively unbounded
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = (lo + hi) / 2;
    if (SolveUnitTimeMs(th_per_sec, mid).has_value()) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::optional<double> AnalyticModel::PredictResponseMs(
    double th_per_sec, double work, double time_in_units) const {
  const std::optional<double> unit_time = SolveUnitTimeMs(th_per_sec, work);
  if (!unit_time.has_value()) return std::nullopt;
  return time_in_units * *unit_time;
}

}  // namespace dflow::model
