#ifndef DFLOW_MODEL_ANALYTIC_H_
#define DFLOW_MODEL_ANALYTIC_H_

#include <optional>
#include <vector>

namespace dflow::model {

// The empirically determined database characteristic function Db of §5:
// maps the database's global multiprogramming level (units of processing in
// service) to the response time of one unit of processing, in milliseconds
// (Figure 9(a)). Piecewise-linear interpolation between samples; linear
// extrapolation beyond the last sample (the curve's tail slope), which is
// what makes the Equation (6) fixed point diverge for infeasible operating
// points.
class DbCurve {
 public:
  // `samples` are (gmpl, unit_time_ms) pairs; gmpl must be strictly
  // increasing and unit_time_ms positive. Small non-monotonic jitter (from
  // empirical measurement) is clamped to a running maximum.
  explicit DbCurve(std::vector<std::pair<double, double>> samples);

  double Eval(double gmpl) const;
  const std::vector<std::pair<double, double>>& samples() const {
    return samples_;
  }
  // Slope (ms per unit of Gmpl) used beyond the last sample: a
  // least-squares fit over the last few samples.
  double tail_slope() const { return tail_slope_; }

 private:
  std::vector<std::pair<double, double>> samples_;
  double tail_slope_ = 0;
};

// The analytical model of §5 for finite database resources, built from the
// steady-state equations:
//   (1) Impl       = Th * TimeInSeconds                 (Little's law)
//   (2) Gmpl       = Lmpl * Impl
//   (3) Lmpl * TimeInSeconds = Work * UnitTime          (unit-time balance)
//   (4) UnitTime   = Db(Gmpl)
//   (5) Gmpl       = Th * Work * UnitTime               (from 1-3)
//   (6) UnitTime   = Db(Th * Work * UnitTime)           (from 4, 5)
// with Th in instances/second, Work in units of processing per instance,
// UnitTime in ms. Equation (6) is solved by monotone fixed-point iteration
// from below; when the iteration diverges the operating point cannot be
// sustained by the database.
class AnalyticModel {
 public:
  explicit AnalyticModel(DbCurve db) : db_(std::move(db)) {}

  const DbCurve& db() const { return db_; }

  // Solves Equation (6); nullopt when no stable fixed point exists.
  std::optional<double> SolveUnitTimeMs(double th_per_sec, double work) const;

  // The largest Work (in units) for which Equation (6) has a solution at
  // the given throughput — the paper's "upper bound on the amount of work
  // that can be performed for each decision flow instance".
  double MaxWorkForThroughput(double th_per_sec) const;

  // Predicted response time of an instance: TimeInUnits(Work) * UnitTime
  // (graph (c) of Figure 9(b) combines graphs (a) and (b) "using
  // multiplication"). nullopt when the operating point is infeasible.
  std::optional<double> PredictResponseMs(double th_per_sec, double work,
                                          double time_in_units) const;

  // Derived quantities (Equations (1), (2), (5)) for reporting/tests.
  static double Impl(double th_per_sec, double time_in_seconds) {
    return th_per_sec * time_in_seconds;
  }
  static double Gmpl(double th_per_sec, double work, double unit_time_ms) {
    return th_per_sec / 1000.0 * work * unit_time_ms;
  }

 private:
  DbCurve db_;
};

}  // namespace dflow::model

#endif  // DFLOW_MODEL_ANALYTIC_H_
