#include "model/guideline.h"

#include <algorithm>

namespace dflow::model {

std::vector<GuidelinePoint> BuildGuidelineMap(
    std::vector<StrategyOutcome> outcomes) {
  std::sort(outcomes.begin(), outcomes.end(),
            [](const StrategyOutcome& a, const StrategyOutcome& b) {
              if (a.mean_work != b.mean_work) return a.mean_work < b.mean_work;
              return a.mean_time_units < b.mean_time_units;
            });
  std::vector<GuidelinePoint> frontier;
  for (const StrategyOutcome& o : outcomes) {
    if (!frontier.empty() && o.mean_time_units >= frontier.back().min_time_units) {
      continue;  // dominated: more work, no faster
    }
    frontier.push_back(GuidelinePoint{o.mean_work, o.mean_time_units, o.strategy});
  }
  return frontier;
}

const GuidelinePoint* LookupGuideline(const std::vector<GuidelinePoint>& map,
                                      double work_bound) {
  const GuidelinePoint* best = nullptr;
  for (const GuidelinePoint& p : map) {
    if (p.work_bound <= work_bound) best = &p;
  }
  return best;
}

}  // namespace dflow::model
