#include "expr/tribool.h"

#include <ostream>

namespace dflow::expr {

std::string ToString(Tribool t) {
  switch (t) {
    case Tribool::kFalse: return "false";
    case Tribool::kUnknown: return "unknown";
    case Tribool::kTrue: return "true";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Tribool t) {
  return os << ToString(t);
}

}  // namespace dflow::expr
