#ifndef DFLOW_EXPR_PREDICATE_H_
#define DFLOW_EXPR_PREDICATE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "expr/tribool.h"

namespace dflow::expr {

// Evaluation environment for enabling conditions.
//
// `StableValue(a)` returns nullopt while attribute `a` has not yet
// stabilized, and its final value (the null Value for DISABLED attributes)
// once it has. Partial evaluation treats nullopt operands as `unknown`;
// once every referenced attribute is stable the result is definite, which —
// together with acyclicity — is what guarantees executions terminate with
// the unique complete snapshot of §2.
class AttributeEnv {
 public:
  virtual ~AttributeEnv() = default;
  virtual std::optional<Value> StableValue(AttributeId id) const = 0;
};

// Convenience env backed by a map; used by tests and the reference evaluator.
class MapEnv : public AttributeEnv {
 public:
  // Marks `id` stable with value `v`.
  void Set(AttributeId id, Value v);
  std::optional<Value> StableValue(AttributeId id) const override;

 private:
  std::vector<std::optional<Value>> stable_;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string ToString(CompareOp op);

// Definite comparison of two (stable) values. Comparisons where either
// operand is null evaluate to false — including kEq and kNe — so that a
// predicate over stable inputs is always definite. Nullness itself is
// observed via the kIsNull / kIsNotNull predicate kinds. Numeric operands
// compare with int→double promotion; mismatched non-numeric types compare
// unequal (ordering over mismatched types is false).
bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs);

// Atomic test over attribute values: the leaves of enabling conditions.
//
// Forms:
//   attr <op> constant        (Compare)
//   attr <op> attr            (CompareAttrs)
//   IsNull(attr), IsNotNull(attr)
//   IsTrue(attr)              — sugar for attr == true, common for decision
//                               outputs like "give_promo(s)? = true".
class Predicate {
 public:
  enum class Kind { kCompareConst, kCompareAttrs, kIsNull, kIsNotNull, kIsTrue };

  static Predicate Compare(AttributeId attr, CompareOp op, Value constant);
  static Predicate CompareAttrs(AttributeId lhs, CompareOp op, AttributeId rhs);
  static Predicate IsNull(AttributeId attr);
  static Predicate IsNotNull(AttributeId attr);
  static Predicate IsTrue(AttributeId attr);

  Kind kind() const { return kind_; }
  AttributeId attr() const { return attr_; }
  AttributeId rhs_attr() const { return rhs_attr_; }
  CompareOp op() const { return op_; }
  const Value& constant() const { return constant_; }

  // Partial evaluation: kUnknown until every referenced attribute is stable,
  // then a definite truth value.
  Tribool Eval(const AttributeEnv& env) const;

  // Appends the attributes this predicate reads to `out`.
  void CollectAttributes(std::vector<AttributeId>* out) const;

  // Renders e.g. "a3 > 80" using `name` to print attributes.
  std::string ToString(
      const std::function<std::string(AttributeId)>& name) const;

 private:
  Predicate(Kind kind, AttributeId attr, CompareOp op, Value constant,
            AttributeId rhs_attr)
      : kind_(kind), attr_(attr), rhs_attr_(rhs_attr), op_(op),
        constant_(std::move(constant)) {}

  Kind kind_;
  AttributeId attr_;
  AttributeId rhs_attr_;
  CompareOp op_;
  Value constant_;
};

}  // namespace dflow::expr

#endif  // DFLOW_EXPR_PREDICATE_H_
