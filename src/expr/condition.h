#ifndef DFLOW_EXPR_CONDITION_H_
#define DFLOW_EXPR_CONDITION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "expr/predicate.h"
#include "expr/tribool.h"

namespace dflow::expr {

// An enabling condition: a boolean combination of predicates over attribute
// values. Conditions are immutable and cheaply copyable (shared AST).
//
// The paper's generated schemas use flat conjunctions/disjunctions of 1–4
// predicates; hand-written schemas (and flattening, which ANDs a module's
// condition into its members') produce nested combinations, so the AST is
// fully recursive.
class Condition {
 public:
  // The always-true condition; also the default.
  Condition();

  static Condition True();
  static Condition False();
  static Condition Pred(Predicate p);
  // Conjunction / disjunction. Empty All() is true; empty Any() is false.
  static Condition All(std::vector<Condition> children);
  static Condition Any(std::vector<Condition> children);
  static Condition Not(Condition child);

  // Convenience: this AND other (used by module flattening).
  Condition AndWith(const Condition& other) const;

  // Kleene partial evaluation: definite as soon as stable inputs force the
  // outcome; kUnknown otherwise. Once all referenced attributes are stable
  // the result is always definite.
  Tribool Eval(const AttributeEnv& env) const;

  // Attributes read by this condition (deduplicated, sorted).
  std::vector<AttributeId> Attributes() const;

  // True iff the condition is the literal `true` (no attribute reads and
  // trivially satisfied); used to short-circuit bookkeeping.
  bool IsLiteralTrue() const;

  // Number of AST nodes; the prequalifier's cost accounting uses this.
  int NodeCount() const;

  std::string ToString(
      const std::function<std::string(AttributeId)>& name) const;
  // Renders with default attribute names "a<id>".
  std::string ToString() const;

 private:
  struct Node;
  explicit Condition(std::shared_ptr<const Node> node);

  std::shared_ptr<const Node> node_;
};

}  // namespace dflow::expr

#endif  // DFLOW_EXPR_CONDITION_H_
