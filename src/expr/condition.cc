#include "expr/condition.h"

#include <algorithm>
#include <utility>

namespace dflow::expr {

namespace {
enum class NodeKind { kTrue, kFalse, kPred, kAnd, kOr, kNot };
}  // namespace

struct Condition::Node {
  NodeKind kind;
  std::optional<Predicate> pred;                       // kPred
  std::vector<std::shared_ptr<const Node>> children;   // kAnd / kOr / kNot
};

Condition::Condition(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

Condition::Condition() : Condition(True()) {}

Condition Condition::True() {
  static const std::shared_ptr<const Node>& node =
      *new std::shared_ptr<const Node>(new Node{NodeKind::kTrue, {}, {}});
  return Condition(node);
}

Condition Condition::False() {
  static const std::shared_ptr<const Node>& node =
      *new std::shared_ptr<const Node>(new Node{NodeKind::kFalse, {}, {}});
  return Condition(node);
}

Condition Condition::Pred(Predicate p) {
  return Condition(std::make_shared<const Node>(
      Node{NodeKind::kPred, std::move(p), {}}));
}

Condition Condition::All(std::vector<Condition> children) {
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kAnd;
  node->children.reserve(children.size());
  for (Condition& c : children) node->children.push_back(std::move(c.node_));
  return Condition(std::move(node));
}

Condition Condition::Any(std::vector<Condition> children) {
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kOr;
  node->children.reserve(children.size());
  for (Condition& c : children) node->children.push_back(std::move(c.node_));
  return Condition(std::move(node));
}

Condition Condition::Not(Condition child) {
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kNot;
  node->children.push_back(std::move(child.node_));
  return Condition(std::move(node));
}

Condition Condition::AndWith(const Condition& other) const {
  // Keep flattened schemas tidy: true ∧ c = c.
  if (IsLiteralTrue()) return other;
  if (other.IsLiteralTrue()) return *this;
  return All({*this, other});
}

Tribool Condition::Eval(const AttributeEnv& env) const {
  struct Rec {
    static Tribool Go(const Node& n, const AttributeEnv& env) {
      switch (n.kind) {
        case NodeKind::kTrue: return Tribool::kTrue;
        case NodeKind::kFalse: return Tribool::kFalse;
        case NodeKind::kPred: return n.pred->Eval(env);
        case NodeKind::kAnd: {
          Tribool acc = Tribool::kTrue;
          for (const auto& c : n.children) {
            acc = And(acc, Go(*c, env));
            if (acc == Tribool::kFalse) return acc;  // short-circuit
          }
          return acc;
        }
        case NodeKind::kOr: {
          Tribool acc = Tribool::kFalse;
          for (const auto& c : n.children) {
            acc = Or(acc, Go(*c, env));
            if (acc == Tribool::kTrue) return acc;  // short-circuit
          }
          return acc;
        }
        case NodeKind::kNot:
          // Qualified: Condition::Not would otherwise shadow the Tribool Not.
          return expr::Not(Go(*n.children[0], env));
      }
      return Tribool::kUnknown;
    }
  };
  return Rec::Go(*node_, env);
}

std::vector<AttributeId> Condition::Attributes() const {
  std::vector<AttributeId> out;
  struct Rec {
    static void Go(const Node& n, std::vector<AttributeId>* out) {
      if (n.kind == NodeKind::kPred) {
        n.pred->CollectAttributes(out);
        return;
      }
      for (const auto& c : n.children) Go(*c, out);
    }
  };
  Rec::Go(*node_, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Condition::IsLiteralTrue() const { return node_->kind == NodeKind::kTrue; }

int Condition::NodeCount() const {
  struct Rec {
    static int Go(const Node& n) {
      int count = 1;
      for (const auto& c : n.children) count += Go(*c);
      return count;
    }
  };
  return Rec::Go(*node_);
}

std::string Condition::ToString(
    const std::function<std::string(AttributeId)>& name) const {
  struct Rec {
    static std::string Go(const Node& n,
                          const std::function<std::string(AttributeId)>& name) {
      switch (n.kind) {
        case NodeKind::kTrue: return "true";
        case NodeKind::kFalse: return "false";
        case NodeKind::kPred: return n.pred->ToString(name);
        case NodeKind::kAnd:
        case NodeKind::kOr: {
          const char* sep = n.kind == NodeKind::kAnd ? " and " : " or ";
          if (n.children.empty()) {
            return n.kind == NodeKind::kAnd ? "true" : "false";
          }
          std::string s = "(";
          for (size_t i = 0; i < n.children.size(); ++i) {
            if (i > 0) s += sep;
            s += Go(*n.children[i], name);
          }
          s += ")";
          return s;
        }
        case NodeKind::kNot:
          return "not " + Go(*n.children[0], name);
      }
      return "?";
    }
  };
  return Rec::Go(*node_, name);
}

std::string Condition::ToString() const {
  return ToString([](AttributeId id) { return "a" + std::to_string(id); });
}

}  // namespace dflow::expr
