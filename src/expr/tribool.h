#ifndef DFLOW_EXPR_TRIBOOL_H_
#define DFLOW_EXPR_TRIBOOL_H_

#include <iosfwd>
#include <string>

namespace dflow::expr {

// Kleene strong three-valued logic.
//
// `kUnknown` arises during *partial* evaluation of an enabling condition:
// some attributes referenced by the condition have not yet stabilized, so
// their contribution is not yet determined. Eager evaluation (§4 of the
// paper, option 'P') resolves a condition to kTrue/kFalse as soon as the
// stable prefix of its inputs forces the outcome — e.g. one true disjunct or
// one false conjunct — without waiting for every input to stabilize.
enum class Tribool { kFalse = 0, kUnknown = 1, kTrue = 2 };

constexpr Tribool FromBool(bool b) { return b ? Tribool::kTrue : Tribool::kFalse; }

// True iff the tribool carries a definite truth value.
constexpr bool IsDetermined(Tribool t) { return t != Tribool::kUnknown; }

constexpr Tribool And(Tribool a, Tribool b) {
  if (a == Tribool::kFalse || b == Tribool::kFalse) return Tribool::kFalse;
  if (a == Tribool::kTrue && b == Tribool::kTrue) return Tribool::kTrue;
  return Tribool::kUnknown;
}

constexpr Tribool Or(Tribool a, Tribool b) {
  if (a == Tribool::kTrue || b == Tribool::kTrue) return Tribool::kTrue;
  if (a == Tribool::kFalse && b == Tribool::kFalse) return Tribool::kFalse;
  return Tribool::kUnknown;
}

constexpr Tribool Not(Tribool a) {
  if (a == Tribool::kTrue) return Tribool::kFalse;
  if (a == Tribool::kFalse) return Tribool::kTrue;
  return Tribool::kUnknown;
}

std::string ToString(Tribool t);
std::ostream& operator<<(std::ostream& os, Tribool t);

}  // namespace dflow::expr

#endif  // DFLOW_EXPR_TRIBOOL_H_
