#include "expr/predicate.h"

#include <cstddef>

namespace dflow::expr {

void MapEnv::Set(AttributeId id, Value v) {
  if (static_cast<size_t>(id) >= stable_.size()) {
    stable_.resize(static_cast<size_t>(id) + 1);
  }
  stable_[static_cast<size_t>(id)] = std::move(v);
}

std::optional<Value> MapEnv::StableValue(AttributeId id) const {
  if (id < 0 || static_cast<size_t>(id) >= stable_.size()) return std::nullopt;
  return stable_[static_cast<size_t>(id)];
}

std::string ToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

namespace {

// Three-way compare of non-null values of compatible types; nullopt when the
// types are incomparable (e.g. string vs int).
std::optional<int> OrderValues(const Value& lhs, const Value& rhs) {
  if (lhs.is_numeric() && rhs.is_numeric()) {
    const double a = lhs.AsDouble();
    const double b = rhs.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (lhs.is_string() && rhs.is_string()) {
    const int c = lhs.string_value().compare(rhs.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (lhs.is_bool() && rhs.is_bool()) {
    const int a = lhs.bool_value() ? 1 : 0;
    const int b = rhs.bool_value() ? 1 : 0;
    return a - b;
  }
  return std::nullopt;
}

}  // namespace

bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  const std::optional<int> ord = OrderValues(lhs, rhs);
  if (!ord.has_value()) {
    // Incomparable types: only != holds.
    return op == CompareOp::kNe;
  }
  switch (op) {
    case CompareOp::kEq: return *ord == 0;
    case CompareOp::kNe: return *ord != 0;
    case CompareOp::kLt: return *ord < 0;
    case CompareOp::kLe: return *ord <= 0;
    case CompareOp::kGt: return *ord > 0;
    case CompareOp::kGe: return *ord >= 0;
  }
  return false;
}

Predicate Predicate::Compare(AttributeId attr, CompareOp op, Value constant) {
  return Predicate(Kind::kCompareConst, attr, op, std::move(constant),
                   kInvalidAttribute);
}

Predicate Predicate::CompareAttrs(AttributeId lhs, CompareOp op,
                                  AttributeId rhs) {
  return Predicate(Kind::kCompareAttrs, lhs, op, Value::Null(), rhs);
}

Predicate Predicate::IsNull(AttributeId attr) {
  return Predicate(Kind::kIsNull, attr, CompareOp::kEq, Value::Null(),
                   kInvalidAttribute);
}

Predicate Predicate::IsNotNull(AttributeId attr) {
  return Predicate(Kind::kIsNotNull, attr, CompareOp::kEq, Value::Null(),
                   kInvalidAttribute);
}

Predicate Predicate::IsTrue(AttributeId attr) {
  return Predicate(Kind::kIsTrue, attr, CompareOp::kEq, Value::Bool(true),
                   kInvalidAttribute);
}

Tribool Predicate::Eval(const AttributeEnv& env) const {
  const std::optional<Value> lhs = env.StableValue(attr_);
  if (!lhs.has_value()) return Tribool::kUnknown;
  switch (kind_) {
    case Kind::kIsNull:
      return FromBool(lhs->is_null());
    case Kind::kIsNotNull:
      return FromBool(!lhs->is_null());
    case Kind::kIsTrue:
      return FromBool(lhs->IsTruthy());
    case Kind::kCompareConst:
      return FromBool(CompareValues(*lhs, op_, constant_));
    case Kind::kCompareAttrs: {
      const std::optional<Value> rhs = env.StableValue(rhs_attr_);
      if (!rhs.has_value()) {
        // One stable null operand already forces any comparison false.
        if (lhs->is_null()) return Tribool::kFalse;
        return Tribool::kUnknown;
      }
      return FromBool(CompareValues(*lhs, op_, *rhs));
    }
  }
  return Tribool::kUnknown;
}

void Predicate::CollectAttributes(std::vector<AttributeId>* out) const {
  out->push_back(attr_);
  if (kind_ == Kind::kCompareAttrs) out->push_back(rhs_attr_);
}

std::string Predicate::ToString(
    const std::function<std::string(AttributeId)>& name) const {
  switch (kind_) {
    case Kind::kIsNull: return "IsNull(" + name(attr_) + ")";
    case Kind::kIsNotNull: return "IsNotNull(" + name(attr_) + ")";
    case Kind::kIsTrue: return name(attr_) + " = true";
    case Kind::kCompareConst:
      return name(attr_) + " " + expr::ToString(op_) + " " +
             constant_.ToString();
    case Kind::kCompareAttrs:
      return name(attr_) + " " + expr::ToString(op_) + " " + name(rhs_attr_);
  }
  return "?";
}

}  // namespace dflow::expr
