#include "sim/database_server.h"

#include <cassert>
#include <utility>

namespace dflow::sim {

// One query's progress through its units of processing. Owned by the server
// for the duration of the query.
struct DatabaseServer::QueryJob {
  int remaining_units;
  int remaining_pages;  // IO pages left in the current unit
  Completion done;
};

void DatabaseServer::ServiceCenter::Enqueue(Time service_ms, Completion done) {
  queue_.push_back(Pending{service_ms, std::move(done)});
  if (free_ > 0) {
    --free_;
    StartNext();
  }
}

void DatabaseServer::ServiceCenter::StartNext() {
  // Precondition: a server slot has been claimed and the queue is non-empty.
  Pending job = std::move(queue_.front());
  queue_.pop_front();
  sim_->Schedule(job.service_ms, [this, done = std::move(job.done)]() {
    done();
    if (!queue_.empty()) {
      StartNext();  // keep the claimed slot busy
    } else {
      ++free_;
    }
  });
}

DatabaseServer::DatabaseServer(Simulator* sim, DatabaseParams params,
                               uint64_t seed)
    : sim_(sim),
      params_(params),
      rng_(seed),
      cpus_(sim, params.num_cpus) {
  disks_.reserve(static_cast<size_t>(params_.num_disks));
  for (int d = 0; d < params_.num_disks; ++d) {
    disks_.push_back(std::make_unique<ServiceCenter>(sim, 1));
  }
}

DatabaseServer::~DatabaseServer() = default;

void DatabaseServer::AccumulateGmpl() {
  gmpl_area_ += active_queries_ * (sim_->now() - gmpl_last_update_);
  gmpl_last_update_ = sim_->now();
}

double DatabaseServer::MeanGmpl() const {
  const Time elapsed = sim_->now();
  if (elapsed <= 0) return 0;
  return (gmpl_area_ + active_queries_ * (elapsed - gmpl_last_update_)) /
         elapsed;
}

void DatabaseServer::Submit(int cost_units, Completion done) {
  assert(cost_units >= 0);
  if (cost_units == 0) {
    // Synthesis-style instant work: completes "now" via the event queue.
    sim_->Schedule(0, std::move(done));
    return;
  }
  AccumulateGmpl();
  ++active_queries_;
  auto* job = new QueryJob{cost_units, 0, std::move(done)};
  StartUnit(job);
}

void DatabaseServer::StartUnit(QueryJob* job) {
  job->remaining_pages = params_.unit_io_pages;
  cpus_.Enqueue(params_.unit_cpu_ms, [this, job]() { AfterCpu(job); });
}

void DatabaseServer::AfterCpu(QueryJob* job) { StartIo(job); }

void DatabaseServer::StartIo(QueryJob* job) {
  // Walk the unit's IO pages; buffer hits cost nothing.
  while (job->remaining_pages > 0) {
    --job->remaining_pages;
    if (!rng_.Chance(params_.io_hit)) {
      const int disk =
          static_cast<int>(rng_.UniformInt(0, params_.num_disks - 1));
      disks_[static_cast<size_t>(disk)]->Enqueue(
          params_.io_delay_ms, [this, job]() { StartIo(job); });
      return;  // resume remaining pages after this disk access
    }
  }
  UnitDone(job);
}

void DatabaseServer::UnitDone(QueryJob* job) {
  ++units_completed_;
  if (--job->remaining_units > 0) {
    StartUnit(job);
    return;
  }
  AccumulateGmpl();
  --active_queries_;
  ++queries_completed_;
  Completion done = std::move(job->done);
  delete job;
  done();
}

}  // namespace dflow::sim
