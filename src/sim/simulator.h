#ifndef DFLOW_SIM_SIMULATOR_H_
#define DFLOW_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dflow::sim {

// Simulated time. The unbounded-resource experiments interpret it as "units
// of processing" (the paper's TimeInUnits); the bounded-resource experiments
// interpret it as milliseconds (TimeInSeconds after division).
using Time = double;

// Deterministic single-threaded discrete-event simulator.
//
// This plays the role CSIM 18 plays in the paper's evaluation: a virtual
// clock plus an event queue, on top of which the database server and the
// decision-flow engine are driven. Events at equal times fire in FIFO
// order of scheduling (a monotonically increasing sequence number breaks
// ties), which makes every simulation bit-reproducible.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `cb` to run `delay` (>= 0) after the current time.
  void Schedule(Time delay, Callback cb);

  // Schedules `cb` at absolute time `at` (>= now()).
  void ScheduleAt(Time at, Callback cb);

  // Runs the earliest pending event. Returns false if none are pending.
  bool RunOne();

  // Runs events until the queue drains.
  void RunUntilEmpty();

  // Runs events with time <= `t`, then advances the clock to `t`.
  void RunUntil(Time t);

  size_t pending_events() const { return queue_.size(); }
  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    Time at;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_SIMULATOR_H_
