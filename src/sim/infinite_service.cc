#include "sim/infinite_service.h"

#include <utility>

namespace dflow::sim {

void InfiniteResourceService::Submit(int cost_units, Completion done) {
  units_submitted_ += cost_units;
  ++queries_submitted_;
  sim_->Schedule(unit_duration_ * cost_units, std::move(done));
}

}  // namespace dflow::sim
