#ifndef DFLOW_SIM_DB_PROFILER_H_
#define DFLOW_SIM_DB_PROFILER_H_

#include <cstdint>
#include <vector>

#include "sim/database_server.h"

namespace dflow::sim {

// One sample of the database characteristic function Db: the mean response
// time (ms) of a unit of processing when the server sustains a
// multiprogramming level of `gmpl` units (fractional for open-loop
// operational measurements).
struct DbSample {
  double gmpl = 0;
  double unit_time_ms = 0;
};

// Empirically measures the Db function of Figure 9(a): for each requested
// multiprogramming level G, runs G closed-loop streams that each submit
// 1-unit queries back-to-back, and reports the mean query response time
// after a warmup period. Deterministic given the seed.
class DbProfiler {
 public:
  explicit DbProfiler(DatabaseParams params, uint64_t seed = 42)
      : params_(params), seed_(seed) {}

  // Measures UnitTime at one multiprogramming level. `measured_queries` is
  // the number of completions averaged after `warmup_queries` completions
  // are discarded.
  DbSample Measure(int gmpl, int warmup_queries = 2000,
                   int measured_queries = 20000) const;

  // Measures the whole curve for gmpl = 1..max_gmpl (inclusive).
  std::vector<DbSample> MeasureCurve(int max_gmpl) const;

  // Operational (open-loop) measurement: Poisson query arrivals at
  // `units_per_ms` offered load with query costs uniform in
  // [min_cost, max_cost]. Returns the mean response per unit and the
  // implied mean multiprogramming level (Little's law: Gmpl = lambda_units
  // * UnitTime). This is the curve to use when predicting open-system
  // behaviour (Figure 9(b)-(d)): a closed-loop curve at the same *mean*
  // Gmpl understates queueing because the open system's level fluctuates.
  // The offered load must be below the server's capacity.
  DbSample MeasureOpen(double units_per_ms, int min_cost, int max_cost,
                       int warmup_queries = 2000,
                       int measured_queries = 20000) const;

  // Operational curve over an offered-load grid: `loads` in units/ms,
  // returned sorted by gmpl with duplicate levels collapsed.
  std::vector<DbSample> MeasureOpenCurve(const std::vector<double>& loads,
                                         int min_cost, int max_cost) const;

 private:
  DatabaseParams params_;
  uint64_t seed_;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_DB_PROFILER_H_
