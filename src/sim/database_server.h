#ifndef DFLOW_SIM_DATABASE_SERVER_H_
#define DFLOW_SIM_DATABASE_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/query_service.h"
#include "sim/simulator.h"

namespace dflow::sim {

// Physical parameters of the simulated database, matching the last six rows
// of Table 1. Times are in milliseconds of simulated time.
struct DatabaseParams {
  int num_cpus = 4;          // # of CPUs in the database
  int num_disks = 10;        // # of disks in the database
  double unit_cpu_ms = 1.0;  // CPU time consumed per unit of processing
  int unit_io_pages = 1;     // IO pages accessed per unit of processing
  double io_hit = 0.5;       // probability an IO page hits the buffer pool
  double io_delay_ms = 5.0;  // disk service time per missed page
};

// Bounded-resource database server in the style of [ACL87] (and of the
// paper's CSIM model): CPUs form one multi-server FIFO queue; each disk is
// its own single-server FIFO queue. A query of cost c executes c units of
// processing sequentially; each unit takes one CPU burst of unit_cpu_ms and
// then, for each of unit_io_pages pages, a disk access of io_delay_ms with
// probability (1 - io_hit), on a uniformly chosen disk.
//
// The multiprogramming level Gmpl (number of queries concurrently inside
// the server) is what determines the per-unit response time Db(Gmpl) of
// Figure 9(a); `DbProfiler` measures that curve empirically.
class DatabaseServer : public QueryService {
 public:
  DatabaseServer(Simulator* sim, DatabaseParams params, uint64_t seed);
  ~DatabaseServer() override;

  DatabaseServer(const DatabaseServer&) = delete;
  DatabaseServer& operator=(const DatabaseServer&) = delete;

  void Submit(int cost_units, Completion done) override;

  // Resets the random stream (buffer-pool hit draws, disk choices) so the
  // next query sequence is a pure function of `seed`. The serving runtime
  // reseeds before each instance: together with running one instance at a
  // time against a quiescent server, this makes every bounded execution
  // independent of what ran before on the same harness (the core::FlowHarness
  // determinism contract, extended to the bounded backend).
  void Reseed(uint64_t seed) { rng_ = Rng(seed); }

  // Queries currently inside the server (the instantaneous Gmpl).
  int active_queries() const { return active_queries_; }
  int64_t units_completed() const { return units_completed_; }
  int64_t queries_completed() const { return queries_completed_; }
  // Time-averaged multiprogramming level since construction.
  double MeanGmpl() const;

  const DatabaseParams& params() const { return params_; }

 private:
  struct QueryJob;

  // A k-server FIFO service center.
  class ServiceCenter {
   public:
    ServiceCenter(Simulator* sim, int servers) : sim_(sim), free_(servers) {}
    // Enqueues a job with the given service demand; `done` runs at service
    // completion.
    void Enqueue(Time service_ms, Completion done);

   private:
    struct Pending {
      Time service_ms;
      Completion done;
    };
    void StartNext();

    Simulator* sim_;
    int free_;
    std::deque<Pending> queue_;
  };

  void StartUnit(QueryJob* job);
  void AfterCpu(QueryJob* job);
  void StartIo(QueryJob* job);
  void UnitDone(QueryJob* job);
  void AccumulateGmpl();

  Simulator* sim_;
  DatabaseParams params_;
  Rng rng_;
  ServiceCenter cpus_;
  std::vector<std::unique_ptr<ServiceCenter>> disks_;

  int active_queries_ = 0;
  int64_t units_completed_ = 0;
  int64_t queries_completed_ = 0;
  // For MeanGmpl(): integral of active_queries over time.
  double gmpl_area_ = 0;
  Time gmpl_last_update_ = 0;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_DATABASE_SERVER_H_
