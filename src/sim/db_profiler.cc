#include "sim/db_profiler.h"

#include "common/rng.h"

#include <algorithm>
#include <functional>
#include <memory>

namespace dflow::sim {

DbSample DbProfiler::Measure(int gmpl, int warmup_queries,
                             int measured_queries) const {
  Simulator sim;
  DatabaseServer db(&sim, params_, seed_ + static_cast<uint64_t>(gmpl));

  int completed = 0;
  double total_response = 0;
  int measured = 0;
  const int target = warmup_queries + measured_queries;
  bool stop = false;

  // Each stream submits one 1-unit query at a time, resubmitting on
  // completion, so exactly `gmpl` queries are always inside the server.
  std::function<void()> submit = [&]() {
    if (stop) return;
    const Time start = sim.now();
    db.Submit(1, [&, start]() {
      ++completed;
      if (completed > warmup_queries && measured < measured_queries) {
        total_response += sim.now() - start;
        ++measured;
      }
      if (completed >= target) {
        stop = true;
        return;
      }
      submit();
    });
  };
  for (int s = 0; s < gmpl; ++s) submit();
  while (!stop && sim.RunOne()) {
  }

  DbSample sample;
  sample.gmpl = gmpl;
  sample.unit_time_ms = measured > 0 ? total_response / measured : 0;
  return sample;
}

std::vector<DbSample> DbProfiler::MeasureCurve(int max_gmpl) const {
  std::vector<DbSample> curve;
  curve.reserve(static_cast<size_t>(max_gmpl));
  for (int g = 1; g <= max_gmpl; ++g) curve.push_back(Measure(g));
  return curve;
}

DbSample DbProfiler::MeasureOpen(double units_per_ms, int min_cost,
                                 int max_cost, int warmup_queries,
                                 int measured_queries) const {
  Simulator sim;
  DatabaseServer db(&sim, params_, seed_ ^ 0xabcdef12ULL);
  Rng rng(Rng::Mix(seed_, 0x09e17ULL));

  const double mean_cost = (min_cost + max_cost) / 2.0;
  const double queries_per_ms = units_per_ms / mean_cost;
  const int total = warmup_queries + measured_queries;

  double sum_unit_response = 0;
  int measured = 0;
  int completed = 0;

  double at = 0;
  for (int i = 0; i < total; ++i) {
    at += rng.Exponential(1.0 / queries_per_ms);
    const int cost = static_cast<int>(rng.UniformInt(min_cost, max_cost));
    sim.ScheduleAt(at, [&, cost]() {
      const Time start = sim.now();
      db.Submit(cost, [&, cost, start]() {
        ++completed;
        if (completed > warmup_queries && measured < measured_queries) {
          sum_unit_response += (sim.now() - start) / cost;
          ++measured;
        }
      });
    });
  }
  sim.RunUntilEmpty();

  DbSample sample;
  sample.unit_time_ms = measured > 0 ? sum_unit_response / measured : 0;
  // Little's law in units: mean level = offered unit rate x unit response.
  sample.gmpl = units_per_ms * sample.unit_time_ms;
  return sample;
}

std::vector<DbSample> DbProfiler::MeasureOpenCurve(
    const std::vector<double>& loads, int min_cost, int max_cost) const {
  std::vector<DbSample> curve;
  curve.reserve(loads.size());
  for (double load : loads) {
    curve.push_back(MeasureOpen(load, min_cost, max_cost));
  }
  std::sort(curve.begin(), curve.end(),
            [](const DbSample& a, const DbSample& b) { return a.gmpl < b.gmpl; });
  // Collapse duplicate levels (keep the slower sample: conservative).
  std::vector<DbSample> out;
  for (const DbSample& s : curve) {
    if (!out.empty() && s.gmpl <= out.back().gmpl + 1e-9) {
      out.back().unit_time_ms = std::max(out.back().unit_time_ms, s.unit_time_ms);
      continue;
    }
    out.push_back(s);
  }
  return out;
}

}  // namespace dflow::sim
