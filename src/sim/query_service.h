#ifndef DFLOW_SIM_QUERY_SERVICE_H_
#define DFLOW_SIM_QUERY_SERVICE_H_

#include <functional>

namespace dflow::sim {

// The external server that foreign tasks run against (§3: the engine "sends
// their corresponding queries to the external server(s)").
//
// A query is characterized solely by its cost in *units of processing*
// (Table 1's module_cost); its semantic result is computed by the task's
// value function at completion time, so the service only models *when* the
// query finishes. Implementations:
//   - InfiniteResourceService: unbounded resources, one unit == one time
//     unit, arbitrary parallelism (the §5 "infinite resources" experiments).
//   - DatabaseServer: CPU/disk service queues (the §5 bounded-resource
//     experiments and the Db(Gmpl) curve of Figure 9(a)).
class QueryService {
 public:
  using Completion = std::function<void()>;

  virtual ~QueryService() = default;

  // Submits a query costing `cost_units` (>= 0) units of processing.
  // `done` runs at the simulated completion time. Cost 0 completes at the
  // current time (still via the event queue, preserving FIFO determinism).
  virtual void Submit(int cost_units, Completion done) = 0;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_QUERY_SERVICE_H_
