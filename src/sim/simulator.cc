#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace dflow::sim {

void Simulator::Schedule(Time delay, Callback cb) {
  assert(delay >= 0);
  ScheduleAt(now_ + delay, std::move(cb));
}

void Simulator::ScheduleAt(Time at, Callback cb) {
  assert(at >= now_);
  queue_.push(Event{at, next_seq_++, std::move(cb)});
}

bool Simulator::RunOne() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the callback is moved out via const_cast,
  // which is safe because the element is popped before the callback runs.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++events_processed_;
  ev.cb();
  return true;
}

void Simulator::RunUntilEmpty() {
  while (RunOne()) {
  }
}

void Simulator::RunUntil(Time t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    RunOne();
  }
  if (t > now_) now_ = t;
}

}  // namespace dflow::sim
