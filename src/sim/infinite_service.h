#ifndef DFLOW_SIM_INFINITE_SERVICE_H_
#define DFLOW_SIM_INFINITE_SERVICE_H_

#include <cstdint>

#include "sim/query_service.h"
#include "sim/simulator.h"

namespace dflow::sim {

// Unbounded-resource query service: every query runs immediately and takes
// exactly `cost_units * unit_duration` of simulated time, regardless of how
// many queries are in flight. This realizes the paper's "database with
// infinite resources" setting, where response time is measured in units of
// processing (TimeInUnits) and Work is the total number of units consumed.
class InfiniteResourceService : public QueryService {
 public:
  explicit InfiniteResourceService(Simulator* sim, Time unit_duration = 1.0)
      : sim_(sim), unit_duration_(unit_duration) {}

  void Submit(int cost_units, Completion done) override;

  int64_t units_submitted() const { return units_submitted_; }
  int64_t queries_submitted() const { return queries_submitted_; }

 private:
  Simulator* sim_;
  Time unit_duration_;
  int64_t units_submitted_ = 0;
  int64_t queries_submitted_ = 0;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_INFINITE_SERVICE_H_
