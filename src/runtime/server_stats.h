#ifndef DFLOW_RUNTIME_SERVER_STATS_H_
#define DFLOW_RUNTIME_SERVER_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.h"

namespace dflow::runtime {

// Server-level aggregate of per-instance metrics. Latencies are the paper's
// TimeInUnits (units of processing under the infinite-resource service):
// the simulated-time view of each instance, independent of how loaded the
// host machine is. Wall-clock throughput is reported separately by the
// FlowServer, which owns the real clock.
struct ServerStats {
  int64_t completed = 0;
  // TrySubmit admissions refused — by backpressure (queue full) or because
  // the server was already draining. Both land here: the caller asked for a
  // non-blocking admission and did not get one.
  int64_t rejected = 0;

  int64_t total_work = 0;         // sum of InstanceMetrics::work
  int64_t total_wasted_work = 0;  // sum of InstanceMetrics::wasted_work
  double mean_work = 0;

  // Latency distribution in work units (TimeInUnits). Percentiles come
  // from the (possibly sampled) reservoir; the maximum is tracked exactly.
  double p50_latency_units = 0;
  double p95_latency_units = 0;
  double p99_latency_units = 0;
  double max_latency_units = 0;

  // Result-cache lookups across all shards (0/0 when caching is disabled).
  // The caches count shard-locally (no shared lock on the request path);
  // FlowServer::Report() sums them in here. A hit replays the cached
  // metrics into the collector, so `completed`, work totals, and the
  // latency distribution are identical to a cache-off run of the same
  // workload.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double cache_hit_rate = 0;  // hits / (hits + misses); 0 without lookups

  // Strategy-advisor counters (all zero unless the server runs AUTO):
  // how many per-request selections were made, how many of those were
  // explore-rule picks, how many found their request class in the frozen
  // model, and the per-strategy selection histogram (sorted by strategy
  // notation).
  int64_t advisor_selections = 0;
  int64_t advisor_explores = 0;
  int64_t advisor_class_hits = 0;
  std::vector<std::pair<std::string, int64_t>> strategy_selections;
};

// Aggregate counters of a network ingress sitting in front of a FlowServer
// (src/net/IngressServer): connection lifecycle, wire-level admission
// outcomes, and raw byte traffic. Defined here (not in net/) so
// FlowServerReport can carry them without the runtime depending on sockets;
// all zero unless an ingress fills them in. The same shape is kept
// per-connection by the ingress sessions and summed into this struct.
struct IngressStats {
  int64_t connections_opened = 0;
  int64_t connections_closed = 0;
  int64_t requests_accepted = 0;      // submits admitted to a shard queue
  int64_t requests_rejected_busy = 0; // REJECTED_BUSY wire responses (kFull)
  int64_t requests_rejected_shutdown = 0;  // SHUTTING_DOWN responses (kClosed)
  int64_t decode_errors = 0;  // malformed frames / undecodable payloads
  int64_t protocol_errors = 0;  // well-formed but unserviceable (bad strategy)
  int64_t info_requests = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  // Write-side (SessionOutbox) health. The high-water mark is the MAX over
  // sessions of each session's peak in-flight count (never summed — a sum
  // of peaks is meaningless); the other two are totals. A rising stall
  // count with a high HWM means responses are produced faster than the
  // peer drains them.
  int64_t outbox_inflight_hwm = 0;
  int64_t outbox_bytes_written = 0;
  int64_t outbox_write_stalls = 0;  // pushes that queued behind unsent data

  friend bool operator==(const IngressStats&, const IngressStats&) = default;
};

// Thread-safe accumulator shards report into. Record() takes one lock per
// completed instance; Snapshot() copies and sorts the latency reservoir to
// compute percentiles, so it is meant for periodic or end-of-run reporting,
// not per-request paths.
//
// Memory is bounded for long-running servers: counts and work totals are
// exact forever, while latencies are kept in a fixed-capacity reservoir.
// Up to `reservoir_capacity` completions the percentiles are exact; beyond
// it, the reservoir keeps the completions whose seed hash is among the k
// smallest (bottom-k over Mix(seed, salt)). Because the kept *set* is a
// pure function of the multiset of seeds recorded — and the determinism
// contract makes a seed's latency a constant — the reservoir contents, and
// therefore the reported percentiles, are identical no matter how
// concurrent shards interleave their Record() calls. (The previous
// Algorithm R variant indexed slots by completion count, so the kept
// sample depended on arrival order and percentiles drifted run to run
// once the reservoir overflowed.) The hash is uniform over seeds, so the
// sample stays an unbiased estimate for seed-distinct workloads; when one
// seed repeats heavily its duplicates share one hash and the sample
// under-represents it — a documented bias traded for determinism. The
// maximum is tracked exactly, outside the reservoir.
class StatsCollector {
 public:
  static constexpr size_t kDefaultReservoirCapacity = 1 << 20;

  explicit StatsCollector(
      size_t reservoir_capacity = kDefaultReservoirCapacity);
  StatsCollector(const StatsCollector&) = delete;
  StatsCollector& operator=(const StatsCollector&) = delete;

  void Record(uint64_t seed, const core::InstanceMetrics& metrics) {
    Record(seed, metrics, nullptr, false, false);
  }
  // AUTO shards: one completed instance plus its advisor selection —
  // which concrete strategy ran it and how it was picked (explore draw /
  // class found in the model) — folded in under a single lock
  // acquisition, so the per-request path pays the shared mutex once.
  void Record(uint64_t seed, const core::InstanceMetrics& metrics,
              const std::string* selected_strategy, bool explored,
              bool class_hit);
  void RecordRejected();

  ServerStats Snapshot() const;

 private:
  const size_t reservoir_capacity_;
  mutable std::mutex mu_;
  int64_t completed_ = 0;
  int64_t rejected_ = 0;
  int64_t total_work_ = 0;
  int64_t total_wasted_work_ = 0;
  double max_latency_ = 0;  // exact, independent of the reservoir
  // Bottom-k by seed hash, kept as a max-heap on the hash so the eviction
  // candidate (largest hash) is O(1) to find and O(log k) to replace.
  std::vector<std::pair<uint64_t, double>> reservoir_;
  int64_t advisor_selections_ = 0;
  int64_t advisor_explores_ = 0;
  int64_t advisor_class_hits_ = 0;
  std::map<std::string, int64_t> strategy_selections_;
};

}  // namespace dflow::runtime

#endif  // DFLOW_RUNTIME_SERVER_STATS_H_
