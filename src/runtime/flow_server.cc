#include "runtime/flow_server.h"

#include <thread>
#include <utility>

#include "common/rng.h"

namespace dflow::runtime {

FlowServer::FlowServer(const core::Schema* schema, FlowServerOptions options)
    : schema_(schema), options_(std::move(options)) {
  int n = options_.num_shards;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  if (options_.strategy.is_auto && options_.advisor == nullptr) {
    // AUTO without a calibration: still deterministic (empty model =>
    // first-candidate exploit + hash-scheduled explores), documented on
    // FlowServerOptions::advisor.
    options_.advisor = std::make_shared<opt::StrategyAdvisor>(
        opt::CostModel(), opt::StrategyAdvisor::DefaultCandidates(),
        opt::AdvisorOptions{});
  } else if (!options_.strategy.is_auto) {
    // An advisor configured alongside a concrete strategy is documented
    // as ignored; drop it so advisor() (and the Info AdvisorInfo section
    // keyed on it) never advertises a selector that is not consulted.
    options_.advisor = nullptr;
  }
  ShardOptions shard_options;
  shard_options.queue_capacity = options_.queue_capacity_per_shard;
  shard_options.backend = options_.backend;
  shard_options.db = options_.db;
  shard_options.result_cache_capacity = options_.result_cache_capacity;
  shard_options.result_cache_max_bytes = options_.result_cache_max_bytes;
  shard_options.result_cache_min_cost = options_.result_cache_min_cost;
  shard_options.advisor = options_.advisor.get();
  if (options_.profile_sample_period > 0) {
    profilers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      profilers_.push_back(std::make_unique<obs::FlowProfiler>(
          schema,
          obs::FlowProfilerOptions{options_.profile_sample_period}));
    }
  }
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shard_options.profiler =
        profilers_.empty() ? nullptr : profilers_[static_cast<size_t>(i)].get();
    shards_.push_back(std::make_unique<Shard>(i, schema, options_.strategy,
                                              shard_options, &stats_));
  }
  for (auto& shard : shards_) shard->Start();
  start_ = Clock::now();
  end_ = start_;
}

FlowServer::~FlowServer() { Drain(); }

int FlowServer::ShardFor(uint64_t seed, int num_shards) {
  if (num_shards <= 1) return 0;
  // Stateless SplitMix64 hash of the seed: uncorrelated with the generator
  // conventions (which mix the seed with attribute ids), well spread even
  // for sequential seeds, and identical on every run and platform.
  return static_cast<int>(Rng::Mix(seed, 0x5ca1ab1e0ddba11ULL) %
                          static_cast<uint64_t>(num_shards));
}

void FlowServer::SetResultCallback(Shard::ResultCallback callback) {
  for (auto& shard : shards_) shard->SetResultCallback(callback);
}

bool FlowServer::Submit(FlowRequest request) {
  const int target = ShardFor(request.seed, num_shards());
  return shards_[static_cast<size_t>(target)]->Submit(std::move(request));
}

bool FlowServer::TrySubmit(FlowRequest request) {
  return TrySubmitEx(std::move(request)) == TryPushResult::kOk;
}

TryPushResult FlowServer::TrySubmitEx(FlowRequest request) {
  const int target = ShardFor(request.seed, num_shards());
  const TryPushResult result =
      shards_[static_cast<size_t>(target)]->TrySubmitEx(std::move(request));
  if (result != TryPushResult::kOk) stats_.RecordRejected();
  return result;
}

TryPushResult FlowServer::OfferSubmit(FlowRequest request) {
  const int target = ShardFor(request.seed, num_shards());
  return shards_[static_cast<size_t>(target)]->TrySubmitEx(std::move(request));
}

void FlowServer::Drain() {
  // join_mu_ serializes concurrent Drain() calls for the whole backlog
  // drain (Shard::Drain must not be entered twice concurrently, and a
  // second caller must not return before the first finishes). drain_mu_
  // covers only the drained_/end_ state, so Report() stays responsive
  // while a long drain is in progress.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (drained_) return;
  }
  // Close every queue first so all shards drain concurrently, then join.
  for (auto& shard : shards_) shard->CloseQueue();
  for (auto& shard : shards_) shard->Drain();
  std::lock_guard<std::mutex> lock(drain_mu_);
  end_ = Clock::now();
  drained_ = true;
}

std::vector<size_t> FlowServer::queue_depths() const {
  std::vector<size_t> depths;
  depths.reserve(shards_.size());
  for (const auto& shard : shards_) depths.push_back(shard->queue_depth());
  return depths;
}

int64_t FlowServer::total_processed() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->processed();
  return total;
}

ResultCacheStats FlowServer::cache_totals() const {
  ResultCacheStats totals;
  for (const auto& shard : shards_) {
    const ResultCacheStats cache = shard->cache_stats();
    totals.hits += cache.hits;
    totals.misses += cache.misses;
    totals.evictions += cache.evictions;
    totals.entries += cache.entries;
    totals.bytes += cache.bytes;
    totals.admission_skips += cache.admission_skips;
  }
  return totals;
}

obs::ProfileSnapshot FlowServer::MergedProfile() const {
  obs::ProfileSnapshot merged;
  for (const auto& profiler : profilers_) {
    merged.MergeFrom(profiler->Snapshot());
  }
  if (!profilers_.empty()) {
    merged.sample_period = options_.profile_sample_period;
  }
  return merged;
}

int64_t FlowServer::ProfiledAttrWork(AttributeId attr) const {
  int64_t total = 0;
  for (const auto& profiler : profilers_) {
    total += profiler->attr_work_units(attr);
  }
  return total;
}

double FlowServer::ProfiledCondSelectivity(AttributeId attr) const {
  int64_t t = 0;
  int64_t f = 0;
  for (const auto& profiler : profilers_) {
    t += profiler->cond_true_outcomes(attr);
    f += profiler->cond_false_outcomes(attr);
  }
  if (t + f == 0) return -1.0;
  return static_cast<double>(t) / static_cast<double>(t + f);
}

FlowServerReport FlowServer::Report() const {
  FlowServerReport report;
  report.stats = stats_.Snapshot();
  report.num_shards = num_shards();
  Clock::time_point end;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    end = drained_ ? end_ : Clock::now();
  }
  report.wall_seconds =
      std::chrono::duration<double>(end - start_).count();
  if (report.wall_seconds > 0) {
    report.instances_per_second =
        static_cast<double>(report.stats.completed) / report.wall_seconds;
  }
  report.per_shard_processed.reserve(shards_.size());
  for (const auto& shard : shards_) {
    report.per_shard_processed.push_back(shard->processed());
    const ResultCacheStats cache = shard->cache_stats();
    report.cache.hits += cache.hits;
    report.cache.misses += cache.misses;
    report.cache.evictions += cache.evictions;
    report.cache.entries += cache.entries;
    report.cache.bytes += cache.bytes;
    report.cache.admission_skips += cache.admission_skips;
  }
  // The caches count shard-locally (no shared lock per request); fold the
  // summed counters into the ServerStats view here.
  report.stats.cache_hits = report.cache.hits;
  report.stats.cache_misses = report.cache.misses;
  report.stats.cache_hit_rate = report.cache.HitRate();
  return report;
}

}  // namespace dflow::runtime
