#include "runtime/result_cache.h"

#include <iterator>

#include "common/rng.h"
#include "common/value.h"

namespace dflow::runtime {
namespace {

uint64_t HashSources(uint64_t h, const core::SourceBinding& sources) {
  h = Rng::Mix(h, sources.size());
  for (const auto& [attr, value] : sources) {
    h = Rng::Mix(h, static_cast<uint64_t>(attr));
    h = HashValue(h, value);
  }
  return h;
}

uint64_t StrategySalt(const core::Strategy& strategy) {
  uint64_t h = 0x5a17ca0c9e517ULL;
  const std::string text = strategy.ToString();
  for (const char c : text) h = Rng::Mix(h, static_cast<uint64_t>(c));
  // The ablation overrides are not part of the printed notation but do
  // change results; fold them in explicitly.
  h = Rng::Mix(h, strategy.eager_conditions() ? 2 : 1);
  h = Rng::Mix(h, strategy.unneeded_detection() ? 2 : 1);
  return h;
}

int64_t ApproxValueBytes(const Value& value) {
  int64_t bytes = static_cast<int64_t>(sizeof(Value));
  if (value.is_string()) {
    bytes += static_cast<int64_t>(value.string_value().capacity());
  }
  return bytes;
}

}  // namespace

ResultCache::ResultCache(size_t capacity, const core::Strategy& strategy,
                         int64_t max_bytes, int64_t min_cost)
    : capacity_(capacity),
      max_bytes_(max_bytes > 0 ? max_bytes : 0),
      min_cost_(min_cost > 0 ? min_cost : 0),
      strategy_salt_(StrategySalt(strategy)) {}

uint64_t ResultCache::KeyHash(const core::SourceBinding& sources,
                              uint64_t seed, uint64_t variant_salt) const {
  return HashSources(Rng::Mix(strategy_salt_ ^ variant_salt, seed), sources);
}

uint64_t ResultCache::StrategyVariantSalt(const core::Strategy& strategy) {
  return StrategySalt(strategy);
}

int64_t ResultCache::ApproxResultBytes(const core::InstanceResult& result) {
  const core::Snapshot& snapshot = result.snapshot;
  const int n = snapshot.schema().num_attributes();
  int64_t bytes = static_cast<int64_t>(sizeof(core::InstanceResult)) +
                  n * static_cast<int64_t>(sizeof(core::AttrState));
  for (int a = 0; a < n; ++a) {
    bytes += ApproxValueBytes(snapshot.value(static_cast<AttributeId>(a)));
  }
  return bytes;
}

ResultCache::EntryList::iterator ResultCache::Find(
    uint64_t hash, const core::SourceBinding& sources, uint64_t seed,
    uint64_t variant_salt) {
  auto [begin, end] = index_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second->seed == seed && it->second->variant == variant_salt &&
        it->second->sources == sources) {
      return it->second;
    }
  }
  return entries_.end();
}

const core::InstanceResult* ResultCache::Lookup(
    const core::SourceBinding& sources, uint64_t seed,
    uint64_t variant_salt) {
  if (!enabled()) return nullptr;
  const uint64_t hash = KeyHash(sources, seed, variant_salt);
  const EntryList::iterator it = Find(hash, sources, seed, variant_salt);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  entries_.splice(entries_.begin(), entries_, it);  // promote to MRU
  hits_.fetch_add(1, std::memory_order_relaxed);
  return &it->result;
}

void ResultCache::Erase(EntryList::iterator it) {
  auto [begin, end] = index_.equal_range(it->hash);
  for (auto idx = begin; idx != end; ++idx) {
    if (idx->second == it) {
      index_.erase(idx);
      break;
    }
  }
  resident_entries_.fetch_sub(1, std::memory_order_relaxed);
  resident_bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
  entries_.erase(it);
}

void ResultCache::Insert(const core::SourceBinding& sources, uint64_t seed,
                         const core::InstanceResult& result,
                         uint64_t variant_salt) {
  if (!enabled()) return;
  // Cost-based admission: re-executing a cheap instance costs less than
  // the expensive entry it would evict.
  if (min_cost_ > 0 && result.metrics.work < min_cost_) {
    admission_skips_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint64_t hash = KeyHash(sources, seed, variant_salt);
  const EntryList::iterator existing = Find(hash, sources, seed, variant_salt);
  if (existing != entries_.end()) Erase(existing);
  while (entries_.size() >= capacity_) {
    Erase(std::prev(entries_.end()));  // evict LRU
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  const int64_t bytes = static_cast<int64_t>(sizeof(Entry)) +
                        ApproxResultBytes(result);
  entries_.push_front(Entry{sources, seed, variant_salt, result, hash, bytes});
  index_.emplace(hash, entries_.begin());
  resident_entries_.fetch_add(1, std::memory_order_relaxed);
  resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  // Byte budget: evict LRU until back under max_bytes_. This may evict the
  // entry just inserted (when it alone exceeds the budget), leaving the
  // cache empty — the budget is a hard bound, not advisory.
  while (max_bytes_ > 0 && !entries_.empty() &&
         resident_bytes_.load(std::memory_order_relaxed) > max_bytes_) {
    Erase(std::prev(entries_.end()));
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.admission_skips = admission_skips_.load(std::memory_order_relaxed);
  stats.entries = resident_entries_.load(std::memory_order_relaxed);
  stats.bytes = resident_bytes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace dflow::runtime
