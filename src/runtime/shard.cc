#include "runtime/shard.h"

#include <optional>
#include <utility>

namespace dflow::runtime {

Shard::Shard(int index, const core::Schema* schema,
             const core::Strategy& strategy, const ShardOptions& options,
             StatsCollector* stats)
    : index_(index),
      queue_(options.queue_capacity),
      harness_(schema, strategy,
               core::HarnessOptions{options.backend, options.db}),
      cache_(options.result_cache_capacity, strategy,
             options.result_cache_max_bytes),
      stats_(stats) {}

Shard::~Shard() { Drain(); }

void Shard::SetResultCallback(ResultCallback callback) {
  std::lock_guard<std::mutex> lock(callback_mu_);
  result_callback_ = std::move(callback);
}

void Shard::Start() {
  worker_ = std::thread([this] { WorkerLoop(); });
}

void Shard::Drain() {
  queue_.Close();
  if (worker_.joinable()) worker_.join();
}

void Shard::WorkerLoop() {
  while (std::optional<FlowRequest> request = queue_.Pop()) {
    const core::InstanceResult* cached = nullptr;
    if (cache_.enabled()) {
      cached = cache_.Lookup(request->sources, request->seed);
    }
    std::optional<core::InstanceResult> computed;
    if (cached == nullptr) {
      computed = harness_.Run(request->sources, request->seed);
      if (cache_.enabled()) {
        cache_.Insert(request->sources, request->seed, *computed);
      }
    }
    // A hit replays the cached result — byte-identical to what the harness
    // would produce (the FlowHarness determinism contract) — so the stats
    // stream below is the same with the cache on or off.
    const core::InstanceResult& result = cached ? *cached : *computed;
    stats_->Record(result.metrics);
    processed_.fetch_add(1, std::memory_order_relaxed);
    ResultCallback callback;
    {
      std::lock_guard<std::mutex> lock(callback_mu_);
      callback = result_callback_;
    }
    if (callback) callback(index_, *request, result);
  }
}

}  // namespace dflow::runtime
