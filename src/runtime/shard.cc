#include "runtime/shard.h"

#include <utility>

namespace dflow::runtime {

Shard::Shard(int index, const core::Schema* schema,
             const core::Strategy& strategy, size_t queue_capacity,
             StatsCollector* stats)
    : index_(index),
      queue_(queue_capacity),
      harness_(schema, strategy),
      stats_(stats) {}

Shard::~Shard() { Drain(); }

void Shard::SetResultCallback(ResultCallback callback) {
  std::lock_guard<std::mutex> lock(callback_mu_);
  result_callback_ = std::move(callback);
}

void Shard::Start() {
  worker_ = std::thread([this] { WorkerLoop(); });
}

void Shard::Drain() {
  queue_.Close();
  if (worker_.joinable()) worker_.join();
}

void Shard::WorkerLoop() {
  while (std::optional<FlowRequest> request = queue_.Pop()) {
    const core::InstanceResult result =
        harness_.Run(request->sources, request->seed);
    stats_->Record(result.metrics);
    processed_.fetch_add(1, std::memory_order_relaxed);
    ResultCallback callback;
    {
      std::lock_guard<std::mutex> lock(callback_mu_);
      callback = result_callback_;
    }
    if (callback) callback(index_, *request, result);
  }
}

}  // namespace dflow::runtime
