#include "runtime/shard.h"

#include <optional>
#include <utility>

#include "obs/flow_profiler.h"
#include "opt/cost_model.h"

namespace dflow::runtime {

Shard::Shard(int index, const core::Schema* schema,
             const core::Strategy& strategy, const ShardOptions& options,
             StatsCollector* stats)
    : index_(index),
      schema_(schema),
      strategy_(strategy),
      harness_options_{options.backend, options.db},
      queue_(options.queue_capacity),
      advisor_(strategy.is_auto ? options.advisor : nullptr),
      profiler_(options.profiler),
      cache_(options.result_cache_capacity, strategy,
             options.result_cache_max_bytes, options.result_cache_min_cost),
      stats_(stats) {
  if (!strategy_.is_auto) {
    fixed_harness_ = std::make_unique<core::FlowHarness>(schema_, strategy_,
                                                         harness_options_);
    fixed_harness_->SetProfiler(profiler_);
  }
}

Shard::~Shard() { Drain(); }

void Shard::SetResultCallback(ResultCallback callback) {
  std::lock_guard<std::mutex> lock(callback_mu_);
  result_callback_ = std::move(callback);
}

void Shard::Start() {
  worker_ = std::thread([this] { WorkerLoop(); });
}

void Shard::Drain() {
  queue_.Close();
  if (worker_.joinable()) worker_.join();
}

core::FlowHarness* Shard::HarnessFor(const core::Strategy& strategy,
                                     const std::string& name) {
  if (fixed_harness_ != nullptr) return fixed_harness_.get();
  std::unique_ptr<core::FlowHarness>& harness = auto_harnesses_[name];
  if (harness == nullptr) {
    harness = std::make_unique<core::FlowHarness>(schema_, strategy,
                                                  harness_options_);
    harness->SetProfiler(profiler_);
  }
  return harness.get();
}

void Shard::WorkerLoop() {
  // Batched pulls: one blocking wait covers a whole run of already-queued
  // requests, and the callback snapshot (a mutex + std::function copy) is
  // hoisted out of the per-request path. Requests still execute strictly
  // in queue order, one at a time, so every determinism property of the
  // one-at-a-time loop carries over unchanged.
  std::deque<FlowRequest> run;
  while (queue_.PopRun(kMaxRunLength, &run) > 0) {
    ResultCallback callback;
    {
      std::lock_guard<std::mutex> lock(callback_mu_);
      callback = result_callback_;
    }
    while (!run.empty()) {
      ProcessOne(run.front(), callback);
      run.pop_front();
    }
  }
}

void Shard::ProcessOne(FlowRequest& request,
                       const ResultCallback& callback) {
  // Profiling hot path: unsampled requests pay one relaxed increment plus
  // one seed hash; the sampled subset is a pure function of the seed, so
  // it is identical for every shard count (the merge-determinism
  // contract).
  const bool profiled =
      profiler_ != nullptr && profiler_->Sampled(request.seed);
  if (profiler_ != nullptr) profiler_->CountRequest();
  const obs::RequestTrace* trace = request.trace.get();
  uint64_t stage_ns = 0;
  if (trace != nullptr) {
    stage_ns = obs::MonotonicNs();
    request.trace->AddSpan(obs::SpanKind::kShardQueueWait,
                           request.trace->enqueue_ns(), stage_ns);
  }
  // Resolve the strategy first: under AUTO the advisor's choice is a
  // pure function of the request, so the same request picks the same
  // concrete strategy on any shard, for any shard count.
  core::Strategy executed = strategy_;
  std::string executed_name;  // filled only under AUTO; stringify once
  uint64_t variant = 0;
  uint64_t class_key = 0;
  bool explored = false;
  bool class_hit = false;
  if (advisor_ != nullptr) {
    const opt::AdvisorChoice choice =
        advisor_->Choose(request.sources, request.seed);
    executed = choice.strategy;
    executed_name = executed.ToString();
    class_key = choice.class_key;
    explored = choice.explored;
    class_hit = choice.class_hit;
    variant = ResultCache::StrategyVariantSalt(executed);
    if (trace != nullptr) {
      const uint64_t now = obs::MonotonicNs();
      request.trace->AddSpan(obs::SpanKind::kAdvisorChoose, stage_ns, now);
      stage_ns = now;
    }
  }
  const core::InstanceResult* cached = nullptr;
  if (cache_.enabled()) {
    cached = cache_.Lookup(request.sources, request.seed, variant);
  }
  if (trace != nullptr) {
    // Recorded even when the cache is off (a 0-length span): the span
    // set of a traced request is the full pipeline taxonomy, so a
    // missing cache.lookup always means "trace truncated", never "cache
    // disabled".
    const uint64_t now = obs::MonotonicNs();
    request.trace->AddSpan(obs::SpanKind::kCacheLookup, stage_ns, now);
    stage_ns = now;
  }
  std::optional<core::InstanceResult> computed;
  if (cached == nullptr) {
    computed = HarnessFor(executed, executed_name)
                   ->Run(request.sources, request.seed);
    if (cache_.enabled()) {
      cache_.Insert(request.sources, request.seed, *computed, variant);
    }
    if (trace != nullptr) {
      request.trace->AddSpan(obs::SpanKind::kHarnessExec, stage_ns,
                             obs::MonotonicNs());
    }
  }
  // A hit replays the cached result — byte-identical to what the harness
  // would produce (the FlowHarness determinism contract) — so the stats
  // stream below is the same with the cache on or off.
  const core::InstanceResult& result = cached ? *cached : *computed;
  if (trace != nullptr) {
    request.trace->SetExecution(
        index_, queue_.size(),
        executed_name.empty() ? executed.ToString() : executed_name,
        cached != nullptr);
  }
  stats_->Record(request.seed, result.metrics,
                 advisor_ != nullptr ? &executed_name : nullptr, explored,
                 class_hit);
  if (advisor_ != nullptr) {
    // Observed metrics are deterministic per request, so the online
    // statistics are too (up to fold order); they never feed back into
    // Choose() on this advisor — see the determinism contract.
    advisor_->Observe(class_key, executed_name, result.metrics);
  }
  if (profiled) {
    // Fixed-strategy shards have no advisor choice to reuse, so derive the
    // class key directly (salt 0: the rollup is keyed within one server).
    const uint64_t key = advisor_ != nullptr
                             ? class_key
                             : opt::ClassKeyFor(0, request.sources);
    profiler_->RecordClass(key, result.metrics.work,
                           result.metrics.wasted_work, cached != nullptr);
  }
  processed_.fetch_add(1, std::memory_order_relaxed);
  if (callback) callback(index_, request, result, executed);
}

}  // namespace dflow::runtime
