#ifndef DFLOW_RUNTIME_RESULT_CACHE_H_
#define DFLOW_RUNTIME_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "core/engine.h"
#include "core/snapshot.h"
#include "core/strategy.h"

namespace dflow::runtime {

// Point-in-time counters of one ResultCache (or, in FlowServerReport, the
// sum over every shard's cache). hits/misses/evictions are cumulative;
// entries/bytes are the resident gauges at snapshot time.
struct ResultCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t entries = 0;
  int64_t bytes = 0;  // approximate resident size of the cached results
  // Inserts refused by the cost-based admission policy (result cheaper
  // than min_cost); cumulative, like the hit/miss counters.
  int64_t admission_skips = 0;

  double HitRate() const {
    const int64_t lookups = hits + misses;
    return lookups > 0 ? static_cast<double>(hits) / lookups : 0;
  }
};

// Shard-local cross-instance result cache: because an InstanceResult is a
// pure function of (schema, strategy, backend options, sources, seed) — the
// FlowHarness determinism contract — a repeated request can be answered from
// memory with a byte-identical result, skipping the simulated execution
// entirely.
//
// Keying: entries are keyed by (sources fingerprint, seed, strategy). The
// strategy is folded into the hash salt at construction (one cache serves
// one shard, and a shard runs one strategy); sources and seed are hashed for
// lookup but the *full* SourceBinding is stored and compared on every probe,
// so a 64-bit fingerprint collision can never surface a wrong result.
// Under the AUTO advisor a shard executes *several* concrete strategies:
// the per-call `variant_salt` (StrategyVariantSalt of the chosen strategy)
// disambiguates — it is mixed into the hash AND stored/compared in the
// entry, so results of different chosen strategies never alias.
//
// Admission: when `min_cost` > 0, results whose measured work is below it
// are not cached (counted in admission_skips) — cheap instances are
// cheaper to re-execute than the expensive entries they would evict.
//
// Bounds: at most `capacity` entries, evicted in LRU order (a hit promotes
// its entry to most-recently-used). Capacity 0 disables the cache: Lookup
// always misses without counting, Insert is a no-op. An optional byte
// budget (`max_bytes` > 0) additionally evicts LRU entries after every
// insert until the resident footprint — the ApproxResultBytes-based gauge
// reported as ResultCacheStats::bytes — is back under the budget; an entry
// that alone exceeds the budget is evicted immediately (never cached), so
// the budget holds even for single oversized results.
//
// Threading: Lookup/Insert are confined to the owning shard's worker thread
// (cache lookups stay shard-local, preserving the quiescent-engine
// contract); Stats() may be called from any thread and reads atomic gauges.
class ResultCache {
 public:
  ResultCache(size_t capacity, const core::Strategy& strategy,
              int64_t max_bytes = 0, int64_t min_cost = 0);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  bool enabled() const { return capacity_ > 0; }
  size_t capacity() const { return capacity_; }
  int64_t max_bytes() const { return max_bytes_; }
  int64_t min_cost() const { return min_cost_; }

  // Returns the cached result for (sources, seed, variant), promoting it to
  // MRU, or nullptr on a miss. The pointer stays valid until the next
  // Insert on this cache (Lookup itself never evicts).
  const core::InstanceResult* Lookup(const core::SourceBinding& sources,
                                     uint64_t seed, uint64_t variant_salt = 0);

  // Caches a copy of `result` under (sources, seed, variant), evicting the
  // LRU entry if the cache is full and then evicting LRU entries until the
  // byte budget (when set) is respected. Results cheaper than min_cost are
  // not admitted. Inserting an already-present key refreshes its recency
  // and overwrites the entry. Note the byte budget may evict the
  // just-inserted entry itself, so a Lookup pointer obtained before an
  // Insert is invalidated by it (as documented on Lookup).
  void Insert(const core::SourceBinding& sources, uint64_t seed,
              const core::InstanceResult& result, uint64_t variant_salt = 0);

  ResultCacheStats Stats() const;

  // The 64-bit key hash: sources fingerprint mixed with the seed, the
  // per-cache strategy salt, and the per-call variant salt. Exposed for
  // tests.
  uint64_t KeyHash(const core::SourceBinding& sources, uint64_t seed,
                   uint64_t variant_salt = 0) const;

  // The variant salt for one concrete strategy — what an AUTO shard passes
  // to Lookup/Insert for its per-request chosen strategy.
  static uint64_t StrategyVariantSalt(const core::Strategy& strategy);

  // Approximate heap + inline footprint of one cached result (snapshot
  // states, values, string payloads, metrics).
  static int64_t ApproxResultBytes(const core::InstanceResult& result);

 private:
  struct Entry {
    core::SourceBinding sources;
    uint64_t seed;
    uint64_t variant;  // per-call variant salt (0 for fixed-strategy shards)
    core::InstanceResult result;
    uint64_t hash;
    int64_t bytes;
  };
  using EntryList = std::list<Entry>;  // front = most recently used

  EntryList::iterator Find(uint64_t hash, const core::SourceBinding& sources,
                           uint64_t seed, uint64_t variant_salt);
  void Erase(EntryList::iterator it);

  const size_t capacity_;
  const int64_t max_bytes_;  // 0 = entries-only bounding
  const int64_t min_cost_;   // 0 = admit every result
  const uint64_t strategy_salt_;
  EntryList entries_;
  // hash -> entries with that hash (collisions chain; full keys disambiguate)
  std::unordered_multimap<uint64_t, EntryList::iterator> index_;

  // Gauges readable from other threads (FlowServer::Report).
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> admission_skips_{0};
  std::atomic<int64_t> resident_entries_{0};
  std::atomic<int64_t> resident_bytes_{0};
};

}  // namespace dflow::runtime

#endif  // DFLOW_RUNTIME_RESULT_CACHE_H_
