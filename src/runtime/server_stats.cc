#include "runtime/server_stats.h"

#include <algorithm>

#include "common/rng.h"

namespace dflow::runtime {
namespace {

// Linearly interpolated percentile over a sorted sample (q in [0, 1]).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// Salt for the reservoir's per-seed hash: independent of the sampling,
// shard-placement, and cache-key salts.
constexpr uint64_t kReservoirSalt = 0x7e57a75eed5ca1eULL;

// Max-heap on the hash: the root is the eviction candidate.
bool HashBefore(const std::pair<uint64_t, double>& a,
                const std::pair<uint64_t, double>& b) {
  return a.first < b.first;
}

}  // namespace

StatsCollector::StatsCollector(size_t reservoir_capacity)
    : reservoir_capacity_(reservoir_capacity > 0 ? reservoir_capacity : 1) {}

void StatsCollector::Record(uint64_t seed,
                            const core::InstanceMetrics& metrics,
                            const std::string* selected_strategy,
                            bool explored, bool class_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (selected_strategy != nullptr) {
    ++advisor_selections_;
    if (explored) ++advisor_explores_;
    if (class_hit) ++advisor_class_hits_;
    ++strategy_selections_[*selected_strategy];
  }
  ++completed_;
  total_work_ += metrics.work;
  total_wasted_work_ += metrics.wasted_work;
  max_latency_ = std::max(max_latency_, metrics.ResponseTime());
  // Bottom-k by seed hash (see the class comment): keep the completion iff
  // its hash is among the k smallest seen. Strictly-less on eviction keeps
  // the incumbent on a hash tie (a repeated seed), so the kept set is a
  // function of the seed multiset alone, not of Record() interleaving.
  const uint64_t hash = Rng::Mix(seed, kReservoirSalt);
  if (reservoir_.size() < reservoir_capacity_) {
    reservoir_.emplace_back(hash, metrics.ResponseTime());
    std::push_heap(reservoir_.begin(), reservoir_.end(), HashBefore);
  } else if (hash < reservoir_.front().first) {
    std::pop_heap(reservoir_.begin(), reservoir_.end(), HashBefore);
    reservoir_.back() = {hash, metrics.ResponseTime()};
    std::push_heap(reservoir_.begin(), reservoir_.end(), HashBefore);
  }
}

void StatsCollector::RecordRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

ServerStats StatsCollector::Snapshot() const {
  std::vector<double> sorted;
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.completed = completed_;
    stats.rejected = rejected_;
    stats.total_work = total_work_;
    stats.total_wasted_work = total_wasted_work_;
    stats.max_latency_units = max_latency_;
    stats.advisor_selections = advisor_selections_;
    stats.advisor_explores = advisor_explores_;
    stats.advisor_class_hits = advisor_class_hits_;
    stats.strategy_selections.assign(strategy_selections_.begin(),
                                     strategy_selections_.end());
    sorted.reserve(reservoir_.size());
    for (const auto& [hash, latency] : reservoir_) sorted.push_back(latency);
  }
  std::sort(sorted.begin(), sorted.end());
  if (stats.completed > 0) {
    stats.mean_work = static_cast<double>(stats.total_work) /
                      static_cast<double>(stats.completed);
  }
  if (!sorted.empty()) {
    stats.p50_latency_units = Percentile(sorted, 0.50);
    stats.p95_latency_units = Percentile(sorted, 0.95);
    stats.p99_latency_units = Percentile(sorted, 0.99);
  }
  return stats;
}

}  // namespace dflow::runtime
