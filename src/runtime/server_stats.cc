#include "runtime/server_stats.h"

#include <algorithm>

#include "common/rng.h"

namespace dflow::runtime {
namespace {

// Linearly interpolated percentile over a sorted sample (q in [0, 1]).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

StatsCollector::StatsCollector(size_t reservoir_capacity)
    : reservoir_capacity_(reservoir_capacity > 0 ? reservoir_capacity : 1) {}

void StatsCollector::Record(const core::InstanceMetrics& metrics,
                            const std::string* selected_strategy,
                            bool explored, bool class_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (selected_strategy != nullptr) {
    ++advisor_selections_;
    if (explored) ++advisor_explores_;
    if (class_hit) ++advisor_class_hits_;
    ++strategy_selections_[*selected_strategy];
  }
  ++completed_;
  total_work_ += metrics.work;
  total_wasted_work_ += metrics.wasted_work;
  max_latency_ = std::max(max_latency_, metrics.ResponseTime());
  if (latencies_.size() < reservoir_capacity_) {
    latencies_.push_back(metrics.ResponseTime());
  } else {
    // Algorithm R with a stateless hash of the completion count standing in
    // for the random draw: sample i replaces a reservoir slot with
    // probability capacity/i, keeping the sample uniform over the stream.
    const uint64_t slot = Rng::Mix(static_cast<uint64_t>(completed_),
                                   0x7e57a75eed5ca1eULL) %
                          static_cast<uint64_t>(completed_);
    if (slot < reservoir_capacity_) {
      latencies_[static_cast<size_t>(slot)] = metrics.ResponseTime();
    }
  }
}

void StatsCollector::RecordRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

ServerStats StatsCollector::Snapshot() const {
  std::vector<double> sorted;
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.completed = completed_;
    stats.rejected = rejected_;
    stats.total_work = total_work_;
    stats.total_wasted_work = total_wasted_work_;
    stats.max_latency_units = max_latency_;
    stats.advisor_selections = advisor_selections_;
    stats.advisor_explores = advisor_explores_;
    stats.advisor_class_hits = advisor_class_hits_;
    stats.strategy_selections.assign(strategy_selections_.begin(),
                                     strategy_selections_.end());
    sorted = latencies_;
  }
  std::sort(sorted.begin(), sorted.end());
  if (stats.completed > 0) {
    stats.mean_work = static_cast<double>(stats.total_work) /
                      static_cast<double>(stats.completed);
  }
  if (!sorted.empty()) {
    stats.p50_latency_units = Percentile(sorted, 0.50);
    stats.p95_latency_units = Percentile(sorted, 0.95);
    stats.p99_latency_units = Percentile(sorted, 0.99);
  }
  return stats;
}

}  // namespace dflow::runtime
