#ifndef DFLOW_RUNTIME_FLOW_SERVER_H_
#define DFLOW_RUNTIME_FLOW_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/schema.h"
#include "core/strategy.h"
#include "obs/flow_profiler.h"
#include "opt/strategy_advisor.h"
#include "runtime/request_queue.h"
#include "runtime/server_stats.h"
#include "runtime/shard.h"

namespace dflow::runtime {

struct FlowServerOptions {
  // Number of worker shards; <= 0 means std::thread::hardware_concurrency().
  int num_shards = 0;
  // Bounded admission queue depth per shard (backpressure threshold).
  size_t queue_capacity_per_shard = 256;
  // Execution strategy every shard's engine runs (§5 notation, e.g.
  // PSE100), or the AUTO sentinel: the advisor below then picks a concrete
  // strategy per request.
  core::Strategy strategy;
  // The per-request strategy selector consulted when `strategy` is AUTO
  // (ignored otherwise). Shared across shards — the advisor is internally
  // synchronized and its Choose() is a pure function of the request, so
  // sharing cannot couple shards. When AUTO is configured without an
  // advisor, the server builds one over an empty cost model and the
  // default candidate set (deterministic, but every request falls back to
  // the first candidate except explore picks — calibrate for real use).
  std::shared_ptr<opt::StrategyAdvisor> advisor;
  // Which QueryService backend each shard's harness owns: the §5 infinite-
  // resource service, or a *private per-shard* bounded sim::DatabaseServer
  // (the Figure 9(b)-(d) finite-resources regime) with the DatabaseParams
  // below. Results stay reproducible across shard counts either way.
  core::BackendKind backend = core::BackendKind::kInfinite;
  sim::DatabaseParams db;  // per-shard DB capacity when kBoundedDb
  // Cross-instance result cache per shard, in entries; 0 disables caching.
  // A hit returns a byte-identical InstanceResult without re-executing.
  size_t result_cache_capacity = 0;
  // Optional per-shard byte budget for the result cache: after every insert,
  // LRU entries are evicted until the resident footprint (as counted by
  // ResultCacheStats::bytes) is back under the budget. 0 means no byte
  // bound (entries-only LRU).
  int64_t result_cache_max_bytes = 0;
  // Cost-based cache admission: results whose measured work is below this
  // are not cached (ResultCacheStats::admission_skips counts them), so
  // cheap instances stop evicting expensive ones. 0 admits everything.
  int64_t result_cache_min_cost = 0;
  // Execution profiling: 1-in-N deterministic seed sampling feeding one
  // obs::FlowProfiler per shard (merged on demand by MergedProfile()).
  // Default on at the trace-sampling rate; 0 disables profiling entirely
  // (shards then skip even the per-request sampling hash).
  uint32_t profile_sample_period = obs::kDefaultProfileSamplePeriod;
};

// Aggregate server report: simulated-time statistics from the shared
// StatsCollector plus the wall-clock view only the server can provide.
struct FlowServerReport {
  ServerStats stats;
  int num_shards = 0;
  double wall_seconds = 0;           // construction (or last Drain) span
  double instances_per_second = 0;   // completed / wall_seconds
  std::vector<int64_t> per_shard_processed;
  // Result-cache counters summed over every shard's ResultCache (all zero
  // when result_cache_capacity == 0).
  ResultCacheStats cache;
  // Network-ingress counters; all zero unless a net::IngressServer fronts
  // this server and fills them in (IngressServer::Report does).
  IngressStats ingress;
};

// The parallel flow-serving runtime: accepts a stream of decision-flow
// requests and executes them across N worker shards in wall-clock time.
//
// Architecture (shard-ownership model):
//   - each Shard exclusively owns a deterministic core::FlowHarness
//     (Simulator + InfiniteResourceService + ExecutionEngine), so the
//     single-threaded §3 execution algorithm is reused unchanged;
//   - requests are routed to shards by a stateless hash of their seed
//     (ShardFor), making placement — and therefore every per-shard request
//     sequence — a pure function of the submitted request set. Results are
//     reproducible for ANY shard count because each instance additionally
//     runs against a quiescent engine (see Shard);
//   - Submit() blocks when the target shard's bounded queue is full
//     (backpressure); TrySubmit() rejects instead and the rejection is
//     counted in the stats;
//   - Drain() closes all queues, lets every shard finish its backlog, and
//     joins the worker threads. The destructor drains implicitly.
class FlowServer {
 public:
  FlowServer(const core::Schema* schema, FlowServerOptions options);
  ~FlowServer();
  FlowServer(const FlowServer&) = delete;
  FlowServer& operator=(const FlowServer&) = delete;

  // Seed-based routing: which of `num_shards` shards executes a request
  // with this seed. Stateless and stable across runs.
  static int ShardFor(uint64_t seed, int num_shards);

  // Installs a per-result observer on every shard (invoked on shard worker
  // threads). Thread-safe, but only guaranteed to observe requests
  // submitted after it returns — call it before the first Submit to see
  // every result.
  void SetResultCallback(Shard::ResultCallback callback);

  // Blocking admission with backpressure. Returns false iff the server is
  // draining (the request was dropped).
  bool Submit(FlowRequest request);

  // Non-blocking admission. Returns false if the target shard's queue is
  // full or the server is draining; the rejection is recorded.
  bool TrySubmit(FlowRequest request);

  // Non-blocking admission with the refusal reason: kFull is transient
  // backpressure (retry later), kClosed is the terminal post-Drain state.
  // Either refusal is recorded in ServerStats::rejected, exactly like
  // TrySubmit's.
  TryPushResult TrySubmitEx(FlowRequest request);

  // Non-blocking admission that records NO rejection: the event-loop
  // ingress implements a *blocking* submit by offering the same request on
  // every retry tick until space frees, so a transient kFull there is a
  // stall in progress, not a shed request — exactly as Submit() never
  // counted the wait. Stats parity with Submit() on kClosed too (Submit's
  // false return was not recorded either; the ingress surfaces it as
  // SHUTTING_DOWN on the wire).
  TryPushResult OfferSubmit(FlowRequest request);

  // Finishes all admitted requests and stops the workers. Idempotent.
  // Post-Drain contract (explicit, tested): Submit returns false forever,
  // TrySubmit returns false / TrySubmitEx returns kClosed forever (still
  // counted as rejections), and Report() keeps working with the wall clock
  // frozen at the drain.
  void Drain();

  FlowServerReport Report() const;
  // Live per-shard admission-queue depths (a point-in-time gauge for the
  // slow-request log, periodic self-reports, and the metrics endpoint).
  std::vector<size_t> queue_depths() const;
  // Completed-instance count from the per-shard atomics — unlike Report()
  // this never copies or sorts the latency reservoir, so it is cheap
  // enough for metrics-scrape callbacks.
  int64_t total_processed() const;
  // Result-cache counters summed over shards, likewise scrape-cheap.
  ResultCacheStats cache_totals() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const core::Schema& schema() const { return *schema_; }
  const core::Strategy& strategy() const { return options_.strategy; }
  const FlowServerOptions& options() const { return options_; }
  // The strategy advisor, or null unless the server runs AUTO.
  const std::shared_ptr<opt::StrategyAdvisor>& advisor() const {
    return options_.advisor;
  }

  // Execution profiling (obs::FlowProfiler, one per shard).
  bool profiling_enabled() const { return !profilers_.empty(); }
  uint32_t profile_sample_period() const {
    return options_.profile_sample_period;
  }
  // Sum of every shard's profile. Per-attribute and per-condition counters
  // are deterministic per request, so this merge is byte-identical for any
  // shard count over the same request set (cache disabled; with a cache,
  // hits skip engine execution and only the class rollups attribute them).
  // Returns an empty snapshot when profiling is off.
  obs::ProfileSnapshot MergedProfile() const;
  // Scrape-cheap single-value reads over all shards (no map copies).
  int64_t ProfiledAttrWork(AttributeId attr) const;
  // Fleet-style selectivity over summed outcomes; -1 when unresolved.
  double ProfiledCondSelectivity(AttributeId attr) const;

 private:
  using Clock = std::chrono::steady_clock;

  const core::Schema* schema_ = nullptr;
  FlowServerOptions options_;
  StatsCollector stats_;
  // One profiler per shard (parallel to shards_), empty when profiling is
  // off. Each is written only by its shard's worker; snapshots are
  // lock-free reads, so MergedProfile() is safe at any time.
  std::vector<std::unique_ptr<obs::FlowProfiler>> profilers_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Clock::time_point start_;
  // Serializes concurrent Drain() calls, which must not double-join the
  // workers; held for the whole backlog drain.
  std::mutex join_mu_;
  // Guards only drained_/end_ against Report() racing Drain(), so Report()
  // never blocks behind an in-progress drain.
  mutable std::mutex drain_mu_;
  Clock::time_point end_;
  bool drained_ = false;
};

}  // namespace dflow::runtime

#endif  // DFLOW_RUNTIME_FLOW_SERVER_H_
