#ifndef DFLOW_RUNTIME_REQUEST_QUEUE_H_
#define DFLOW_RUNTIME_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "core/snapshot.h"
#include "obs/trace.h"

namespace dflow::runtime {

// One decision-flow request: the source bindings of the instance (e.g. the
// customer profile and shopping cart of Figure 1) plus the instance seed
// that parameterizes its task value functions. The seed doubles as the
// routing key: FlowServer maps it to a shard, so where a request executes
// is a pure function of the request itself.
//
// `ticket` is an opaque caller-chosen correlation id carried through the
// pipeline untouched and handed back in the result callback. It takes no
// part in routing, execution, or result-cache keying, so it cannot perturb
// the determinism contract; the network ingress uses it to match shard
// completions to waiting connections. 0 (the default) means "no ticket".
struct FlowRequest {
  core::SourceBinding sources;
  uint64_t seed = 0;
  uint64_t ticket = 0;
  // Observability context, null for the overwhelming majority of requests
  // (untraced: every pipeline stage pays one pointer test and nothing
  // else). Like `ticket`, it takes no part in routing, execution, or cache
  // keying, so it cannot perturb the determinism contract — stages only
  // stamp timings into it.
  std::shared_ptr<obs::RequestTrace> trace;
};

// Why a non-blocking push failed. kFull is the backpressure signal (the
// caller may retry or shed load); kClosed means the queue is draining and
// will never admit again (retrying is pointless).
enum class TryPushResult { kOk, kFull, kClosed };

// Bounded MPMC admission queue with blocking backpressure.
//
// Producers block in Push() while the queue is at capacity (admission
// control: a flooded server slows its callers down instead of growing an
// unbounded backlog), or use TryPush() to be rejected immediately. The
// consumer blocks in Pop() while empty. Close() begins the drain protocol:
// new pushes fail fast, queued requests remain poppable, and Pop() returns
// nullopt once the backlog is exhausted — the worker's signal to exit.
//
// Post-Close() contract (deliberate, tested — not incidental state): once
// Close() has been called, Push() and TryPush() return false *forever*
// (TryPushEx() returns kClosed, never kFull), including for producers that
// were already blocked inside Push() at close time; Pop() drains whatever
// was admitted before the close and then returns nullopt forever; Close()
// itself is idempotent. There is no reopen.
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity);
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  // Blocks until space is available or the queue is closed. Returns false
  // iff the queue was closed (the request was not enqueued).
  bool Push(FlowRequest request);

  // Non-blocking: returns false if the queue is full or closed.
  bool TryPush(FlowRequest request) {
    return TryPushEx(std::move(request)) == TryPushResult::kOk;
  }

  // Non-blocking, with the refusal reason: kFull is transient backpressure,
  // kClosed is the terminal post-drain state. The network ingress maps these
  // to distinct wire errors (REJECTED_BUSY vs SHUTTING_DOWN).
  TryPushResult TryPushEx(FlowRequest request);

  // Blocks until a request is available or the queue is closed and empty
  // (then returns nullopt).
  std::optional<FlowRequest> Pop();

  // Batched pop: blocks like Pop() for the first request, then drains up
  // to max_run - 1 more that are already queued, without waiting for
  // stragglers. Appends to *out in queue order and returns the number
  // taken (0 iff closed and drained). One mutex acquisition and one
  // not_full_ broadcast cover the whole run, so a loaded shard amortizes
  // its queue synchronization across the batch; an idle shard degrades to
  // exactly Pop()'s behavior (runs of 1).
  size_t PopRun(size_t max_run, std::deque<FlowRequest>* out);

  // Closes the queue: pending and future pushes fail, pops drain the
  // backlog. Idempotent.
  void Close();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<FlowRequest> items_;
  bool closed_ = false;
};

}  // namespace dflow::runtime

#endif  // DFLOW_RUNTIME_REQUEST_QUEUE_H_
