#include "runtime/request_queue.h"

#include <utility>

namespace dflow::runtime {

RequestQueue::RequestQueue(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

bool RequestQueue::Push(FlowRequest request) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [this] { return closed_ || items_.size() < capacity_; });
  if (closed_) return false;
  items_.push_back(std::move(request));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

TryPushResult RequestQueue::TryPushEx(FlowRequest request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return TryPushResult::kClosed;
    if (items_.size() >= capacity_) return TryPushResult::kFull;
    items_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return TryPushResult::kOk;
}

std::optional<FlowRequest> RequestQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  FlowRequest request = std::move(items_.front());
  items_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return request;
}

size_t RequestQueue::PopRun(size_t max_run, std::deque<FlowRequest>* out) {
  if (max_run == 0) return 0;
  size_t taken = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    while (taken < max_run && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
  }
  // A run can free many slots at once; wake every blocked producer rather
  // than chaining notify_one through them.
  if (taken > 0) not_full_.notify_all();
  return taken;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace dflow::runtime
