#ifndef DFLOW_RUNTIME_SHARD_H_
#define DFLOW_RUNTIME_SHARD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/runner.h"
#include "opt/strategy_advisor.h"
#include "runtime/request_queue.h"
#include "runtime/result_cache.h"
#include "runtime/server_stats.h"

namespace dflow::obs {
class FlowProfiler;
}  // namespace dflow::obs

namespace dflow::runtime {

// Per-shard configuration: admission-queue depth, which QueryService backend
// the shard's harness owns (each bounded shard gets a *private*
// DatabaseServer with these DatabaseParams), the result-cache bounds, and —
// when the server runs the AUTO strategy — the shared strategy advisor.
struct ShardOptions {
  size_t queue_capacity = 256;
  core::BackendKind backend = core::BackendKind::kInfinite;
  sim::DatabaseParams db;          // consulted when backend == kBoundedDb
  size_t result_cache_capacity = 0;  // entries; 0 disables the cache
  // Byte budget for the shard's result cache; 0 means entries-only bounding.
  int64_t result_cache_max_bytes = 0;
  // Cost-based cache admission: results with work below this are not
  // cached (0 admits everything).
  int64_t result_cache_min_cost = 0;
  // Shared per-request strategy selector; required (and only consulted)
  // when the shard's strategy is the AUTO sentinel. The FlowServer owns
  // the advisor's lifetime; shards only Choose/Observe on it.
  opt::StrategyAdvisor* advisor = nullptr;
  // Optional per-shard execution profiler, owned by the FlowServer and
  // written only from this shard's worker thread; null disables profiling.
  obs::FlowProfiler* profiler = nullptr;
};

// One worker shard of the FlowServer: a bounded request queue, a dedicated
// std::thread, one or more core::FlowHarness instances the shard exclusively
// owns, and a shard-local ResultCache. Because the simulator, query service,
// execution engine, and cache are all confined to the shard's thread, none
// of the single-threaded core needs locks — the only cross-thread touch
// points are the queue, the StatsCollector, and the advisor (which is
// internally synchronized).
//
// Requests pop in FIFO order and run to completion one at a time, so every
// instance observes a quiescent engine; combined with the FlowHarness
// determinism contract this makes each result a pure function of the
// request, independent of shard count and interleaving. A cache hit returns
// the byte-identical InstanceResult the harness would have produced, so
// caching preserves that contract (only wall-clock time changes).
//
// AUTO: when the configured strategy is the AUTO sentinel, the shard asks
// the advisor for a concrete strategy per request (a pure function of the
// request — see opt::StrategyAdvisor) and lazily builds one private harness
// per chosen strategy. The harness determinism contract makes each result
// independent of which other strategies ran on the shard before, so AUTO
// results are byte-identical across shard counts too.
class Shard {
 public:
  // Invoked on the shard's worker thread after each completed instance;
  // `executed` is the concrete strategy that ran it (the configured
  // strategy on fixed-strategy servers, the advisor's choice under AUTO).
  using ResultCallback =
      std::function<void(int shard_index, const FlowRequest& request,
                         const core::InstanceResult& result,
                         const core::Strategy& executed)>;

  Shard(int index, const core::Schema* schema, const core::Strategy& strategy,
        const ShardOptions& options, StatsCollector* stats);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // Installs an optional per-result observer. Thread-safe: the worker
  // re-reads the callback under the same lock once per popped run (at
  // most kMaxRunLength requests), so the new observer applies to runs
  // popped after the call (requests already popped keep the callback
  // their run started with).
  void SetResultCallback(ResultCallback callback);

  // Spawns the worker thread. Must be called exactly once.
  void Start();

  // Admission: blocking with backpressure / non-blocking. Both return false
  // once the shard is draining (see the RequestQueue post-Close contract).
  bool Submit(FlowRequest request) { return queue_.Push(std::move(request)); }
  bool TrySubmit(FlowRequest request) {
    return queue_.TryPush(std::move(request));
  }
  // Non-blocking admission with the refusal reason (kFull vs kClosed).
  TryPushResult TrySubmitEx(FlowRequest request) {
    return queue_.TryPushEx(std::move(request));
  }

  // Stops admitting new requests without waiting for the backlog. The
  // FlowServer closes every shard before joining any, so shards drain their
  // backlogs concurrently.
  void CloseQueue() { queue_.Close(); }

  // Drain protocol: closes the queue, lets the worker finish the backlog,
  // and joins the thread. Idempotent.
  void Drain();

  int index() const { return index_; }
  int64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }
  size_t queue_depth() const { return queue_.size(); }
  core::BackendKind backend() const { return harness_options_.backend; }
  // Thread-safe gauge/counter snapshot of this shard's result cache.
  ResultCacheStats cache_stats() const { return cache_.Stats(); }

  // Upper bound on how many queued requests one worker wakeup drains
  // (RequestQueue::PopRun). Large enough to amortize queue synchronization
  // and the per-run callback snapshot under load, small enough that one
  // run never starves the queue-depth gauge or drain latency.
  static constexpr size_t kMaxRunLength = 64;

 private:
  void WorkerLoop();
  // Executes one popped request start-to-finish: advisor choice, cache
  // lookup, harness run, stats, and the (run-hoisted) result callback.
  // Worker-thread only; identical per-request logic whether the request
  // arrived in a run of 1 or of kMaxRunLength.
  void ProcessOne(FlowRequest& request, const ResultCallback& callback);
  // The harness for one concrete strategy (`name` = strategy.ToString(),
  // passed in so the hot path stringifies once): the fixed harness on
  // fixed-strategy shards, a lazily created per-strategy harness under
  // AUTO. Worker-thread only.
  core::FlowHarness* HarnessFor(const core::Strategy& strategy,
                                const std::string& name);

  const int index_;
  const core::Schema* const schema_;
  const core::Strategy strategy_;  // may be the AUTO sentinel
  const core::HarnessOptions harness_options_;
  RequestQueue queue_;
  std::unique_ptr<core::FlowHarness> fixed_harness_;  // null under AUTO
  // AUTO: one private harness per concrete strategy the advisor chose so
  // far, keyed by notation. Worker-thread only.
  std::map<std::string, std::unique_ptr<core::FlowHarness>> auto_harnesses_;
  opt::StrategyAdvisor* const advisor_;  // null unless AUTO
  obs::FlowProfiler* const profiler_;    // null when profiling is off
  ResultCache cache_;
  StatsCollector* const stats_;
  std::mutex callback_mu_;  // guards result_callback_
  ResultCallback result_callback_;
  std::atomic<int64_t> processed_{0};
  std::thread worker_;
};

}  // namespace dflow::runtime

#endif  // DFLOW_RUNTIME_SHARD_H_
