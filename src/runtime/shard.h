#ifndef DFLOW_RUNTIME_SHARD_H_
#define DFLOW_RUNTIME_SHARD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "core/runner.h"
#include "runtime/request_queue.h"
#include "runtime/server_stats.h"

namespace dflow::runtime {

// One worker shard of the FlowServer: a bounded request queue, a dedicated
// std::thread, and a core::FlowHarness the shard exclusively owns. Because
// the simulator, query service, and execution engine are all confined to
// the shard's thread, none of the single-threaded core needs locks — the
// only cross-thread touch points are the queue and the StatsCollector.
//
// Requests pop in FIFO order and run to completion one at a time, so every
// instance observes a quiescent engine; combined with the FlowHarness
// determinism contract this makes each result a pure function of the
// request, independent of shard count and interleaving.
class Shard {
 public:
  // Invoked on the shard's worker thread after each completed instance.
  using ResultCallback =
      std::function<void(int shard_index, const FlowRequest& request,
                         const core::InstanceResult& result)>;

  Shard(int index, const core::Schema* schema, const core::Strategy& strategy,
        size_t queue_capacity, StatsCollector* stats);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // Installs an optional per-result observer. Thread-safe: the worker
  // re-reads the callback under the same lock for every request, so the
  // new observer applies to requests popped after the call (requests
  // already executing keep the callback they started with).
  void SetResultCallback(ResultCallback callback);

  // Spawns the worker thread. Must be called exactly once.
  void Start();

  // Admission: blocking with backpressure / non-blocking. Both return false
  // once the shard is draining.
  bool Submit(FlowRequest request) { return queue_.Push(std::move(request)); }
  bool TrySubmit(FlowRequest request) {
    return queue_.TryPush(std::move(request));
  }

  // Stops admitting new requests without waiting for the backlog. The
  // FlowServer closes every shard before joining any, so shards drain their
  // backlogs concurrently.
  void CloseQueue() { queue_.Close(); }

  // Drain protocol: closes the queue, lets the worker finish the backlog,
  // and joins the thread. Idempotent.
  void Drain();

  int index() const { return index_; }
  int64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }
  size_t queue_depth() const { return queue_.size(); }

 private:
  void WorkerLoop();

  const int index_;
  RequestQueue queue_;
  core::FlowHarness harness_;
  StatsCollector* const stats_;
  std::mutex callback_mu_;  // guards result_callback_
  ResultCallback result_callback_;
  std::atomic<int64_t> processed_{0};
  std::thread worker_;
};

}  // namespace dflow::runtime

#endif  // DFLOW_RUNTIME_SHARD_H_
