#ifndef DFLOW_CORE_METRICS_H_
#define DFLOW_CORE_METRICS_H_

#include <cstdint>

#include "sim/simulator.h"

namespace dflow::core {

// Per-instance execution measurements (§5 "Experiment Environment").
//
// `work` is the paper's Work: total units of processing submitted to the
// database for this instance, including speculative queries that were later
// disabled and queries still in flight when the instance reached its
// terminal snapshot (the database performs that work regardless).
// Response time is end_time - start_time: TimeInUnits under the
// InfiniteResourceService (unit duration 1.0), TimeInSeconds (in simulated
// milliseconds) under the DatabaseServer.
struct InstanceMetrics {
  sim::Time start_time = 0;
  sim::Time end_time = 0;

  int64_t work = 0;
  // Units belonging to launched queries whose attribute did not end in
  // state VALUE (disabled after launch, or abandoned by early exit).
  int64_t wasted_work = 0;

  int queries_launched = 0;
  // Queries launched while only READY (condition still unknown, option 'S').
  int speculative_launches = 0;
  // Attributes found DISABLED before all of their condition inputs were
  // stable (eager evaluation at work).
  int eager_disables = 0;
  // Attributes whose tasks were skipped because backward propagation proved
  // them unneeded (never entered the candidate pool though runnable).
  int unneeded_skipped = 0;
  // Prequalifier passes executed (each is linear in schema size).
  int prequalifier_passes = 0;

  // Time-integral of the number of in-flight queries; divided by the
  // response time this is the instance's mean multiprogramming level Lmpl
  // of the §5 analytical model.
  double inflight_area = 0;

  sim::Time ResponseTime() const { return end_time - start_time; }
  double MeanLmpl() const {
    const sim::Time rt = ResponseTime();
    return rt > 0 ? inflight_area / rt : 0;
  }
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_METRICS_H_
