#ifndef DFLOW_CORE_PREQUALIFIER_H_
#define DFLOW_CORE_PREQUALIFIER_H_

#include <vector>

#include "common/ids.h"
#include "core/schema.h"
#include "core/snapshot.h"
#include "core/strategy.h"
#include "expr/tribool.h"

namespace dflow::core {

// The prequalifier of the Figure 2 architecture: after each batch of new
// attribute values it (re)computes attribute states and the candidate task
// pool.
//
// With option 'P' (Propagation Algorithm, §4 / [HLS+99b]) an Update pass
// performs, in one forward sweep in topological order:
//   - *eager evaluation* of enabling conditions: Kleene partial evaluation
//     over the stable prefix, so attributes can become ENABLED or DISABLED
//     before all of their condition inputs are stable (e.g. the coat
//     inventory check disabled from db_load alone);
//   - *forward propagation*: an eagerly DISABLED attribute is stable with
//     value ⊥, which may immediately resolve conditions of later attributes
//     within the same sweep;
// and in one backward sweep in reverse topological order:
//   - *backward propagation*: detection of attributes whose values are
//     unneeded for completing the instance (their consumers are all stable,
//     value-known, disabled, or themselves unneeded). Unneeded tasks never
//     enter the candidate pool.
// Both sweeps are linear in the size of the decision flow, matching the
// paper's cost claim, and run to fixpoint in a single pass each because
// condition inputs always precede an attribute in topological order.
//
// With option 'N' (naive) a condition is evaluated only once all of its
// inputs are stable, and no unneeded detection is performed.
//
// Options 'S'/'C' select whether READY (speculative) tasks are candidates
// in addition to READY+ENABLED ones.
class Prequalifier {
 public:
  Prequalifier(const Schema* schema, const Strategy& strategy);

  // One prequalifying pass: advances states in `snap` (ENABLED / DISABLED /
  // READY / READY+ENABLED / COMPUTED resolution) and recomputes the
  // candidate pool. Call after instance start and after every new value.
  void Update(Snapshot* snap);

  // Candidate attributes whose tasks are eligible for execution, in
  // ascending topological order. The engine filters out tasks it has
  // already launched.
  const std::vector<AttributeId>& candidates() const { return candidates_; }

  // True if `a`'s value is (still possibly) needed for successful
  // completion. Always true under option 'N'. Meaningful after Update().
  bool needed(AttributeId a) const { return needed_[static_cast<size_t>(a)] != 0; }

  // Attributes disabled before all their condition inputs stabilized.
  int eager_disables() const { return eager_disables_; }
  // Runnable-but-unneeded tasks pruned from the pool so far (counted once
  // per attribute).
  int unneeded_skipped() const { return unneeded_skipped_; }

  // Profiling taps (obs::FlowProfiler). These describe the instance this
  // prequalifier served and cost one vector write per condition evaluation
  // to maintain.
  //
  // Times `a`'s (non-literal-true) enabling condition was evaluated.
  int cond_evals(AttributeId a) const {
    return cond_evals_[static_cast<size_t>(a)];
  }
  // Terminal truth of `a`'s condition (kUnknown if it never resolved).
  expr::Tribool cond_state(AttributeId a) const {
    return cond_state_[static_cast<size_t>(a)];
  }
  // True iff `a` was disabled before all its condition inputs stabilized.
  bool eager_disabled(AttributeId a) const {
    return eager_disabled_[static_cast<size_t>(a)] != 0;
  }

 private:
  expr::Tribool ConditionState(const Snapshot& snap, AttributeId a) const;
  void ForwardPass(Snapshot* snap);
  void BackwardPass(const Snapshot& snap);
  void CollectCandidates(const Snapshot& snap);

  const Schema* schema_;
  Strategy strategy_;
  // Cached condition truth per attribute; kUnknown until determined.
  std::vector<expr::Tribool> cond_state_;
  std::vector<int> cond_evals_;
  std::vector<char> eager_disabled_;
  std::vector<char> needed_;
  std::vector<char> counted_unneeded_;
  std::vector<AttributeId> candidates_;
  int eager_disables_ = 0;
  int unneeded_skipped_ = 0;
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_PREQUALIFIER_H_
