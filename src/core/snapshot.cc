#include "core/snapshot.h"

#include <sstream>

namespace dflow::core {

Snapshot::Snapshot(const Schema* schema)
    : schema_(schema),
      states_(static_cast<size_t>(schema->num_attributes()),
              AttrState::kUninitialized),
      values_(static_cast<size_t>(schema->num_attributes())) {
  for (AttributeId s : schema_->sources()) {
    states_[static_cast<size_t>(s)] = AttrState::kValue;
    ++num_stable_;
  }
}

void Snapshot::BindSources(const SourceBinding& sources) {
  for (const auto& [attr, value] : sources) {
    values_[static_cast<size_t>(attr)] = value;
  }
}

std::optional<Value> Snapshot::StableValue(AttributeId id) const {
  if (!IsStable(states_[static_cast<size_t>(id)])) return std::nullopt;
  return values_[static_cast<size_t>(id)];
}

bool Snapshot::Transition(AttributeId a, AttrState to, Value value) {
  const AttrState from = states_[static_cast<size_t>(a)];
  if (!IsValidTransition(from, to)) return false;
  states_[static_cast<size_t>(a)] = to;
  if (to == AttrState::kValue || to == AttrState::kComputed) {
    // Entering VALUE from COMPUTED keeps the speculatively computed value.
    if (from != AttrState::kComputed) {
      values_[static_cast<size_t>(a)] = std::move(value);
    }
  } else if (to == AttrState::kDisabled) {
    values_[static_cast<size_t>(a)] = Value::Null();
  }
  if (IsStable(to)) ++num_stable_;
  if (listener_) listener_(a, from, to);
  return true;
}

bool Snapshot::AllTargetsStable() const {
  for (AttributeId t : schema_->targets()) {
    if (!IsStableAttr(t)) return false;
  }
  return true;
}

std::string Snapshot::DebugString() const {
  std::ostringstream os;
  for (AttributeId a = 0; a < schema_->num_attributes(); ++a) {
    os << schema_->attribute(a).name << ": " << ToString(state(a));
    if (ValueKnown(a)) os << " = " << value(a).ToString();
    os << "\n";
  }
  return os.str();
}

}  // namespace dflow::core
