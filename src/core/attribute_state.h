#ifndef DFLOW_CORE_ATTRIBUTE_STATE_H_
#define DFLOW_CORE_ATTRIBUTE_STATE_H_

#include <cstdint>
#include <iosfwd>
#include <string>

namespace dflow::core {

// Runtime state of one attribute: the finite state automaton of Figure 3.
//
//   UNINITIALIZED --> ENABLED ----------> READY+ENABLED --> VALUE
//        |  \--------> READY --/    /--->   (^ via COMPUTED too)
//        |               | \-> COMPUTED --> VALUE | DISABLED
//        \--> DISABLED <-/
//
// VALUE and DISABLED are the terminal ("stable") states of §2. READY means
// all data inputs are stable while the enabling condition is still unknown;
// a READY attribute may be evaluated *speculatively* (option 'S'), moving to
// COMPUTED until the condition resolves.
enum class AttrState : uint8_t {
  kUninitialized = 0,
  kEnabled,        // condition known true; some data input not yet stable
  kReady,          // data inputs stable; condition unknown
  kReadyEnabled,   // data inputs stable and condition true
  kComputed,       // value computed speculatively; condition still unknown
  kValue,          // stable with a computed value
  kDisabled,       // stable with the null value (condition false)
};

// Stable == terminal (double circles in Figure 3).
constexpr bool IsStable(AttrState s) {
  return s == AttrState::kValue || s == AttrState::kDisabled;
}

// True iff the FSA of Figure 3 has a single edge from `from` to `to`.
bool IsValidTransition(AttrState from, AttrState to);

// The natural partial order on FSA states ("READY ⊑ COMPUTED" in the paper):
// a ⊑ b iff b is reachable from a (reflexively) in the FSA. Used by tests to
// check that per-attribute knowledge only grows during execution.
bool PrecedesOrEqual(AttrState a, AttrState b);

std::string ToString(AttrState s);
std::ostream& operator<<(std::ostream& os, AttrState s);

}  // namespace dflow::core

#endif  // DFLOW_CORE_ATTRIBUTE_STATE_H_
