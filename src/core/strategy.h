#ifndef DFLOW_CORE_STRATEGY_H_
#define DFLOW_CORE_STRATEGY_H_

#include <optional>
#include <string>
#include <string_view>

namespace dflow::core {

// Ablation switches: the paper's option 'P' bundles two mechanisms — eager
// partial evaluation of enabling conditions and backward detection of
// unneeded attributes. They default to the strategy's `propagation` flag;
// overriding one isolates its contribution (see bench/ablation_propagation).

// An execution strategy: the four option axes of §5, printed/parsed in the
// paper's compact notation, e.g. "PSE80" = Propagation + Speculative +
// Earliest-first scheduling at 80% permitted parallelism; "NCC0" = Naive +
// Conservative + Cheapest-first, fully serial.
//
// The distinguished AUTO sentinel ("AUTO" in Parse/ToString) is not a
// runnable strategy: it asks the serving runtime to pick a concrete
// strategy per request via the opt::StrategyAdvisor. Engines, harnesses,
// and caches only ever see concrete strategies — the runtime resolves the
// sentinel before execution.
struct Strategy {
  enum class Heuristic { kEarliest, kCheapest };

  // The AUTO token accepted (case-insensitively) by Parse and produced by
  // ToString when is_auto is set.
  static constexpr const char* kAutoToken = "AUTO";

  // 'P' (Propagation Algorithm: eager condition evaluation + forward /
  // backward propagation of DISABLED / unneeded facts) vs 'N' (naive).
  bool propagation = true;
  // 'S' (Speculative: READY tasks join the candidate pool) vs
  // 'C' (Conservative: only READY+ENABLED tasks run).
  bool speculative = false;
  // 'E' (topologically-earliest first) vs 'C' (cheapest first).
  Heuristic heuristic = Heuristic::kEarliest;
  // %Permitted ∈ [0,100]: the fraction of the candidate pool the scheduler
  // may keep in flight concurrently; at least one task is always permitted,
  // so 0 means fully serial execution.
  int pct_permitted = 0;

  // The AUTO sentinel: when set, the other axes are meaningless and the
  // serving runtime selects a concrete strategy per request.
  bool is_auto = false;

  // Ablation overrides (not part of the parse/print notation): when set,
  // they replace `propagation` for the respective mechanism.
  std::optional<bool> eager_conditions_override;
  std::optional<bool> unneeded_detection_override;

  // Effective feature flags consulted by the prequalifier.
  bool eager_conditions() const {
    return eager_conditions_override.value_or(propagation);
  }
  bool unneeded_detection() const {
    return unneeded_detection_override.value_or(propagation);
  }

  // e.g. "PSE80", or "AUTO" for the sentinel.
  std::string ToString() const;
  // Parses "PSE80"-style strings (case-insensitive, % suffix allowed, e.g.
  // "pce0", "PC*100" is *not* accepted — '*' families are expanded by the
  // benches) and the "AUTO" sentinel. Returns nullopt on malformed input.
  static std::optional<Strategy> Parse(std::string_view text);

  friend bool operator==(const Strategy&, const Strategy&) = default;
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_STRATEGY_H_
