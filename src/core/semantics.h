#ifndef DFLOW_CORE_SEMANTICS_H_
#define DFLOW_CORE_SEMANTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "core/schema.h"
#include "core/snapshot.h"

namespace dflow::core {

// The declarative semantics of §2: the *unique complete snapshot* of an
// instance. For every non-source attribute, `enabled[a]` records whether its
// enabling condition holds over the complete snapshot, and `values[a]` is
// the task's value when enabled and the null value when disabled. Source
// attributes are recorded as enabled with their bound values.
struct CompleteSnapshot {
  std::vector<Value> values;
  std::vector<bool> enabled;
};

// Computes the unique complete snapshot by direct topological evaluation
// (the "straightforward approach" of §2: conditions and tasks evaluated in
// dependency order). This is the correctness oracle the optimized engine is
// validated against; it performs every enabled task's work, so it is only
// used for reference, never for performance.
CompleteSnapshot EvaluateComplete(const Schema& schema,
                                  const SourceBinding& sources,
                                  uint64_t instance_seed);

// Checks the §2 correctness criterion: an execution is correct if it
// produced states and values for all target attributes and these are
// compatible with the unique complete snapshot. This checker additionally
// verifies the stronger property our engine guarantees — *every* stabilized
// attribute agrees with the complete snapshot (monotonic assignment means
// nothing it published can be retracted). On failure returns false and, if
// `why` is non-null, describes the first mismatch.
bool IsCompatible(const Schema& schema, const CompleteSnapshot& complete,
                  const Snapshot& observed, std::string* why = nullptr);

}  // namespace dflow::core

#endif  // DFLOW_CORE_SEMANTICS_H_
