#ifndef DFLOW_CORE_SCHEMA_H_
#define DFLOW_CORE_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "core/task.h"
#include "expr/condition.h"

namespace dflow::core {

// Static description of one attribute of a decision flow.
struct Attribute {
  std::string name;
  bool is_source = false;
  bool is_target = false;
  // Slash-separated module path from the modular (Fig 1a) specification;
  // empty for attributes declared at top level. Purely descriptive: the
  // stored enabling condition is already flattened (Fig 1b).
  std::string module_path;
};

// A *flattened*, validated decision-flow schema: the 4-tuple
// (Att, Src, Tgt, {cond_A}) of §2 together with the task producing each
// non-source attribute and the derived dependency graph (data edges +
// enabling edges). Instances are immutable once built; construct via
// SchemaBuilder. Well-formedness (§2) — the dependency graph is acyclic —
// is enforced at build time, so every Schema in existence is well-formed.
class Schema {
 public:
  Schema(const Schema&) = delete;
  Schema& operator=(const Schema&) = delete;
  Schema(Schema&&) = default;
  Schema& operator=(Schema&&) = default;

  int num_attributes() const { return static_cast<int>(attrs_.size()); }
  const Attribute& attribute(AttributeId a) const {
    return attrs_[static_cast<size_t>(a)];
  }
  // Returns kInvalidAttribute when no attribute has this name.
  AttributeId FindAttribute(std::string_view name) const;

  bool is_source(AttributeId a) const { return attribute(a).is_source; }
  bool is_target(AttributeId a) const { return attribute(a).is_target; }

  // The enabling condition of a non-source attribute (sources have the
  // literal-true condition).
  const expr::Condition& enabling_condition(AttributeId a) const {
    return conditions_[static_cast<size_t>(a)];
  }
  // The task computing a non-source attribute. Undefined for sources.
  const Task& task(AttributeId a) const { return tasks_[static_cast<size_t>(a)]; }

  // Dataflow edges: inputs read by a's task / attributes whose task reads a.
  const std::vector<AttributeId>& data_inputs(AttributeId a) const {
    return data_inputs_[static_cast<size_t>(a)];
  }
  const std::vector<AttributeId>& data_consumers(AttributeId a) const {
    return data_consumers_[static_cast<size_t>(a)];
  }
  // Enabling-flow edges: attributes read by a's enabling condition /
  // attributes whose enabling condition reads a.
  const std::vector<AttributeId>& cond_inputs(AttributeId a) const {
    return cond_inputs_[static_cast<size_t>(a)];
  }
  const std::vector<AttributeId>& cond_consumers(AttributeId a) const {
    return cond_consumers_[static_cast<size_t>(a)];
  }

  const std::vector<AttributeId>& sources() const { return sources_; }
  const std::vector<AttributeId>& targets() const { return targets_; }

  // A topological order of the dependency graph (data + enabling edges).
  // Used by the prequalifier's linear passes and the Earliest heuristic.
  const std::vector<AttributeId>& topo_order() const { return topo_order_; }
  int topo_index(AttributeId a) const {
    return topo_index_[static_cast<size_t>(a)];
  }

  // Sum of query costs over all non-source attributes: the maximum possible
  // Work of one instance.
  int64_t TotalQueryCost() const;

  // Human-readable multi-line description (attributes, conditions, edges).
  std::string DebugString() const;

 private:
  friend class SchemaBuilder;
  Schema() = default;

  std::vector<Attribute> attrs_;
  std::vector<expr::Condition> conditions_;
  std::vector<Task> tasks_;
  std::vector<std::vector<AttributeId>> data_inputs_;
  std::vector<std::vector<AttributeId>> data_consumers_;
  std::vector<std::vector<AttributeId>> cond_inputs_;
  std::vector<std::vector<AttributeId>> cond_consumers_;
  std::vector<AttributeId> sources_;
  std::vector<AttributeId> targets_;
  std::vector<AttributeId> topo_order_;
  std::vector<int> topo_index_;
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_SCHEMA_H_
