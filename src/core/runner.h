#ifndef DFLOW_CORE_RUNNER_H_
#define DFLOW_CORE_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "core/engine.h"
#include "core/schema.h"
#include "core/snapshot.h"
#include "core/strategy.h"
#include "sim/database_server.h"
#include "sim/infinite_service.h"

namespace dflow::core {

// Which QueryService a harness (and therefore a runtime shard) runs its
// instances against: the §5 "infinite resources" setting, or the bounded
// contention-prone DatabaseServer of the Figure 9(b)-(d) experiments.
enum class BackendKind {
  kInfinite,   // InfiniteResourceService: one unit == one time unit
  kBoundedDb,  // DatabaseServer: CPU/disk queues, per-unit time = Db(Gmpl)
};

// Backend selection for a FlowHarness. `db` is consulted only when
// `backend == kBoundedDb`; each harness then owns a private DatabaseServer
// with exactly these physical parameters (per-shard DB capacity in the
// serving runtime).
struct HarnessOptions {
  BackendKind backend = BackendKind::kInfinite;
  sim::DatabaseParams db;
};

// A reusable single-threaded execution harness: one Simulator, one owned
// QueryService backend (chosen by HarnessOptions), and one ExecutionEngine,
// amortized across many instances run to completion one at a time. This is
// the unit of ownership the runtime::FlowServer replicates per shard — each
// shard drives its own harness on its own thread, so the single-threaded
// semantics of the engine are reused unchanged under wall-clock parallelism.
//
// Determinism contract: the simulator clock accumulates across Run() calls,
// but every field of InstanceMetrics is either a count or a clock
// *difference*, so the metrics and terminal snapshot returned by
// Run(sources, seed) depend only on (schema, strategy, backend options,
// sources, seed) — never on which harness runs it or on what ran before.
// On the bounded backend this requires two extra steps, both taken by Run():
// the DatabaseServer's random stream is reseeded from the instance seed, and
// leftover in-flight queries of the previous instance are run to completion
// before the next one starts (otherwise they would contend for CPU/disk).
// The exception is InstanceResult::instance_id, which numbers instances per
// engine and therefore reflects this harness's arrival order; don't key on
// it across harnesses. flow_server_test.cc holds this contract to account.
class FlowHarness {
 public:
  FlowHarness(const Schema* schema, const Strategy& strategy)
      : FlowHarness(schema, strategy, HarnessOptions{}) {}
  FlowHarness(const Schema* schema, const Strategy& strategy,
              const HarnessOptions& options);
  FlowHarness(const FlowHarness&) = delete;
  FlowHarness& operator=(const FlowHarness&) = delete;

  // Runs one instance to completion and returns its result.
  InstanceResult Run(const SourceBinding& sources, uint64_t instance_seed);

  // Attaches a profiler to the owned engine (see ExecutionEngine::
  // SetProfiler). Profiling is a read-only tap: it never affects the
  // determinism contract above.
  void SetProfiler(obs::FlowProfiler* profiler) {
    engine_.SetProfiler(profiler);
  }

  BackendKind backend() const { return options_.backend; }
  // The owned DatabaseServer; null unless backend() == kBoundedDb.
  const sim::DatabaseServer* db() const { return db_; }
  int64_t instances_run() const { return instances_run_; }
  const sim::Simulator& simulator() const { return sim_; }

 private:
  sim::Simulator sim_;
  HarnessOptions options_;
  std::unique_ptr<sim::QueryService> service_;
  sim::DatabaseServer* db_ = nullptr;  // aliases service_ when bounded
  ExecutionEngine engine_;
  int64_t instances_run_ = 0;
};

// Convenience factory for the bounded-DB harness variant: a FlowHarness
// that owns a private sim::DatabaseServer with the given physical
// parameters (a free function rather than a subclass — FlowHarness is not
// polymorphic, so deriving from it would invite deletion through a base
// pointer without a virtual destructor).
inline std::unique_ptr<FlowHarness> MakeBoundedFlowHarness(
    const Schema* schema, const Strategy& strategy,
    const sim::DatabaseParams& db) {
  return std::make_unique<FlowHarness>(
      schema, strategy, HarnessOptions{BackendKind::kBoundedDb, db});
}

// Runs one instance against the supplied service/simulator to completion.
InstanceResult RunSingle(const Schema& schema, const SourceBinding& sources,
                         uint64_t instance_seed, const Strategy& strategy,
                         sim::Simulator* sim, sim::QueryService* service);

// Runs one instance with unbounded database resources (a query of cost c
// takes c time units): the §5 "infinite resources" setting. ResponseTime()
// of the returned metrics is the paper's TimeInUnits; `work` is Work.
InstanceResult RunSingleInfinite(const Schema& schema,
                                 const SourceBinding& sources,
                                 uint64_t instance_seed,
                                 const Strategy& strategy);

// ---------------------------------------------------------------------------
// Open-system workload: Poisson arrivals against a bounded DatabaseServer
// (the §5 finite-resources experiments, Figure 9(b)-(d)).

// Supplies the source bindings and task seed for the i-th arriving instance.
using BindingProvider =
    std::function<std::pair<SourceBinding, uint64_t>(int index)>;

struct OpenLoadOptions {
  double arrivals_per_second = 10.0;
  int num_instances = 1000;    // measured after warmup
  int warmup_instances = 100;  // completions discarded from the averages
  sim::DatabaseParams db;
  uint64_t seed = 1;
};

struct OpenLoadStats {
  int completed = 0;               // measured completions
  double mean_response_ms = 0;     // the paper's TimeInSeconds (in ms)
  double max_response_ms = 0;
  double mean_work = 0;            // units per instance
  double mean_lmpl = 0;            // per-instance multiprogramming level
  double mean_impl = 0;            // time-avg concurrently active instances
  double mean_gmpl = 0;            // time-avg units in the database
  double achieved_throughput = 0;  // completions per second over the run
};

OpenLoadStats RunOpenLoad(const Schema& schema, const BindingProvider& bindings,
                          const Strategy& strategy,
                          const OpenLoadOptions& options);

}  // namespace dflow::core

#endif  // DFLOW_CORE_RUNNER_H_
