#ifndef DFLOW_CORE_RUNNER_H_
#define DFLOW_CORE_RUNNER_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "core/engine.h"
#include "core/schema.h"
#include "core/snapshot.h"
#include "core/strategy.h"
#include "sim/database_server.h"

namespace dflow::core {

// Runs one instance against the supplied service/simulator to completion.
InstanceResult RunSingle(const Schema& schema, const SourceBinding& sources,
                         uint64_t instance_seed, const Strategy& strategy,
                         sim::Simulator* sim, sim::QueryService* service);

// Runs one instance with unbounded database resources (a query of cost c
// takes c time units): the §5 "infinite resources" setting. ResponseTime()
// of the returned metrics is the paper's TimeInUnits; `work` is Work.
InstanceResult RunSingleInfinite(const Schema& schema,
                                 const SourceBinding& sources,
                                 uint64_t instance_seed,
                                 const Strategy& strategy);

// ---------------------------------------------------------------------------
// Open-system workload: Poisson arrivals against a bounded DatabaseServer
// (the §5 finite-resources experiments, Figure 9(b)-(d)).

// Supplies the source bindings and task seed for the i-th arriving instance.
using BindingProvider =
    std::function<std::pair<SourceBinding, uint64_t>(int index)>;

struct OpenLoadOptions {
  double arrivals_per_second = 10.0;
  int num_instances = 1000;    // measured after warmup
  int warmup_instances = 100;  // completions discarded from the averages
  sim::DatabaseParams db;
  uint64_t seed = 1;
};

struct OpenLoadStats {
  int completed = 0;               // measured completions
  double mean_response_ms = 0;     // the paper's TimeInSeconds (in ms)
  double max_response_ms = 0;
  double mean_work = 0;            // units per instance
  double mean_lmpl = 0;            // per-instance multiprogramming level
  double mean_impl = 0;            // time-avg concurrently active instances
  double mean_gmpl = 0;            // time-avg units in the database
  double achieved_throughput = 0;  // completions per second over the run
};

OpenLoadStats RunOpenLoad(const Schema& schema, const BindingProvider& bindings,
                          const Strategy& strategy,
                          const OpenLoadOptions& options);

}  // namespace dflow::core

#endif  // DFLOW_CORE_RUNNER_H_
