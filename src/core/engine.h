#ifndef DFLOW_CORE_ENGINE_H_
#define DFLOW_CORE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "core/metrics.h"
#include "core/prequalifier.h"
#include "core/scheduler.h"
#include "core/schema.h"
#include "core/snapshot.h"
#include "core/strategy.h"
#include "sim/query_service.h"
#include "sim/simulator.h"

namespace dflow::obs {
class FlowProfiler;
}  // namespace dflow::obs

namespace dflow::core {

// The outcome of one decision-flow instance: its terminal snapshot (all
// target attributes stable) and the execution measurements.
struct InstanceResult {
  int64_t instance_id = 0;
  Snapshot snapshot;
  InstanceMetrics metrics;
};

// The decision-flow execution engine of Figure 2, specialized to one schema
// and one execution strategy. Multiple instances may be processed
// concurrently against the shared QueryService; the scheduler chooses tasks
// for each instance independently of the others, as in the paper.
//
// The engine is driven entirely by simulator events: StartInstance enqueues
// the initial prequalifying/scheduling phases, and every query completion
// re-enters the §3 execution algorithm (evaluation phase → prequalifying
// phase → scheduling phase) for its instance. Run the simulator to make
// progress; `done` fires (within the simulation) at the instance's terminal
// snapshot.
class ExecutionEngine {
 public:
  using DoneCallback = std::function<void(InstanceResult)>;

  ExecutionEngine(const Schema* schema, const Strategy& strategy,
                  sim::Simulator* sim, sim::QueryService* service);

  // Begins executing a new instance with the given source bindings.
  // `instance_seed` parameterizes task value functions (see TaskContext).
  // Returns the instance id.
  int64_t StartInstance(const SourceBinding& sources, uint64_t instance_seed,
                        DoneCallback done);

  int active_instances() const { return static_cast<int>(instances_.size()); }
  const Strategy& strategy() const { return strategy_; }

  // Observes every FSA transition of every instance (tracing, debugging,
  // property tests). Applies to instances started after the call.
  using TraceListener = std::function<void(int64_t instance_id, AttributeId,
                                           AttrState from, AttrState to)>;
  void SetTraceListener(TraceListener listener) {
    trace_listener_ = std::move(listener);
  }

  // Attaches a profiler that harvests per-attribute / per-condition
  // statistics from instances whose seed passes its sampling predicate.
  // Applies to instances started after the call; null detaches. The
  // profiler must outlive every instance started while attached.
  void SetProfiler(obs::FlowProfiler* profiler) { profiler_ = profiler; }

 private:
  struct Instance {
    int64_t id = 0;
    uint64_t seed = 0;
    Snapshot snapshot;
    Prequalifier prequalifier;
    std::vector<char> launched;
    // Per-attribute flag: launched while READY (condition still open).
    std::vector<char> speculative;
    bool profiled = false;
    int in_flight = 0;
    sim::Time inflight_mark = 0;
    InstanceMetrics metrics;
    DoneCallback done;

    Instance(const Schema* schema, const Strategy& strategy)
        : snapshot(schema), prequalifier(schema, strategy) {}
  };

  // One round of the execution algorithm for `inst`: prequalify, check for
  // the terminal snapshot, schedule.
  void Step(Instance* inst);
  void Launch(Instance* inst, AttributeId attr);
  void OnQueryComplete(int64_t instance_id, AttributeId attr);
  void Finish(Instance* inst);
  void AccumulateInflight(Instance* inst);
  Value ComputeTaskValue(const Instance& inst, AttributeId attr) const;

  const Schema* schema_;
  Strategy strategy_;
  Scheduler scheduler_;
  sim::Simulator* sim_;
  sim::QueryService* service_;
  int64_t next_id_ = 1;
  TraceListener trace_listener_;
  obs::FlowProfiler* profiler_ = nullptr;
  std::unordered_map<int64_t, std::unique_ptr<Instance>> instances_;
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_ENGINE_H_
