#include "core/semantics.h"

#include "expr/predicate.h"
#include "expr/tribool.h"

namespace dflow::core {

CompleteSnapshot EvaluateComplete(const Schema& schema,
                                  const SourceBinding& sources,
                                  uint64_t instance_seed) {
  const int n = schema.num_attributes();
  CompleteSnapshot snap;
  snap.values.assign(static_cast<size_t>(n), Value::Null());
  snap.enabled.assign(static_cast<size_t>(n), false);

  expr::MapEnv env;
  for (const auto& [attr, value] : sources) {
    snap.values[static_cast<size_t>(attr)] = value;
  }
  for (AttributeId s : schema.sources()) {
    snap.enabled[static_cast<size_t>(s)] = true;
    env.Set(s, snap.values[static_cast<size_t>(s)]);
  }

  for (AttributeId a : schema.topo_order()) {
    if (schema.is_source(a)) continue;
    const expr::Tribool cond = schema.enabling_condition(a).Eval(env);
    // Every condition input precedes `a` topologically and is already in
    // `env`, so the condition is definite here.
    const bool enabled = cond == expr::Tribool::kTrue;
    snap.enabled[static_cast<size_t>(a)] = enabled;
    if (enabled) {
      TaskContext ctx;
      ctx.attr = a;
      ctx.instance_seed = instance_seed;
      ctx.input = [&snap](AttributeId in) {
        return snap.values[static_cast<size_t>(in)];
      };
      snap.values[static_cast<size_t>(a)] = schema.task(a).fn(ctx);
    }
    env.Set(a, snap.values[static_cast<size_t>(a)]);
  }
  return snap;
}

bool IsCompatible(const Schema& schema, const CompleteSnapshot& complete,
                  const Snapshot& observed, std::string* why) {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };

  for (AttributeId t : schema.targets()) {
    if (!observed.IsStableAttr(t)) {
      return fail("target '" + schema.attribute(t).name + "' is not stable");
    }
  }
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    if (schema.is_source(a) || !observed.IsStableAttr(a)) continue;
    const bool expect_enabled = complete.enabled[static_cast<size_t>(a)];
    const AttrState state = observed.state(a);
    if (expect_enabled && state != AttrState::kValue) {
      return fail("attribute '" + schema.attribute(a).name +
                  "' should be VALUE but is " + core::ToString(state));
    }
    if (!expect_enabled && state != AttrState::kDisabled) {
      return fail("attribute '" + schema.attribute(a).name +
                  "' should be DISABLED but is " + core::ToString(state));
    }
    if (observed.value(a) != complete.values[static_cast<size_t>(a)]) {
      return fail("attribute '" + schema.attribute(a).name + "' has value " +
                  observed.value(a).ToString() + ", expected " +
                  complete.values[static_cast<size_t>(a)].ToString());
    }
  }
  return true;
}

}  // namespace dflow::core
