#ifndef DFLOW_CORE_SCHEDULER_H_
#define DFLOW_CORE_SCHEDULER_H_

#include <vector>

#include "common/ids.h"
#include "core/schema.h"
#include "core/strategy.h"

namespace dflow::core {

// The task scheduler of the Figure 2 architecture: picks which candidate
// queries to send to the database, implementing the §4 scheduling phase.
//
// Heuristics:
//   Earliest ('E'): topologically-earliest candidates first — maximizes the
//     information produced for forward/backward propagation.
//   Cheapest ('C'): shortest estimated execution first — results return
//     sooner and mis-speculation wastes less (ties broken topologically).
//
// Parallelism (%Permitted): at each scheduling point the number of queries
// permitted to be in flight concurrently for this instance is
//   max(1, ceil(pct/100 * (|candidates| + in_flight))),
// i.e. the permitted fraction of the currently eligible pool, never less
// than one task so execution always makes progress (pct = 0 is fully
// serial, pct = 100 launches every candidate).
class Scheduler {
 public:
  Scheduler(const Schema* schema, const Strategy& strategy)
      : schema_(schema), strategy_(strategy) {}

  // `candidates` must be in ascending topological order (as produced by the
  // prequalifier) and already filtered of launched tasks. Returns the tasks
  // to launch now, in launch order.
  std::vector<AttributeId> SelectForLaunch(
      const std::vector<AttributeId>& candidates, int in_flight) const;

 private:
  const Schema* schema_;
  Strategy strategy_;
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_SCHEDULER_H_
