#include "core/strategy.h"

#include <cctype>

namespace dflow::core {

std::string Strategy::ToString() const {
  if (is_auto) return kAutoToken;
  std::string s;
  s += propagation ? 'P' : 'N';
  s += speculative ? 'S' : 'C';
  s += heuristic == Heuristic::kEarliest ? 'E' : 'C';
  s += std::to_string(pct_permitted);
  return s;
}

std::optional<Strategy> Strategy::Parse(std::string_view text) {
  if (text.size() == 4) {
    std::string upper;
    for (const char c : text) {
      upper += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    if (upper == kAutoToken) {
      Strategy s;
      s.is_auto = true;
      return s;
    }
  }
  if (text.size() < 4) return std::nullopt;
  Strategy s;
  const char p = static_cast<char>(std::toupper(text[0]));
  const char spec = static_cast<char>(std::toupper(text[1]));
  const char heur = static_cast<char>(std::toupper(text[2]));
  if (p == 'P') {
    s.propagation = true;
  } else if (p == 'N') {
    s.propagation = false;
  } else {
    return std::nullopt;
  }
  if (spec == 'S') {
    s.speculative = true;
  } else if (spec == 'C') {
    s.speculative = false;
  } else {
    return std::nullopt;
  }
  if (heur == 'E') {
    s.heuristic = Heuristic::kEarliest;
  } else if (heur == 'C') {
    s.heuristic = Heuristic::kCheapest;
  } else {
    return std::nullopt;
  }
  int pct = 0;
  size_t i = 3;
  bool any_digit = false;
  for (; i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]));
       ++i) {
    pct = pct * 10 + (text[i] - '0');
    any_digit = true;
    if (pct > 100) return std::nullopt;
  }
  if (!any_digit) return std::nullopt;
  if (i < text.size()) {
    if (text[i] != '%' || i + 1 != text.size()) return std::nullopt;
  }
  s.pct_permitted = pct;
  return s;
}

}  // namespace dflow::core
