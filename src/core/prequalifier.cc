#include "core/prequalifier.h"

namespace dflow::core {

Prequalifier::Prequalifier(const Schema* schema, const Strategy& strategy)
    : schema_(schema),
      strategy_(strategy),
      cond_state_(static_cast<size_t>(schema->num_attributes()),
                  expr::Tribool::kUnknown),
      cond_evals_(static_cast<size_t>(schema->num_attributes()), 0),
      eager_disabled_(static_cast<size_t>(schema->num_attributes()), 0),
      needed_(static_cast<size_t>(schema->num_attributes()), 1),
      counted_unneeded_(static_cast<size_t>(schema->num_attributes()), 0) {}

void Prequalifier::Update(Snapshot* snap) {
  ForwardPass(snap);
  if (strategy_.unneeded_detection()) BackwardPass(*snap);
  CollectCandidates(*snap);
}

expr::Tribool Prequalifier::ConditionState(const Snapshot& snap,
                                           AttributeId a) const {
  const expr::Condition& cond = schema_->enabling_condition(a);
  if (cond.IsLiteralTrue()) return expr::Tribool::kTrue;
  if (!strategy_.eager_conditions()) {
    // Naive: wait until every condition input is stable, then the
    // evaluation below is definite by construction.
    for (AttributeId in : schema_->cond_inputs(a)) {
      if (!snap.IsStableAttr(in)) return expr::Tribool::kUnknown;
    }
  }
  return cond.Eval(snap);
}

void Prequalifier::ForwardPass(Snapshot* snap) {
  // Topological order guarantees every input of `a` was finalized (for this
  // pass) before `a` is visited, so one sweep reaches the fixpoint: eagerly
  // DISABLED attributes become stable-with-⊥ in time to resolve the
  // conditions of everything downstream (forward propagation).
  for (AttributeId a : schema_->topo_order()) {
    if (schema_->is_source(a) || snap->IsStableAttr(a)) continue;

    expr::Tribool& cond = cond_state_[static_cast<size_t>(a)];
    if (cond == expr::Tribool::kUnknown) {
      if (!schema_->enabling_condition(a).IsLiteralTrue()) {
        ++cond_evals_[static_cast<size_t>(a)];
      }
      cond = ConditionState(*snap, a);
      if (cond == expr::Tribool::kFalse) {
        // Eager if some condition input had not stabilized yet.
        for (AttributeId in : schema_->cond_inputs(a)) {
          if (!snap->IsStableAttr(in)) {
            ++eager_disables_;
            eager_disabled_[static_cast<size_t>(a)] = 1;
            break;
          }
        }
      }
    }

    bool ready = true;
    for (AttributeId in : schema_->data_inputs(a)) {
      if (!snap->IsStableAttr(in)) {
        ready = false;
        break;
      }
    }

    switch (snap->state(a)) {
      case AttrState::kUninitialized:
        if (cond == expr::Tribool::kFalse) {
          snap->Transition(a, AttrState::kDisabled);
        } else if (cond == expr::Tribool::kTrue) {
          snap->Transition(a, AttrState::kEnabled);
          if (ready) snap->Transition(a, AttrState::kReadyEnabled);
        } else if (ready) {
          snap->Transition(a, AttrState::kReady);
        }
        break;
      case AttrState::kEnabled:
        if (ready) snap->Transition(a, AttrState::kReadyEnabled);
        break;
      case AttrState::kReady:
        if (cond == expr::Tribool::kTrue) {
          snap->Transition(a, AttrState::kReadyEnabled);
        } else if (cond == expr::Tribool::kFalse) {
          snap->Transition(a, AttrState::kDisabled);
        }
        break;
      case AttrState::kComputed:
        if (cond == expr::Tribool::kTrue) {
          snap->Transition(a, AttrState::kValue);
        } else if (cond == expr::Tribool::kFalse) {
          snap->Transition(a, AttrState::kDisabled);
        }
        break;
      case AttrState::kReadyEnabled:
        break;  // waiting for the task to complete
      case AttrState::kValue:
      case AttrState::kDisabled:
        break;  // stable (unreachable: filtered above)
    }
  }
}

void Prequalifier::BackwardPass(const Snapshot& snap) {
  // Reverse topological sweep computing which unstable attributes are still
  // needed for all targets to stabilize. An attribute is needed if it is an
  // unstable target, or if some needed consumer may still use it:
  //   - a data consumer whose task may still run (condition not false) and
  //     whose value is not already known;
  //   - a condition consumer whose condition is still unresolved.
  // Everything else is unneeded (backward propagation) and will be kept out
  // of the candidate pool.
  const auto& order = schema_->topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const AttributeId a = *it;
    if (snap.IsStableAttr(a)) {
      needed_[static_cast<size_t>(a)] = 0;
      continue;
    }
    bool needed = schema_->is_target(a);
    if (!needed) {
      for (AttributeId b : schema_->data_consumers(a)) {
        if (needed_[static_cast<size_t>(b)] != 0 && !snap.ValueKnown(b) &&
            cond_state_[static_cast<size_t>(b)] != expr::Tribool::kFalse) {
          needed = true;
          break;
        }
      }
    }
    if (!needed) {
      for (AttributeId b : schema_->cond_consumers(a)) {
        if (needed_[static_cast<size_t>(b)] != 0 && !snap.IsStableAttr(b) &&
            cond_state_[static_cast<size_t>(b)] == expr::Tribool::kUnknown) {
          needed = true;
          break;
        }
      }
    }
    needed_[static_cast<size_t>(a)] = needed ? 1 : 0;
  }
}

void Prequalifier::CollectCandidates(const Snapshot& snap) {
  candidates_.clear();
  for (AttributeId a : schema_->topo_order()) {
    if (schema_->is_source(a)) continue;
    const AttrState state = snap.state(a);
    const bool runnable =
        state == AttrState::kReadyEnabled ||
        (strategy_.speculative && state == AttrState::kReady);
    if (!runnable) continue;
    if (strategy_.unneeded_detection() && needed_[static_cast<size_t>(a)] == 0) {
      if (counted_unneeded_[static_cast<size_t>(a)] == 0) {
        counted_unneeded_[static_cast<size_t>(a)] = 1;
        ++unneeded_skipped_;
      }
      continue;
    }
    candidates_.push_back(a);
  }
}

}  // namespace dflow::core
