#include "core/scheduler.h"

#include <algorithm>

namespace dflow::core {

std::vector<AttributeId> Scheduler::SelectForLaunch(
    const std::vector<AttributeId>& candidates, int in_flight) const {
  if (candidates.empty()) return {};

  const int pool = static_cast<int>(candidates.size()) + in_flight;
  const int target =
      std::max(1, (strategy_.pct_permitted * pool + 99) / 100);
  const int allowed =
      std::min(static_cast<int>(candidates.size()),
               std::max(0, target - in_flight));
  if (allowed <= 0) return {};

  std::vector<AttributeId> ordered = candidates;
  if (strategy_.heuristic == Strategy::Heuristic::kCheapest) {
    std::stable_sort(ordered.begin(), ordered.end(),
                     [this](AttributeId a, AttributeId b) {
                       return schema_->task(a).cost_units <
                              schema_->task(b).cost_units;
                     });
  }
  // Earliest: candidates are already in ascending topological order.
  ordered.resize(static_cast<size_t>(allowed));
  return ordered;
}

}  // namespace dflow::core
