#include "core/schema_builder.h"

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <utility>

namespace dflow::core {

namespace {

bool SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

AttributeId SchemaBuilder::AddSource(std::string name) {
  const AttributeId id = static_cast<AttributeId>(schema_.attrs_.size());
  schema_.attrs_.push_back(
      Attribute{std::move(name), /*is_source=*/true, /*is_target=*/false,
                CurrentModulePath()});
  schema_.conditions_.push_back(expr::Condition::True());
  schema_.tasks_.push_back(Task{});
  schema_.data_inputs_.emplace_back();
  schema_.cond_inputs_.emplace_back();
  return id;
}

AttributeId SchemaBuilder::AddAttribute(std::string name, Task task,
                                        std::vector<AttributeId> data_inputs,
                                        expr::Condition condition,
                                        bool is_target) {
  const AttributeId id = static_cast<AttributeId>(schema_.attrs_.size());
  schema_.attrs_.push_back(Attribute{std::move(name), /*is_source=*/false,
                                     is_target, CurrentModulePath()});
  schema_.conditions_.push_back(WrapWithModules(std::move(condition)));
  schema_.tasks_.push_back(std::move(task));
  schema_.data_inputs_.push_back(std::move(data_inputs));
  schema_.cond_inputs_.push_back(schema_.conditions_.back().Attributes());
  return id;
}

AttributeId SchemaBuilder::AddQuery(std::string name, int cost_units,
                                    TaskFn fn,
                                    std::vector<AttributeId> data_inputs,
                                    expr::Condition condition,
                                    bool is_target) {
  return AddAttribute(std::move(name), Task::Query(cost_units, std::move(fn)),
                      std::move(data_inputs), std::move(condition), is_target);
}

AttributeId SchemaBuilder::AddSynthesis(std::string name, TaskFn fn,
                                        std::vector<AttributeId> data_inputs,
                                        expr::Condition condition,
                                        bool is_target) {
  return AddAttribute(std::move(name), Task::Synthesis(std::move(fn)),
                      std::move(data_inputs), std::move(condition), is_target);
}

void SchemaBuilder::MarkTarget(AttributeId a) {
  schema_.attrs_[static_cast<size_t>(a)].is_target = true;
}

void SchemaBuilder::BeginModule(std::string name, expr::Condition condition) {
  module_stack_.push_back(PendingModule{std::move(name), std::move(condition)});
}

void SchemaBuilder::EndModule() {
  if (module_stack_.empty()) {
    module_underflow_ = true;
    return;
  }
  module_stack_.pop_back();
}

std::string SchemaBuilder::CurrentModulePath() const {
  std::string path;
  for (const PendingModule& m : module_stack_) {
    if (!path.empty()) path += "/";
    path += m.name;
  }
  return path;
}

expr::Condition SchemaBuilder::WrapWithModules(expr::Condition condition) const {
  // Flattening (Fig 1a -> 1b): enclosing module conditions are ANDed in.
  expr::Condition result = std::move(condition);
  for (auto it = module_stack_.rbegin(); it != module_stack_.rend(); ++it) {
    result = it->condition.AndWith(result);
  }
  return result;
}

std::optional<Schema> SchemaBuilder::Build(std::string* error) {
  Schema& s = schema_;
  const int n = s.num_attributes();

  if (module_underflow_) {
    SetError(error, "EndModule() called with no open module");
    return std::nullopt;
  }
  if (!module_stack_.empty()) {
    SetError(error, "Build() called with unclosed module '" +
                        module_stack_.back().name + "'");
    return std::nullopt;
  }
  if (n == 0) {
    SetError(error, "schema has no attributes");
    return std::nullopt;
  }

  std::unordered_set<std::string> names;
  for (AttributeId a = 0; a < n; ++a) {
    const Attribute& attr = s.attribute(a);
    if (attr.name.empty()) {
      SetError(error, "attribute " + std::to_string(a) + " has an empty name");
      return std::nullopt;
    }
    if (!names.insert(attr.name).second) {
      SetError(error, "duplicate attribute name '" + attr.name + "'");
      return std::nullopt;
    }
    if (attr.is_source && attr.is_target) {
      SetError(error, "attribute '" + attr.name + "' is both source and target");
      return std::nullopt;
    }
    for (AttributeId in : s.data_inputs_[static_cast<size_t>(a)]) {
      if (in < 0 || in >= n) {
        SetError(error, "attribute '" + attr.name +
                            "' has an out-of-range data input");
        return std::nullopt;
      }
      if (in == a) {
        SetError(error, "attribute '" + attr.name + "' is its own data input");
        return std::nullopt;
      }
    }
    for (AttributeId in : s.cond_inputs_[static_cast<size_t>(a)]) {
      if (in < 0 || in >= n) {
        SetError(error, "condition of '" + attr.name +
                            "' references an out-of-range attribute");
        return std::nullopt;
      }
      if (in == a) {
        SetError(error, "condition of '" + attr.name + "' references itself");
        return std::nullopt;
      }
    }
    if (!attr.is_source && !s.tasks_[static_cast<size_t>(a)].fn) {
      SetError(error, "attribute '" + attr.name + "' has no task function");
      return std::nullopt;
    }
    if (!attr.is_source && s.tasks_[static_cast<size_t>(a)].cost_units < 0) {
      SetError(error, "attribute '" + attr.name + "' has negative cost");
      return std::nullopt;
    }
  }

  // Reverse adjacency + Kahn's algorithm over the union of data and
  // enabling edges (the §2 dependency graph).
  s.data_consumers_.assign(static_cast<size_t>(n), {});
  s.cond_consumers_.assign(static_cast<size_t>(n), {});
  std::vector<int> in_degree(static_cast<size_t>(n), 0);
  for (AttributeId a = 0; a < n; ++a) {
    for (AttributeId in : s.data_inputs_[static_cast<size_t>(a)]) {
      s.data_consumers_[static_cast<size_t>(in)].push_back(a);
      ++in_degree[static_cast<size_t>(a)];
    }
    for (AttributeId in : s.cond_inputs_[static_cast<size_t>(a)]) {
      s.cond_consumers_[static_cast<size_t>(in)].push_back(a);
      ++in_degree[static_cast<size_t>(a)];
    }
  }

  std::deque<AttributeId> frontier;
  for (AttributeId a = 0; a < n; ++a) {
    if (in_degree[static_cast<size_t>(a)] == 0) frontier.push_back(a);
  }
  s.topo_order_.clear();
  s.topo_order_.reserve(static_cast<size_t>(n));
  while (!frontier.empty()) {
    const AttributeId a = frontier.front();
    frontier.pop_front();
    s.topo_order_.push_back(a);
    auto relax = [&](const std::vector<AttributeId>& consumers) {
      for (AttributeId b : consumers) {
        if (--in_degree[static_cast<size_t>(b)] == 0) frontier.push_back(b);
      }
    };
    relax(s.data_consumers_[static_cast<size_t>(a)]);
    relax(s.cond_consumers_[static_cast<size_t>(a)]);
  }
  if (static_cast<int>(s.topo_order_.size()) != n) {
    SetError(error, "dependency graph has a cycle (schema is not well-formed)");
    return std::nullopt;
  }
  s.topo_index_.assign(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    s.topo_index_[static_cast<size_t>(s.topo_order_[static_cast<size_t>(i)])] = i;
  }

  s.sources_.clear();
  s.targets_.clear();
  for (AttributeId a = 0; a < n; ++a) {
    if (s.attribute(a).is_source) s.sources_.push_back(a);
    if (s.attribute(a).is_target) s.targets_.push_back(a);
  }
  if (s.targets_.empty()) {
    SetError(error, "schema has no target attribute");
    return std::nullopt;
  }

  return std::move(schema_);
}

}  // namespace dflow::core
