#ifndef DFLOW_CORE_TASK_H_
#define DFLOW_CORE_TASK_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "common/ids.h"
#include "common/value.h"

namespace dflow::core {

// Evaluation context handed to a task's value function when the task
// completes. `input(a)` returns the stable value of data input `a` (the
// null Value if `a` stabilized DISABLED) — the engine guarantees all data
// inputs are stable before a task may run, per §2: "A task can be executed
// after all of its input attributes have become stable."
struct TaskContext {
  AttributeId attr = kInvalidAttribute;
  // Per-instance seed; generated schemas derive deterministic values from
  // (instance_seed, attr) so the reference evaluator can predict them.
  uint64_t instance_seed = 0;
  std::function<Value(AttributeId)> input;
};

// Computes the attribute's value. Must be deterministic in (context), must
// tolerate null inputs (§2: tasks "must be capable of executing once their
// input attributes are stable, even if some of them have value ⊥").
using TaskFn = std::function<Value(const TaskContext&)>;

// The unit of work producing one attribute (we adopt the paper's simplifying
// assumption that each task produces a single attribute).
//
// A *foreign* task is external to the engine — in this library a database
// query whose latency is modeled by a QueryService and whose cost is given
// in units of processing (Table 1's module_cost). A *synthesis* task is a
// user-defined function evaluated by the engine itself at zero simulated
// cost.
struct Task {
  enum class Kind { kQuery, kSynthesis };

  Kind kind = Kind::kSynthesis;
  int cost_units = 0;  // > 0 for queries; 0 for synthesis tasks
  TaskFn fn;

  static Task Query(int cost_units, TaskFn fn) {
    return Task{Kind::kQuery, cost_units, std::move(fn)};
  }
  static Task Synthesis(TaskFn fn) {
    return Task{Kind::kSynthesis, 0, std::move(fn)};
  }
  // Synthesis task returning a fixed value; handy in tests and examples.
  static Task Constant(Value v) {
    return Synthesis([v = std::move(v)](const TaskContext&) { return v; });
  }
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_TASK_H_
