#ifndef DFLOW_CORE_DOT_EXPORT_H_
#define DFLOW_CORE_DOT_EXPORT_H_

#include <string>

#include "core/schema.h"

namespace dflow::core {

// Renders the schema's dependency graph in Graphviz dot format, mirroring
// Figure 1(b): dashed edges for dataflow, solid edges for enabling flow,
// boxes for attributes (sources as ellipses, targets shaded).
std::string ToDot(const Schema& schema);

}  // namespace dflow::core

#endif  // DFLOW_CORE_DOT_EXPORT_H_
