#ifndef DFLOW_CORE_DOT_EXPORT_H_
#define DFLOW_CORE_DOT_EXPORT_H_

#include <functional>
#include <string>

#include "core/schema.h"

namespace dflow::core {

// Renders the schema's dependency graph in Graphviz dot format, mirroring
// Figure 1(b): dashed edges for dataflow, solid edges for enabling flow,
// boxes for attributes (sources as ellipses, targets shaded).
std::string ToDot(const Schema& schema);

// Per-attribute annotation hook for the EXPLAIN-style plan view: returns
// extra label lines for one attribute ("\n"-joined, empty for none). The
// callback form keeps this layer free of any dependency on where the
// annotations come from (measured profiles live in obs).
using DotAnnotator = std::function<std::string(AttributeId)>;

// ToDot with a second label line per annotated attribute. A null/empty
// annotator renders exactly like the plain overload.
std::string ToDot(const Schema& schema, const DotAnnotator& annotate);

}  // namespace dflow::core

#endif  // DFLOW_CORE_DOT_EXPORT_H_
