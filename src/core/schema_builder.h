#ifndef DFLOW_CORE_SCHEMA_BUILDER_H_
#define DFLOW_CORE_SCHEMA_BUILDER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "core/schema.h"
#include "core/task.h"
#include "expr/condition.h"

namespace dflow::core {

// Incrementally assembles a decision-flow schema and validates it.
//
// Modules (the dashed groupings of Figure 1(a)) are supported through
// BeginModule/EndModule: the enabling condition of every enclosing module is
// ANDed into each attribute declared inside, which is exactly the paper's
// flattening construction (Figure 1(b): "the enabling condition for the
// boy's coat promo module has been 'anded' into each of the enabling
// conditions for the four tasks inside").
//
// Build() validates:
//   - attribute names are unique and non-empty;
//   - every edge endpoint is a declared attribute;
//   - no attribute is its own input;
//   - the dependency graph (data + enabling edges) is acyclic (§2
//     well-formedness);
//   - every target is a non-source attribute.
class SchemaBuilder {
 public:
  // Declares a source attribute (state VALUE from the start; bound per
  // instance).
  AttributeId AddSource(std::string name);

  // Declares a non-source attribute computed by `task` from `data_inputs`,
  // guarded by `condition` (ANDed with any enclosing modules' conditions).
  AttributeId AddAttribute(std::string name, Task task,
                           std::vector<AttributeId> data_inputs,
                           expr::Condition condition = expr::Condition::True(),
                           bool is_target = false);

  // Sugar for the two task kinds.
  AttributeId AddQuery(std::string name, int cost_units, TaskFn fn,
                       std::vector<AttributeId> data_inputs,
                       expr::Condition condition = expr::Condition::True(),
                       bool is_target = false);
  AttributeId AddSynthesis(std::string name, TaskFn fn,
                           std::vector<AttributeId> data_inputs,
                           expr::Condition condition = expr::Condition::True(),
                           bool is_target = false);

  void MarkTarget(AttributeId a);

  // Opens a module whose condition guards everything declared until the
  // matching EndModule(). Modules nest.
  void BeginModule(std::string name, expr::Condition condition);
  void EndModule();

  // Validates and produces the schema. On failure returns nullopt and, if
  // `error` is non-null, stores a description of the first problem found.
  // The builder is consumed (moved-from) on success.
  std::optional<Schema> Build(std::string* error = nullptr);

 private:
  struct PendingModule {
    std::string name;
    expr::Condition condition;
  };

  std::string CurrentModulePath() const;
  expr::Condition WrapWithModules(expr::Condition condition) const;

  Schema schema_;
  std::vector<PendingModule> module_stack_;
  bool module_underflow_ = false;
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_SCHEMA_BUILDER_H_
