#include "core/attribute_state.h"

#include <ostream>

namespace dflow::core {

bool IsValidTransition(AttrState from, AttrState to) {
  switch (from) {
    case AttrState::kUninitialized:
      return to == AttrState::kEnabled || to == AttrState::kReady ||
             to == AttrState::kDisabled;
    case AttrState::kEnabled:
      return to == AttrState::kReadyEnabled;
    case AttrState::kReady:
      return to == AttrState::kReadyEnabled || to == AttrState::kComputed ||
             to == AttrState::kDisabled;
    case AttrState::kReadyEnabled:
      return to == AttrState::kValue;
    case AttrState::kComputed:
      return to == AttrState::kValue || to == AttrState::kDisabled;
    case AttrState::kValue:
    case AttrState::kDisabled:
      return false;  // terminal
  }
  return false;
}

bool PrecedesOrEqual(AttrState a, AttrState b) {
  if (a == b) return true;
  // Small graph: depth-first reachability over the 7 states.
  constexpr int kNumStates = 7;
  bool seen[kNumStates] = {};
  bool frontier[kNumStates] = {};
  frontier[static_cast<int>(a)] = true;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int s = 0; s < kNumStates; ++s) {
      if (!frontier[s] || seen[s]) continue;
      seen[s] = true;
      progress = true;
      for (int t = 0; t < kNumStates; ++t) {
        if (IsValidTransition(static_cast<AttrState>(s),
                              static_cast<AttrState>(t))) {
          frontier[t] = true;
        }
      }
    }
  }
  return seen[static_cast<int>(b)];
}

std::string ToString(AttrState s) {
  switch (s) {
    case AttrState::kUninitialized: return "UNINITIALIZED";
    case AttrState::kEnabled: return "ENABLED";
    case AttrState::kReady: return "READY";
    case AttrState::kReadyEnabled: return "READY+ENABLED";
    case AttrState::kComputed: return "COMPUTED";
    case AttrState::kValue: return "VALUE";
    case AttrState::kDisabled: return "DISABLED";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, AttrState s) {
  return os << ToString(s);
}

}  // namespace dflow::core
