#include "core/schema.h"

#include <sstream>

namespace dflow::core {

AttributeId Schema::FindAttribute(std::string_view name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return static_cast<AttributeId>(i);
  }
  return kInvalidAttribute;
}

int64_t Schema::TotalQueryCost() const {
  int64_t total = 0;
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (!attrs_[i].is_source) total += tasks_[i].cost_units;
  }
  return total;
}

std::string Schema::DebugString() const {
  std::ostringstream os;
  auto name = [this](AttributeId a) { return attribute(a).name; };
  for (AttributeId a = 0; a < num_attributes(); ++a) {
    const Attribute& attr = attribute(a);
    os << (attr.is_source ? "source " : (attr.is_target ? "target " : "attr   "))
       << attr.name;
    if (!attr.module_path.empty()) os << "  [module " << attr.module_path << "]";
    if (!attr.is_source) {
      os << "\n  cost: " << task(a).cost_units
         << "\n  cond: " << enabling_condition(a).ToString(name)
         << "\n  data inputs:";
      for (AttributeId in : data_inputs(a)) os << " " << name(in);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace dflow::core
