#include "core/dot_export.h"

#include <sstream>

namespace dflow::core {

std::string ToDot(const Schema& schema) { return ToDot(schema, nullptr); }

std::string ToDot(const Schema& schema, const DotAnnotator& annotate) {
  std::ostringstream os;
  os << "digraph decision_flow {\n"
     << "  rankdir=LR;\n"
     << "  node [fontsize=10];\n";
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(a);
    os << "  a" << a << " [label=\"" << attr.name;
    if (annotate) {
      const std::string note = annotate(a);
      // Extra label lines under the name; "\n" escapes verbatim into the
      // dot label (Graphviz line break), quotes are stripped to keep the
      // attribute string well-formed.
      if (!note.empty()) {
        os << "\\n";
        for (char c : note) {
          if (c == '"') continue;
          if (c == '\n') {
            os << "\\n";
          } else {
            os << c;
          }
        }
      }
    }
    os << "\"";
    if (attr.is_source) {
      os << ", shape=ellipse";
    } else if (attr.is_target) {
      os << ", shape=box, style=filled, fillcolor=gray85";
    } else {
      os << ", shape=box";
    }
    os << "];\n";
  }
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    for (AttributeId in : schema.data_inputs(a)) {
      os << "  a" << in << " -> a" << a << " [style=dashed];\n";
    }
    for (AttributeId in : schema.cond_inputs(a)) {
      os << "  a" << in << " -> a" << a << " [style=solid, color=gray40];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace dflow::core
