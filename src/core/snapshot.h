#ifndef DFLOW_CORE_SNAPSHOT_H_
#define DFLOW_CORE_SNAPSHOT_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "core/attribute_state.h"
#include "core/schema.h"
#include "expr/predicate.h"

namespace dflow::core {

// Values for the source attributes of one instance, e.g. the customer
// profile and shopping cart of Figure 1. Sources not bound default to null.
using SourceBinding = std::vector<std::pair<AttributeId, Value>>;

// The extended snapshot of §3: a (state, value) pair per attribute, where
// states range over the Figure 3 FSA. The execution algorithm constructs a
// series of snapshots, each incorporating newly acquired information; this
// class is the mutable runtime representation and doubles as the
// AttributeEnv used to (partially) evaluate enabling conditions.
//
// Monotonicity invariant (§2): transitions follow the FSA only, so an
// assigned value is never overwritten and stable states are final.
// Transition() checks this and reports violations to the caller rather than
// silently corrupting the run.
class Snapshot : public expr::AttributeEnv {
 public:
  explicit Snapshot(const Schema* schema);

  // Binds source values (missing sources stay null) — sources are in state
  // VALUE from the start, per §2.
  void BindSources(const SourceBinding& sources);

  const Schema& schema() const { return *schema_; }

  AttrState state(AttributeId a) const {
    return states_[static_cast<size_t>(a)];
  }
  // The current value: meaningful in states VALUE and COMPUTED; the null
  // value in DISABLED; null otherwise.
  const Value& value(AttributeId a) const {
    return values_[static_cast<size_t>(a)];
  }

  bool IsStableAttr(AttributeId a) const { return IsStable(state(a)); }
  // True iff the value of `a` is already known (stable, or speculatively
  // COMPUTED while its condition is pending).
  bool ValueKnown(AttributeId a) const {
    const AttrState s = state(a);
    return IsStable(s) || s == AttrState::kComputed;
  }

  // AttributeEnv: stable attributes expose their final value (null for
  // DISABLED); unstable attributes are unknown. Note COMPUTED values are
  // *not* exposed to conditions: the attribute is not yet stable, and §2's
  // semantics evaluates conditions over stable values only.
  std::optional<Value> StableValue(AttributeId id) const override;

  // Applies one FSA transition; `value` must be provided when entering
  // VALUE or COMPUTED (ignored otherwise; DISABLED forces the null value).
  // Returns false (and leaves the snapshot unchanged) on an illegal
  // transition.
  bool Transition(AttributeId a, AttrState to, Value value = Value::Null());

  // Observer for successful transitions (tracing, trajectory property
  // tests). Invoked after the state/value update. At most one listener.
  using TransitionListener =
      std::function<void(AttributeId, AttrState from, AttrState to)>;
  void SetTransitionListener(TransitionListener listener) {
    listener_ = std::move(listener);
  }

  bool AllTargetsStable() const;
  int num_stable() const { return num_stable_; }

  std::string DebugString() const;

 private:
  const Schema* schema_;
  std::vector<AttrState> states_;
  std::vector<Value> values_;
  int num_stable_ = 0;
  TransitionListener listener_;
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_SNAPSHOT_H_
