#include "core/engine.h"

#include <cassert>
#include <utility>

#include "obs/flow_profiler.h"

namespace dflow::core {

ExecutionEngine::ExecutionEngine(const Schema* schema,
                                 const Strategy& strategy,
                                 sim::Simulator* sim,
                                 sim::QueryService* service)
    : schema_(schema),
      strategy_(strategy),
      scheduler_(schema, strategy),
      sim_(sim),
      service_(service) {}

int64_t ExecutionEngine::StartInstance(const SourceBinding& sources,
                                       uint64_t instance_seed,
                                       DoneCallback done) {
  const int64_t id = next_id_++;
  auto inst = std::make_unique<Instance>(schema_, strategy_);
  inst->id = id;
  inst->seed = instance_seed;
  inst->snapshot.BindSources(sources);
  inst->launched.assign(static_cast<size_t>(schema_->num_attributes()), 0);
  inst->speculative.assign(static_cast<size_t>(schema_->num_attributes()), 0);
  inst->profiled = profiler_ != nullptr && profiler_->Sampled(instance_seed);
  inst->metrics.start_time = sim_->now();
  inst->inflight_mark = sim_->now();
  inst->done = std::move(done);
  if (trace_listener_) {
    inst->snapshot.SetTransitionListener(
        [this, id](AttributeId a, AttrState from, AttrState to) {
          trace_listener_(id, a, from, to);
        });
  }
  Instance* raw = inst.get();
  instances_.emplace(id, std::move(inst));
  Step(raw);
  return id;
}

void ExecutionEngine::AccumulateInflight(Instance* inst) {
  inst->metrics.inflight_area +=
      inst->in_flight * (sim_->now() - inst->inflight_mark);
  inst->inflight_mark = sim_->now();
}

void ExecutionEngine::Step(Instance* inst) {
  inst->prequalifier.Update(&inst->snapshot);
  ++inst->metrics.prequalifier_passes;

  if (inst->snapshot.AllTargetsStable()) {
    Finish(inst);
    return;
  }

  // Scheduling phase: filter already-launched tasks, then apply the
  // heuristic and the %Permitted parallelism cap.
  std::vector<AttributeId> fresh;
  fresh.reserve(inst->prequalifier.candidates().size());
  for (AttributeId a : inst->prequalifier.candidates()) {
    if (inst->launched[static_cast<size_t>(a)] == 0) fresh.push_back(a);
  }
  for (AttributeId a : scheduler_.SelectForLaunch(fresh, inst->in_flight)) {
    Launch(inst, a);
  }
}

void ExecutionEngine::Launch(Instance* inst, AttributeId attr) {
  inst->launched[static_cast<size_t>(attr)] = 1;
  AccumulateInflight(inst);
  ++inst->in_flight;
  const Task& task = schema_->task(attr);
  inst->metrics.work += task.cost_units;
  ++inst->metrics.queries_launched;
  if (inst->snapshot.state(attr) == AttrState::kReady) {
    ++inst->metrics.speculative_launches;
    inst->speculative[static_cast<size_t>(attr)] = 1;
  }
  const int64_t id = inst->id;
  service_->Submit(task.cost_units,
                   [this, id, attr]() { OnQueryComplete(id, attr); });
}

Value ExecutionEngine::ComputeTaskValue(const Instance& inst,
                                        AttributeId attr) const {
  TaskContext ctx;
  ctx.attr = attr;
  ctx.instance_seed = inst.seed;
  const Snapshot* snap = &inst.snapshot;
  ctx.input = [snap](AttributeId in) { return snap->value(in); };
  return schema_->task(attr).fn(ctx);
}

void ExecutionEngine::OnQueryComplete(int64_t instance_id, AttributeId attr) {
  auto it = instances_.find(instance_id);
  if (it == instances_.end()) return;  // instance already reached its goal
  Instance* inst = it->second.get();

  AccumulateInflight(inst);
  --inst->in_flight;

  switch (inst->snapshot.state(attr)) {
    case AttrState::kReadyEnabled:
      inst->snapshot.Transition(attr, AttrState::kValue,
                                ComputeTaskValue(*inst, attr));
      break;
    case AttrState::kReady:
      // Speculative completion: hold the value until the condition resolves.
      inst->snapshot.Transition(attr, AttrState::kComputed,
                                ComputeTaskValue(*inst, attr));
      break;
    case AttrState::kDisabled:
      // Disabled while the query was in flight: the result is discarded.
      break;
    default:
      // Launch requires READY or READY+ENABLED, and the only transitions out
      // of those while in flight lead to READY+ENABLED or DISABLED.
      assert(false && "query completed in unexpected state");
      break;
  }
  Step(inst);
}

void ExecutionEngine::Finish(Instance* inst) {
  AccumulateInflight(inst);
  inst->metrics.end_time = sim_->now();
  inst->metrics.eager_disables = inst->prequalifier.eager_disables();
  inst->metrics.unneeded_skipped = inst->prequalifier.unneeded_skipped();
  for (AttributeId a = 0; a < schema_->num_attributes(); ++a) {
    if (inst->launched[static_cast<size_t>(a)] != 0 &&
        inst->snapshot.state(a) != AttrState::kValue) {
      inst->metrics.wasted_work += schema_->task(a).cost_units;
    }
  }

  if (inst->profiled) {
    profiler_->RecordInstance(inst->snapshot, inst->prequalifier,
                              inst->launched, inst->speculative);
  }

  InstanceResult result{inst->id, std::move(inst->snapshot),
                        inst->metrics};
  DoneCallback done = std::move(inst->done);
  instances_.erase(inst->id);
  if (done) done(std::move(result));
}

}  // namespace dflow::core
