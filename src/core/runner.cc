#include "core/runner.h"

#include <algorithm>
#include <optional>

#include "common/rng.h"
#include "sim/infinite_service.h"

namespace dflow::core {

InstanceResult RunSingle(const Schema& schema, const SourceBinding& sources,
                         uint64_t instance_seed, const Strategy& strategy,
                         sim::Simulator* sim, sim::QueryService* service) {
  ExecutionEngine engine(&schema, strategy, sim, service);
  std::optional<InstanceResult> result;
  engine.StartInstance(sources, instance_seed,
                       [&result](InstanceResult r) { result = std::move(r); });
  while (!result.has_value() && sim->RunOne()) {
  }
  // A well-formed schema always terminates (see core/prequalifier.cc): the
  // topologically-least unstable needed attribute is always a candidate.
  return std::move(*result);
}

namespace {

// The salt separating a harness DatabaseServer's random stream from every
// other per-instance derivation of the same seed.
constexpr uint64_t kDbStreamSalt = 0xdb5eed0f10a75ULL;

std::unique_ptr<sim::QueryService> MakeService(sim::Simulator* sim,
                                               const HarnessOptions& options) {
  if (options.backend == BackendKind::kBoundedDb) {
    return std::make_unique<sim::DatabaseServer>(sim, options.db,
                                                 kDbStreamSalt);
  }
  return std::make_unique<sim::InfiniteResourceService>(sim);
}

}  // namespace

FlowHarness::FlowHarness(const Schema* schema, const Strategy& strategy,
                         const HarnessOptions& options)
    : options_(options),
      service_(MakeService(&sim_, options)),
      db_(options.backend == BackendKind::kBoundedDb
              ? static_cast<sim::DatabaseServer*>(service_.get())
              : nullptr),
      engine_(schema, strategy, &sim_, service_.get()) {}

InstanceResult FlowHarness::Run(const SourceBinding& sources,
                                uint64_t instance_seed) {
  // Bounded backend: make the DB's buffer-hit/disk-choice stream a pure
  // function of the instance seed, independent of what ran here before.
  if (db_ != nullptr) db_->Reseed(Rng::Mix(instance_seed, kDbStreamSalt));
  std::optional<InstanceResult> result;
  engine_.StartInstance(sources, instance_seed,
                        [&result](InstanceResult r) { result = std::move(r); });
  while (!result.has_value() && sim_.RunOne()) {
  }
  // Run the instance's leftover in-flight queries (speculative work still
  // executing at the terminal snapshot) to completion so the next instance
  // starts against a quiescent service. On the bounded backend this is part
  // of the determinism contract: leftovers would otherwise occupy CPU/disk
  // queues and perturb the next instance's response time.
  sim_.RunUntilEmpty();
  ++instances_run_;
  return std::move(*result);
}

InstanceResult RunSingleInfinite(const Schema& schema,
                                 const SourceBinding& sources,
                                 uint64_t instance_seed,
                                 const Strategy& strategy) {
  FlowHarness harness(&schema, strategy);
  return harness.Run(sources, instance_seed);
}

OpenLoadStats RunOpenLoad(const Schema& schema,
                          const BindingProvider& bindings,
                          const Strategy& strategy,
                          const OpenLoadOptions& options) {
  sim::Simulator sim;
  sim::DatabaseServer db(&sim, options.db, options.seed);
  ExecutionEngine engine(&schema, strategy, &sim, &db);
  Rng arrivals(Rng::Mix(options.seed, 0xa5a5a5a5ULL));

  const int total = options.warmup_instances + options.num_instances;
  const double mean_interarrival_ms =
      1000.0 / options.arrivals_per_second;

  OpenLoadStats stats;
  double sum_response = 0;
  double sum_work = 0;
  double sum_lmpl = 0;
  int completions = 0;
  double first_measured_completion = 0;
  double last_measured_completion = 0;
  // Time-integral of active instances, for Impl.
  double impl_area = 0;
  double impl_mark = 0;
  int active = 0;

  auto update_impl = [&](int delta) {
    impl_area += active * (sim.now() - impl_mark);
    impl_mark = sim.now();
    active += delta;
  };

  // Schedule all arrivals up front (exponential interarrival times).
  double at = 0;
  for (int i = 0; i < total; ++i) {
    at += arrivals.Exponential(mean_interarrival_ms);
    sim.ScheduleAt(at, [&, i]() {
      update_impl(+1);
      auto [sources, seed] = bindings(i);
      engine.StartInstance(
          std::move(sources), seed, [&, i](InstanceResult result) {
            update_impl(-1);
            ++completions;
            if (completions <= options.warmup_instances) return;
            const double response = result.metrics.ResponseTime();
            sum_response += response;
            stats.max_response_ms = std::max(stats.max_response_ms, response);
            sum_work += static_cast<double>(result.metrics.work);
            sum_lmpl += result.metrics.MeanLmpl();
            ++stats.completed;
            if (stats.completed == 1) {
              first_measured_completion = sim.now();
            }
            last_measured_completion = sim.now();
          });
    });
  }
  sim.RunUntilEmpty();

  if (stats.completed > 0) {
    stats.mean_response_ms = sum_response / stats.completed;
    stats.mean_work = sum_work / stats.completed;
    stats.mean_lmpl = sum_lmpl / stats.completed;
    const double span = last_measured_completion - first_measured_completion;
    if (span > 0) {
      stats.achieved_throughput = (stats.completed - 1) * 1000.0 / span;
    }
  }
  if (sim.now() > 0) {
    stats.mean_impl = impl_area / sim.now();
    stats.mean_gmpl = db.MeanGmpl();
  }
  return stats;
}

}  // namespace dflow::core
