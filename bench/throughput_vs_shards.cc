// Scaling benchmark for the runtime::FlowServer: wall-clock instances/second
// as a function of the number of worker shards, on a generated Table 1
// pattern workload. Unlike the fig* binaries (which plot *simulated* Work
// and TimeInUnits), this measures the real machine: each shard drives its
// own engine on its own thread, so throughput should rise monotonically
// from 1 shard to hardware_concurrency shards and flatten beyond it.
//
// Every shard count is measured twice — result cache off and on — so the
// table also shows the cross-instance caching win on repeated-request
// workloads (cache_x = cached / uncached throughput, hit% = cache hit rate).
//
// Run:  ./build/bench_throughput_vs_shards [num_requests]
//           [--backend=infinite|bounded]   (default infinite)
//           [--distinct=K]  distinct requests; the workload cycles through
//                           them (default: requests/8 bounded, requests
//                           infinite — i.e. all unique)
//           [--cache=N]     per-shard cache capacity in entries
//                           (default: distinct, so capacity never evicts)
//           [--json]        emit one machine-readable JSON object instead
//                           of the table (for recording bench trajectories)
//
// The determinism contract is checked as a side effect: total simulated
// work must be identical for every shard count AND with the cache on or off
// (a cache hit replays byte-identical metrics).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gen/schema_generator.h"
#include "runtime/flow_server.h"

using namespace dflow;

namespace {

struct Measurement {
  double wall_seconds = 0;
  double instances_per_second = 0;
  int64_t completed = 0;
  int64_t total_work = 0;
  double p99_latency_units = 0;
  double cache_hit_rate = 0;
};

Measurement RunOnce(const gen::GeneratedSchema& pattern,
                    const std::vector<runtime::FlowRequest>& requests,
                    int shards, core::BackendKind backend,
                    size_t cache_capacity) {
  runtime::FlowServerOptions options;
  options.num_shards = shards;
  options.queue_capacity_per_shard = 1024;
  options.strategy = *core::Strategy::Parse("PSE100");
  options.backend = backend;
  options.result_cache_capacity = cache_capacity;
  runtime::FlowServer server(&pattern.schema, options);
  for (const runtime::FlowRequest& request : requests) {
    server.Submit(request);
  }
  server.Drain();

  const runtime::FlowServerReport report = server.Report();
  Measurement m;
  m.wall_seconds = report.wall_seconds;
  m.instances_per_second = report.instances_per_second;
  m.completed = report.stats.completed;
  m.total_work = report.stats.total_work;
  m.p99_latency_units = report.stats.p99_latency_units;
  m.cache_hit_rate = report.stats.cache_hit_rate;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int num_requests = 0;
  int distinct = 0;
  int cache_capacity = -1;
  bool json = false;
  core::BackendKind backend = core::BackendKind::kInfinite;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strncmp(arg, "--backend=", 10) == 0) {
      const std::string kind = arg + 10;
      if (kind == "bounded") {
        backend = core::BackendKind::kBoundedDb;
      } else if (kind != "infinite") {
        std::fprintf(stderr, "unknown backend '%s'\n", kind.c_str());
        return 2;
      }
    } else if (std::strncmp(arg, "--distinct=", 11) == 0) {
      distinct = std::atoi(arg + 11);
    } else if (std::strncmp(arg, "--cache=", 8) == 0) {
      cache_capacity = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return 2;
    } else {
      num_requests = std::atoi(arg);
    }
  }
  const bool bounded = backend == core::BackendKind::kBoundedDb;
  if (num_requests <= 0) num_requests = bounded ? 2000 : 4000;
  if (distinct <= 0) distinct = bounded ? std::max(1, num_requests / 8)
                                        : num_requests;
  if (cache_capacity < 0) cache_capacity = distinct;

  gen::PatternParams params;
  params.nb_nodes = 64;
  params.nb_rows = 4;
  params.seed = 1;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);

  // The workload cycles through `distinct` request identities: with
  // distinct < num_requests this is the repeated-request regime where the
  // result cache pays off.
  std::vector<runtime::FlowRequest> requests;
  requests.reserve(static_cast<size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    const uint64_t seed = gen::InstanceSeed(params, i % distinct);
    requests.push_back({gen::MakeSourceBinding(pattern, seed), seed});
  }

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> shard_counts;
  for (int s = 1; s < hw; s *= 2) shard_counts.push_back(s);
  shard_counts.push_back(hw);  // always end the sweep at the hardware width

  if (!json) {
    std::printf(
        "# throughput_vs_shards: backend=%s, %d requests (%d distinct), "
        "cache capacity %d/shard, pattern nb_nodes=%d, "
        "hardware_concurrency=%d\n",
        bounded ? "bounded" : "infinite", num_requests, distinct,
        cache_capacity, params.nb_nodes, hw);
    std::printf("%-8s %-12s %-14s %-12s %-14s %-10s %-8s %-14s %s\n",
                "shards", "wall_s", "instances/s", "speedup", "cached_i/s",
                "cache_x", "hit%", "total_work", "p99_units");
  }

  double baseline = 0;
  int64_t reference_work = -1;
  bool monotone = true;
  double previous = 0;
  double last_cache_x = 0;
  auto check_work = [&](int64_t total_work, int shards,
                        const char* mode) -> bool {
    if (reference_work < 0) reference_work = total_work;
    if (total_work != reference_work) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: total_work %lld at %d shards "
                   "(cache %s), expected %lld\n",
                   static_cast<long long>(total_work), shards, mode,
                   static_cast<long long>(reference_work));
      return false;
    }
    return true;
  };
  std::string json_rows;
  for (const int shards : shard_counts) {
    const Measurement off = RunOnce(pattern, requests, shards, backend, 0);
    const Measurement on = RunOnce(pattern, requests, shards, backend,
                                   static_cast<size_t>(cache_capacity));
    if (baseline == 0) baseline = off.instances_per_second;
    if (off.instances_per_second < previous) monotone = false;
    previous = off.instances_per_second;
    // The determinism contract: aggregate work depends on neither the shard
    // count nor the cache mode.
    if (!check_work(off.total_work, shards, "off") ||
        !check_work(on.total_work, shards, "on")) {
      return 1;
    }
    last_cache_x = off.instances_per_second > 0
                       ? on.instances_per_second / off.instances_per_second
                       : 0;
    const double speedup =
        baseline > 0 ? off.instances_per_second / baseline : 0;
    if (json) {
      char row[512];
      std::snprintf(
          row, sizeof(row),
          "%s{\"shards\":%d,\"wall_s\":%.6f,\"instances_per_second\":%.1f,"
          "\"speedup\":%.3f,\"cached_instances_per_second\":%.1f,"
          "\"cache_x\":%.3f,\"hit_rate\":%.4f,\"total_work\":%lld,"
          "\"p99_latency_units\":%.1f}",
          json_rows.empty() ? "" : ",", shards, off.wall_seconds,
          off.instances_per_second, speedup, on.instances_per_second,
          last_cache_x, on.cache_hit_rate,
          static_cast<long long>(off.total_work), off.p99_latency_units);
      json_rows += row;
    } else {
      std::printf("%-8d %-12.3f %-14.1f %-12.2f %-14.1f %-10.2f %-8.1f "
                  "%-14lld %.1f\n",
                  shards, off.wall_seconds, off.instances_per_second, speedup,
                  on.instances_per_second, last_cache_x,
                  100.0 * on.cache_hit_rate,
                  static_cast<long long>(off.total_work),
                  off.p99_latency_units);
    }
  }
  if (json) {
    std::printf(
        "{\"tool\":\"bench_throughput_vs_shards\",\"backend\":\"%s\","
        "\"requests\":%d,\"distinct\":%d,\"cache_capacity\":%d,"
        "\"nb_nodes\":%d,\"hardware_concurrency\":%d,\"monotone\":%s,"
        "\"cache_speedup_at_max_shards\":%.3f,\"rows\":[%s]}\n",
        bounded ? "bounded" : "infinite", num_requests, distinct,
        cache_capacity, params.nb_nodes, hw, monotone ? "true" : "false",
        last_cache_x, json_rows.c_str());
  } else {
    std::printf("# monotone 1..hardware_concurrency: %s\n",
                monotone ? "yes" : "no");
    std::printf("# cache speedup at %d shards: %.2fx\n", shard_counts.back(),
                last_cache_x);
  }
  return 0;
}
