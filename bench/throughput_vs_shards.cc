// Scaling benchmark for the runtime::FlowServer: wall-clock instances/second
// as a function of the number of worker shards, on a generated Table 1
// pattern workload. Unlike the fig* binaries (which plot *simulated* Work
// and TimeInUnits), this measures the real machine: each shard drives its
// own engine on its own thread, so throughput should rise monotonically
// from 1 shard to hardware_concurrency shards and flatten beyond it.
//
// Run:  ./build/bench_throughput_vs_shards [num_requests]

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "gen/schema_generator.h"
#include "runtime/flow_server.h"

using namespace dflow;

namespace {

struct Measurement {
  int shards = 0;
  double wall_seconds = 0;
  double instances_per_second = 0;
  int64_t completed = 0;
  int64_t total_work = 0;
  double p99_latency_units = 0;
};

Measurement RunOnce(const gen::GeneratedSchema& pattern,
                    const std::vector<runtime::FlowRequest>& requests,
                    int shards) {
  runtime::FlowServerOptions options;
  options.num_shards = shards;
  options.queue_capacity_per_shard = 1024;
  options.strategy = *core::Strategy::Parse("PSE100");
  runtime::FlowServer server(&pattern.schema, options);
  for (const runtime::FlowRequest& request : requests) {
    server.Submit(request);
  }
  server.Drain();

  const runtime::FlowServerReport report = server.Report();
  Measurement m;
  m.shards = shards;
  m.wall_seconds = report.wall_seconds;
  m.instances_per_second = report.instances_per_second;
  m.completed = report.stats.completed;
  m.total_work = report.stats.total_work;
  m.p99_latency_units = report.stats.p99_latency_units;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_requests = argc > 1 ? std::atoi(argv[1]) : 4000;

  gen::PatternParams params;
  params.nb_nodes = 64;
  params.nb_rows = 4;
  params.seed = 1;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);

  std::vector<runtime::FlowRequest> requests;
  requests.reserve(static_cast<size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    const uint64_t seed = gen::InstanceSeed(params, i);
    requests.push_back({gen::MakeSourceBinding(pattern, seed), seed});
  }

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> shard_counts;
  for (int s = 1; s < hw; s *= 2) shard_counts.push_back(s);
  shard_counts.push_back(hw);  // always end the sweep at the hardware width

  std::printf("# throughput_vs_shards: %d requests, pattern nb_nodes=%d, "
              "hardware_concurrency=%d\n",
              num_requests, params.nb_nodes, hw);
  std::printf("%-8s %-12s %-14s %-12s %-14s %s\n", "shards", "wall_s",
              "instances/s", "speedup", "total_work", "p99_units");

  double baseline = 0;
  int64_t reference_work = -1;
  bool monotone = true;
  double previous = 0;
  for (const int shards : shard_counts) {
    const Measurement m = RunOnce(pattern, requests, shards);
    if (baseline == 0) baseline = m.instances_per_second;
    if (m.instances_per_second < previous) monotone = false;
    previous = m.instances_per_second;
    // The determinism contract: aggregate work must not depend on shards.
    if (reference_work < 0) reference_work = m.total_work;
    if (m.total_work != reference_work) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: total_work %lld at %d shards, "
                   "expected %lld\n",
                   static_cast<long long>(m.total_work), shards,
                   static_cast<long long>(reference_work));
      return 1;
    }
    std::printf("%-8d %-12.3f %-14.1f %-12.2f %-14lld %.1f\n", m.shards,
                m.wall_seconds, m.instances_per_second,
                baseline > 0 ? m.instances_per_second / baseline : 0,
                static_cast<long long>(m.total_work), m.p99_latency_units);
  }
  std::printf("# monotone 1..hardware_concurrency: %s\n",
              monotone ? "yes" : "no");
  return 0;
}
