// Figure 5(b): Work performed by PCC0, PCE0, NCC0, NCE0 as the number of
// skeleton rows varies (nb_nodes=64, %enabled=75). Fewer rows means a
// longer diameter (less potential parallelism) but similar total work; the
// 'P' vs 'N' gap persists across row counts.

#include "bench_util.h"

int main() {
  using namespace dflow;
  const std::vector<std::string> curves = {"PCC0", "PCE0", "NCC0", "NCE0"};
  std::vector<double> xs;
  std::vector<std::vector<double>> work(curves.size());

  for (int rows = 2; rows <= 8; ++rows) {
    gen::PatternParams params;
    params.nb_nodes = 64;
    params.nb_rows = rows;
    params.pct_enabled = 75;
    xs.push_back(rows);
    for (size_t c = 0; c < curves.size(); ++c) {
      work[c].push_back(
          bench::MeasureStrategy(params, *core::Strategy::Parse(curves[c]))
              .mean_work);
    }
  }

  bench::PrintSeriesTable(
      "Figure 5(b): Work vs nb_rows (nb_nodes=64, %enabled=75, serial)",
      "nb_rows", curves, xs, work);
  return 0;
}
