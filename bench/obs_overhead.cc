// Observability-overhead benchmark: proves request tracing, the fleet
// health plane, and the v8 execution profiler are off the hot path.
// Drives the in-process runtime::FlowServer (the same shard/engine
// pipeline the ingress feeds) in five configurations —
//
//   off      everything disabled: every stage pays one null-pointer test
//   sampled  --trace-sample=64, the default production setting
//   full     --trace-sample=1, every request traced end to end
//   health   tracing off, the v6 health collector sampling at 100 Hz
//            (100x the production cadence)
//   profiled tracing/health off, the v8 execution profiler armed at its
//            default --profile-sample period
//
// — and reports closed-loop throughput for each plus the relative
// overheads. The acceptance bars (gated in CI via BENCH_baseline.json's
// obs_overhead section): sampled tracing costs < 2%
// (max_sampled_overhead_pct), the health collector costs < 2%
// (max_health_overhead_pct) even at 100x cadence, and sampled profiling
// costs < 2% (max_profile_overhead_pct).
//
// Methodology: the modes are INTERLEAVED round-robin for
// --rounds=5 rounds (so thermal drift and noisy neighbors hit all modes
// equally) and each mode's throughput is the median across rounds. The
// determinism rider is checked as a side effect: total simulated work
// must be byte-identical across all modes and rounds, because tracing
// only stamps timings and never touches execution.
//
// Run:  ./build/bench_obs_overhead [num_requests] [--rounds=N] [--json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "gen/schema_generator.h"
#include "obs/event_log.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "runtime/flow_server.h"

using namespace dflow;

namespace {

struct Segment {
  double requests_per_second = 0;
  int64_t total_work = 0;
  int64_t traces_finished = 0;
};

Segment RunOnce(const gen::GeneratedSchema& pattern,
                const std::vector<runtime::FlowRequest>& requests,
                uint32_t sample_period, bool with_health,
                uint32_t profile_period) {
  obs::TraceRecorderOptions trace_options;
  trace_options.sample_period = sample_period;
  trace_options.ring_capacity = 64;
  obs::TraceRecorder recorder(trace_options, "bench");

  runtime::FlowServerOptions options;
  options.num_shards = 2;
  options.queue_capacity_per_shard = 1024;
  options.strategy = *core::Strategy::Parse("PSE100");
  // Profiling defaults ON in FlowServerOptions; the comparison here needs
  // each plane isolated, so every mode states its period explicitly.
  options.profile_sample_period = profile_period;
  runtime::FlowServer server(&pattern.schema, options);
  // The completed counter feeds the health collector's request-rate source
  // and is bumped in every mode, so the hot-path cost under comparison is
  // the collector thread itself, not the counter.
  std::atomic<int64_t> completed{0};
  server.SetResultCallback([&recorder, &completed](
                               int, const runtime::FlowRequest& done,
                               const core::InstanceResult&,
                               const core::Strategy&) {
    completed.fetch_add(1, std::memory_order_relaxed);
    if (done.trace != nullptr) {
      recorder.Finish(done.trace,
                      obs::MonotonicNs() - done.trace->begin_ns());
    }
  });

  // Health mode: a journal plus a collector differencing the counters at
  // 100 Hz — two orders of magnitude above the production 1 s cadence, so
  // the <2% gate holds with enormous margin at the real setting.
  obs::EventLog journal(obs::EventLogOptions{}, "bench");
  obs::HealthSources sources;
  sources.requests_total = [&completed] {
    return completed.load(std::memory_order_relaxed);
  };
  obs::HealthOptions health_options;
  health_options.interval_s = with_health ? 0.01 : 0;  // 0 = no thread
  obs::HealthCollector collector(health_options, std::move(sources),
                                 &journal);
  collector.Start();

  const auto start = std::chrono::steady_clock::now();
  for (const runtime::FlowRequest& request : requests) {
    runtime::FlowRequest submit = request;
    if (recorder.ShouldTrace(submit.seed)) {
      // Mirror the ingress front door: mint the trace, stamp the
      // admission span, mark the enqueue instant for shard.queue_wait.
      submit.trace = recorder.Begin(submit.seed);
      const uint64_t now = obs::MonotonicNs();
      submit.trace->AddSpan(obs::SpanKind::kIngressQueue,
                            submit.trace->begin_ns(), now);
      submit.trace->SetEnqueue(now);
    }
    server.Submit(std::move(submit));
  }
  server.Drain();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  collector.Stop();

  Segment segment;
  segment.requests_per_second =
      wall_s > 0 ? static_cast<double>(requests.size()) / wall_s : 0;
  segment.total_work = server.Report().stats.total_work;
  segment.traces_finished = recorder.finished();
  return segment;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

// Overhead of `mode` relative to `off`, clamped at 0 (timing jitter can
// make an instrumented run come out faster; negative overhead is noise).
double OverheadPct(double off_rps, double mode_rps) {
  if (off_rps <= 0) return 0;
  return std::max(0.0, (off_rps - mode_rps) / off_rps * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  int num_requests = 0;
  int rounds = 5;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strncmp(arg, "--rounds=", 9) == 0) {
      rounds = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return 2;
    } else {
      num_requests = std::atoi(arg);
    }
  }
  if (num_requests <= 0) num_requests = 4000;
  if (rounds <= 0) rounds = 5;

  gen::PatternParams params;
  params.nb_nodes = 64;
  params.nb_rows = 4;
  params.seed = 1;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);
  std::vector<runtime::FlowRequest> requests;
  requests.reserve(static_cast<size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    const uint64_t seed = gen::InstanceSeed(params, i);
    requests.push_back({gen::MakeSourceBinding(pattern, seed), seed});
  }

  // Mode 3 keeps tracing off but runs the v6 health collector at 100 Hz;
  // its overhead vs `off` is the fleet-health-plane hot-path cost. Mode 4
  // likewise isolates the v8 execution profiler at its default period.
  const uint32_t kModes[] = {0, obs::kDefaultSamplePeriod, 1, 0, 0};
  const char* kModeNames[] = {"off", "sampled", "full", "health", "profiled"};
  const uint32_t kProfilePeriods[] = {0, 0, 0, 0,
                                      obs::kDefaultProfileSamplePeriod};
  std::vector<double> rps[5];
  int64_t traces[5] = {0, 0, 0, 0, 0};
  int64_t expected_work = -1;
  for (int round = 0; round < rounds; ++round) {
    for (int mode = 0; mode < 5; ++mode) {
      const Segment segment = RunOnce(pattern, requests, kModes[mode],
                                      mode == 3, kProfilePeriods[mode]);
      rps[mode].push_back(segment.requests_per_second);
      traces[mode] = segment.traces_finished;
      if (expected_work < 0) expected_work = segment.total_work;
      if (segment.total_work != expected_work) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: mode %s round %d produced "
                     "work %lld, expected %lld\n",
                     kModeNames[mode], round,
                     static_cast<long long>(segment.total_work),
                     static_cast<long long>(expected_work));
        return 1;
      }
    }
  }
  const double off_rps = Median(rps[0]);
  const double sampled_rps = Median(rps[1]);
  const double full_rps = Median(rps[2]);
  const double health_rps = Median(rps[3]);
  const double profiled_rps = Median(rps[4]);
  const double sampled_pct = OverheadPct(off_rps, sampled_rps);
  const double full_pct = OverheadPct(off_rps, full_rps);
  const double health_pct = OverheadPct(off_rps, health_rps);
  const double profile_pct = OverheadPct(off_rps, profiled_rps);

  if (json) {
    std::printf(
        "{\"tool\":\"bench_obs_overhead\",\"requests\":%d,\"rounds\":%d,"
        "\"sample_period\":%u,\"off_rps\":%.1f,\"sampled_rps\":%.1f,"
        "\"full_rps\":%.1f,\"health_rps\":%.1f,\"profiled_rps\":%.1f,"
        "\"sampled_overhead_pct\":%.2f,"
        "\"full_overhead_pct\":%.2f,\"health_overhead_pct\":%.2f,"
        "\"profile_overhead_pct\":%.2f,\"profile_sample_period\":%u,"
        "\"sampled_traces\":%lld,"
        "\"full_traces\":%lld,\"total_work\":%lld}\n",
        num_requests, rounds, obs::kDefaultSamplePeriod, off_rps,
        sampled_rps, full_rps, health_rps, profiled_rps, sampled_pct,
        full_pct, health_pct, profile_pct,
        obs::kDefaultProfileSamplePeriod,
        static_cast<long long>(traces[1]),
        static_cast<long long>(traces[2]),
        static_cast<long long>(expected_work));
  } else {
    std::printf("obs overhead (%d requests, median of %d interleaved "
                "rounds)\n",
                num_requests, rounds);
    std::printf("  %-8s %12s %10s %s\n", "mode", "req/s", "overhead",
                "traces/run");
    std::printf("  %-8s %12.1f %9s%% %lld\n", "off", off_rps, "-",
                static_cast<long long>(0));
    std::printf("  %-8s %12.1f %9.2f%% %lld\n", "sampled", sampled_rps,
                sampled_pct, static_cast<long long>(traces[1]));
    std::printf("  %-8s %12.1f %9.2f%% %lld\n", "full", full_rps, full_pct,
                static_cast<long long>(traces[2]));
    std::printf("  %-8s %12.1f %9.2f%% %s\n", "health", health_rps,
                health_pct, "(collector @100Hz)");
    std::printf("  %-8s %12.1f %9.2f%% %s\n", "profiled", profiled_rps,
                profile_pct, "(profiler @default period)");
    std::printf("  determinism: total work %lld identical across all "
                "modes and rounds\n",
                static_cast<long long>(expected_work));
  }
  return 0;
}
