// Figure 8(a): guideline maps — minimal achievable TimeInUnits as a
// function of the Work budget, one frontier per %enabled value
// (nb_nodes=64, nb_rows=4). Each frontier point names the execution
// strategy attaining it; moving right along a frontier the best strategy
// shifts PCE0 -> PC*100 -> PS*100, as in the paper.

#include <cstdio>

#include "bench_util.h"

namespace {

const char* kStrategies[] = {
    "PCE0",  "PCC0",  "PCE20", "PCE40",  "PCE60",  "PCE80",  "PCE100",
    "PCC100", "PSE20", "PSE40", "PSE60", "PSE80",  "PSE100", "PSC100",
};

}  // namespace

int main() {
  using namespace dflow;
  for (int pct : {10, 25, 50, 75, 100}) {
    gen::PatternParams params;
    params.nb_nodes = 64;
    params.nb_rows = 4;
    params.pct_enabled = pct;

    std::vector<model::StrategyOutcome> outcomes;
    for (const char* s : kStrategies) {
      outcomes.push_back(
          bench::MeasureStrategy(params, *core::Strategy::Parse(s)));
    }
    const auto frontier = model::BuildGuidelineMap(std::move(outcomes));

    std::printf("\n== Figure 8(a) frontier, %%enabled = %d ==\n", pct);
    std::printf("%-12s%-12s%-10s\n", "Work bound", "minT", "strategy");
    for (const auto& p : frontier) {
      std::printf("%-12.1f%-12.1f%-10s\n", p.work_bound, p.min_time_units,
                  p.strategy.c_str());
    }
  }
  return 0;
}
