// Ablation over the data-edge density (Table 1's %added_data_edges row,
// which the paper parameterizes in [-25,+25] but does not plot): how do
// added/deleted data edges change Work and response time?
//
// Expected: added edges raise READY thresholds (more inputs must stabilize)
// which slows parallel strategies; deleted edges shorten chains and make
// backward pruning less connected, slightly raising work under 'P'.

#include "bench_util.h"

int main() {
  using namespace dflow;
  const std::vector<std::string> strategies = {"PCE0", "PCE100", "PSE100"};
  std::vector<double> xs;
  std::vector<std::vector<double>> work(strategies.size());
  std::vector<std::vector<double>> time(strategies.size());

  for (int delta : {-25, -10, 0, 10, 25}) {
    gen::PatternParams params;
    params.nb_nodes = 64;
    params.nb_rows = 4;
    params.pct_enabled = 75;
    params.pct_added_data_edges = delta;
    xs.push_back(delta);
    for (size_t s = 0; s < strategies.size(); ++s) {
      const auto outcome = bench::MeasureStrategy(
          params, *core::Strategy::Parse(strategies[s]));
      work[s].push_back(outcome.mean_work);
      time[s].push_back(outcome.mean_time_units);
    }
  }

  bench::PrintSeriesTable(
      "Ablation: Work vs %added_data_edges (nb_nodes=64, nb_rows=4, "
      "%enabled=75)",
      "%added", strategies, xs, work);
  bench::PrintSeriesTable(
      "Ablation: TimeInUnits vs %added_data_edges (same pattern)", "%added",
      strategies, xs, time);
  return 0;
}
