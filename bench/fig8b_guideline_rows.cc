// Figure 8(b): guideline maps — minimal achievable TimeInUnits vs Work
// budget, one frontier per nb_rows value (nb_nodes=16, %enabled=75; the
// paper's Figure 4 pattern). The paper's reading: "for a work limit of 40
// units, the minimal response time can be obtained with PS*100% when the
// schema pattern has 2 or 4 rows", and no implementation sustains a work
// limit of 25 units with 8 rows.

#include <cstdio>

#include "bench_util.h"

namespace {

const char* kStrategies[] = {
    "PCE0",  "PCC0",  "PCE20", "PCE40",  "PCE60",  "PCE80",  "PCE100",
    "PCC100", "PSE20", "PSE40", "PSE60", "PSE80",  "PSE100", "PSC100",
};

}  // namespace

int main() {
  using namespace dflow;
  for (int rows : {1, 2, 4, 8, 16}) {
    gen::PatternParams params;
    params.nb_nodes = 16;
    params.nb_rows = rows;
    params.pct_enabled = 75;

    std::vector<model::StrategyOutcome> outcomes;
    for (const char* s : kStrategies) {
      outcomes.push_back(
          bench::MeasureStrategy(params, *core::Strategy::Parse(s)));
    }
    const auto frontier = model::BuildGuidelineMap(std::move(outcomes));

    std::printf("\n== Figure 8(b) frontier, nb_rows = %d ==\n", rows);
    std::printf("%-12s%-12s%-10s\n", "Work bound", "minT", "strategy");
    for (const auto& p : frontier) {
      std::printf("%-12.1f%-12.1f%-10s\n", p.work_bound, p.min_time_units,
                  p.strategy.c_str());
    }
    // The paper's example lookup: best strategy within a 40-unit budget.
    if (const auto* best = model::LookupGuideline(frontier, 40.0)) {
      std::printf("Work limit 40 -> %s, expected T = %.1f units\n",
                  best->strategy.c_str(), best->min_time_units);
    } else {
      std::printf("Work limit 40 -> infeasible for every strategy\n");
    }
  }
  return 0;
}
