// Ablation (DESIGN.md §5): the paper's option 'P' bundles two mechanisms —
// eager evaluation of enabling conditions (forward propagation) and
// detection of unneeded attributes (backward propagation). This bench
// isolates each one's contribution to the Figure 5(a) work savings.
//
// Expected: backward detection contributes the bulk of the savings at low
// %enabled (whole severed chains are pruned), while eager evaluation mostly
// *amplifies* backward detection by disabling attributes earlier (its solo
// benefit is small, but combined savings exceed the sum of parts at some
// operating points).

#include "bench_util.h"

int main() {
  using namespace dflow;
  const std::vector<std::string> labels = {"neither(N)", "eager-only",
                                           "backward-only", "full(P)"};
  std::vector<double> xs;
  std::vector<std::vector<double>> work(labels.size());

  for (int pct = 10; pct <= 100; pct += 10) {
    gen::PatternParams params;
    params.nb_nodes = 64;
    params.nb_rows = 4;
    params.pct_enabled = pct;
    xs.push_back(pct);
    int idx = 0;
    for (const auto& [eager, backward] :
         std::vector<std::pair<bool, bool>>{
             {false, false}, {true, false}, {false, true}, {true, true}}) {
      core::Strategy s = *core::Strategy::Parse("PCE0");
      s.eager_conditions_override = eager;
      s.unneeded_detection_override = backward;
      work[static_cast<size_t>(idx++)].push_back(
          bench::MeasureStrategy(params, s).mean_work);
    }
  }

  bench::PrintSeriesTable(
      "Ablation: Work vs %enabled with the 'P' mechanisms isolated "
      "(nb_nodes=64, nb_rows=4, serial Earliest)",
      "%enabled", labels, xs, work);

  // Eager evaluation's real payoff is latency: under full parallelism an
  // eager disable unblocks downstream tasks (their ⊥ input is stable) and
  // resolves conditions sooner. Same ablation, response time at PCE100.
  std::vector<std::vector<double>> time(labels.size());
  std::vector<double> xs2;
  for (int pct = 10; pct <= 100; pct += 10) {
    gen::PatternParams params;
    params.nb_nodes = 64;
    params.nb_rows = 4;
    params.pct_enabled = pct;
    xs2.push_back(pct);
    int idx = 0;
    for (const auto& [eager, backward] :
         std::vector<std::pair<bool, bool>>{
             {false, false}, {true, false}, {false, true}, {true, true}}) {
      core::Strategy s = *core::Strategy::Parse("PCE100");
      s.eager_conditions_override = eager;
      s.unneeded_detection_override = backward;
      time[static_cast<size_t>(idx++)].push_back(
          bench::MeasureStrategy(params, s).mean_time_units);
    }
  }
  bench::PrintSeriesTable(
      "Ablation: TimeInUnits vs %enabled, full parallelism (PCE100 base)",
      "%enabled", labels, xs2, time);
  return 0;
}
