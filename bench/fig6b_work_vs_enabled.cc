// Figure 6(b): Work of PC*100, PS*100 and PCE0 as %enabled varies
// (nb_nodes=64, nb_rows=4) — the work cost of the response-time gains in
// Figure 6(a).
//
// Expected shape: Conservative parallelism (PC*100) costs little extra work
// over the serial PCE0; Speculative (PS*100) pays a large work premium that
// shrinks as %enabled grows (fewer speculations turn out DISABLED).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace dflow;
  const std::vector<std::string> curves = {"PC*100", "PS*100", "PCE0"};
  std::vector<double> xs;
  std::vector<std::vector<double>> work(curves.size());

  for (int pct = 10; pct <= 100; pct += 10) {
    gen::PatternParams params;
    params.nb_nodes = 64;
    params.nb_rows = 4;
    params.pct_enabled = pct;
    xs.push_back(pct);
    work[0].push_back(
        bench::MeasureFamily(params, "PC*100", true, false, 100).mean_work);
    work[1].push_back(
        bench::MeasureFamily(params, "PS*100", true, true, 100).mean_work);
    work[2].push_back(
        bench::MeasureStrategy(params, *core::Strategy::Parse("PCE0"))
            .mean_work);
  }

  bench::PrintSeriesTable(
      "Figure 6(b): Work vs %enabled (nb_nodes=64, nb_rows=4)", "%enabled",
      curves, xs, work);

  const size_t i50 = 4;  // %enabled = 50
  std::printf("\nAt %%enabled=50: speculative work premium over conservative "
              "= %.0f%%\n",
              100.0 * (work[1][i50] - work[0][i50]) / work[0][i50]);
  return 0;
}
