// Figure 7(b): Work of PCC*, PCE*, PSC*, PSE* as %Permitted varies
// (nb_nodes=64, nb_rows=4, %enabled=75).
//
// Expected shape: Earliest and Cheapest consume approximately the same
// work at every parallelism level; Speculative strategies pay a work
// premium that grows with parallelism.

#include "bench_util.h"

int main() {
  using namespace dflow;
  struct Curve {
    std::string label;
    bool speculative;
    core::Strategy::Heuristic heuristic;
  };
  const std::vector<Curve> curves = {
      {"PCC*", false, core::Strategy::Heuristic::kCheapest},
      {"PCE*", false, core::Strategy::Heuristic::kEarliest},
      {"PSC*", true, core::Strategy::Heuristic::kCheapest},
      {"PSE*", true, core::Strategy::Heuristic::kEarliest},
  };

  gen::PatternParams params;
  params.nb_nodes = 64;
  params.nb_rows = 4;
  params.pct_enabled = 75;

  std::vector<double> xs;
  std::vector<std::vector<double>> work(curves.size());
  std::vector<std::string> labels;
  for (const Curve& c : curves) labels.push_back(c.label);

  for (int pct : {0, 20, 40, 60, 80, 100}) {
    xs.push_back(pct);
    for (size_t c = 0; c < curves.size(); ++c) {
      core::Strategy s;
      s.propagation = true;
      s.speculative = curves[c].speculative;
      s.heuristic = curves[c].heuristic;
      s.pct_permitted = pct;
      work[c].push_back(bench::MeasureStrategy(params, s).mean_work);
    }
  }

  bench::PrintSeriesTable(
      "Figure 7(b): Work vs %Permitted (nb_nodes=64, nb_rows=4, %enabled=75)",
      "%Permitted", labels, xs, work);
  return 0;
}
