// Figure 7(a): response time (TimeInUnits) of PCC*, PCE*, PSC*, PSE* as the
// degree of permitted parallelism varies (nb_nodes=64, nb_rows=4,
// %enabled=75).
//
// Expected shape: Earliest-first dominates Cheapest-first at equal
// parallelism (it feeds forward/backward propagation sooner), with the
// largest gaps at intermediate %Permitted (40-80) and under Speculation.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace dflow;
  struct Curve {
    std::string label;
    bool speculative;
    core::Strategy::Heuristic heuristic;
  };
  const std::vector<Curve> curves = {
      {"PCC*", false, core::Strategy::Heuristic::kCheapest},
      {"PCE*", false, core::Strategy::Heuristic::kEarliest},
      {"PSC*", true, core::Strategy::Heuristic::kCheapest},
      {"PSE*", true, core::Strategy::Heuristic::kEarliest},
  };

  gen::PatternParams params;
  params.nb_nodes = 64;
  params.nb_rows = 4;
  params.pct_enabled = 75;

  std::vector<double> xs;
  std::vector<std::vector<double>> time(curves.size());
  std::vector<std::string> labels;
  for (const Curve& c : curves) labels.push_back(c.label);

  for (int pct : {0, 20, 40, 60, 80, 100}) {
    xs.push_back(pct);
    for (size_t c = 0; c < curves.size(); ++c) {
      core::Strategy s;
      s.propagation = true;
      s.speculative = curves[c].speculative;
      s.heuristic = curves[c].heuristic;
      s.pct_permitted = pct;
      time[c].push_back(bench::MeasureStrategy(params, s).mean_time_units);
    }
  }

  bench::PrintSeriesTable(
      "Figure 7(a): TimeInUnits vs %Permitted (nb_nodes=64, nb_rows=4, "
      "%enabled=75)",
      "%Permitted", labels, xs, time);

  const size_t i40 = 2;
  std::printf("\nAt %%Permitted=40: Earliest vs Cheapest gain = %.0f%% "
              "(conservative), %.0f%% (speculative)\n",
              100.0 * (time[0][i40] - time[1][i40]) / time[0][i40],
              100.0 * (time[2][i40] - time[3][i40]) / time[2][i40]);
  return 0;
}
