// bench_strategy_advisor: the AUTO strategy advisor vs every fixed
// strategy on a mixed workload spanning several schema-parameter regimes
// (the paper's Figure 8 axes: %enabled and nb_rows).
//
// Per regime, the advisor calibrates a CostModel over a prefix of the
// instances (the same calibration pass dflow_serve --strategy=AUTO runs at
// startup), then the full workload executes three ways:
//
//   - AUTO: the advisor's per-request choice (class-specific estimates for
//     calibrated instances, the per-regime default aggregate for the
//     rest, plus its deterministic explore schedule);
//   - each fixed candidate strategy, for the best/worst comparison.
//
// The headline numbers — and the CI gate via check_regression.py — are
// auto_vs_best (total AUTO work over the best single fixed strategy's
// total; the guideline says this should stay near 1.0) and auto_vs_worst
// (must stay < 1.0: adapting must beat the worst fixed choice).
//
// Run:  ./build/bench_strategy_advisor [--json]

#include <cstdio>
#include <cstring>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/runner.h"
#include "gen/schema_generator.h"
#include "opt/strategy_advisor.h"

using namespace dflow;

namespace {

struct Regime {
  int pct_enabled;
  int nb_rows;
};

// Three %enabled regimes on the Table 1 default shape plus one deep-rows
// regime: the fixed strategy that minimizes Work differs across them, so
// no single fixed choice can win the mixed workload.
const Regime kRegimes[] = {{10, 4}, {50, 4}, {100, 4}, {50, 16}};
constexpr int kCalibrationInstances = 24;
constexpr int kWorkloadInstances = 72;

gen::GeneratedSchema MakeRegime(const Regime& regime) {
  gen::PatternParams params;
  params.nb_nodes = 64;
  params.nb_rows = regime.nb_rows;
  params.pct_enabled = regime.pct_enabled;
  params.seed = 1000 + static_cast<uint64_t>(regime.pct_enabled) * 16 +
                static_cast<uint64_t>(regime.nb_rows);
  return gen::GeneratePattern(params);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  const std::vector<core::Strategy> candidates =
      opt::StrategyAdvisor::DefaultCandidates();

  double auto_total_work = 0;
  int64_t explores = 0;
  int64_t class_hits = 0;
  std::map<std::string, int64_t> selections;
  std::map<std::string, double> fixed_total_work;
  for (const core::Strategy& candidate : candidates) {
    fixed_total_work[candidate.ToString()] = 0;
  }

  for (const Regime& regime : kRegimes) {
    const gen::GeneratedSchema pattern = MakeRegime(regime);
    const uint64_t schema_salt = opt::SchemaSaltFromParams(pattern.params);

    std::vector<opt::CalibrationInstance> workload;
    workload.reserve(kWorkloadInstances);
    for (int i = 0; i < kWorkloadInstances; ++i) {
      const uint64_t seed = gen::InstanceSeed(pattern.params, i);
      workload.push_back({gen::MakeSourceBinding(pattern, seed), seed});
    }

    opt::CalibrationOptions calibration;
    calibration.candidates = candidates;
    calibration.schema_salt = schema_salt;
    const std::vector<opt::CalibrationInstance> calibration_set(
        workload.begin(), workload.begin() + kCalibrationInstances);
    opt::AdvisorOptions advisor_options;
    advisor_options.schema_salt = schema_salt;
    opt::StrategyAdvisor advisor(
        opt::CalibrateCostModel(pattern.schema, calibration_set, calibration),
        candidates, advisor_options);

    // AUTO: one harness per chosen strategy, exactly like an AUTO shard.
    std::map<std::string, std::unique_ptr<core::FlowHarness>> harnesses;
    for (const opt::CalibrationInstance& instance : workload) {
      const opt::AdvisorChoice choice =
          advisor.Choose(instance.sources, instance.seed);
      const std::string name = choice.strategy.ToString();
      auto& harness = harnesses[name];
      if (harness == nullptr) {
        harness = std::make_unique<core::FlowHarness>(&pattern.schema,
                                                      choice.strategy);
      }
      const core::InstanceResult result =
          harness->Run(instance.sources, instance.seed);
      auto_total_work += static_cast<double>(result.metrics.work);
      ++selections[name];
      if (choice.explored) ++explores;
      if (choice.class_hit) ++class_hits;
    }

    // Every fixed strategy over the same workload.
    for (const core::Strategy& candidate : candidates) {
      core::FlowHarness harness(&pattern.schema, candidate);
      double total = 0;
      for (const opt::CalibrationInstance& instance : workload) {
        total += static_cast<double>(
            harness.Run(instance.sources, instance.seed).metrics.work);
      }
      fixed_total_work[candidate.ToString()] += total;
    }
  }

  std::string best_fixed, worst_fixed;
  double best_work = 0, worst_work = 0;
  for (const auto& [name, total] : fixed_total_work) {
    if (best_fixed.empty() || total < best_work) {
      best_fixed = name;
      best_work = total;
    }
    if (worst_fixed.empty() || total > worst_work) {
      worst_fixed = name;
      worst_work = total;
    }
  }
  const double auto_vs_best = best_work > 0 ? auto_total_work / best_work : 0;
  const double auto_vs_worst =
      worst_work > 0 ? auto_total_work / worst_work : 0;

  const int total_instances =
      static_cast<int>(std::size(kRegimes)) * kWorkloadInstances;
  if (json) {
    std::string selections_json = "{";
    for (const auto& [name, count] : selections) {
      if (selections_json.size() > 1) selections_json += ",";
      selections_json += "\"" + name + "\":" + std::to_string(count);
    }
    selections_json += "}";
    std::string fixed_json = "{";
    for (const auto& [name, total] : fixed_total_work) {
      if (fixed_json.size() > 1) fixed_json += ",";
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "\"%s\":%.1f", name.c_str(),
                    total);
      fixed_json += buffer;
    }
    fixed_json += "}";
    std::printf(
        "{\"tool\":\"bench_strategy_advisor\",\"regimes\":%d,"
        "\"instances\":%d,\"calibration_instances_per_regime\":%d,"
        "\"auto_total_work\":%.1f,"
        "\"best_fixed\":{\"strategy\":\"%s\",\"total_work\":%.1f},"
        "\"worst_fixed\":{\"strategy\":\"%s\",\"total_work\":%.1f},"
        "\"auto_vs_best\":%.4f,\"auto_vs_worst\":%.4f,"
        "\"explores\":%lld,\"class_hits\":%lld,"
        "\"selections\":%s,\"fixed_total_work\":%s}\n",
        static_cast<int>(std::size(kRegimes)), total_instances,
        kCalibrationInstances, auto_total_work, best_fixed.c_str(), best_work,
        worst_fixed.c_str(), worst_work, auto_vs_best, auto_vs_worst,
        static_cast<long long>(explores), static_cast<long long>(class_hits),
        selections_json.c_str(), fixed_json.c_str());
    return 0;
  }

  std::printf("== strategy advisor: AUTO vs fixed strategies ==\n");
  std::printf("mixed workload: %d regimes x %d instances "
              "(%d calibrated per regime)\n\n",
              static_cast<int>(std::size(kRegimes)), kWorkloadInstances,
              kCalibrationInstances);
  std::printf("%-12s%-14s\n", "strategy", "total work");
  for (const auto& [name, total] : fixed_total_work) {
    std::printf("%-12s%-14.1f\n", name.c_str(), total);
  }
  std::printf("%-12s%-14.1f\n", "AUTO", auto_total_work);
  std::printf("\nAUTO vs best fixed (%s): %.3fx; vs worst fixed (%s): "
              "%.3fx\n",
              best_fixed.c_str(), auto_vs_best, worst_fixed.c_str(),
              auto_vs_worst);
  std::printf("explores: %lld, class hits: %lld/%d; selections:",
              static_cast<long long>(explores),
              static_cast<long long>(class_hits), total_instances);
  for (const auto& [name, count] : selections) {
    std::printf(" %s=%lld", name.c_str(), static_cast<long long>(count));
  }
  std::printf("\n");
  return 0;
}
