// Figure 9(a): the database characteristic function Db — response time of
// one unit of processing (UnitTime, ms) as a function of the database
// multiprogramming level Gmpl. Measured empirically on the simulated
// database the Figure 9 experiments use (calibrated to the published
// curve: ~10ms at low load rising toward ~100ms at Gmpl=35; see
// bench_util.h and EXPERIMENTS.md).

#include <cstdio>

#include "bench_util.h"
#include "sim/db_profiler.h"

int main() {
  using namespace dflow;
  sim::DbProfiler profiler(bench::PaperCalibratedDb(), /*seed=*/42);

  std::printf("\n== Figure 9(a): UnitTime vs Gmpl (calibrated database) ==\n");
  std::printf("%-8s%-12s\n", "Gmpl", "UnitTime(ms)");
  for (int g = 1; g <= 35; ++g) {
    const sim::DbSample s = profiler.Measure(g, 1000, 10000);
    std::printf("%-8d%-12.2f\n", g, s.unit_time_ms);
  }

  // For reference, the same curve for the raw Table 1 parameters.
  sim::DbProfiler table1(sim::DatabaseParams{}, /*seed=*/42);
  std::printf("\n-- Raw Table 1 parameters (for comparison) --\n");
  std::printf("%-8s%-12s\n", "Gmpl", "UnitTime(ms)");
  for (int g : {1, 5, 10, 15, 20, 25, 30, 35}) {
    std::printf("%-8d%-12.2f\n", g, table1.Measure(g, 1000, 10000).unit_time_ms);
  }
  return 0;
}
