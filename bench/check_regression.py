#!/usr/bin/env python3
"""Benchmark-regression gate for CI.

Compares a BENCH_pr.json (written by the benchmark-regression job: the
--json outputs of bench_throughput_vs_shards, the loopback dflow_load
run, and bench_strategy_advisor, wrapped in one object) against the
checked-in baseline (bench/BENCH_baseline.json) and exits nonzero when
any compared throughput number drops more than --max-drop below its
baseline.

The strategy-advisor section is gated on absolute quality rather than a
drop budget: AUTO's total work must stay within the baseline's
max_auto_vs_best factor of the best fixed strategy and strictly below
the worst fixed strategy's (the whole point of adapting).

Only metrics present in BOTH files are compared (the shard sweep's row
set depends on the machine's core count), so the gate works on any
runner width. Improvements never fail the gate — re-seed the baseline
from a fresh BENCH_pr.json artifact when a PR makes things faster on
purpose, so the floor ratchets up.

Re-seeding: --write-baseline regenerates the baseline file from the
current BENCH_pr.json instead of gating — throughput floors are the
measured values scaled by --headroom (default 0.5, the same deliberate
conservatism as the seed baseline, so cross-machine variance cannot trip
the gate), while the absolute policy ceilings (max_sampled_overhead_pct,
max_health_overhead_pct, max_auto_vs_best) carry over from the existing
baseline rather than being derived from one run's measurement.

Usage: check_regression.py BENCH_pr.json bench/BENCH_baseline.json
           [--max-drop=0.30]
       check_regression.py BENCH_pr.json bench/BENCH_baseline.json
           --write-baseline [--headroom=0.5]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def fetch(obj, source, *keys):
    """Walks obj[k0][k1]... and fails loudly when a level is missing.

    A benchmark job that silently skipped a section used to surface here
    as a bare KeyError traceback; name the file and the missing path
    instead so the CI log says what to fix.
    """
    path = []
    for key in keys:
        path.append(str(key))
        if not isinstance(obj, dict) or key not in obj:
            print("FAIL: %s is missing benchmark row '%s' -- did the "
                  "benchmark job that writes it get skipped or fail?"
                  % (source, ".".join(path)))
            raise SystemExit(1)
        obj = obj[key]
    return obj


def write_baseline(current, source, baseline_path, old_baseline, headroom):
    """Regenerates the checked-in baseline from a fresh BENCH_pr.json.

    Throughput floors are the run's measurements scaled by `headroom`;
    policy ceilings (absolute quality gates) survive from the old
    baseline because one run cannot justify loosening or tightening a
    policy number.
    """
    def ceiling(section, key, default):
        return old_baseline.get(section, {}).get(key, default)

    tvs = fetch(current, source, "throughput_vs_shards")
    rows = []
    for row in fetch(tvs, source, "rows"):
        scaled = dict(row)
        scaled["instances_per_second"] = round(
            fetch(row, source, "instances_per_second") * headroom, 1)
        scaled["cached_instances_per_second"] = round(
            fetch(row, source, "cached_instances_per_second") * headroom, 1)
        rows.append(scaled)
    tvs_out = dict(tvs)
    tvs_out["rows"] = rows

    dflow_load = dict(fetch(current, source, "dflow_load"))
    measured_rps = fetch(dflow_load, source, "requests_per_second")
    dflow_load["requests_per_second"] = round(measured_rps * headroom, 1)

    batch = dict(fetch(current, source, "batch_throughput"))
    measured_batch_rps = fetch(batch, source, "requests_per_second")
    batch["requests_per_second"] = round(measured_batch_rps * headroom, 1)

    out = {
        "schema": "dflow-bench-v1",
        "comment": "Re-seeded by check_regression.py --write-baseline from "
                   "a BENCH_pr.json artifact. Throughput floors are the "
                   "measured values scaled by %.2f; the obs_overhead and "
                   "strategy_advisor ceilings are absolute policy bars "
                   "carried over unchanged." % headroom,
        "throughput_vs_shards": tvs_out,
        "obs_overhead": {
            "comment": "Absolute ceilings: sampled tracing, the 100Hz "
                       "health collector, and sampled execution profiling "
                       "must each cost under their max_*_overhead_pct of "
                       "closed-loop throughput.",
            "max_sampled_overhead_pct": ceiling(
                "obs_overhead", "max_sampled_overhead_pct", 2.0),
            "max_health_overhead_pct": ceiling(
                "obs_overhead", "max_health_overhead_pct", 2.0),
            "max_profile_overhead_pct": ceiling(
                "obs_overhead", "max_profile_overhead_pct", 2.0),
        },
        "strategy_advisor": {
            "comment": "Absolute quality gate: AUTO total work within "
                       "max_auto_vs_best of the best fixed strategy and "
                       "strictly below the worst fixed strategy's.",
            "max_auto_vs_best": ceiling(
                "strategy_advisor", "max_auto_vs_best", 1.10),
        },
        "batch_throughput": batch,
        "dflow_load": dflow_load,
    }
    with open(baseline_path, "w") as f:
        json.dump(out, f, indent=1)
        f.write("\n")
    print("wrote %s from %s (headroom %.2f):" % (baseline_path, source,
                                                 headroom))
    for row in rows:
        print("  throughput_vs_shards[%d shards] floor %.1f instances/s"
              % (row["shards"], row["instances_per_second"]))
    print("  dflow_load floor %.1f requests/s (measured %.1f)"
          % (dflow_load["requests_per_second"], measured_rps))
    print("  batch_throughput floor %.1f requests/s (measured %.1f)"
          % (batch["requests_per_second"], measured_batch_rps))
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current", help="BENCH_pr.json from this run")
    parser.add_argument("baseline", help="checked-in BENCH_baseline.json")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.30,
        help="maximum tolerated fractional drop below baseline (default 0.30)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline file from the current run instead of "
             "gating against it",
    )
    parser.add_argument(
        "--headroom",
        type=float,
        default=0.5,
        help="fraction of the measured throughput written as the new floor "
             "with --write-baseline (default 0.5)",
    )
    args = parser.parse_args()
    current = load(args.current)
    if args.write_baseline:
        if not 0 < args.headroom <= 1.0:
            print("FAIL: --headroom must be in (0, 1], got %s"
                  % args.headroom)
            return 1
        try:
            old_baseline = load(args.baseline)
        except FileNotFoundError:
            old_baseline = {}
        return write_baseline(current, args.current, args.baseline,
                              old_baseline, args.headroom)
    baseline = load(args.baseline)

    # (name, current value, baseline value) triples; higher is better.
    checks = []
    base_rows = {
        row["shards"]: row
        for row in fetch(baseline, args.baseline,
                         "throughput_vs_shards", "rows")
    }
    for row in fetch(current, args.current, "throughput_vs_shards", "rows"):
        base = base_rows.get(row["shards"])
        if base is None:
            continue
        shards = row["shards"]
        checks.append((
            "throughput_vs_shards[%d shards] instances/s" % shards,
            fetch(row, args.current, "instances_per_second"),
            fetch(base, args.baseline, "instances_per_second"),
        ))
        checks.append((
            "throughput_vs_shards[%d shards] cached instances/s" % shards,
            fetch(row, args.current, "cached_instances_per_second"),
            fetch(base, args.baseline, "cached_instances_per_second"),
        ))
    checks.append((
        "dflow_load requests/s",
        fetch(current, args.current, "dflow_load", "requests_per_second"),
        fetch(baseline, args.baseline, "dflow_load", "requests_per_second"),
    ))
    # Pipelined batch path (wire v7): gated like the other throughput
    # floors, but only when both sides carry the row so pre-v7 artifacts
    # still compare cleanly.
    if "batch_throughput" in current and "batch_throughput" in baseline:
        checks.append((
            "batch_throughput (swarm) requests/s",
            fetch(current, args.current,
                  "batch_throughput", "requests_per_second"),
            fetch(baseline, args.baseline,
                  "batch_throughput", "requests_per_second"),
        ))

    if not checks:
        print("FAIL: no comparable metrics between current and baseline")
        return 1

    failures = 0
    for name, cur, base in checks:
        floor = base * (1.0 - args.max_drop)
        ok = cur >= floor
        print("%-4s %-48s current=%10.1f baseline=%10.1f floor=%10.1f"
              % ("OK" if ok else "FAIL", name, cur, base, floor))
        if not ok:
            failures += 1

    # Correctness rider: the archived load-driver run must have been clean
    # (determinism violations already fail the bench binary itself).
    load_errors = fetch(current, args.current, "dflow_load", "errors")
    if load_errors != 0:
        print("FAIL dflow_load saw %d errors" % load_errors)
        failures += 1
    if "batch_throughput" in current:
        batch_errors = fetch(current, args.current,
                             "batch_throughput", "errors")
        if batch_errors != 0:
            print("FAIL batch_throughput run saw %d errors" % batch_errors)
            failures += 1

    # Observability-overhead gate (absolute ceiling, not drop-relative):
    # tracing at the default sampling rate must stay off the hot path.
    if "obs_overhead" in current and "obs_overhead" in baseline:
        overhead = fetch(current, args.current,
                         "obs_overhead", "sampled_overhead_pct")
        ceiling = fetch(baseline, args.baseline,
                        "obs_overhead", "max_sampled_overhead_pct")
        ok = overhead <= ceiling
        print("%-4s %-48s current=%10.2f ceiling=%10.2f"
              % ("OK" if ok else "FAIL",
                 "obs_overhead sampled_overhead_pct", overhead, ceiling))
        if not ok:
            failures += 1
        # Health-collector rider (PR 8): only when both sides know about
        # it, so the gate tightens as the baseline is re-seeded.
        if ("health_overhead_pct" in current["obs_overhead"]
                and "max_health_overhead_pct" in baseline["obs_overhead"]):
            overhead = fetch(current, args.current,
                             "obs_overhead", "health_overhead_pct")
            ceiling = fetch(baseline, args.baseline,
                            "obs_overhead", "max_health_overhead_pct")
            ok = overhead <= ceiling
            print("%-4s %-48s current=%10.2f ceiling=%10.2f"
                  % ("OK" if ok else "FAIL",
                     "obs_overhead health_overhead_pct", overhead, ceiling))
            if not ok:
                failures += 1
        # Execution-profiler rider (v8 profiling plane): sampled profiling
        # must stay under its own absolute ceiling. Both-sides-present so
        # pre-v8 artifacts still compare cleanly.
        if ("profile_overhead_pct" in current["obs_overhead"]
                and "max_profile_overhead_pct" in baseline["obs_overhead"]):
            overhead = fetch(current, args.current,
                             "obs_overhead", "profile_overhead_pct")
            ceiling = fetch(baseline, args.baseline,
                            "obs_overhead", "max_profile_overhead_pct")
            ok = overhead <= ceiling
            print("%-4s %-48s current=%10.2f ceiling=%10.2f"
                  % ("OK" if ok else "FAIL",
                     "obs_overhead profile_overhead_pct", overhead, ceiling))
            if not ok:
                failures += 1

    # Strategy-advisor quality gate (absolute, not drop-relative).
    if "strategy_advisor" in current and "strategy_advisor" in baseline:
        auto_vs_best = fetch(current, args.current,
                             "strategy_advisor", "auto_vs_best")
        auto_vs_worst = fetch(current, args.current,
                              "strategy_advisor", "auto_vs_worst")
        max_vs_best = fetch(baseline, args.baseline,
                            "strategy_advisor", "max_auto_vs_best")
        ok = auto_vs_best <= max_vs_best
        print("%-4s %-48s current=%10.4f ceiling=%10.4f"
              % ("OK" if ok else "FAIL",
                 "strategy_advisor auto_vs_best", auto_vs_best,
                 max_vs_best))
        if not ok:
            failures += 1
        ok = auto_vs_worst < 1.0
        print("%-4s %-48s current=%10.4f ceiling=%10.4f"
              % ("OK" if ok else "FAIL",
                 "strategy_advisor auto_vs_worst", auto_vs_worst,
                 1.0))
        if not ok:
            failures += 1

    if failures:
        print("\n%d regression(s) beyond the %.0f%% budget"
              % (failures, args.max_drop * 100))
        return 1
    print("\nall throughput metrics within the %.0f%% budget"
          % (args.max_drop * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
