#!/usr/bin/env python3
"""Benchmark-regression gate for CI.

Compares a BENCH_pr.json (written by the benchmark-regression job: the
--json outputs of bench_throughput_vs_shards, the loopback dflow_load
run, and bench_strategy_advisor, wrapped in one object) against the
checked-in baseline (bench/BENCH_baseline.json) and exits nonzero when
any compared throughput number drops more than --max-drop below its
baseline.

The strategy-advisor section is gated on absolute quality rather than a
drop budget: AUTO's total work must stay within the baseline's
max_auto_vs_best factor of the best fixed strategy and strictly below
the worst fixed strategy's (the whole point of adapting).

Only metrics present in BOTH files are compared (the shard sweep's row
set depends on the machine's core count), so the gate works on any
runner width. Improvements never fail the gate — re-seed the baseline
from a fresh BENCH_pr.json artifact when a PR makes things faster on
purpose, so the floor ratchets up.

Usage: check_regression.py BENCH_pr.json bench/BENCH_baseline.json
           [--max-drop=0.30]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def fetch(obj, source, *keys):
    """Walks obj[k0][k1]... and fails loudly when a level is missing.

    A benchmark job that silently skipped a section used to surface here
    as a bare KeyError traceback; name the file and the missing path
    instead so the CI log says what to fix.
    """
    path = []
    for key in keys:
        path.append(str(key))
        if not isinstance(obj, dict) or key not in obj:
            print("FAIL: %s is missing benchmark row '%s' -- did the "
                  "benchmark job that writes it get skipped or fail?"
                  % (source, ".".join(path)))
            raise SystemExit(1)
        obj = obj[key]
    return obj


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current", help="BENCH_pr.json from this run")
    parser.add_argument("baseline", help="checked-in BENCH_baseline.json")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.30,
        help="maximum tolerated fractional drop below baseline (default 0.30)",
    )
    args = parser.parse_args()
    current = load(args.current)
    baseline = load(args.baseline)

    # (name, current value, baseline value) triples; higher is better.
    checks = []
    base_rows = {
        row["shards"]: row
        for row in fetch(baseline, args.baseline,
                         "throughput_vs_shards", "rows")
    }
    for row in fetch(current, args.current, "throughput_vs_shards", "rows"):
        base = base_rows.get(row["shards"])
        if base is None:
            continue
        shards = row["shards"]
        checks.append((
            "throughput_vs_shards[%d shards] instances/s" % shards,
            fetch(row, args.current, "instances_per_second"),
            fetch(base, args.baseline, "instances_per_second"),
        ))
        checks.append((
            "throughput_vs_shards[%d shards] cached instances/s" % shards,
            fetch(row, args.current, "cached_instances_per_second"),
            fetch(base, args.baseline, "cached_instances_per_second"),
        ))
    checks.append((
        "dflow_load requests/s",
        fetch(current, args.current, "dflow_load", "requests_per_second"),
        fetch(baseline, args.baseline, "dflow_load", "requests_per_second"),
    ))

    if not checks:
        print("FAIL: no comparable metrics between current and baseline")
        return 1

    failures = 0
    for name, cur, base in checks:
        floor = base * (1.0 - args.max_drop)
        ok = cur >= floor
        print("%-4s %-48s current=%10.1f baseline=%10.1f floor=%10.1f"
              % ("OK" if ok else "FAIL", name, cur, base, floor))
        if not ok:
            failures += 1

    # Correctness rider: the archived load-driver run must have been clean
    # (determinism violations already fail the bench binary itself).
    load_errors = fetch(current, args.current, "dflow_load", "errors")
    if load_errors != 0:
        print("FAIL dflow_load saw %d errors" % load_errors)
        failures += 1

    # Observability-overhead gate (absolute ceiling, not drop-relative):
    # tracing at the default sampling rate must stay off the hot path.
    if "obs_overhead" in current and "obs_overhead" in baseline:
        overhead = fetch(current, args.current,
                         "obs_overhead", "sampled_overhead_pct")
        ceiling = fetch(baseline, args.baseline,
                        "obs_overhead", "max_sampled_overhead_pct")
        ok = overhead <= ceiling
        print("%-4s %-48s current=%10.2f ceiling=%10.2f"
              % ("OK" if ok else "FAIL",
                 "obs_overhead sampled_overhead_pct", overhead, ceiling))
        if not ok:
            failures += 1

    # Strategy-advisor quality gate (absolute, not drop-relative).
    if "strategy_advisor" in current and "strategy_advisor" in baseline:
        auto_vs_best = fetch(current, args.current,
                             "strategy_advisor", "auto_vs_best")
        auto_vs_worst = fetch(current, args.current,
                              "strategy_advisor", "auto_vs_worst")
        max_vs_best = fetch(baseline, args.baseline,
                            "strategy_advisor", "max_auto_vs_best")
        ok = auto_vs_best <= max_vs_best
        print("%-4s %-48s current=%10.4f ceiling=%10.4f"
              % ("OK" if ok else "FAIL",
                 "strategy_advisor auto_vs_best", auto_vs_best,
                 max_vs_best))
        if not ok:
            failures += 1
        ok = auto_vs_worst < 1.0
        print("%-4s %-48s current=%10.4f ceiling=%10.4f"
              % ("OK" if ok else "FAIL",
                 "strategy_advisor auto_vs_worst", auto_vs_worst,
                 1.0))
        if not ok:
            failures += 1

    if failures:
        print("\n%d regression(s) beyond the %.0f%% budget"
              % (failures, args.max_drop * 100))
        return 1
    print("\nall throughput metrics within the %.0f%% budget"
          % (args.max_drop * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
