#!/usr/bin/env python3
"""Benchmark-regression gate for CI.

Compares a BENCH_pr.json (written by the benchmark-regression job: the
--json outputs of bench_throughput_vs_shards, the loopback dflow_load
run, and bench_strategy_advisor, wrapped in one object) against the
checked-in baseline (bench/BENCH_baseline.json) and exits nonzero when
any compared throughput number drops more than --max-drop below its
baseline.

The strategy-advisor section is gated on absolute quality rather than a
drop budget: AUTO's total work must stay within the baseline's
max_auto_vs_best factor of the best fixed strategy and strictly below
the worst fixed strategy's (the whole point of adapting).

Only metrics present in BOTH files are compared (the shard sweep's row
set depends on the machine's core count), so the gate works on any
runner width. Improvements never fail the gate — re-seed the baseline
from a fresh BENCH_pr.json artifact when a PR makes things faster on
purpose, so the floor ratchets up.

Usage: check_regression.py BENCH_pr.json bench/BENCH_baseline.json
           [--max-drop=0.30]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current", help="BENCH_pr.json from this run")
    parser.add_argument("baseline", help="checked-in BENCH_baseline.json")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.30,
        help="maximum tolerated fractional drop below baseline (default 0.30)",
    )
    args = parser.parse_args()
    current = load(args.current)
    baseline = load(args.baseline)

    # (name, current value, baseline value) triples; higher is better.
    checks = []
    base_rows = {
        row["shards"]: row
        for row in baseline["throughput_vs_shards"]["rows"]
    }
    for row in current["throughput_vs_shards"]["rows"]:
        base = base_rows.get(row["shards"])
        if base is None:
            continue
        checks.append((
            "throughput_vs_shards[%d shards] instances/s" % row["shards"],
            row["instances_per_second"],
            base["instances_per_second"],
        ))
        checks.append((
            "throughput_vs_shards[%d shards] cached instances/s"
            % row["shards"],
            row["cached_instances_per_second"],
            base["cached_instances_per_second"],
        ))
    checks.append((
        "dflow_load requests/s",
        current["dflow_load"]["requests_per_second"],
        baseline["dflow_load"]["requests_per_second"],
    ))

    if not checks:
        print("FAIL: no comparable metrics between current and baseline")
        return 1

    failures = 0
    for name, cur, base in checks:
        floor = base * (1.0 - args.max_drop)
        ok = cur >= floor
        print("%-4s %-48s current=%10.1f baseline=%10.1f floor=%10.1f"
              % ("OK" if ok else "FAIL", name, cur, base, floor))
        if not ok:
            failures += 1

    # Correctness rider: the archived load-driver run must have been clean
    # (determinism violations already fail the bench binary itself).
    if current["dflow_load"]["errors"] != 0:
        print("FAIL dflow_load saw %d errors"
              % current["dflow_load"]["errors"])
        failures += 1

    # Observability-overhead gate (absolute ceiling, not drop-relative):
    # tracing at the default sampling rate must stay off the hot path.
    if "obs_overhead" in current and "obs_overhead" in baseline:
        overhead = current["obs_overhead"]["sampled_overhead_pct"]
        ceiling = baseline["obs_overhead"]["max_sampled_overhead_pct"]
        ok = overhead <= ceiling
        print("%-4s %-48s current=%10.2f ceiling=%10.2f"
              % ("OK" if ok else "FAIL",
                 "obs_overhead sampled_overhead_pct", overhead, ceiling))
        if not ok:
            failures += 1

    # Strategy-advisor quality gate (absolute, not drop-relative).
    if "strategy_advisor" in current and "strategy_advisor" in baseline:
        advisor = current["strategy_advisor"]
        max_vs_best = baseline["strategy_advisor"]["max_auto_vs_best"]
        ok = advisor["auto_vs_best"] <= max_vs_best
        print("%-4s %-48s current=%10.4f ceiling=%10.4f"
              % ("OK" if ok else "FAIL",
                 "strategy_advisor auto_vs_best", advisor["auto_vs_best"],
                 max_vs_best))
        if not ok:
            failures += 1
        ok = advisor["auto_vs_worst"] < 1.0
        print("%-4s %-48s current=%10.4f ceiling=%10.4f"
              % ("OK" if ok else "FAIL",
                 "strategy_advisor auto_vs_worst", advisor["auto_vs_worst"],
                 1.0))
        if not ok:
            failures += 1

    if failures:
        print("\n%d regression(s) beyond the %.0f%% budget"
              % (failures, args.max_drop * 100))
        return 1
    print("\nall throughput metrics within the %.0f%% budget"
          % (args.max_drop * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
