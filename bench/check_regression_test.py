#!/usr/bin/env python3
"""Self-test for the benchmark-regression gate (bench/check_regression.py).

The gate is the last line of defense for every performance floor in CI,
so its own failure modes are tested here: a missing benchmark row must
fail loudly (not KeyError), a ceiling violation must gate, and the
--write-baseline --headroom path must produce a baseline the gate then
accepts for the very run that seeded it.

Stdlib-only (unittest + importlib); run directly or via CI:
    python3 bench/check_regression_test.py
"""

import contextlib
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "check_regression", os.path.join(_HERE, "check_regression.py"))
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def make_result(rps=1000.0, sampled_pct=0.5, health_pct=0.5,
                profile_pct=0.5, auto_vs_best=1.02, auto_vs_worst=0.6):
    """A complete BENCH_pr.json-shaped object with healthy numbers."""
    return {
        "throughput_vs_shards": {
            "rows": [
                {"shards": 1, "instances_per_second": rps,
                 "cached_instances_per_second": rps * 4},
                {"shards": 2, "instances_per_second": rps * 1.8,
                 "cached_instances_per_second": rps * 7},
            ],
        },
        "dflow_load": {"requests_per_second": rps, "errors": 0},
        "batch_throughput": {"requests_per_second": rps * 2, "errors": 0},
        "obs_overhead": {
            "sampled_overhead_pct": sampled_pct,
            "health_overhead_pct": health_pct,
            "profile_overhead_pct": profile_pct,
        },
        "strategy_advisor": {
            "auto_vs_best": auto_vs_best,
            "auto_vs_worst": auto_vs_worst,
        },
    }


def make_baseline(rps=500.0):
    base = make_result(rps=rps)
    base["obs_overhead"] = {
        "max_sampled_overhead_pct": 2.0,
        "max_health_overhead_pct": 2.0,
        "max_profile_overhead_pct": 2.0,
    }
    base["strategy_advisor"] = {"max_auto_vs_best": 1.10}
    return base


class GateTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def _write(self, name, obj):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            json.dump(obj, f)
        return path

    def _run(self, argv):
        """Runs main() with argv, returning (exit_status, stdout_text)."""
        out = io.StringIO()
        old_argv = sys.argv
        sys.argv = ["check_regression.py"] + argv
        try:
            with contextlib.redirect_stdout(out):
                try:
                    status = check_regression.main()
                except SystemExit as e:  # fetch() raises SystemExit(1)
                    status = e.code
        finally:
            sys.argv = old_argv
        return status, out.getvalue()

    def test_healthy_run_passes(self):
        current = self._write("pr.json", make_result())
        baseline = self._write("base.json", make_baseline())
        status, out = self._run([current, baseline])
        self.assertEqual(status, 0, out)
        self.assertNotIn("FAIL", out)
        self.assertIn("profile_overhead_pct", out)

    def test_missing_row_fails_loudly(self):
        broken = make_result()
        del broken["dflow_load"]["requests_per_second"]
        current = self._write("pr.json", broken)
        baseline = self._write("base.json", make_baseline())
        status, out = self._run([current, baseline])
        self.assertEqual(status, 1, out)
        self.assertIn("missing benchmark row", out)
        self.assertIn("dflow_load.requests_per_second", out)

    def test_throughput_drop_beyond_budget_fails(self):
        current = self._write("pr.json", make_result(rps=100.0))
        baseline = self._write("base.json", make_baseline(rps=500.0))
        status, out = self._run([current, baseline, "--max-drop=0.30"])
        self.assertEqual(status, 1, out)
        self.assertIn("FAIL", out)

    def test_profile_overhead_ceiling_violation_fails(self):
        current = self._write("pr.json", make_result(profile_pct=5.0))
        baseline = self._write("base.json", make_baseline())
        status, out = self._run([current, baseline])
        self.assertEqual(status, 1, out)
        self.assertIn("FAIL obs_overhead profile_overhead_pct", out)

    def test_pre_v8_artifact_without_profile_row_still_compares(self):
        old = make_result()
        del old["obs_overhead"]["profile_overhead_pct"]
        current = self._write("pr.json", old)
        baseline = self._write("base.json", make_baseline())
        status, out = self._run([current, baseline])
        self.assertEqual(status, 0, out)
        self.assertNotIn("profile_overhead_pct", out)

    def test_write_baseline_headroom_round_trip(self):
        result = make_result(rps=1000.0)
        current = self._write("pr.json", result)
        baseline = self._write("base.json", make_baseline())
        status, out = self._run(
            [current, baseline, "--write-baseline", "--headroom=0.5"])
        self.assertEqual(status, 0, out)

        with open(baseline) as f:
            written = json.load(f)
        # Floors are measured * headroom; policy ceilings carry over.
        self.assertAlmostEqual(
            written["dflow_load"]["requests_per_second"], 500.0)
        self.assertAlmostEqual(
            written["batch_throughput"]["requests_per_second"], 1000.0)
        self.assertEqual(
            written["obs_overhead"]["max_profile_overhead_pct"], 2.0)
        self.assertEqual(
            written["strategy_advisor"]["max_auto_vs_best"], 1.10)

        # The run that seeded the baseline must pass the gate against it.
        status, out = self._run([current, baseline])
        self.assertEqual(status, 0, out)

    def test_write_baseline_rejects_bad_headroom(self):
        current = self._write("pr.json", make_result())
        baseline = self._write("base.json", make_baseline())
        status, out = self._run(
            [current, baseline, "--write-baseline", "--headroom=1.5"])
        self.assertEqual(status, 1, out)
        self.assertIn("--headroom", out)


if __name__ == "__main__":
    unittest.main()
