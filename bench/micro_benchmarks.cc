// Google-benchmark microbenchmarks for the engine's real (wall-clock)
// costs: prequalifier passes, full instance executions per strategy,
// pattern generation, and the discrete-event simulator core. These measure
// the *implementation*, complementing the fig* binaries which measure the
// *simulated* metrics of the paper.

#include <benchmark/benchmark.h>

#include "core/prequalifier.h"
#include "core/runner.h"
#include "core/semantics.h"
#include "gen/schema_generator.h"
#include "sim/simulator.h"

namespace {

using namespace dflow;

const gen::GeneratedSchema& Pattern64() {
  static const gen::GeneratedSchema& pattern = *new gen::GeneratedSchema([] {
    gen::PatternParams p;
    p.nb_nodes = 64;
    p.nb_rows = 4;
    p.pct_enabled = 75;
    return gen::GeneratePattern(p);
  }());
  return pattern;
}

void BM_PrequalifierPass(benchmark::State& state) {
  const auto& pattern = Pattern64();
  core::Strategy strategy;  // PCE0
  for (auto _ : state) {
    core::Snapshot snap(&pattern.schema);
    snap.BindSources(gen::MakeSourceBinding(pattern, 1));
    core::Prequalifier preq(&pattern.schema, strategy);
    preq.Update(&snap);
    benchmark::DoNotOptimize(preq.candidates().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          pattern.schema.num_attributes());
}
BENCHMARK(BM_PrequalifierPass);

void BM_InstanceExecution(benchmark::State& state) {
  const auto& pattern = Pattern64();
  const char* names[] = {"NCE0", "PCE0", "PCE100", "PSE100"};
  const core::Strategy strategy =
      *core::Strategy::Parse(names[state.range(0)]);
  uint64_t seed = 0;
  int64_t total_work = 0;
  for (auto _ : state) {
    const auto result = core::RunSingleInfinite(
        pattern.schema, gen::MakeSourceBinding(pattern, seed), seed, strategy);
    total_work += result.metrics.work;
    ++seed;
  }
  state.SetLabel(strategy.ToString());
  state.counters["sim_work_units"] =
      benchmark::Counter(static_cast<double>(total_work),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_InstanceExecution)->DenseRange(0, 3);

void BM_ReferenceEvaluator(benchmark::State& state) {
  const auto& pattern = Pattern64();
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EvaluateComplete(
        pattern.schema, gen::MakeSourceBinding(pattern, seed), seed));
    ++seed;
  }
}
BENCHMARK(BM_ReferenceEvaluator);

void BM_PatternGeneration(benchmark::State& state) {
  gen::PatternParams p;
  p.nb_nodes = static_cast<int>(state.range(0));
  p.nb_rows = 4;
  uint64_t seed = 0;
  for (auto _ : state) {
    p.seed = seed++;
    benchmark::DoNotOptimize(gen::GeneratePattern(p).schema.num_attributes());
  }
}
BENCHMARK(BM_PatternGeneration)->Arg(16)->Arg(64)->Arg(256);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = 10000;
    std::function<void()> tick = [&]() {
      if (--remaining > 0) sim.Schedule(1.0, tick);
    };
    sim.Schedule(1.0, tick);
    sim.RunUntilEmpty();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace

BENCHMARK_MAIN();
