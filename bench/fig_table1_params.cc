// Table 1: the simulation parameters, as implemented by gen::PatternParams
// and sim::DatabaseParams, with one generated pattern summarized to show
// each knob taking effect.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace dflow;
  const gen::PatternParams p;  // defaults = Table 1 fixed values
  const sim::DatabaseParams d;

  std::printf("\n== Table 1: simulation parameters ==\n");
  std::printf("%-22s%-12s%s\n", "Parameter", "Value", "Description");
  std::printf("%-22s%-12d%s\n", "nb_nodes", p.nb_nodes, "# of internal nodes");
  std::printf("%-22s%-12s%s\n", "nb_rows", "[1,16]", "# of schema rows");
  std::printf("%-22s%-12s%s\n", "%enabled", "[10,100]", "% of enabled nodes");
  std::printf("%-22s%-12d%s\n", "%enabler", p.pct_enabler,
              "% of potential enablers");
  std::printf("%-22s%-12d%s\n", "%enabling_hop", p.pct_enabling_hop,
              "max enabling edge hop (% of # columns)");
  std::printf("%-22s%-12d%s\n", "Min_pred", p.min_pred,
              "min # of predicates per enabling condition");
  std::printf("%-22s%-12d%s\n", "Max_pred", p.max_pred,
              "max # of predicates per enabling condition");
  std::printf("%-22s%-12s%s\n", "%added_data_edges", "[-25,+25]",
              "% of data edges added to skeleton");
  std::printf("%-22s%-12d%s\n", "%data_hop", p.pct_data_hop,
              "max data edge hop (% of # columns)");
  std::printf("%-22s[%d,%d]      %s\n", "module_cost", p.min_cost, p.max_cost,
              "units of cost for executing a module");
  std::printf("%-22s%-12d%s\n", "num_CPUs", d.num_cpus,
              "# of CPUs in the database");
  std::printf("%-22s%-12d%s\n", "num_disks", d.num_disks,
              "# of disks in the database");
  std::printf("%-22s%-12.0f%s\n", "unit_CPU_cost", d.unit_cpu_ms,
              "ms of CPU per execution unit");
  std::printf("%-22s%-12d%s\n", "unit_IO_cost", d.unit_io_pages,
              "# of IO pages per unit execution");
  std::printf("%-22s%-12.0f%s\n", "%IO_hit", d.io_hit * 100,
              "probability of IO page hit in buffer");
  std::printf("%-22s%-12.0f%s\n", "IO_delay", d.io_delay_ms,
              "IO delay in msecs");

  // Demonstrate a generated Figure 4 pattern.
  gen::PatternParams fig4;
  fig4.nb_nodes = 16;
  fig4.nb_rows = 4;
  const gen::GeneratedSchema g = gen::GeneratePattern(fig4);
  std::printf("\nGenerated Figure 4 pattern: %d attributes, %d columns, "
              "total query cost %lld units\n",
              g.schema.num_attributes(), g.columns,
              static_cast<long long>(g.schema.TotalQueryCost()));
  return 0;
}
