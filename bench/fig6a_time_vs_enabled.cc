// Figure 6(a): response time (TimeInUnits) of PC*100, PS*100 and the serial
// baseline PCE0 as %enabled varies (nb_nodes=64, nb_rows=4).
//
// Expected shape: full parallelism cuts response time drastically versus
// PCE0 (~60% at %enabled=75); the Speculative option buys only a small
// further reduction (~10%) over Conservative.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace dflow;
  const std::vector<std::string> curves = {"PC*100", "PS*100", "PCE0"};
  std::vector<double> xs;
  std::vector<std::vector<double>> time(curves.size());

  for (int pct = 10; pct <= 100; pct += 10) {
    gen::PatternParams params;
    params.nb_nodes = 64;
    params.nb_rows = 4;
    params.pct_enabled = pct;
    xs.push_back(pct);
    time[0].push_back(bench::MeasureFamily(params, "PC*100", true, false, 100)
                          .mean_time_units);
    time[1].push_back(bench::MeasureFamily(params, "PS*100", true, true, 100)
                          .mean_time_units);
    time[2].push_back(
        bench::MeasureStrategy(params, *core::Strategy::Parse("PCE0"))
            .mean_time_units);
  }

  bench::PrintSeriesTable(
      "Figure 6(a): TimeInUnits vs %enabled (nb_nodes=64, nb_rows=4)",
      "%enabled", curves, xs, time);

  const size_t i75 = 6;  // %enabled = 75 is not on the grid; use 70
  std::printf("\nAt %%enabled=70: PC*100 cuts response %.0f%% vs PCE0; "
              "PS*100 adds %.0f%% over PC*100\n",
              100.0 * (time[2][i75] - time[0][i75]) / time[2][i75],
              100.0 * (time[0][i75] - time[1][i75]) / time[0][i75]);
  return 0;
}
