#ifndef DFLOW_BENCH_BENCH_UTIL_H_
#define DFLOW_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/strategy.h"
#include "gen/schema_generator.h"
#include "model/guideline.h"
#include "sim/database_server.h"

namespace dflow::bench {

// Number of schema-structure seeds and instances per seed that every figure
// averages over. The paper does not state its averaging; these settings give
// visually stable curves in a few seconds per figure.
inline constexpr int kSeeds = 5;
inline constexpr int kInstancesPerSeed = 40;

// Mean Work and TimeInUnits for one strategy on one pattern family
// (averaged over kSeeds structure seeds x kInstancesPerSeed instances,
// infinite database resources).
inline model::StrategyOutcome MeasureStrategy(gen::PatternParams params,
                                              const core::Strategy& strategy) {
  double work = 0;
  double time = 0;
  int n = 0;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    params.seed = seed * 1000 + 1;
    const gen::GeneratedSchema pattern = gen::GeneratePattern(params);
    for (int i = 0; i < kInstancesPerSeed; ++i) {
      const uint64_t inst = gen::InstanceSeed(params, i);
      const core::InstanceResult result = core::RunSingleInfinite(
          pattern.schema, gen::MakeSourceBinding(pattern, inst), inst,
          strategy);
      work += static_cast<double>(result.metrics.work);
      time += result.metrics.ResponseTime();
      ++n;
    }
  }
  return model::StrategyOutcome{strategy.ToString(), work / n, time / n};
}

// The paper's figures plot e.g. "PC*100" where Earliest/Cheapest behave
// alike: measured as the mean of the E and C variants.
inline model::StrategyOutcome MeasureFamily(const gen::PatternParams& params,
                                            const std::string& family_label,
                                            bool propagation, bool speculative,
                                            int pct) {
  core::Strategy e;
  e.propagation = propagation;
  e.speculative = speculative;
  e.heuristic = core::Strategy::Heuristic::kEarliest;
  e.pct_permitted = pct;
  core::Strategy c = e;
  c.heuristic = core::Strategy::Heuristic::kCheapest;
  const model::StrategyOutcome oe = MeasureStrategy(params, e);
  const model::StrategyOutcome oc = MeasureStrategy(params, c);
  return model::StrategyOutcome{family_label, (oe.mean_work + oc.mean_work) / 2,
                                (oe.mean_time_units + oc.mean_time_units) / 2};
}

// Fixed-width series table: one row per x value, one column per curve, the
// same presentation as the paper's figures.
inline void PrintSeriesTable(const std::string& title,
                             const std::string& x_label,
                             const std::vector<std::string>& curves,
                             const std::vector<double>& xs,
                             const std::vector<std::vector<double>>& ys) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-12s", x_label.c_str());
  for (const std::string& c : curves) std::printf("%12s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < xs.size(); ++i) {
    std::printf("%-12.0f", xs[i]);
    for (size_t c = 0; c < curves.size(); ++c) {
      std::printf("%12.1f", ys[c][i]);
    }
    std::printf("\n");
  }
}

// The database configuration used by the Figure 9 benches, calibrated so
// that the measured Db curve matches the published Figure 9(a): ~10ms per
// unit at low load rising toward ~100ms at Gmpl=35, with a sustained
// capacity of ~0.4 units/ms. (Table 1's raw physical parameters — the
// DatabaseParams defaults — produce a server an order of magnitude faster
// than the authors'; the published curve pins down their effective unit
// cost, so the fig9 benches use this calibrated configuration and
// EXPERIMENTS.md documents the substitution.)
inline sim::DatabaseParams PaperCalibratedDb() {
  sim::DatabaseParams p;
  p.num_cpus = 4;
  p.num_disks = 4;
  p.unit_cpu_ms = 2.0;
  p.unit_io_pages = 2;
  p.io_hit = 0.5;
  p.io_delay_ms = 8.0;
  return p;
}

}  // namespace dflow::bench

#endif  // DFLOW_BENCH_BENCH_UTIL_H_
