// dflow_load: TCP load driver for dflow_serve, speaking the wire protocol
// through net::Client. Generates the same Table 1 pattern workload as
// bench_throughput_vs_shards (the pattern flags MUST match the server's,
// or source bindings will not correspond to the server's schema) and
// drives it over loopback in either loop discipline:
//
//   - closed loop (default): each connection keeps exactly one request in
//     flight — send, await the response, repeat. Latency is a clean RTT;
//     throughput is bounded by connections / RTT.
//   - open loop (--mode=open --rate=R): each connection paces submissions
//     at R/connections per second regardless of responses (a reader
//     drains them concurrently), so queueing delay shows up in the
//     latencies instead of slowing the arrival process.
//   - swarm (--mode=swarm --batch=B): holds EVERY connection open
//     concurrently (a few worker threads each own hundreds of them — the
//     event-driven ingress makes 10k+ connections cheap server-side) and
//     drives each connection in batch-closed-loop discipline over the v7
//     BATCH_SUBMIT frame: submit B requests in one frame, drain the B
//     completions, repeat. Completions are mapped back to workload
//     indices, so the workload fingerprint is comparable across all three
//     modes — a swarm run attests the same bytes as a singleton run.
//
// Either discipline can be time-bounded instead of quota-bounded:
// --duration=SECS (with --distinct=K) drives until the deadline, drains
// every in-flight request through the goodbye handshake, and reports the
// achieved rate as requests_per_second over the actual window — the shape
// soak tests and chaos stages want, where "how many requests" is an
// output, not an input. Connections interleave the request index space
// (connection c sends c, c+N, c+2N, ...), so the workload stays a
// deterministic function of the index regardless of when the clock stops.
//
// Prints the same throughput/latency table shape as
// bench_throughput_vs_shards, or a machine-readable object with --json.
// Exit status is nonzero on any transport/decode/protocol error, or — with
// --fail-on-reject — on any REJECTED_BUSY/SHUTTING_DOWN response, so CI
// can gate on "N requests served cleanly".
//
// Every run also folds the per-request result fingerprints (keyed by
// request_id, so completion order is irrelevant) into one 64-bit workload
// fingerprint. Replaying the same workload against a direct single-node
// server and against a dflow_router fleet must produce the same value —
// --expect-fingerprint-match=HEX makes that an exit-code gate, proving the
// deployments byte-identical without shipping snapshots around.
//
// Scenario diversity: --dist picks which of the --distinct request
// classes the i-th request belongs to, as a pure function of (dist-seed,
// i) — the workload is identical on every run and for any connection
// split, so skewed traffic is exactly as reproducible as the default:
//
//   --dist=roundrobin          index % distinct (the default; the PR 2/3
//                              behavior, exercises every class equally)
//   --dist=uniform             uniform over the classes via a seeded
//                              SplitMix64 draw per request
//   --dist=zipf:<theta>        Zipf(theta) over class ranks 1..distinct
//                              (theta > 0; bigger = more skew)
//   --dist=hotset:<k>:<pct>    pct% of requests uniform over the first k
//                              classes, the rest uniform over the others
//   --dist-seed=S              the PRNG seed (default 42)
//
// When servers stamp the executed strategy into results (always, v3), the
// --json report also carries a per-strategy selection histogram — on an
// AUTO fleet this shows the advisor's choices across the workload.
//
// Observability: --trace sets the v4 trace flag on every submit (trace_id
// 0, so the first node on the path — router or ingress — mints the id),
// prints a few per-request span waterfalls to stderr, and folds every
// returned timing trailer into a per-stage summary (the "stages" object in
// --json). Swarm batches carry no per-item trace flag, so there --trace
// folds whatever trailers the server's own sampler attached and adds a
// client-side "client.batch" stage (send -> completion wait per item).
// --metrics-dump scrapes the server's metrics endpoint after the run and
// prints the Prometheus-style text.
//
// Run:  ./build/dflow_load --port=4517 --requests=2000 --connections=4
//           [--mode=closed|open] [--rate=R] [--duration=SECS]
//           [--distinct=K] [--nonblocking]
//           [--snapshot] [--info-every=N] [--strategy=PSE100]
//           [--nodes=64 --rows=4 --pattern-seed=1]
//           [--dist=zipf:0.9] [--dist-seed=42]
//           [--connect-timeout=5] [--json] [--fail-on-reject]
//           [--expect-fingerprint-match=HEX] [--trace] [--metrics-dump]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "gen/schema_generator.h"
#include "net/client.h"
#include "net/server_config.h"
#include "obs/trace.h"

using namespace dflow;

namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  std::string host = "127.0.0.1";
  int port = 4517;
  int requests = 2000;
  int connections = 4;
  bool open_loop = false;
  // Swarm discipline: hold every connection concurrently and drive each
  // with BATCH_SUBMIT frames of `batch` requests.
  bool swarm = false;
  int batch = 16;
  int swarm_threads = 0;  // worker threads owning the swarm; 0 = auto
  double rate = 1000.0;  // total target arrivals/s across connections
  // Time-bounded mode: > 0 drives for this many seconds instead of a fixed
  // --requests quota (each connection strides the deterministic request
  // index space, so the workload prefix is still reproducible). The JSON
  // report's requests_per_second is then the achieved rate over the window.
  double duration_s = 0;
  int distinct = 0;      // 0 => all unique
  std::string dist = "roundrobin";  // class distribution (see file header)
  uint64_t dist_seed = 42;
  int nodes = 64, rows = 4;
  uint64_t pattern_seed = 1;
  bool nonblocking = false;
  bool want_snapshot = false;
  int info_every = 0;  // every Nth request per connection also queries info
  std::string strategy;  // optional override sent on every submit
  double connect_timeout_s = 5.0;
  bool json = false;
  bool fail_on_reject = false;
  bool expect_fingerprint = false;
  uint64_t expected_fingerprint = 0;
  // Request end-to-end tracing: every submit carries the v4 trace
  // extension with trace_id 0, so the entry point (router or ingress)
  // assigns the id and the result comes back with the span trailer.
  bool trace = false;
  // Scrape and print the server's metrics text after the run.
  bool metrics_dump = false;
};

// How many full span waterfalls --trace prints (the rest only feed the
// aggregate per-stage summary).
constexpr size_t kMaxWaterfalls = 4;

// Deterministic class picker behind --dist: Pick(i) is a pure function of
// (kind, parameters, dist_seed, i), so the generated workload is
// independent of run, connection split, and completion order. The draws
// are stateless SplitMix64 hashes, never a shared PRNG stream.
class ClassPicker {
 public:
  // Parses the --dist spec against `distinct` classes; false on a
  // malformed spec.
  bool Init(const std::string& spec, int distinct, uint64_t seed) {
    distinct_ = std::max(1, distinct);
    seed_ = seed;
    if (spec == "roundrobin") {
      kind_ = Kind::kRoundRobin;
      return true;
    }
    if (spec == "uniform") {
      kind_ = Kind::kUniform;
      return true;
    }
    if (spec.rfind("zipf:", 0) == 0) {
      char* end = nullptr;
      const double theta = std::strtod(spec.c_str() + 5, &end);
      // Reject trailing junk: the spec is echoed into the JSON report.
      if (theta <= 0 || end == nullptr || *end != '\0') return false;
      kind_ = Kind::kZipf;
      // CDF over ranks 1..distinct with weight rank^-theta.
      cdf_.reserve(static_cast<size_t>(distinct_));
      double total = 0;
      for (int rank = 1; rank <= distinct_; ++rank) {
        total += std::pow(static_cast<double>(rank), -theta);
        cdf_.push_back(total);
      }
      for (double& c : cdf_) c /= total;
      return true;
    }
    if (spec.rfind("hotset:", 0) == 0) {
      int k = 0, pct = 0, consumed = 0;
      if (std::sscanf(spec.c_str(), "hotset:%d:%d%n", &k, &pct,
                      &consumed) != 2 ||
          static_cast<size_t>(consumed) != spec.size()) {
        return false;
      }
      if (k <= 0 || k > distinct_ || pct < 0 || pct > 100) return false;
      kind_ = Kind::kHotset;
      hot_k_ = k;
      hot_pct_ = pct;
      return true;
    }
    return false;
  }

  int Pick(int index) const {
    const auto draw = [&](uint64_t salt) {
      // Uniform double in [0, 1) from a stateless hash, mirroring
      // Rng::UniformDouble's mantissa construction.
      const uint64_t bits =
          Rng::Mix(seed_, static_cast<uint64_t>(index) + 1, salt);
      return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
    };
    switch (kind_) {
      case Kind::kRoundRobin:
        return index % distinct_;
      case Kind::kUniform:
        return static_cast<int>(
            Rng::Mix(seed_, static_cast<uint64_t>(index) + 1, 0xd157u) %
            static_cast<uint64_t>(distinct_));
      case Kind::kZipf: {
        const double u = draw(0x21bfu);
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        return static_cast<int>(std::min<ptrdiff_t>(
            it - cdf_.begin(), static_cast<ptrdiff_t>(distinct_ - 1)));
      }
      case Kind::kHotset: {
        const bool hot = draw(0x407u) * 100.0 < hot_pct_;
        if (hot || hot_k_ >= distinct_) {
          return static_cast<int>(
              Rng::Mix(seed_, static_cast<uint64_t>(index) + 1, 0x4075e7u) %
              static_cast<uint64_t>(hot_k_));
        }
        return hot_k_ + static_cast<int>(
                            Rng::Mix(seed_, static_cast<uint64_t>(index) + 1,
                                     0xc01d5e7u) %
                            static_cast<uint64_t>(distinct_ - hot_k_));
      }
    }
    return 0;
  }

 private:
  enum class Kind { kRoundRobin, kUniform, kZipf, kHotset };
  Kind kind_ = Kind::kRoundRobin;
  int distinct_ = 1;
  uint64_t seed_ = 0;
  std::vector<double> cdf_;
  int hot_k_ = 1;
  double hot_pct_ = 0;
};

// Per-connection tallies, merged after the workers join.
struct WorkerResult {
  int64_t ok = 0;
  int64_t rejected_busy = 0;
  int64_t rejected_shutdown = 0;
  int64_t errors = 0;  // transport failures, decode failures, wrong replies
  int64_t info_ok = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  std::vector<double> latencies_ms;  // client-observed RTT per answered submit
  // (request_id, result fingerprint) per successful submit; merged and
  // folded request_id-ordered into the workload fingerprint.
  std::vector<std::pair<uint64_t, uint64_t>> fingerprints;
  // Executed-strategy histogram from the results (per-request AUTO
  // choices on an advisor-driven fleet; one bucket on a fixed fleet).
  std::map<std::string, int64_t> strategies;
  // Per-stage (span kind -> {count, total duration ns}) from the timing
  // trailers of traced responses, plus a few rendered waterfalls.
  std::map<uint8_t, std::pair<int64_t, uint64_t>> span_stats;
  std::vector<std::string> waterfalls;
  // Swarm --trace: client-observed batch wait (send -> each completion).
  // Span kinds are a server-side wire keyspace, so this client-only stage
  // rides its own tally and joins the stage summary as "client.batch".
  int64_t batch_completions = 0;
  uint64_t batch_wait_ns = 0;
};

// Renders one traced response as an aligned waterfall: spans in pipeline
// order, bar widths proportional to the longest stage. router.forward
// (when present) nests the whole downstream pipeline, so its bar is the
// end-to-end reference.
std::string FormatWaterfall(const net::SubmitResult& result) {
  std::vector<net::WireSpan> spans = result.spans;
  std::sort(spans.begin(), spans.end(),
            [](const net::WireSpan& a, const net::WireSpan& b) {
              return a.kind < b.kind;  // pipeline order
            });
  uint64_t max_ns = 1;
  for (const net::WireSpan& span : spans) {
    max_ns = std::max(max_ns, span.duration_ns);
  }
  char line[160];
  std::snprintf(line, sizeof(line), "# trace %016llx (request %llu):\n",
                static_cast<unsigned long long>(result.trace_id),
                static_cast<unsigned long long>(result.request_id));
  std::string out = line;
  for (const net::WireSpan& span : spans) {
    const int width =
        1 + static_cast<int>((span.duration_ns * 31) / max_ns);
    std::snprintf(line, sizeof(line), "#   %-16s %10.1f us  %.*s\n",
                  obs::ToString(static_cast<obs::SpanKind>(span.kind)),
                  static_cast<double>(span.duration_ns) / 1e3, width,
                  "================================");
    out += line;
  }
  return out;
}

// Escapes a string for embedding in the hand-built JSON output. Strategy
// names come off the wire, so a buggy or hostile server must not be able
// to break the JSON framing CI parses.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (byte < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", byte);
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  const double rank = p * static_cast<double>(sorted->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*sorted)[lo] * (1 - frac) + (*sorted)[hi] * frac;
}

// Connect with retry until the deadline: lets CI start driver and server
// concurrently without a sleep-and-hope race.
bool ConnectWithRetry(net::Client* client, const Config& config,
                      std::string* error) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             config.connect_timeout_s));
  while (true) {
    if (client->Connect(config.host, static_cast<uint16_t>(config.port),
                        error)) {
      return true;
    }
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

void TallyReply(const net::ServerMessage& message, const Clock::time_point& t0,
                WorkerResult* result) {
  switch (message.type) {
    case net::MsgType::kSubmitResult: {
      const double ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - t0)
                            .count();
      result->latencies_ms.push_back(ms);
      result->fingerprints.emplace_back(message.result.request_id,
                                        message.result.fingerprint);
      if (!message.result.strategy.empty()) {
        ++result->strategies[message.result.strategy];
      }
      if (message.result.trace_id != 0 && !message.result.spans.empty()) {
        for (const net::WireSpan& span : message.result.spans) {
          auto& stat = result->span_stats[span.kind];
          ++stat.first;
          stat.second += span.duration_ns;
        }
        if (result->waterfalls.size() < kMaxWaterfalls) {
          result->waterfalls.push_back(FormatWaterfall(message.result));
        }
      }
      ++result->ok;
      return;
    }
    case net::MsgType::kError:
      if (message.error.code == net::WireError::kRejectedBusy) {
        ++result->rejected_busy;
      } else if (message.error.code == net::WireError::kShuttingDown) {
        ++result->rejected_shutdown;
      } else {
        ++result->errors;
      }
      return;
    default:
      ++result->errors;
      return;
  }
}

// Closed loop: one request in flight per connection, RTT per request.
//
// Both workers take the request index sequence as (first, count, stride):
// the fixed-quota split gives each connection a contiguous range with
// stride 1; --duration gives connection c the interleaved sequence
// c, c+N, c+2N, ... (count < 0 = unbounded) and stops at `deadline`, so
// for any instant the union of sent indices is a prefix-dense subset of
// the same deterministic workload the quota mode draws from.
WorkerResult RunClosedWorker(const Config& config,
                             const gen::GeneratedSchema& pattern,
                             const ClassPicker& picker, int first, int count,
                             int stride, Clock::time_point deadline) {
  const bool timed = count < 0;
  WorkerResult result;
  net::Client client;
  std::string error;
  if (!ConnectWithRetry(&client, config, &error)) {
    result.errors += timed ? 1 : count;
    return result;
  }
  for (int i = 0; timed || i < count; ++i) {
    if (timed && Clock::now() >= deadline) break;
    const int index = first + i * stride;
    net::SubmitRequest request;
    request.request_id = static_cast<uint64_t>(index) + 1;
    request.seed = gen::InstanceSeed(pattern.params, picker.Pick(index));
    request.blocking = !config.nonblocking;
    request.want_snapshot = config.want_snapshot;
    request.has_trace = config.trace;  // trace_id 0: entry point assigns
    request.strategy = config.strategy;
    request.sources = gen::MakeSourceBinding(pattern, request.seed);
    const Clock::time_point t0 = Clock::now();
    const std::optional<net::ServerMessage> reply = client.Call(request);
    if (!reply.has_value()) {
      // Connection is gone; everything still unsent counts as errored
      // (one error in timed mode — there is no remaining quota).
      result.errors += timed ? 1 : count - i;
      break;
    }
    TallyReply(*reply, t0, &result);
    if (config.info_every > 0 && (i + 1) % config.info_every == 0) {
      if (client.Info().has_value()) {
        ++result.info_ok;
      } else {
        ++result.errors;
        break;
      }
    }
  }
  if (client.connected()) client.Goodbye();
  result.bytes_sent = client.bytes_sent();
  result.bytes_received = client.bytes_received();
  return result;
}

// Open loop: paced sender + concurrent reader on one connection.
WorkerResult RunOpenWorker(const Config& config,
                           const gen::GeneratedSchema& pattern,
                           const ClassPicker& picker, int first, int count,
                           int stride, Clock::time_point deadline) {
  const bool timed = count < 0;
  WorkerResult result;
  net::Client client;
  std::string error;
  if (!ConnectWithRetry(&client, config, &error)) {
    result.errors += timed ? 1 : count;
    return result;
  }
  const double per_connection_rate =
      std::max(1e-6, config.rate / std::max(1, config.connections));
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / per_connection_rate));

  std::mutex mu;  // guards send_times and result during the overlap
  std::unordered_map<uint64_t, Clock::time_point> send_times;
  std::atomic<bool> sender_failed{false};

  std::thread reader([&] {
    // Every submit produces exactly one reply (result or typed error);
    // count replies until the sender's quota is fully answered. In timed
    // mode the quota is unknown until the deadline hits, so the sender
    // finishes with a kGoodbye: the server flushes every outstanding
    // response before acking, making the ack the reader's end-of-stream.
    int answered = 0;
    while ((timed || answered < count) && !sender_failed.load()) {
      std::optional<net::ServerMessage> reply = client.ReadMessage();
      if (!reply.has_value()) break;
      if (reply->type == net::MsgType::kGoodbyeAck) break;
      std::lock_guard<std::mutex> lock(mu);
      Clock::time_point t0 = Clock::now();
      const uint64_t id = reply->type == net::MsgType::kSubmitResult
                              ? reply->result.request_id
                              : reply->error.request_id;
      const auto it = send_times.find(id);
      if (it != send_times.end()) {
        t0 = it->second;
        send_times.erase(it);
      }
      TallyReply(*reply, t0, &result);
      ++answered;
    }
  });

  Clock::time_point next_send = Clock::now();
  for (int i = 0; timed || i < count; ++i) {
    if (timed && next_send >= deadline) break;
    std::this_thread::sleep_until(next_send);
    next_send += interval;
    const int index = first + i * stride;
    net::SubmitRequest request;
    request.request_id = static_cast<uint64_t>(index) + 1;
    request.seed = gen::InstanceSeed(pattern.params, picker.Pick(index));
    request.blocking = !config.nonblocking;
    request.want_snapshot = config.want_snapshot;
    request.has_trace = config.trace;  // trace_id 0: entry point assigns
    request.strategy = config.strategy;
    request.sources = gen::MakeSourceBinding(pattern, request.seed);
    {
      std::lock_guard<std::mutex> lock(mu);
      send_times.emplace(request.request_id, Clock::now());
    }
    if (!client.SendSubmit(request)) {
      std::lock_guard<std::mutex> lock(mu);
      result.errors += timed ? 1 : count - i;
      sender_failed.store(true);
      break;
    }
  }
  if (timed && !sender_failed.load()) {
    // Drain handshake: the ack trails every pending response, so the
    // reader tallies the full send prefix before it exits.
    if (!client.SendGoodbye()) sender_failed.store(true);
  }
  reader.join();
  if (timed) {
    client.Close();  // goodbye (with ack) already consumed by the reader
  } else if (client.connected() && !sender_failed.load()) {
    client.Goodbye();
  }
  result.bytes_sent = client.bytes_sent();
  result.bytes_received = client.bytes_received();
  return result;
}

// Swarm: this worker owns many connections at once and drives each in a
// batch-closed loop over the v7 async Client surface — SubmitBatch ships
// B requests in one frame, DrainCompletions settles them. Rounds are
// two-phase on purpose: first a batch goes out on EVERY owned connection,
// then the answers are drained connection by connection, so while one
// connection's drain blocks, every other connection's batch is still in
// flight server-side. Concurrency scales with connections, not with
// worker threads.
WorkerResult RunSwarmWorker(const Config& config,
                            const gen::GeneratedSchema& pattern,
                            const ClassPicker& picker,
                            const std::vector<std::pair<int, int>>& slices,
                            std::atomic<int>* ready, int total_conns) {
  struct Conn {
    net::Client client;
    int first = 0;  // workload index range [first, first + count)
    int count = 0;
    int next = 0;  // offset of the first unsent index
    bool alive = false;
    net::TicketRange range;  // the in-flight batch (count 0 = none)
    int batch_base = 0;      // workload index answering under range.first
    Clock::time_point t0;    // when the in-flight batch was sent
  };
  WorkerResult result;
  std::vector<Conn> conns(slices.size());
  for (size_t k = 0; k < slices.size(); ++k) {
    conns[k].first = slices[k].first;
    conns[k].count = slices[k].second;
    std::string error;
    conns[k].alive = ConnectWithRetry(&conns[k].client, config, &error);
    if (!conns[k].alive) result.errors += conns[k].count;
    ready->fetch_add(1);
  }
  // Hold the fleet: drive only once every worker's connections are
  // established (or definitively failed), so the run really measures the
  // configured concurrency level, not a ramp.
  while (ready->load(std::memory_order_acquire) < total_conns) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const int batch = std::max(1, config.batch);
  net::BatchOptions options;
  options.blocking = !config.nonblocking;
  options.want_snapshot = config.want_snapshot;
  options.strategy = config.strategy;
  std::vector<net::BatchItem> items;
  bool progress = true;
  while (progress) {
    progress = false;
    for (Conn& conn : conns) {
      if (!conn.alive || conn.next >= conn.count) continue;
      const int n = std::min(batch, conn.count - conn.next);
      items.assign(static_cast<size_t>(n), net::BatchItem{});
      for (int i = 0; i < n; ++i) {
        const int index = conn.first + conn.next + i;
        items[static_cast<size_t>(i)].seed =
            gen::InstanceSeed(pattern.params, picker.Pick(index));
        items[static_cast<size_t>(i)].sources =
            gen::MakeSourceBinding(pattern, items[static_cast<size_t>(i)].seed);
      }
      conn.t0 = Clock::now();
      conn.range = conn.client.SubmitBatch(items, options);
      if (!conn.range.ok()) {
        result.errors += conn.count - conn.next;
        conn.alive = false;
        continue;
      }
      conn.batch_base = conn.first + conn.next;
      conn.next += n;
      progress = true;
    }
    for (Conn& conn : conns) {
      if (!conn.alive || !conn.range.ok()) continue;
      const bool drained = conn.client.DrainCompletions(
          [&](const net::Completion& completion) {
            const double ms = std::chrono::duration<double, std::milli>(
                                  Clock::now() - conn.t0)
                                  .count();
            // Map the auto-assigned correlation id back to the workload
            // index, so fingerprints (and the fold over them) are
            // comparable with the singleton modes.
            const uint64_t workload_id =
                static_cast<uint64_t>(conn.batch_base) +
                (completion.request_id - conn.range.first_id) + 1;
            if (completion.type == net::MsgType::kSubmitResult) {
              result.latencies_ms.push_back(ms);
              result.fingerprints.emplace_back(workload_id,
                                               completion.result.fingerprint);
              if (!completion.result.strategy.empty()) {
                ++result.strategies[completion.result.strategy];
              }
              // Batch submits carry no trace extension, but the server's own
              // sampler still traces a subset; fold those timing trailers
              // into the same stage summary the singleton modes build.
              if (completion.result.trace_id != 0 &&
                  !completion.result.spans.empty()) {
                for (const net::WireSpan& span : completion.result.spans) {
                  auto& stat = result.span_stats[span.kind];
                  ++stat.first;
                  stat.second += span.duration_ns;
                }
                if (config.trace && result.waterfalls.size() < kMaxWaterfalls) {
                  result.waterfalls.push_back(
                      FormatWaterfall(completion.result));
                }
              }
              if (config.trace) {
                ++result.batch_completions;
                result.batch_wait_ns += static_cast<uint64_t>(ms * 1e6);
              }
              ++result.ok;
            } else if (completion.error.code == net::WireError::kRejectedBusy) {
              ++result.rejected_busy;
            } else if (completion.error.code ==
                       net::WireError::kShuttingDown) {
              ++result.rejected_shutdown;
            } else {
              ++result.errors;
            }
          });
      if (!drained) {
        result.errors += conn.count - conn.next +
                         static_cast<int64_t>(conn.client.outstanding());
        conn.alive = false;
      }
      conn.range = net::TicketRange{};
    }
  }
  for (Conn& conn : conns) {
    if (conn.alive && conn.client.connected()) conn.client.Goodbye();
    result.bytes_sent += conn.client.bytes_sent();
    result.bytes_received += conn.client.bytes_received();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  net::ServerConfig flags(
      "dflow_load",
      "TCP load driver for dflow_serve / dflow_router: generates the Table "
      "1 pattern workload (pattern flags MUST match the server's) and "
      "drives it over the wire protocol in closed-loop, open-loop, or "
      "swarm (many held connections, batched submits) discipline.");
  flags.String("host", &config.host, "server to drive")
      .Int("port", &config.port, "server's wire-protocol port", 1, 65535)
      .Int("requests", &config.requests, "total request quota", 1)
      .Int("connections", &config.connections, "concurrent connections", 1,
           1 << 20)
      .Custom("mode", "closed|open|swarm",
              "loop discipline (see the file header)",
              [&config](const char* value, std::string* error) {
                config.open_loop = std::strcmp(value, "open") == 0;
                config.swarm = std::strcmp(value, "swarm") == 0;
                if (!config.open_loop && !config.swarm &&
                    std::strcmp(value, "closed") != 0) {
                  *error = "must be closed, open, or swarm";
                  return false;
                }
                return true;
              })
      .Double("rate", &config.rate,
              "open loop: total target arrivals/s across connections")
      .Double("duration", &config.duration_s,
              "drive for this many seconds instead of a fixed quota "
              "(requires --distinct)")
      .Int("batch", &config.batch,
           "swarm: requests per BATCH_SUBMIT frame", 1, 65536)
      .Int("swarm-threads", &config.swarm_threads,
           "swarm: worker threads owning the connections (0 = auto)", 0,
           4096)
      .Int("distinct", &config.distinct,
           "distinct request classes (0 = all unique)", 0)
      .String("dist", &config.dist,
              "class distribution: roundrobin, uniform, zipf:<theta>, or "
              "hotset:<k>:<pct>")
      .Uint64("dist-seed", &config.dist_seed, "class distribution PRNG seed")
      .Int("nodes", &config.nodes, "pattern schema size in nodes", 1)
      .Int("rows", &config.rows, "rows per pattern source", 1)
      .Uint64("pattern-seed", &config.pattern_seed, "pattern generator seed")
      .Int("info-every", &config.info_every,
           "closed loop: every Nth request per connection also queries "
           "Info (0 = never)",
           0)
      .String("strategy", &config.strategy,
              "strategy override sent on every submit (empty = server "
              "default)")
      .Double("connect-timeout", &config.connect_timeout_s,
              "seconds each connection retries the initial connect")
      .Custom("expect-fingerprint-match", "HEX",
              "exit nonzero unless every request succeeded and the "
              "workload fingerprint equals this value",
              [&config](const char* value, std::string* error) {
                char* end = nullptr;
                config.expected_fingerprint = std::strtoull(value, &end, 16);
                if (end == value || *end != '\0') {
                  *error = "must be a hex fingerprint";
                  return false;
                }
                config.expect_fingerprint = true;
                return true;
              })
      .Bool("nonblocking", &config.nonblocking,
            "nonblocking admission (rejects instead of waiting for queue "
            "room)")
      .Bool("snapshot", &config.want_snapshot,
            "request full result snapshots")
      .Bool("trace", &config.trace,
            "set the trace flag on every submit and fold the timing "
            "trailers into a per-stage summary (swarm mode folds the "
            "server-sampled trailers plus client batch waits)")
      .Bool("metrics-dump", &config.metrics_dump,
            "scrape and print the server's metrics text after the run")
      .Bool("json", &config.json,
            "print one machine-readable JSON object instead of the table")
      .Bool("fail-on-reject", &config.fail_on_reject,
            "exit nonzero on any REJECTED_BUSY/SHUTTING_DOWN response");
  std::string flag_error;
  switch (flags.Parse(argc, argv, &flag_error)) {
    case net::ServerConfig::ParseStatus::kHelp:
      std::fputs(flags.Help().c_str(), stdout);
      return 0;
    case net::ServerConfig::ParseStatus::kError:
      std::fprintf(stderr, "dflow_load: %s\n", flag_error.c_str());
      return 2;
    case net::ServerConfig::ParseStatus::kOk:
      break;
  }
  const bool timed = config.duration_s > 0;
  if (config.swarm && timed) {
    // Swarm rounds are quota-driven; a deadline would cut batches midway
    // and make the reported concurrency level a lie.
    std::fprintf(stderr,
                 "dflow_load: --mode=swarm is quota-bounded; drop "
                 "--duration\n");
    return 2;
  }
  if (timed && config.expect_fingerprint) {
    // The fingerprint gate attests a *fixed* workload answered in full; a
    // time-bounded run's request count is load-dependent by design.
    std::fprintf(stderr,
                 "dflow_load: --expect-fingerprint-match requires a fixed "
                 "--requests quota, not --duration\n");
    return 2;
  }
  if (timed && config.distinct == 0) {
    // "All unique" sizes the class space off --requests, which a timed run
    // ignores; demand an explicit class count instead of silently reusing
    // a quota the run will not honor.
    std::fprintf(stderr,
                 "dflow_load: --duration requires --distinct=K (the class "
                 "space cannot be sized by --requests)\n");
    return 2;
  }

  gen::PatternParams params;
  params.nb_nodes = config.nodes;
  params.nb_rows = config.rows;
  params.seed = config.pattern_seed;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);

  ClassPicker picker;
  if (!picker.Init(config.dist,
                   config.distinct > 0 ? config.distinct : config.requests,
                   config.dist_seed)) {
    std::fprintf(stderr, "cannot parse --dist '%s'\n", config.dist.c_str());
    return 2;
  }

  // Split the request index space across connections: a fixed quota gets
  // contiguous stride-1 ranges (remainder to the first); a timed run gives
  // connection c the interleaved sequence c, c+N, c+2N, ... (count -1 =
  // "until the deadline").
  std::vector<std::pair<int, int>> ranges;
  const int stride = timed ? config.connections : 1;
  if (timed) {
    for (int c = 0; c < config.connections; ++c) ranges.emplace_back(c, -1);
  } else {
    const int base = config.requests / config.connections;
    int cursor = 0;
    for (int c = 0; c < config.connections; ++c) {
      const int count =
          base + (c < config.requests % config.connections ? 1 : 0);
      ranges.emplace_back(cursor, count);
      cursor += count;
    }
  }

  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      timed ? start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(config.duration_s))
            : Clock::time_point::max();
  std::vector<WorkerResult> results;
  std::vector<std::thread> workers;
  if (config.swarm) {
    // A few worker threads each own a block of connections; the swarm's
    // concurrency comes from held connections with batches in flight, not
    // from thread count.
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    const int num_workers = std::min(
        config.connections,
        config.swarm_threads > 0 ? config.swarm_threads
                                 : std::max(8, 2 * std::max(1, hw)));
    results.resize(static_cast<size_t>(num_workers));
    workers.reserve(static_cast<size_t>(num_workers));
    std::atomic<int> ready{0};
    const int per_worker = config.connections / num_workers;
    int cursor = 0;
    for (int w = 0; w < num_workers; ++w) {
      const int owned =
          per_worker + (w < config.connections % num_workers ? 1 : 0);
      std::vector<std::pair<int, int>> slices(
          ranges.begin() + cursor, ranges.begin() + cursor + owned);
      cursor += owned;
      workers.emplace_back([&, w, slices = std::move(slices)] {
        results[static_cast<size_t>(w)] =
            RunSwarmWorker(config, pattern, picker, slices, &ready,
                           config.connections);
      });
    }
  } else {
    results.resize(ranges.size());
    workers.reserve(ranges.size());
    for (size_t c = 0; c < ranges.size(); ++c) {
      workers.emplace_back([&, c] {
        results[c] =
            config.open_loop
                ? RunOpenWorker(config, pattern, picker, ranges[c].first,
                                ranges[c].second, stride, deadline)
                : RunClosedWorker(config, pattern, picker, ranges[c].first,
                                  ranges[c].second, stride, deadline);
      });
    }
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  WorkerResult total;
  for (WorkerResult& result : results) {
    total.ok += result.ok;
    total.rejected_busy += result.rejected_busy;
    total.rejected_shutdown += result.rejected_shutdown;
    total.errors += result.errors;
    total.info_ok += result.info_ok;
    total.bytes_sent += result.bytes_sent;
    total.bytes_received += result.bytes_received;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              result.latencies_ms.begin(),
                              result.latencies_ms.end());
    total.fingerprints.insert(total.fingerprints.end(),
                              result.fingerprints.begin(),
                              result.fingerprints.end());
    for (const auto& [strategy, count] : result.strategies) {
      total.strategies[strategy] += count;
    }
    for (const auto& [kind, stat] : result.span_stats) {
      auto& entry = total.span_stats[kind];
      entry.first += stat.first;
      entry.second += stat.second;
    }
    for (std::string& waterfall : result.waterfalls) {
      if (total.waterfalls.size() < kMaxWaterfalls) {
        total.waterfalls.push_back(std::move(waterfall));
      }
    }
    total.batch_completions += result.batch_completions;
    total.batch_wait_ns += result.batch_wait_ns;
  }
  // Workload fingerprint: per-request fingerprints folded in request_id
  // order, so it is independent of completion order, connection split, and
  // deployment topology — equal iff every request produced the same bytes.
  std::sort(total.fingerprints.begin(), total.fingerprints.end());
  uint64_t workload_fingerprint = 0x10adf1;
  workload_fingerprint =
      Rng::Mix(workload_fingerprint, total.fingerprints.size());
  for (const auto& [request_id, fingerprint] : total.fingerprints) {
    workload_fingerprint = Rng::Mix(workload_fingerprint, request_id);
    workload_fingerprint = Rng::Mix(workload_fingerprint, fingerprint);
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  const double p50 = Percentile(&total.latencies_ms, 0.50);
  const double p95 = Percentile(&total.latencies_ms, 0.95);
  const double p99 = Percentile(&total.latencies_ms, 0.99);
  const double lat_max =
      total.latencies_ms.empty() ? 0 : total.latencies_ms.back();
  const double rps = wall_s > 0 ? static_cast<double>(total.ok) / wall_s : 0;

  // One last look at the server's own counters: CI gates on its aggregate
  // decode_errors being zero, not just on this process's view.
  int64_t server_decode_errors = -1;
  int64_t server_completed = -1;
  net::RouterStats router_stats;  // is_router stays 0 against dflow_serve
  std::string metrics_text;
  {
    net::Client probe;
    std::string error;
    if (probe.Connect(config.host, static_cast<uint16_t>(config.port),
                      &error)) {
      if (const std::optional<net::ServerInfo> info = probe.Info()) {
        server_decode_errors = info->ingress.decode_errors;
        server_completed = info->completed;
        router_stats = info->router;
      }
      if (config.metrics_dump) {
        if (const std::optional<std::string> metrics = probe.Metrics()) {
          metrics_text = *metrics;
        }
      }
      probe.Goodbye();
    }
  }

  const int64_t rejected = total.rejected_busy + total.rejected_shutdown;
  // Executed-strategy histogram as a JSON object fragment ({} when the
  // fleet predates the v3 strategy stamp).
  std::string strategies_json = "{";
  for (const auto& [strategy, count] : total.strategies) {
    if (strategies_json.size() > 1) strategies_json += ",";
    strategies_json +=
        "\"" + JsonEscape(strategy) + "\":" + std::to_string(count);
  }
  strategies_json += "}";
  // Per-stage summary from the timing trailers ({} without --trace).
  std::string stages_json = "{";
  for (const auto& [kind, stat] : total.span_stats) {
    if (stages_json.size() > 1) stages_json += ",";
    char buffer[96];
    std::snprintf(
        buffer, sizeof(buffer), "\"%s\":{\"count\":%lld,\"mean_us\":%.1f}",
        obs::ToString(static_cast<obs::SpanKind>(kind)),
        static_cast<long long>(stat.first),
        stat.first > 0
            ? static_cast<double>(stat.second) / 1e3 /
                  static_cast<double>(stat.first)
            : 0.0);
    stages_json += buffer;
  }
  // Swarm --trace adds the client-side batch wait (send -> completion) as
  // its own stage; it is not a wire span kind, so it is appended by hand.
  if (total.batch_completions > 0) {
    if (stages_json.size() > 1) stages_json += ",";
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  "\"client.batch\":{\"count\":%lld,\"mean_us\":%.1f}",
                  static_cast<long long>(total.batch_completions),
                  static_cast<double>(total.batch_wait_ns) / 1e3 /
                      static_cast<double>(total.batch_completions));
    stages_json += buffer;
  }
  stages_json += "}";
  // Routing-tier fleet counters when the target is a dflow_router ({}
  // against a direct dflow_serve). CI's chaos stage gates on failovers
  // being nonzero and divergence_mismatches being zero.
  std::string router_json = "{";
  if (router_stats.is_router != 0) {
    char buffer[224];
    std::snprintf(buffer, sizeof(buffer),
                  "\"replicas\":%d,\"failovers\":%lld,"
                  "\"divergence_checks\":%lld,\"divergence_mismatches\":%lld,"
                  "\"divergence_incomplete\":%lld",
                  router_stats.replicas,
                  static_cast<long long>(router_stats.failovers),
                  static_cast<long long>(router_stats.divergence_checks),
                  static_cast<long long>(router_stats.divergence_mismatches),
                  static_cast<long long>(router_stats.divergence_incomplete));
    router_json += buffer;
  }
  router_json += "}";
  // A timed run's effective quota is whatever got answered before the
  // deadline; report that so "requests" always equals ok+rejected+errors
  // for the run that actually happened.
  const long long attempted =
      timed ? total.ok + rejected + total.errors
            : static_cast<long long>(config.requests);
  const char* mode_name =
      config.swarm ? "swarm" : (config.open_loop ? "open" : "closed");
  if (config.json) {
    std::printf(
        "{\"tool\":\"dflow_load\",\"mode\":\"%s\",\"batch\":%d,"
        "\"requests\":%lld,"
        "\"duration_s\":%.3f,"
        "\"connections\":%d,\"dist\":\"%s\",\"dist_seed\":%llu,"
        "\"ok\":%lld,\"rejected_busy\":%lld,"
        "\"rejected_shutdown\":%lld,\"errors\":%lld,\"info_ok\":%lld,"
        "\"wall_s\":%.6f,\"requests_per_second\":%.1f,"
        "\"latency_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,"
        "\"max\":%.3f},"
        "\"wall_latency_p50_us\":%.1f,\"wall_latency_p95_us\":%.1f,"
        "\"wall_latency_p99_us\":%.1f,"
        "\"bytes_sent\":%lld,\"bytes_received\":%lld,"
        "\"workload_fingerprint\":\"%016llx\",\"strategies\":%s,"
        "\"stages\":%s,\"router\":%s,"
        "\"server\":{\"completed\":%lld,\"decode_errors\":%lld}}\n",
        mode_name, config.swarm ? config.batch : 0, attempted,
        config.duration_s,
        config.connections, JsonEscape(config.dist).c_str(),
        static_cast<unsigned long long>(config.dist_seed),
        static_cast<long long>(total.ok),
        static_cast<long long>(total.rejected_busy),
        static_cast<long long>(total.rejected_shutdown),
        static_cast<long long>(total.errors),
        static_cast<long long>(total.info_ok), wall_s, rps, p50, p95, p99,
        lat_max, p50 * 1000.0, p95 * 1000.0, p99 * 1000.0,
        static_cast<long long>(total.bytes_sent),
        static_cast<long long>(total.bytes_received),
        static_cast<unsigned long long>(workload_fingerprint),
        strategies_json.c_str(), stages_json.c_str(), router_json.c_str(),
        static_cast<long long>(server_completed),
        static_cast<long long>(server_decode_errors));
  } else {
    if (timed) {
      std::printf(
          "# dflow_load: %s loop, %.1fs timed run (%lld requests) over %d "
          "connections to %s:%d%s\n",
          config.open_loop ? "open" : "closed", config.duration_s, attempted,
          config.connections, config.host.c_str(), config.port,
          config.nonblocking ? " (nonblocking admission)" : "");
    } else {
      std::printf(
          "# dflow_load: %s loop, %d requests over %d connections to "
          "%s:%d%s%s\n",
          mode_name, config.requests,
          config.connections, config.host.c_str(), config.port,
          config.swarm
              ? (" (batch=" + std::to_string(config.batch) + ")").c_str()
              : "",
          config.nonblocking ? " (nonblocking admission)" : "");
    }
    std::printf("%-10s %-10s %-10s %-8s %-8s %-10s %-9s %-9s %-9s %-9s\n",
                "ok", "busy", "shutdown", "errors", "wall_s", "req/s",
                "p50_ms", "p95_ms", "p99_ms", "max_ms");
    std::printf(
        "%-10lld %-10lld %-10lld %-8lld %-8.3f %-10.1f %-9.3f %-9.3f "
        "%-9.3f %-9.3f\n",
        static_cast<long long>(total.ok),
        static_cast<long long>(total.rejected_busy),
        static_cast<long long>(total.rejected_shutdown),
        static_cast<long long>(total.errors), wall_s, rps, p50, p95, p99,
        lat_max);
    std::printf("# bytes: %lld sent, %lld received; server completed=%lld "
                "decode_errors=%lld\n",
                static_cast<long long>(total.bytes_sent),
                static_cast<long long>(total.bytes_received),
                static_cast<long long>(server_completed),
                static_cast<long long>(server_decode_errors));
    std::printf("# workload fingerprint: %016llx (over %lld results)\n",
                static_cast<unsigned long long>(workload_fingerprint),
                static_cast<long long>(total.ok));
    if (router_stats.is_router != 0) {
      std::printf("# fleet: replicas=%d failovers=%lld divergence "
                  "checks=%lld mismatches=%lld incomplete=%lld\n",
                  router_stats.replicas,
                  static_cast<long long>(router_stats.failovers),
                  static_cast<long long>(router_stats.divergence_checks),
                  static_cast<long long>(router_stats.divergence_mismatches),
                  static_cast<long long>(router_stats.divergence_incomplete));
    }
    std::printf("# dist: %s (seed %llu)", config.dist.c_str(),
                static_cast<unsigned long long>(config.dist_seed));
    if (!total.strategies.empty()) {
      std::printf("; strategies:");
      for (const auto& [strategy, count] : total.strategies) {
        std::printf(" %s=%lld", strategy.c_str(),
                    static_cast<long long>(count));
      }
    }
    std::printf("\n");
    if (!total.span_stats.empty() || total.batch_completions > 0) {
      std::printf("# stages (mean over traced requests):");
      for (const auto& [kind, stat] : total.span_stats) {
        std::printf(" %s=%.1fus/%lld",
                    obs::ToString(static_cast<obs::SpanKind>(kind)),
                    static_cast<double>(stat.second) / 1e3 /
                        static_cast<double>(std::max<int64_t>(1, stat.first)),
                    static_cast<long long>(stat.first));
      }
      if (total.batch_completions > 0) {
        std::printf(" client.batch=%.1fus/%lld",
                    static_cast<double>(total.batch_wait_ns) / 1e3 /
                        static_cast<double>(total.batch_completions),
                    static_cast<long long>(total.batch_completions));
      }
      std::printf("\n");
    }
  }
  // Waterfalls go to stderr so --json stdout stays one parseable line.
  for (const std::string& waterfall : total.waterfalls) {
    std::fputs(waterfall.c_str(), stderr);
  }
  if (config.metrics_dump) {
    if (metrics_text.empty()) {
      std::fprintf(stderr, "dflow_load: --metrics-dump: scrape failed\n");
      return 1;
    }
    // Raw exposition to stdout, after the report (CI greps for families).
    std::printf("--- metrics ---\n%s", metrics_text.c_str());
  }

  if (total.errors > 0) return 1;
  if (server_decode_errors != 0 && server_decode_errors != -1) return 1;
  if (config.fail_on_reject && rejected > 0) return 1;
  if (config.expect_fingerprint) {
    // A partial run cannot attest byte-identity: the match gate demands
    // every request answered successfully AND the digests equal.
    if (total.ok != config.requests ||
        workload_fingerprint != config.expected_fingerprint) {
      std::fprintf(stderr,
                   "dflow_load: workload fingerprint %016llx over %lld/%d "
                   "results does not match expected %016llx\n",
                   static_cast<unsigned long long>(workload_fingerprint),
                   static_cast<long long>(total.ok), config.requests,
                   static_cast<unsigned long long>(
                       config.expected_fingerprint));
      return 1;
    }
  }
  return 0;
}
