// dflow_load: TCP load driver for dflow_serve, speaking the wire protocol
// through net::Client. Generates the same Table 1 pattern workload as
// bench_throughput_vs_shards (the pattern flags MUST match the server's,
// or source bindings will not correspond to the server's schema) and
// drives it over loopback in either loop discipline:
//
//   - closed loop (default): each connection keeps exactly one request in
//     flight — send, await the response, repeat. Latency is a clean RTT;
//     throughput is bounded by connections / RTT.
//   - open loop (--mode=open --rate=R): each connection paces submissions
//     at R/connections per second regardless of responses (a reader
//     drains them concurrently), so queueing delay shows up in the
//     latencies instead of slowing the arrival process.
//
// Either discipline can be time-bounded instead of quota-bounded:
// --duration=SECS (with --distinct=K) drives until the deadline, drains
// every in-flight request through the goodbye handshake, and reports the
// achieved rate as requests_per_second over the actual window — the shape
// soak tests and chaos stages want, where "how many requests" is an
// output, not an input. Connections interleave the request index space
// (connection c sends c, c+N, c+2N, ...), so the workload stays a
// deterministic function of the index regardless of when the clock stops.
//
// Prints the same throughput/latency table shape as
// bench_throughput_vs_shards, or a machine-readable object with --json.
// Exit status is nonzero on any transport/decode/protocol error, or — with
// --fail-on-reject — on any REJECTED_BUSY/SHUTTING_DOWN response, so CI
// can gate on "N requests served cleanly".
//
// Every run also folds the per-request result fingerprints (keyed by
// request_id, so completion order is irrelevant) into one 64-bit workload
// fingerprint. Replaying the same workload against a direct single-node
// server and against a dflow_router fleet must produce the same value —
// --expect-fingerprint-match=HEX makes that an exit-code gate, proving the
// deployments byte-identical without shipping snapshots around.
//
// Scenario diversity: --dist picks which of the --distinct request
// classes the i-th request belongs to, as a pure function of (dist-seed,
// i) — the workload is identical on every run and for any connection
// split, so skewed traffic is exactly as reproducible as the default:
//
//   --dist=roundrobin          index % distinct (the default; the PR 2/3
//                              behavior, exercises every class equally)
//   --dist=uniform             uniform over the classes via a seeded
//                              SplitMix64 draw per request
//   --dist=zipf:<theta>        Zipf(theta) over class ranks 1..distinct
//                              (theta > 0; bigger = more skew)
//   --dist=hotset:<k>:<pct>    pct% of requests uniform over the first k
//                              classes, the rest uniform over the others
//   --dist-seed=S              the PRNG seed (default 42)
//
// When servers stamp the executed strategy into results (always, v3), the
// --json report also carries a per-strategy selection histogram — on an
// AUTO fleet this shows the advisor's choices across the workload.
//
// Observability: --trace sets the v4 trace flag on every submit (trace_id
// 0, so the first node on the path — router or ingress — mints the id),
// prints a few per-request span waterfalls to stderr, and folds every
// returned timing trailer into a per-stage summary (the "stages" object in
// --json). --metrics-dump scrapes the server's metrics endpoint after the
// run and prints the Prometheus-style text.
//
// Run:  ./build/dflow_load --port=4517 --requests=2000 --connections=4
//           [--mode=closed|open] [--rate=R] [--duration=SECS]
//           [--distinct=K] [--nonblocking]
//           [--snapshot] [--info-every=N] [--strategy=PSE100]
//           [--nodes=64 --rows=4 --pattern-seed=1]
//           [--dist=zipf:0.9] [--dist-seed=42]
//           [--connect-timeout=5] [--json] [--fail-on-reject]
//           [--expect-fingerprint-match=HEX] [--trace] [--metrics-dump]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "gen/schema_generator.h"
#include "net/client.h"
#include "obs/trace.h"

using namespace dflow;

namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  std::string host = "127.0.0.1";
  int port = 4517;
  int requests = 2000;
  int connections = 4;
  bool open_loop = false;
  double rate = 1000.0;  // total target arrivals/s across connections
  // Time-bounded mode: > 0 drives for this many seconds instead of a fixed
  // --requests quota (each connection strides the deterministic request
  // index space, so the workload prefix is still reproducible). The JSON
  // report's requests_per_second is then the achieved rate over the window.
  double duration_s = 0;
  int distinct = 0;      // 0 => all unique
  std::string dist = "roundrobin";  // class distribution (see file header)
  uint64_t dist_seed = 42;
  int nodes = 64, rows = 4;
  uint64_t pattern_seed = 1;
  bool nonblocking = false;
  bool want_snapshot = false;
  int info_every = 0;  // every Nth request per connection also queries info
  std::string strategy;  // optional override sent on every submit
  double connect_timeout_s = 5.0;
  bool json = false;
  bool fail_on_reject = false;
  bool expect_fingerprint = false;
  uint64_t expected_fingerprint = 0;
  // Request end-to-end tracing: every submit carries the v4 trace
  // extension with trace_id 0, so the entry point (router or ingress)
  // assigns the id and the result comes back with the span trailer.
  bool trace = false;
  // Scrape and print the server's metrics text after the run.
  bool metrics_dump = false;
};

// How many full span waterfalls --trace prints (the rest only feed the
// aggregate per-stage summary).
constexpr size_t kMaxWaterfalls = 4;

// Deterministic class picker behind --dist: Pick(i) is a pure function of
// (kind, parameters, dist_seed, i), so the generated workload is
// independent of run, connection split, and completion order. The draws
// are stateless SplitMix64 hashes, never a shared PRNG stream.
class ClassPicker {
 public:
  // Parses the --dist spec against `distinct` classes; false on a
  // malformed spec.
  bool Init(const std::string& spec, int distinct, uint64_t seed) {
    distinct_ = std::max(1, distinct);
    seed_ = seed;
    if (spec == "roundrobin") {
      kind_ = Kind::kRoundRobin;
      return true;
    }
    if (spec == "uniform") {
      kind_ = Kind::kUniform;
      return true;
    }
    if (spec.rfind("zipf:", 0) == 0) {
      char* end = nullptr;
      const double theta = std::strtod(spec.c_str() + 5, &end);
      // Reject trailing junk: the spec is echoed into the JSON report.
      if (theta <= 0 || end == nullptr || *end != '\0') return false;
      kind_ = Kind::kZipf;
      // CDF over ranks 1..distinct with weight rank^-theta.
      cdf_.reserve(static_cast<size_t>(distinct_));
      double total = 0;
      for (int rank = 1; rank <= distinct_; ++rank) {
        total += std::pow(static_cast<double>(rank), -theta);
        cdf_.push_back(total);
      }
      for (double& c : cdf_) c /= total;
      return true;
    }
    if (spec.rfind("hotset:", 0) == 0) {
      int k = 0, pct = 0, consumed = 0;
      if (std::sscanf(spec.c_str(), "hotset:%d:%d%n", &k, &pct,
                      &consumed) != 2 ||
          static_cast<size_t>(consumed) != spec.size()) {
        return false;
      }
      if (k <= 0 || k > distinct_ || pct < 0 || pct > 100) return false;
      kind_ = Kind::kHotset;
      hot_k_ = k;
      hot_pct_ = pct;
      return true;
    }
    return false;
  }

  int Pick(int index) const {
    const auto draw = [&](uint64_t salt) {
      // Uniform double in [0, 1) from a stateless hash, mirroring
      // Rng::UniformDouble's mantissa construction.
      const uint64_t bits =
          Rng::Mix(seed_, static_cast<uint64_t>(index) + 1, salt);
      return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
    };
    switch (kind_) {
      case Kind::kRoundRobin:
        return index % distinct_;
      case Kind::kUniform:
        return static_cast<int>(
            Rng::Mix(seed_, static_cast<uint64_t>(index) + 1, 0xd157u) %
            static_cast<uint64_t>(distinct_));
      case Kind::kZipf: {
        const double u = draw(0x21bfu);
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        return static_cast<int>(std::min<ptrdiff_t>(
            it - cdf_.begin(), static_cast<ptrdiff_t>(distinct_ - 1)));
      }
      case Kind::kHotset: {
        const bool hot = draw(0x407u) * 100.0 < hot_pct_;
        if (hot || hot_k_ >= distinct_) {
          return static_cast<int>(
              Rng::Mix(seed_, static_cast<uint64_t>(index) + 1, 0x4075e7u) %
              static_cast<uint64_t>(hot_k_));
        }
        return hot_k_ + static_cast<int>(
                            Rng::Mix(seed_, static_cast<uint64_t>(index) + 1,
                                     0xc01d5e7u) %
                            static_cast<uint64_t>(distinct_ - hot_k_));
      }
    }
    return 0;
  }

 private:
  enum class Kind { kRoundRobin, kUniform, kZipf, kHotset };
  Kind kind_ = Kind::kRoundRobin;
  int distinct_ = 1;
  uint64_t seed_ = 0;
  std::vector<double> cdf_;
  int hot_k_ = 1;
  double hot_pct_ = 0;
};

// Per-connection tallies, merged after the workers join.
struct WorkerResult {
  int64_t ok = 0;
  int64_t rejected_busy = 0;
  int64_t rejected_shutdown = 0;
  int64_t errors = 0;  // transport failures, decode failures, wrong replies
  int64_t info_ok = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  std::vector<double> latencies_ms;  // client-observed RTT per answered submit
  // (request_id, result fingerprint) per successful submit; merged and
  // folded request_id-ordered into the workload fingerprint.
  std::vector<std::pair<uint64_t, uint64_t>> fingerprints;
  // Executed-strategy histogram from the results (per-request AUTO
  // choices on an advisor-driven fleet; one bucket on a fixed fleet).
  std::map<std::string, int64_t> strategies;
  // Per-stage (span kind -> {count, total duration ns}) from the timing
  // trailers of traced responses, plus a few rendered waterfalls.
  std::map<uint8_t, std::pair<int64_t, uint64_t>> span_stats;
  std::vector<std::string> waterfalls;
};

// Renders one traced response as an aligned waterfall: spans in pipeline
// order, bar widths proportional to the longest stage. router.forward
// (when present) nests the whole downstream pipeline, so its bar is the
// end-to-end reference.
std::string FormatWaterfall(const net::SubmitResult& result) {
  std::vector<net::WireSpan> spans = result.spans;
  std::sort(spans.begin(), spans.end(),
            [](const net::WireSpan& a, const net::WireSpan& b) {
              return a.kind < b.kind;  // pipeline order
            });
  uint64_t max_ns = 1;
  for (const net::WireSpan& span : spans) {
    max_ns = std::max(max_ns, span.duration_ns);
  }
  char line[160];
  std::snprintf(line, sizeof(line), "# trace %016llx (request %llu):\n",
                static_cast<unsigned long long>(result.trace_id),
                static_cast<unsigned long long>(result.request_id));
  std::string out = line;
  for (const net::WireSpan& span : spans) {
    const int width =
        1 + static_cast<int>((span.duration_ns * 31) / max_ns);
    std::snprintf(line, sizeof(line), "#   %-16s %10.1f us  %.*s\n",
                  obs::ToString(static_cast<obs::SpanKind>(span.kind)),
                  static_cast<double>(span.duration_ns) / 1e3, width,
                  "================================");
    out += line;
  }
  return out;
}

// Escapes a string for embedding in the hand-built JSON output. Strategy
// names come off the wire, so a buggy or hostile server must not be able
// to break the JSON framing CI parses.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (byte < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", byte);
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  const double rank = p * static_cast<double>(sorted->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*sorted)[lo] * (1 - frac) + (*sorted)[hi] * frac;
}

// Connect with retry until the deadline: lets CI start driver and server
// concurrently without a sleep-and-hope race.
bool ConnectWithRetry(net::Client* client, const Config& config,
                      std::string* error) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             config.connect_timeout_s));
  while (true) {
    if (client->Connect(config.host, static_cast<uint16_t>(config.port),
                        error)) {
      return true;
    }
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

void TallyReply(const net::ServerMessage& message, const Clock::time_point& t0,
                WorkerResult* result) {
  switch (message.type) {
    case net::MsgType::kSubmitResult: {
      const double ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - t0)
                            .count();
      result->latencies_ms.push_back(ms);
      result->fingerprints.emplace_back(message.result.request_id,
                                        message.result.fingerprint);
      if (!message.result.strategy.empty()) {
        ++result->strategies[message.result.strategy];
      }
      if (message.result.trace_id != 0 && !message.result.spans.empty()) {
        for (const net::WireSpan& span : message.result.spans) {
          auto& stat = result->span_stats[span.kind];
          ++stat.first;
          stat.second += span.duration_ns;
        }
        if (result->waterfalls.size() < kMaxWaterfalls) {
          result->waterfalls.push_back(FormatWaterfall(message.result));
        }
      }
      ++result->ok;
      return;
    }
    case net::MsgType::kError:
      if (message.error.code == net::WireError::kRejectedBusy) {
        ++result->rejected_busy;
      } else if (message.error.code == net::WireError::kShuttingDown) {
        ++result->rejected_shutdown;
      } else {
        ++result->errors;
      }
      return;
    default:
      ++result->errors;
      return;
  }
}

// Closed loop: one request in flight per connection, RTT per request.
//
// Both workers take the request index sequence as (first, count, stride):
// the fixed-quota split gives each connection a contiguous range with
// stride 1; --duration gives connection c the interleaved sequence
// c, c+N, c+2N, ... (count < 0 = unbounded) and stops at `deadline`, so
// for any instant the union of sent indices is a prefix-dense subset of
// the same deterministic workload the quota mode draws from.
WorkerResult RunClosedWorker(const Config& config,
                             const gen::GeneratedSchema& pattern,
                             const ClassPicker& picker, int first, int count,
                             int stride, Clock::time_point deadline) {
  const bool timed = count < 0;
  WorkerResult result;
  net::Client client;
  std::string error;
  if (!ConnectWithRetry(&client, config, &error)) {
    result.errors += timed ? 1 : count;
    return result;
  }
  for (int i = 0; timed || i < count; ++i) {
    if (timed && Clock::now() >= deadline) break;
    const int index = first + i * stride;
    net::SubmitRequest request;
    request.request_id = static_cast<uint64_t>(index) + 1;
    request.seed = gen::InstanceSeed(pattern.params, picker.Pick(index));
    request.blocking = !config.nonblocking;
    request.want_snapshot = config.want_snapshot;
    request.has_trace = config.trace;  // trace_id 0: entry point assigns
    request.strategy = config.strategy;
    request.sources = gen::MakeSourceBinding(pattern, request.seed);
    const Clock::time_point t0 = Clock::now();
    const std::optional<net::ServerMessage> reply = client.Call(request);
    if (!reply.has_value()) {
      // Connection is gone; everything still unsent counts as errored
      // (one error in timed mode — there is no remaining quota).
      result.errors += timed ? 1 : count - i;
      break;
    }
    TallyReply(*reply, t0, &result);
    if (config.info_every > 0 && (i + 1) % config.info_every == 0) {
      if (client.Info().has_value()) {
        ++result.info_ok;
      } else {
        ++result.errors;
        break;
      }
    }
  }
  if (client.connected()) client.Goodbye();
  result.bytes_sent = client.bytes_sent();
  result.bytes_received = client.bytes_received();
  return result;
}

// Open loop: paced sender + concurrent reader on one connection.
WorkerResult RunOpenWorker(const Config& config,
                           const gen::GeneratedSchema& pattern,
                           const ClassPicker& picker, int first, int count,
                           int stride, Clock::time_point deadline) {
  const bool timed = count < 0;
  WorkerResult result;
  net::Client client;
  std::string error;
  if (!ConnectWithRetry(&client, config, &error)) {
    result.errors += timed ? 1 : count;
    return result;
  }
  const double per_connection_rate =
      std::max(1e-6, config.rate / std::max(1, config.connections));
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / per_connection_rate));

  std::mutex mu;  // guards send_times and result during the overlap
  std::unordered_map<uint64_t, Clock::time_point> send_times;
  std::atomic<bool> sender_failed{false};

  std::thread reader([&] {
    // Every submit produces exactly one reply (result or typed error);
    // count replies until the sender's quota is fully answered. In timed
    // mode the quota is unknown until the deadline hits, so the sender
    // finishes with a kGoodbye: the server flushes every outstanding
    // response before acking, making the ack the reader's end-of-stream.
    int answered = 0;
    while ((timed || answered < count) && !sender_failed.load()) {
      std::optional<net::ServerMessage> reply = client.ReadMessage();
      if (!reply.has_value()) break;
      if (reply->type == net::MsgType::kGoodbyeAck) break;
      std::lock_guard<std::mutex> lock(mu);
      Clock::time_point t0 = Clock::now();
      const uint64_t id = reply->type == net::MsgType::kSubmitResult
                              ? reply->result.request_id
                              : reply->error.request_id;
      const auto it = send_times.find(id);
      if (it != send_times.end()) {
        t0 = it->second;
        send_times.erase(it);
      }
      TallyReply(*reply, t0, &result);
      ++answered;
    }
  });

  Clock::time_point next_send = Clock::now();
  for (int i = 0; timed || i < count; ++i) {
    if (timed && next_send >= deadline) break;
    std::this_thread::sleep_until(next_send);
    next_send += interval;
    const int index = first + i * stride;
    net::SubmitRequest request;
    request.request_id = static_cast<uint64_t>(index) + 1;
    request.seed = gen::InstanceSeed(pattern.params, picker.Pick(index));
    request.blocking = !config.nonblocking;
    request.want_snapshot = config.want_snapshot;
    request.has_trace = config.trace;  // trace_id 0: entry point assigns
    request.strategy = config.strategy;
    request.sources = gen::MakeSourceBinding(pattern, request.seed);
    {
      std::lock_guard<std::mutex> lock(mu);
      send_times.emplace(request.request_id, Clock::now());
    }
    if (!client.SendSubmit(request)) {
      std::lock_guard<std::mutex> lock(mu);
      result.errors += timed ? 1 : count - i;
      sender_failed.store(true);
      break;
    }
  }
  if (timed && !sender_failed.load()) {
    // Drain handshake: the ack trails every pending response, so the
    // reader tallies the full send prefix before it exits.
    if (!client.SendGoodbye()) sender_failed.store(true);
  }
  reader.join();
  if (timed) {
    client.Close();  // goodbye (with ack) already consumed by the reader
  } else if (client.connected() && !sender_failed.load()) {
    client.Goodbye();
  }
  result.bytes_sent = client.bytes_sent();
  result.bytes_received = client.bytes_received();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        return arg + len + 1;
      }
      return nullptr;
    };
    const char* v;
    if ((v = value_of("--host"))) config.host = v;
    else if ((v = value_of("--port"))) config.port = std::atoi(v);
    else if ((v = value_of("--requests"))) config.requests = std::atoi(v);
    else if ((v = value_of("--connections"))) config.connections = std::atoi(v);
    else if ((v = value_of("--mode"))) {
      if (std::strcmp(v, "open") == 0) config.open_loop = true;
      else if (std::strcmp(v, "closed") != 0) {
        std::fprintf(stderr, "unknown mode '%s'\n", v);
        return 2;
      }
    }
    else if ((v = value_of("--rate"))) config.rate = std::atof(v);
    else if ((v = value_of("--duration"))) config.duration_s = std::atof(v);
    else if ((v = value_of("--distinct"))) config.distinct = std::atoi(v);
    else if ((v = value_of("--dist"))) config.dist = v;
    else if ((v = value_of("--dist-seed"))) {
      config.dist_seed = std::strtoull(v, nullptr, 10);
    }
    else if ((v = value_of("--nodes"))) config.nodes = std::atoi(v);
    else if ((v = value_of("--rows"))) config.rows = std::atoi(v);
    else if ((v = value_of("--pattern-seed"))) {
      config.pattern_seed = std::strtoull(v, nullptr, 10);
    }
    else if ((v = value_of("--info-every"))) config.info_every = std::atoi(v);
    else if ((v = value_of("--strategy"))) config.strategy = v;
    else if ((v = value_of("--connect-timeout"))) {
      config.connect_timeout_s = std::atof(v);
    }
    else if ((v = value_of("--expect-fingerprint-match"))) {
      config.expect_fingerprint = true;
      config.expected_fingerprint = std::strtoull(v, nullptr, 16);
    }
    else if (std::strcmp(arg, "--nonblocking") == 0) config.nonblocking = true;
    else if (std::strcmp(arg, "--snapshot") == 0) config.want_snapshot = true;
    else if (std::strcmp(arg, "--trace") == 0) config.trace = true;
    else if (std::strcmp(arg, "--metrics-dump") == 0) {
      config.metrics_dump = true;
    }
    else if (std::strcmp(arg, "--json") == 0) config.json = true;
    else if (std::strcmp(arg, "--fail-on-reject") == 0) {
      config.fail_on_reject = true;
    }
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return 2;
    }
  }
  config.connections = std::max(1, config.connections);
  config.requests = std::max(1, config.requests);
  const bool timed = config.duration_s > 0;
  if (timed && config.expect_fingerprint) {
    // The fingerprint gate attests a *fixed* workload answered in full; a
    // time-bounded run's request count is load-dependent by design.
    std::fprintf(stderr,
                 "dflow_load: --expect-fingerprint-match requires a fixed "
                 "--requests quota, not --duration\n");
    return 2;
  }
  if (timed && config.distinct == 0) {
    // "All unique" sizes the class space off --requests, which a timed run
    // ignores; demand an explicit class count instead of silently reusing
    // a quota the run will not honor.
    std::fprintf(stderr,
                 "dflow_load: --duration requires --distinct=K (the class "
                 "space cannot be sized by --requests)\n");
    return 2;
  }

  gen::PatternParams params;
  params.nb_nodes = config.nodes;
  params.nb_rows = config.rows;
  params.seed = config.pattern_seed;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);

  ClassPicker picker;
  if (!picker.Init(config.dist,
                   config.distinct > 0 ? config.distinct : config.requests,
                   config.dist_seed)) {
    std::fprintf(stderr, "cannot parse --dist '%s'\n", config.dist.c_str());
    return 2;
  }

  // Split the request index space across connections: a fixed quota gets
  // contiguous stride-1 ranges (remainder to the first); a timed run gives
  // connection c the interleaved sequence c, c+N, c+2N, ... (count -1 =
  // "until the deadline").
  std::vector<std::pair<int, int>> ranges;
  const int stride = timed ? config.connections : 1;
  if (timed) {
    for (int c = 0; c < config.connections; ++c) ranges.emplace_back(c, -1);
  } else {
    const int base = config.requests / config.connections;
    int cursor = 0;
    for (int c = 0; c < config.connections; ++c) {
      const int count =
          base + (c < config.requests % config.connections ? 1 : 0);
      ranges.emplace_back(cursor, count);
      cursor += count;
    }
  }

  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      timed ? start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(config.duration_s))
            : Clock::time_point::max();
  std::vector<WorkerResult> results(ranges.size());
  std::vector<std::thread> workers;
  workers.reserve(ranges.size());
  for (size_t c = 0; c < ranges.size(); ++c) {
    workers.emplace_back([&, c] {
      results[c] =
          config.open_loop
              ? RunOpenWorker(config, pattern, picker, ranges[c].first,
                              ranges[c].second, stride, deadline)
              : RunClosedWorker(config, pattern, picker, ranges[c].first,
                                ranges[c].second, stride, deadline);
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  WorkerResult total;
  for (WorkerResult& result : results) {
    total.ok += result.ok;
    total.rejected_busy += result.rejected_busy;
    total.rejected_shutdown += result.rejected_shutdown;
    total.errors += result.errors;
    total.info_ok += result.info_ok;
    total.bytes_sent += result.bytes_sent;
    total.bytes_received += result.bytes_received;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              result.latencies_ms.begin(),
                              result.latencies_ms.end());
    total.fingerprints.insert(total.fingerprints.end(),
                              result.fingerprints.begin(),
                              result.fingerprints.end());
    for (const auto& [strategy, count] : result.strategies) {
      total.strategies[strategy] += count;
    }
    for (const auto& [kind, stat] : result.span_stats) {
      auto& entry = total.span_stats[kind];
      entry.first += stat.first;
      entry.second += stat.second;
    }
    for (std::string& waterfall : result.waterfalls) {
      if (total.waterfalls.size() < kMaxWaterfalls) {
        total.waterfalls.push_back(std::move(waterfall));
      }
    }
  }
  // Workload fingerprint: per-request fingerprints folded in request_id
  // order, so it is independent of completion order, connection split, and
  // deployment topology — equal iff every request produced the same bytes.
  std::sort(total.fingerprints.begin(), total.fingerprints.end());
  uint64_t workload_fingerprint = 0x10adf1;
  workload_fingerprint =
      Rng::Mix(workload_fingerprint, total.fingerprints.size());
  for (const auto& [request_id, fingerprint] : total.fingerprints) {
    workload_fingerprint = Rng::Mix(workload_fingerprint, request_id);
    workload_fingerprint = Rng::Mix(workload_fingerprint, fingerprint);
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  const double p50 = Percentile(&total.latencies_ms, 0.50);
  const double p95 = Percentile(&total.latencies_ms, 0.95);
  const double p99 = Percentile(&total.latencies_ms, 0.99);
  const double lat_max =
      total.latencies_ms.empty() ? 0 : total.latencies_ms.back();
  const double rps = wall_s > 0 ? static_cast<double>(total.ok) / wall_s : 0;

  // One last look at the server's own counters: CI gates on its aggregate
  // decode_errors being zero, not just on this process's view.
  int64_t server_decode_errors = -1;
  int64_t server_completed = -1;
  net::RouterStats router_stats;  // is_router stays 0 against dflow_serve
  std::string metrics_text;
  {
    net::Client probe;
    std::string error;
    if (probe.Connect(config.host, static_cast<uint16_t>(config.port),
                      &error)) {
      if (const std::optional<net::ServerInfo> info = probe.Info()) {
        server_decode_errors = info->ingress.decode_errors;
        server_completed = info->completed;
        router_stats = info->router;
      }
      if (config.metrics_dump) {
        if (const std::optional<std::string> metrics = probe.Metrics()) {
          metrics_text = *metrics;
        }
      }
      probe.Goodbye();
    }
  }

  const int64_t rejected = total.rejected_busy + total.rejected_shutdown;
  // Executed-strategy histogram as a JSON object fragment ({} when the
  // fleet predates the v3 strategy stamp).
  std::string strategies_json = "{";
  for (const auto& [strategy, count] : total.strategies) {
    if (strategies_json.size() > 1) strategies_json += ",";
    strategies_json +=
        "\"" + JsonEscape(strategy) + "\":" + std::to_string(count);
  }
  strategies_json += "}";
  // Per-stage summary from the timing trailers ({} without --trace).
  std::string stages_json = "{";
  for (const auto& [kind, stat] : total.span_stats) {
    if (stages_json.size() > 1) stages_json += ",";
    char buffer[96];
    std::snprintf(
        buffer, sizeof(buffer), "\"%s\":{\"count\":%lld,\"mean_us\":%.1f}",
        obs::ToString(static_cast<obs::SpanKind>(kind)),
        static_cast<long long>(stat.first),
        stat.first > 0
            ? static_cast<double>(stat.second) / 1e3 /
                  static_cast<double>(stat.first)
            : 0.0);
    stages_json += buffer;
  }
  stages_json += "}";
  // Routing-tier fleet counters when the target is a dflow_router ({}
  // against a direct dflow_serve). CI's chaos stage gates on failovers
  // being nonzero and divergence_mismatches being zero.
  std::string router_json = "{";
  if (router_stats.is_router != 0) {
    char buffer[224];
    std::snprintf(buffer, sizeof(buffer),
                  "\"replicas\":%d,\"failovers\":%lld,"
                  "\"divergence_checks\":%lld,\"divergence_mismatches\":%lld,"
                  "\"divergence_incomplete\":%lld",
                  router_stats.replicas,
                  static_cast<long long>(router_stats.failovers),
                  static_cast<long long>(router_stats.divergence_checks),
                  static_cast<long long>(router_stats.divergence_mismatches),
                  static_cast<long long>(router_stats.divergence_incomplete));
    router_json += buffer;
  }
  router_json += "}";
  // A timed run's effective quota is whatever got answered before the
  // deadline; report that so "requests" always equals ok+rejected+errors
  // for the run that actually happened.
  const long long attempted =
      timed ? total.ok + rejected + total.errors
            : static_cast<long long>(config.requests);
  if (config.json) {
    std::printf(
        "{\"tool\":\"dflow_load\",\"mode\":\"%s\",\"requests\":%lld,"
        "\"duration_s\":%.3f,"
        "\"connections\":%d,\"dist\":\"%s\",\"dist_seed\":%llu,"
        "\"ok\":%lld,\"rejected_busy\":%lld,"
        "\"rejected_shutdown\":%lld,\"errors\":%lld,\"info_ok\":%lld,"
        "\"wall_s\":%.6f,\"requests_per_second\":%.1f,"
        "\"latency_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,"
        "\"max\":%.3f},"
        "\"wall_latency_p50_us\":%.1f,\"wall_latency_p95_us\":%.1f,"
        "\"wall_latency_p99_us\":%.1f,"
        "\"bytes_sent\":%lld,\"bytes_received\":%lld,"
        "\"workload_fingerprint\":\"%016llx\",\"strategies\":%s,"
        "\"stages\":%s,\"router\":%s,"
        "\"server\":{\"completed\":%lld,\"decode_errors\":%lld}}\n",
        config.open_loop ? "open" : "closed", attempted, config.duration_s,
        config.connections, JsonEscape(config.dist).c_str(),
        static_cast<unsigned long long>(config.dist_seed),
        static_cast<long long>(total.ok),
        static_cast<long long>(total.rejected_busy),
        static_cast<long long>(total.rejected_shutdown),
        static_cast<long long>(total.errors),
        static_cast<long long>(total.info_ok), wall_s, rps, p50, p95, p99,
        lat_max, p50 * 1000.0, p95 * 1000.0, p99 * 1000.0,
        static_cast<long long>(total.bytes_sent),
        static_cast<long long>(total.bytes_received),
        static_cast<unsigned long long>(workload_fingerprint),
        strategies_json.c_str(), stages_json.c_str(), router_json.c_str(),
        static_cast<long long>(server_completed),
        static_cast<long long>(server_decode_errors));
  } else {
    if (timed) {
      std::printf(
          "# dflow_load: %s loop, %.1fs timed run (%lld requests) over %d "
          "connections to %s:%d%s\n",
          config.open_loop ? "open" : "closed", config.duration_s, attempted,
          config.connections, config.host.c_str(), config.port,
          config.nonblocking ? " (nonblocking admission)" : "");
    } else {
      std::printf(
          "# dflow_load: %s loop, %d requests over %d connections to "
          "%s:%d%s\n",
          config.open_loop ? "open" : "closed", config.requests,
          config.connections, config.host.c_str(), config.port,
          config.nonblocking ? " (nonblocking admission)" : "");
    }
    std::printf("%-10s %-10s %-10s %-8s %-8s %-10s %-9s %-9s %-9s %-9s\n",
                "ok", "busy", "shutdown", "errors", "wall_s", "req/s",
                "p50_ms", "p95_ms", "p99_ms", "max_ms");
    std::printf(
        "%-10lld %-10lld %-10lld %-8lld %-8.3f %-10.1f %-9.3f %-9.3f "
        "%-9.3f %-9.3f\n",
        static_cast<long long>(total.ok),
        static_cast<long long>(total.rejected_busy),
        static_cast<long long>(total.rejected_shutdown),
        static_cast<long long>(total.errors), wall_s, rps, p50, p95, p99,
        lat_max);
    std::printf("# bytes: %lld sent, %lld received; server completed=%lld "
                "decode_errors=%lld\n",
                static_cast<long long>(total.bytes_sent),
                static_cast<long long>(total.bytes_received),
                static_cast<long long>(server_completed),
                static_cast<long long>(server_decode_errors));
    std::printf("# workload fingerprint: %016llx (over %lld results)\n",
                static_cast<unsigned long long>(workload_fingerprint),
                static_cast<long long>(total.ok));
    if (router_stats.is_router != 0) {
      std::printf("# fleet: replicas=%d failovers=%lld divergence "
                  "checks=%lld mismatches=%lld incomplete=%lld\n",
                  router_stats.replicas,
                  static_cast<long long>(router_stats.failovers),
                  static_cast<long long>(router_stats.divergence_checks),
                  static_cast<long long>(router_stats.divergence_mismatches),
                  static_cast<long long>(router_stats.divergence_incomplete));
    }
    std::printf("# dist: %s (seed %llu)", config.dist.c_str(),
                static_cast<unsigned long long>(config.dist_seed));
    if (!total.strategies.empty()) {
      std::printf("; strategies:");
      for (const auto& [strategy, count] : total.strategies) {
        std::printf(" %s=%lld", strategy.c_str(),
                    static_cast<long long>(count));
      }
    }
    std::printf("\n");
    if (!total.span_stats.empty()) {
      std::printf("# stages (mean over traced requests):");
      for (const auto& [kind, stat] : total.span_stats) {
        std::printf(" %s=%.1fus/%lld",
                    obs::ToString(static_cast<obs::SpanKind>(kind)),
                    static_cast<double>(stat.second) / 1e3 /
                        static_cast<double>(std::max<int64_t>(1, stat.first)),
                    static_cast<long long>(stat.first));
      }
      std::printf("\n");
    }
  }
  // Waterfalls go to stderr so --json stdout stays one parseable line.
  for (const std::string& waterfall : total.waterfalls) {
    std::fputs(waterfall.c_str(), stderr);
  }
  if (config.metrics_dump) {
    if (metrics_text.empty()) {
      std::fprintf(stderr, "dflow_load: --metrics-dump: scrape failed\n");
      return 1;
    }
    // Raw exposition to stdout, after the report (CI greps for families).
    std::printf("--- metrics ---\n%s", metrics_text.c_str());
  }

  if (total.errors > 0) return 1;
  if (server_decode_errors != 0 && server_decode_errors != -1) return 1;
  if (config.fail_on_reject && rejected > 0) return 1;
  if (config.expect_fingerprint) {
    // A partial run cannot attest byte-identity: the match gate demands
    // every request answered successfully AND the digests equal.
    if (total.ok != config.requests ||
        workload_fingerprint != config.expected_fingerprint) {
      std::fprintf(stderr,
                   "dflow_load: workload fingerprint %016llx over %lld/%d "
                   "results does not match expected %016llx\n",
                   static_cast<unsigned long long>(workload_fingerprint),
                   static_cast<long long>(total.ok), config.requests,
                   static_cast<unsigned long long>(
                       config.expected_fingerprint));
      return 1;
    }
  }
  return 0;
}
