// Figure 5(a): Work performed by the serial strategies PCC0, PCE0, NCC0,
// NCE0 as %enabled varies (nb_nodes=64, nb_rows=4). Since %Permitted = 0
// these Work values are also the response times (the paper notes the same).
//
// Expected shape: two clusters — the 'N' strategies' work falls linearly
// with %enabled (they execute exactly the enabled attributes), while the
// 'P' strategies save additional work by pruning enabled-but-unneeded
// attributes, with the largest relative savings at small %enabled.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace dflow;
  const std::vector<std::string> curves = {"PCC0", "PCE0", "NCC0", "NCE0"};
  std::vector<double> xs;
  std::vector<std::vector<double>> work(curves.size());

  for (int pct = 10; pct <= 100; pct += 10) {
    gen::PatternParams params;
    params.nb_nodes = 64;
    params.nb_rows = 4;
    params.pct_enabled = pct;
    xs.push_back(pct);
    for (size_t c = 0; c < curves.size(); ++c) {
      const auto outcome = bench::MeasureStrategy(
          params, *core::Strategy::Parse(curves[c]));
      work[c].push_back(outcome.mean_work);
    }
  }

  bench::PrintSeriesTable(
      "Figure 5(a): Work vs %enabled (nb_nodes=64, nb_rows=4, serial)",
      "%enabled", curves, xs, work);

  // Headline numbers the paper calls out.
  const double n10 = work[3].front();
  const double p10 = work[1].front();
  std::printf("\nPropagation benefit at %%enabled=10: %.0f%% less work "
              "(NCE0 %.1f -> PCE0 %.1f)\n",
              100.0 * (n10 - p10) / n10, n10, p10);
  return 0;
}
