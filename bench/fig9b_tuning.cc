// Figure 9(b): tuning with the analytical model under finite database
// resources. Reproduces all four graphs of the figure for the nb_nodes=16,
// nb_rows=4, %enabled=75 pattern at a fixed target throughput:
//   (a) UnitTime vs Work at the fixed throughput (Equation (6) fixed point);
//   (b) the guideline map minT vs Work (as Figure 8(b), nb_rows=4);
//   (c) predicted response time = minT x UnitTime, per strategy;
//   (d) measured response time from open-load simulation against the
//       calibrated database, compared to (c).
// Also exercises the model's first application: the upper bound on Work for
// a target throughput (the paper's example: ~18 units at 20 instances/s).

#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "model/analytic.h"
#include "sim/db_profiler.h"

int main() {
  using namespace dflow;

  // --- Empirical Db curve. The paper determines Db "empirically for each
  // database"; since it is used to predict *open-system* response, we
  // profile operationally: Poisson query arrivals (costs matched to the
  // workload's 1..5 units) at a grid of offered loads, recording
  // (mean Gmpl, mean per-unit response). A closed-loop curve at the same
  // mean Gmpl understates queueing because the open level fluctuates.
  const sim::DatabaseParams db_params = bench::PaperCalibratedDb();
  sim::DbProfiler profiler(db_params, /*seed=*/42);
  std::vector<double> loads;
  for (double l = 0.03; l <= 0.46; l += 0.025) loads.push_back(l);
  const std::vector<sim::DbSample> open_curve =
      profiler.MeasureOpenCurve(loads, 1, 5);
  std::vector<std::pair<double, double>> samples;
  for (const sim::DbSample& s : open_curve) {
    samples.push_back({s.gmpl, s.unit_time_ms});
  }
  const model::AnalyticModel analytic{model::DbCurve(samples)};

  // --- Application 1: max affordable Work per throughput.
  std::printf("\n== Max Work bound per throughput (Equation (6)) ==\n");
  std::printf("%-16s%-16s\n", "Th (inst/s)", "max Work (units)");
  for (double th : {5.0, 10.0, 20.0, 30.0}) {
    std::printf("%-16.0f%-16.1f\n", th, analytic.MaxWorkForThroughput(th));
  }

  // --- The pattern under study.
  gen::PatternParams params;
  params.nb_nodes = 16;
  params.nb_rows = 4;
  params.pct_enabled = 75;
  params.seed = 1;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);
  // Operating point: ~45-55% database utilization, like the paper's (their
  // curve supports ~385 units/s and they drive 10/s x ~22-35 units). Our
  // calibrated server sustains ~500 units/s and this pattern needs ~37-46
  // units per instance, so 6 instances/s lands in the same regime.
  const double th = 6.0;  // instances per second

  // --- Graph (a): UnitTime vs Work at Th = 10/s.
  std::printf("\n== Graph (a): UnitTime vs Work at Th=%.0f/s ==\n", th);
  std::printf("%-10s%-14s\n", "Work", "UnitTime(ms)");
  for (double w = 10; w <= 45; w += 5) {
    const std::optional<double> u = analytic.SolveUnitTimeMs(th, w);
    if (u.has_value()) {
      std::printf("%-10.0f%-14.2f\n", w, *u);
    } else {
      std::printf("%-10.0finfeasible\n", w);
    }
  }

  // --- Strategies of the paper's graphs (b)-(d).
  const char* kStrategies[] = {"PCE0",  "PCE80",  "PCE100", "PCC100",
                               "PSE40", "PSE80",  "PSE100"};

  std::printf("\n== Graphs (b)-(d): per-strategy prediction vs measurement "
              "==\n");
  std::printf("%-10s%-9s%-9s%-14s%-15s%-15s%-8s\n", "strategy", "Work",
              "minT", "UnitTime(ms)", "predicted(ms)", "measured(ms)",
              "err%");

  std::string best_pred, best_meas;
  double best_pred_ms = 1e30, best_meas_ms = 1e30;

  for (const char* name : kStrategies) {
    const core::Strategy strategy = *core::Strategy::Parse(name);

    // Infinite-resource profile of the strategy on this exact pattern.
    double work = 0, time_units = 0;
    const int kProfileInstances = 200;
    for (int i = 0; i < kProfileInstances; ++i) {
      const uint64_t inst = gen::InstanceSeed(params, i);
      const auto r = core::RunSingleInfinite(
          pattern.schema, gen::MakeSourceBinding(pattern, inst), inst,
          strategy);
      work += static_cast<double>(r.metrics.work);
      time_units += r.metrics.ResponseTime();
    }
    work /= kProfileInstances;
    time_units /= kProfileInstances;

    const std::optional<double> unit_time = analytic.SolveUnitTimeMs(th, work);
    const std::optional<double> predicted =
        analytic.PredictResponseMs(th, work, time_units);

    // Graph (d): measured response on the calibrated database.
    core::OpenLoadOptions options;
    options.arrivals_per_second = th;
    options.num_instances = 500;
    options.warmup_instances = 100;
    options.db = db_params;
    options.seed = 7;
    const core::OpenLoadStats stats = core::RunOpenLoad(
        pattern.schema,
        [&](int i) {
          const uint64_t seed = gen::InstanceSeed(params, i);
          return std::make_pair(gen::MakeSourceBinding(pattern, seed), seed);
        },
        strategy, options);

    if (predicted.has_value()) {
      const double err = 100.0 * (stats.mean_response_ms - *predicted) /
                         stats.mean_response_ms;
      std::printf("%-10s%-9.1f%-9.1f%-14.2f%-15.1f%-15.1f%-+8.1f\n", name,
                  work, time_units, *unit_time, *predicted,
                  stats.mean_response_ms, err);
      if (*predicted < best_pred_ms) {
        best_pred_ms = *predicted;
        best_pred = name;
      }
    } else {
      std::printf("%-10s%-9.1f%-9.1finfeasible    -              %-15.1f-\n",
                  name, work, time_units, stats.mean_response_ms);
    }
    if (stats.mean_response_ms < best_meas_ms) {
      best_meas_ms = stats.mean_response_ms;
      best_meas = name;
    }
  }

  std::printf("\nPredicted-optimal strategy: %s (%.0f ms); "
              "measured-optimal: %s (%.0f ms)\n",
              best_pred.c_str(), best_pred_ms, best_meas.c_str(),
              best_meas_ms);
  return 0;
}
