#include "runtime/flow_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/runner.h"
#include "gen/schema_generator.h"
#include "runtime/request_queue.h"
#include "runtime/server_stats.h"

namespace dflow::runtime {
namespace {

core::Strategy S(const char* text) { return *core::Strategy::Parse(text); }

gen::GeneratedSchema MakePattern(uint64_t seed = 7) {
  gen::PatternParams params;
  params.nb_nodes = 32;
  params.nb_rows = 4;
  params.seed = seed;
  return gen::GeneratePattern(params);
}

std::vector<FlowRequest> MakeWorkload(const gen::GeneratedSchema& pattern,
                                      int count) {
  std::vector<FlowRequest> requests;
  requests.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const uint64_t seed = gen::InstanceSeed(pattern.params, i);
    requests.push_back({gen::MakeSourceBinding(pattern, seed), seed});
  }
  return requests;
}

// Runs the workload through a FlowServer with `num_shards` shards and
// returns the per-seed work totals observed via the result callback.
std::map<uint64_t, int64_t> RunSharded(const gen::GeneratedSchema& pattern,
                                       const std::vector<FlowRequest>& reqs,
                                       int num_shards) {
  FlowServerOptions options;
  options.num_shards = num_shards;
  options.strategy = S("PSE100");
  FlowServer server(&pattern.schema, options);

  std::mutex mu;
  std::map<uint64_t, int64_t> work_by_seed;
  server.SetResultCallback([&](int, const FlowRequest& request,
                               const core::InstanceResult& result,
                               const core::Strategy&) {
    std::lock_guard<std::mutex> lock(mu);
    work_by_seed[request.seed] = result.metrics.work;
  });
  for (const FlowRequest& request : reqs) {
    EXPECT_TRUE(server.Submit(request));
  }
  server.Drain();
  EXPECT_EQ(server.Report().stats.completed,
            static_cast<int64_t>(reqs.size()));
  return work_by_seed;
}

// --- The tentpole determinism contract: same request seeds produce
// identical per-instance work totals for 1, 2, and 8 shards.
TEST(FlowServerTest, WorkIsIdenticalAcross1_2_8Shards) {
  const gen::GeneratedSchema pattern = MakePattern();
  const std::vector<FlowRequest> requests = MakeWorkload(pattern, 96);

  const auto work1 = RunSharded(pattern, requests, 1);
  const auto work2 = RunSharded(pattern, requests, 2);
  const auto work8 = RunSharded(pattern, requests, 8);

  ASSERT_EQ(work1.size(), requests.size());
  EXPECT_EQ(work1, work2);
  EXPECT_EQ(work1, work8);
}

// The sharded results must also equal the reference single-threaded
// execution: sharding is a transparent wrapper around the §3 algorithm.
TEST(FlowServerTest, ShardedMatchesSequentialReference) {
  const gen::GeneratedSchema pattern = MakePattern(11);
  const std::vector<FlowRequest> requests = MakeWorkload(pattern, 40);

  const auto sharded = RunSharded(pattern, requests, 4);
  for (const FlowRequest& request : requests) {
    const core::InstanceResult reference = core::RunSingleInfinite(
        pattern.schema, request.sources, request.seed, S("PSE100"));
    ASSERT_TRUE(sharded.count(request.seed));
    EXPECT_EQ(sharded.at(request.seed), reference.metrics.work)
        << "seed " << request.seed;
  }
}

// A FlowHarness reused across many instances must report the same metrics
// as a fresh engine per instance (the clock accumulates; metrics must not).
TEST(FlowServerTest, HarnessReuseDoesNotLeakClockIntoMetrics) {
  const gen::GeneratedSchema pattern = MakePattern(3);
  core::FlowHarness harness(&pattern.schema, S("PSE100"));
  for (int i = 0; i < 10; ++i) {
    const uint64_t seed = gen::InstanceSeed(pattern.params, i);
    const core::SourceBinding sources = gen::MakeSourceBinding(pattern, seed);
    const core::InstanceResult reused = harness.Run(sources, seed);
    const core::InstanceResult fresh =
        core::RunSingleInfinite(pattern.schema, sources, seed, S("PSE100"));
    EXPECT_EQ(reused.metrics.work, fresh.metrics.work);
    EXPECT_DOUBLE_EQ(reused.metrics.ResponseTime(),
                     fresh.metrics.ResponseTime());
  }
  EXPECT_EQ(harness.instances_run(), 10);
}

// A bounded harness reused across instances must reproduce what a fresh
// bounded harness computes per instance: the per-run DatabaseServer reseed
// and the post-run quiescence drain make each result independent of what
// ran on the harness before.
TEST(FlowServerTest, BoundedHarnessReuseMatchesFreshHarnessPerInstance) {
  const gen::GeneratedSchema pattern = MakePattern(19);
  const sim::DatabaseParams db;
  const auto reused =
      core::MakeBoundedFlowHarness(&pattern.schema, S("PSE100"), db);
  ASSERT_EQ(reused->backend(), core::BackendKind::kBoundedDb);
  ASSERT_NE(reused->db(), nullptr);
  for (int i = 0; i < 8; ++i) {
    const uint64_t seed = gen::InstanceSeed(pattern.params, i);
    const core::SourceBinding sources = gen::MakeSourceBinding(pattern, seed);
    const core::InstanceResult warm = reused->Run(sources, seed);
    const core::InstanceResult cold =
        core::MakeBoundedFlowHarness(&pattern.schema, S("PSE100"), db)
            ->Run(sources, seed);
    EXPECT_EQ(warm.metrics.work, cold.metrics.work) << "seed " << seed;
    EXPECT_DOUBLE_EQ(warm.metrics.ResponseTime(), cold.metrics.ResponseTime())
        << "seed " << seed;
  }
  EXPECT_EQ(reused->instances_run(), 8);
}

TEST(FlowServerTest, SeedRoutingIsStableInRangeAndCoversShards) {
  std::set<int> hit;
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    const int shard = FlowServer::ShardFor(seed, 8);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 8);
    EXPECT_EQ(shard, FlowServer::ShardFor(seed, 8));  // stateless
    hit.insert(shard);
  }
  EXPECT_EQ(hit.size(), 8u);  // 1000 seeds over 8 shards hit every shard
  EXPECT_EQ(FlowServer::ShardFor(42, 1), 0);
}

TEST(FlowServerTest, DrainCompletesEverythingAndCountsPerShard) {
  const gen::GeneratedSchema pattern = MakePattern(5);
  const std::vector<FlowRequest> requests = MakeWorkload(pattern, 64);

  FlowServerOptions options;
  options.num_shards = 3;
  options.strategy = S("PCE0");
  FlowServer server(&pattern.schema, options);
  for (const FlowRequest& request : requests) {
    ASSERT_TRUE(server.Submit(request));
  }
  server.Drain();

  const FlowServerReport report = server.Report();
  EXPECT_EQ(report.stats.completed, 64);
  EXPECT_EQ(report.num_shards, 3);
  int64_t total = 0;
  for (int64_t processed : report.per_shard_processed) total += processed;
  EXPECT_EQ(total, 64);
  EXPECT_GT(report.stats.total_work, 0);
  // Submitting after drain is refused rather than lost silently.
  EXPECT_FALSE(server.Submit(requests[0]));
  // Percentiles come out of one sorted sample: ordered by construction.
  EXPECT_LE(report.stats.p50_latency_units, report.stats.p95_latency_units);
  EXPECT_LE(report.stats.p95_latency_units, report.stats.p99_latency_units);
  EXPECT_LE(report.stats.p99_latency_units, report.stats.max_latency_units);
}

// Server-level backpressure: with one shard whose queue holds one request
// and a worker wedged in the result callback, the queue fills and
// TrySubmit rejects (counted in the stats).
TEST(FlowServerTest, TrySubmitRejectsWhenShardQueueIsFull) {
  const gen::GeneratedSchema pattern = MakePattern(9);
  const std::vector<FlowRequest> requests = MakeWorkload(pattern, 3);

  FlowServerOptions options;
  options.num_shards = 1;
  options.queue_capacity_per_shard = 1;
  options.strategy = S("PCE0");
  FlowServer server(&pattern.schema, options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool first_started = false;
  server.SetResultCallback(
      [&](int, const FlowRequest&, const core::InstanceResult&,
          const core::Strategy&) {
        std::unique_lock<std::mutex> lock(mu);
        first_started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
      });

  // First request: popped by the worker, which then wedges in the callback.
  ASSERT_TRUE(server.Submit(requests[0]));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return first_started; });
  }
  // Second request: Submit blocks until the worker's pop freed the slot,
  // then parks in the queue (worker is wedged, so it stays there).
  ASSERT_TRUE(server.Submit(requests[1]));
  // Third request: the single-slot queue is full => non-blocking rejection.
  EXPECT_FALSE(server.TrySubmit(requests[2]));

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  server.Drain();

  const FlowServerReport report = server.Report();
  EXPECT_EQ(report.stats.completed, 2);
  EXPECT_EQ(report.stats.rejected, 1);
}

// --- The explicit post-Drain contract (not incidental state): after
// Drain(), Submit returns false forever, TrySubmit returns false forever
// (still counted as rejections, exactly like queue-full ones), and
// TrySubmitEx distinguishes the terminal kClosed from transient kFull.
TEST(FlowServerTest, SubmitAndTrySubmitAfterDrainAreRefusedForever) {
  const gen::GeneratedSchema pattern = MakePattern(23);
  const std::vector<FlowRequest> requests = MakeWorkload(pattern, 4);

  FlowServerOptions options;
  options.num_shards = 2;
  options.strategy = S("PCE0");
  FlowServer server(&pattern.schema, options);
  for (const FlowRequest& request : requests) {
    ASSERT_TRUE(server.Submit(request));
  }
  server.Drain();
  server.Drain();  // idempotent

  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(server.Submit(requests[0]));
    EXPECT_FALSE(server.TrySubmit(requests[1]));
    EXPECT_EQ(server.TrySubmitEx(requests[2]), TryPushResult::kClosed);
  }
  const FlowServerReport report = server.Report();
  EXPECT_EQ(report.stats.completed, 4);
  // Six non-blocking refusals (3 TrySubmit + 3 TrySubmitEx); blocking
  // Submit refusals are not "rejections" — the caller asked to wait.
  EXPECT_EQ(report.stats.rejected, 6);
}

TEST(RequestQueueTest, TryPushExDistinguishesFullFromClosed) {
  RequestQueue queue(1);
  EXPECT_EQ(queue.TryPushEx({{}, 1}), TryPushResult::kOk);
  EXPECT_EQ(queue.TryPushEx({{}, 2}), TryPushResult::kFull);  // transient
  queue.Close();
  // Closed wins over full, and stays terminal after the backlog drains.
  EXPECT_EQ(queue.TryPushEx({{}, 3}), TryPushResult::kClosed);
  ASSERT_TRUE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_EQ(queue.TryPushEx({{}, 4}), TryPushResult::kClosed);
  EXPECT_FALSE(queue.Push({{}, 5}));
}

TEST(RequestQueueTest, CloseUnblocksAWaitingPusherWithFalse) {
  RequestQueue queue(1);
  ASSERT_TRUE(queue.Push({{}, 1}));
  std::thread blocked([&] {
    // Blocks on the full queue until Close, which must refuse it (the
    // post-Close contract: no admission after close, ever).
    EXPECT_FALSE(queue.Push({{}, 2}));
  });
  // Give the pusher time to park; Close must wake it with false rather
  // than admit it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  blocked.join();
  ASSERT_TRUE(queue.Pop().has_value());   // pre-close backlog drains
  EXPECT_FALSE(queue.Pop().has_value());  // request 2 was never admitted
}

TEST(RequestQueueTest, PushBlocksUntilPopFreesASlot) {
  RequestQueue queue(1);
  ASSERT_TRUE(queue.TryPush({{}, 1}));
  EXPECT_FALSE(queue.TryPush({{}, 2}));  // full

  std::thread producer([&] { EXPECT_TRUE(queue.Push({{}, 2})); });
  const std::optional<FlowRequest> first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->seed, 1u);
  producer.join();
  EXPECT_EQ(queue.size(), 1u);
}

TEST(RequestQueueTest, CloseDrainsBacklogThenSignalsExhaustion) {
  RequestQueue queue(4);
  ASSERT_TRUE(queue.Push({{}, 1}));
  ASSERT_TRUE(queue.Push({{}, 2}));
  queue.Close();
  EXPECT_FALSE(queue.Push({{}, 3}));     // closed: admission refused
  EXPECT_FALSE(queue.TryPush({{}, 3}));
  ASSERT_TRUE(queue.Pop().has_value());  // backlog still drains
  ASSERT_TRUE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());  // drained: worker exit signal
  queue.Close();                          // idempotent
}

TEST(ServerStatsTest, SnapshotAggregatesAndRanksLatencies) {
  StatsCollector collector;
  for (int i = 1; i <= 100; ++i) {
    core::InstanceMetrics metrics;
    metrics.start_time = 0;
    metrics.end_time = i;  // latencies 1..100 units
    metrics.work = 2 * i;
    metrics.wasted_work = i % 3;
    collector.Record(static_cast<uint64_t>(i), metrics);
  }
  collector.RecordRejected();

  const ServerStats stats = collector.Snapshot();
  EXPECT_EQ(stats.completed, 100);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.total_work, 10100);  // 2 * (1+..+100)
  EXPECT_DOUBLE_EQ(stats.mean_work, 101.0);
  EXPECT_NEAR(stats.p50_latency_units, 50.5, 0.01);
  EXPECT_NEAR(stats.p95_latency_units, 95.05, 0.01);
  EXPECT_NEAR(stats.p99_latency_units, 99.01, 0.01);
  EXPECT_DOUBLE_EQ(stats.max_latency_units, 100.0);
}

TEST(ServerStatsTest, LatencyReservoirIsBoundedWhileCountsStayExact) {
  StatsCollector collector(/*reservoir_capacity=*/16);
  for (int i = 1; i <= 10000; ++i) {
    core::InstanceMetrics metrics;
    metrics.end_time = 5;  // constant latency: percentiles must stay exact
    metrics.work = 1;
    collector.Record(static_cast<uint64_t>(i), metrics);
  }
  const ServerStats stats = collector.Snapshot();
  EXPECT_EQ(stats.completed, 10000);
  EXPECT_EQ(stats.total_work, 10000);  // exact beyond the reservoir
  EXPECT_DOUBLE_EQ(stats.p50_latency_units, 5.0);
  EXPECT_DOUBLE_EQ(stats.p99_latency_units, 5.0);
  EXPECT_DOUBLE_EQ(stats.max_latency_units, 5.0);
}

TEST(ServerStatsTest, OverflowedReservoirIsOrderIndependent) {
  // The kept sample is bottom-k by seed hash, a pure function of the seed
  // multiset — so two collectors fed the same (seed, latency) pairs in
  // opposite orders must report byte-identical percentiles even with the
  // reservoir overflowed 16x. This is exactly the guarantee concurrent
  // shard interleavings need (any interleaving is *some* order).
  constexpr int kRecords = 256;
  const auto record = [](StatsCollector* collector, int i) {
    core::InstanceMetrics metrics;
    metrics.start_time = 0;
    metrics.end_time = 1 + (i * 37) % 1000;  // latency is seed-determined
    metrics.work = 1;
    collector->Record(static_cast<uint64_t>(i), metrics);
  };
  StatsCollector forward(/*reservoir_capacity=*/16);
  StatsCollector backward(/*reservoir_capacity=*/16);
  for (int i = 0; i < kRecords; ++i) record(&forward, i);
  for (int i = kRecords - 1; i >= 0; --i) record(&backward, i);

  const ServerStats a = forward.Snapshot();
  const ServerStats b = backward.Snapshot();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.p50_latency_units, b.p50_latency_units);
  EXPECT_DOUBLE_EQ(a.p95_latency_units, b.p95_latency_units);
  EXPECT_DOUBLE_EQ(a.p99_latency_units, b.p99_latency_units);
  EXPECT_DOUBLE_EQ(a.max_latency_units, b.max_latency_units);
  // The max is tracked outside the reservoir: exact even though at most
  // 16 of 256 latencies were kept.
  double max_latency = 0;
  for (int i = 0; i < kRecords; ++i) {
    max_latency = std::max(max_latency, 1.0 + (i * 37) % 1000);
  }
  EXPECT_DOUBLE_EQ(a.max_latency_units, max_latency);
}

}  // namespace
}  // namespace dflow::runtime
