// End-to-end tests of the multi-node routing tier: a real net::Router on
// an ephemeral port in front of real net::IngressServer backends, driven
// by net::Client over loopback. The centerpiece is the fleet-determinism
// contract: results served through the router are byte-identical to
// in-process FlowServer execution of the same request set, for any
// backend count — plus the failure-path contracts (backend down ->
// BACKEND_UNAVAILABLE + reconnect with backoff; Stop() answers every
// admitted request).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gen/schema_generator.h"
#include "net/client.h"
#include "net/ingress_server.h"
#include "net/router.h"
#include "net/wire_protocol.h"
#include "obs/event_log.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "runtime/flow_server.h"

namespace dflow::net {
namespace {

core::Strategy S(const char* text) { return *core::Strategy::Parse(text); }

gen::GeneratedSchema MakePattern(uint64_t seed = 31, int nb_nodes = 32,
                                 int nb_rows = 4) {
  gen::PatternParams params;
  params.nb_nodes = nb_nodes;
  params.nb_rows = nb_rows;
  params.seed = seed;
  return gen::GeneratePattern(params);
}

std::vector<runtime::FlowRequest> MakeWorkload(
    const gen::GeneratedSchema& pattern, int count) {
  std::vector<runtime::FlowRequest> requests;
  requests.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const uint64_t seed = gen::InstanceSeed(pattern.params, i);
    requests.push_back({gen::MakeSourceBinding(pattern, seed), seed});
  }
  return requests;
}

// Everything a wire response carries, keyed for byte-identity comparison.
struct WireOutcome {
  int64_t work = 0;
  int64_t wasted_work = 0;
  double response_time = 0;
  int32_t queries_launched = 0;
  int32_t speculative_launches = 0;
  uint64_t fingerprint = 0;
  std::vector<SnapshotEntry> snapshot;

  friend bool operator==(const WireOutcome&, const WireOutcome&) = default;
};

WireOutcome FromWire(const SubmitResult& result) {
  WireOutcome outcome;
  outcome.work = result.work;
  outcome.wasted_work = result.wasted_work;
  outcome.response_time = result.response_time;
  outcome.queries_launched = result.queries_launched;
  outcome.speculative_launches = result.speculative_launches;
  outcome.fingerprint = result.fingerprint;
  outcome.snapshot = result.snapshot;
  return outcome;
}

WireOutcome FromInstanceResult(const core::InstanceResult& result) {
  WireOutcome outcome;
  outcome.work = result.metrics.work;
  outcome.wasted_work = result.metrics.wasted_work;
  outcome.response_time = result.metrics.ResponseTime();
  outcome.queries_launched = result.metrics.queries_launched;
  outcome.speculative_launches = result.metrics.speculative_launches;
  outcome.fingerprint = FingerprintResult(result);
  const int n = result.snapshot.schema().num_attributes();
  outcome.snapshot.reserve(static_cast<size_t>(n));
  for (int a = 0; a < n; ++a) {
    const auto attr = static_cast<AttributeId>(a);
    outcome.snapshot.push_back(SnapshotEntry{
        attr, result.snapshot.state(attr), result.snapshot.value(attr)});
  }
  return outcome;
}

// A fleet of real ingress servers plus a router in front, torn down in
// the right order by the destructor. `pattern` must outlive the fleet.
struct Fleet {
  const gen::GeneratedSchema* pattern = nullptr;
  std::vector<std::unique_ptr<IngressServer>> backends;
  std::unique_ptr<Router> router;

  ~Fleet() {
    if (router != nullptr) router->Stop();
    for (const std::unique_ptr<IngressServer>& backend : backends) {
      backend->Stop();
    }
  }
};

runtime::FlowServerOptions BackendOptions(int shards,
                                          const char* strategy = "PSE100") {
  runtime::FlowServerOptions options;
  options.num_shards = shards;
  options.strategy = S(strategy);
  return options;
}

// Starts `shard_counts.size()` backends (backend i with the given shard
// count) and a router over all of them.
std::unique_ptr<Fleet> MakeFleet(const gen::GeneratedSchema& pattern,
                                 const std::vector<int>& shard_counts,
                                 RouterOptions router_options = {}) {
  auto fleet = std::make_unique<Fleet>();
  fleet->pattern = &pattern;
  for (const int shards : shard_counts) {
    auto backend = std::make_unique<IngressServer>(
        &pattern.schema, BackendOptions(shards), IngressOptions{});
    std::string error;
    EXPECT_TRUE(backend->Start(&error)) << error;
    router_options.backends.push_back(
        BackendAddress{"127.0.0.1", backend->port()});
    fleet->backends.push_back(std::move(backend));
  }
  // Fast backoff so the reconnect tests do not wait out production delays.
  router_options.backoff_initial_ms = 10;
  router_options.backoff_max_ms = 100;
  fleet->router = std::make_unique<Router>(router_options);
  std::string error;
  EXPECT_TRUE(fleet->router->Start(&error)) << error;
  return fleet;
}

// Serves the workload through the router (pipelined on one connection,
// full snapshots requested) and returns seed -> outcome.
std::map<uint64_t, WireOutcome> ServeThroughRouter(
    const Fleet& fleet, const std::vector<runtime::FlowRequest>& requests) {
  Client client;
  std::string error;
  EXPECT_TRUE(client.Connect("127.0.0.1", fleet.router->port(), &error))
      << error;
  for (size_t i = 0; i < requests.size(); ++i) {
    SubmitRequest submit;
    submit.request_id = i + 1;
    submit.seed = requests[i].seed;
    submit.want_snapshot = true;
    submit.sources = requests[i].sources;
    EXPECT_TRUE(client.SendSubmit(submit));
  }
  std::map<uint64_t, WireOutcome> by_seed;
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::optional<ServerMessage> message = client.ReadMessage();
    if (!message.has_value() || message->type != MsgType::kSubmitResult) {
      ADD_FAILURE() << "missing or non-result reply " << i;
      break;
    }
    const size_t index = static_cast<size_t>(message->result.request_id) - 1;
    if (index >= requests.size()) {
      ADD_FAILURE() << "response names unknown request_id "
                    << message->result.request_id;
      break;
    }
    by_seed.emplace(requests[index].seed, FromWire(message->result));
  }
  EXPECT_TRUE(client.Goodbye());
  return by_seed;
}

// --- The acceptance-criteria test: routing through 1, 2, and 3 backends
// serves bytes identical to in-process FlowServer execution.
TEST(RouterTest, RoutedResultsMatchDirectExecutionAcrossFleetSizes) {
  const gen::GeneratedSchema pattern = MakePattern();
  const std::vector<runtime::FlowRequest> requests =
      MakeWorkload(pattern, 45);

  // In-process reference: a FlowServer driven directly, no network.
  runtime::FlowServerOptions options = BackendOptions(2);
  runtime::FlowServer reference(&pattern.schema, options);
  std::mutex mu;
  std::map<uint64_t, WireOutcome> expected;
  reference.SetResultCallback([&](int, const runtime::FlowRequest& request,
                                  const core::InstanceResult& result,
                                  const core::Strategy&) {
    std::lock_guard<std::mutex> lock(mu);
    expected.emplace(request.seed, FromInstanceResult(result));
  });
  for (const runtime::FlowRequest& request : requests) {
    ASSERT_TRUE(reference.Submit(request));
  }
  reference.Drain();
  ASSERT_EQ(expected.size(), requests.size());

  // Deliberately heterogeneous shard counts: node placement AND shard
  // placement both move as the fleet grows, and the bytes must not.
  const std::vector<std::vector<int>> fleets = {{2}, {1, 3}, {2, 1, 2}};
  for (const std::vector<int>& shard_counts : fleets) {
    const std::unique_ptr<Fleet> fleet = MakeFleet(pattern, shard_counts);
    const std::map<uint64_t, WireOutcome> served =
        ServeThroughRouter(*fleet, requests);
    ASSERT_EQ(served.size(), requests.size())
        << shard_counts.size() << " backends";
    EXPECT_EQ(served, expected) << shard_counts.size() << " backends";
  }
}

// Placement is ShardFor(seed, num_backends), observable per backend in
// RouterStats: the router and a local recomputation must agree exactly,
// and a re-run must land every request on the same backend.
TEST(RouterTest, SeedRoutingIsStableAndMatchesShardFor) {
  const gen::GeneratedSchema pattern = MakePattern(33);
  const std::vector<runtime::FlowRequest> requests =
      MakeWorkload(pattern, 60);
  std::vector<int64_t> expected_per_backend(3, 0);
  for (const runtime::FlowRequest& request : requests) {
    ++expected_per_backend[static_cast<size_t>(
        runtime::FlowServer::ShardFor(request.seed, 3))];
  }
  // The hash must actually spread this workload (not a degenerate split).
  for (const int64_t count : expected_per_backend) EXPECT_GT(count, 0);

  for (int run = 0; run < 2; ++run) {
    const std::unique_ptr<Fleet> fleet = MakeFleet(pattern, {1, 1, 1});
    const std::map<uint64_t, WireOutcome> served =
        ServeThroughRouter(*fleet, requests);
    EXPECT_EQ(served.size(), requests.size());
    const RouterStats stats = fleet->router->router_stats();
    ASSERT_EQ(stats.backends.size(), 3u);
    for (size_t b = 0; b < 3; ++b) {
      EXPECT_EQ(stats.backends[b].forwarded, expected_per_backend[b])
          << "backend " << b << " run " << run;
      EXPECT_EQ(stats.backends[b].answered, expected_per_backend[b]);
    }
  }
}

TEST(RouterTest, InfoAggregatesTheFleet) {
  const gen::GeneratedSchema pattern = MakePattern(35);
  const std::unique_ptr<Fleet> fleet = MakeFleet(pattern, {1, 3});
  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", fleet->router->port(), &error))
      << error;
  const std::optional<ServerInfo> info = client.Info();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->router.is_router, 1);
  ASSERT_EQ(info->router.backends.size(), 2u);
  EXPECT_EQ(info->num_shards, 4);  // 1 + 3, summed over the fleet
  EXPECT_EQ(info->strategy, "PSE100");
  EXPECT_EQ(info->router.backends[0].node_id,
            "serve:" + std::to_string(fleet->backends[0]->port()));
  EXPECT_EQ(info->router.backends[0].connected, 1);
  EXPECT_EQ(info->router.backends[1].shards, 3);
  EXPECT_EQ(info->node_id,
            "router:" + std::to_string(fleet->router->port()));
  EXPECT_TRUE(client.Goodbye());
}

// A mismatched fleet (different strategies) must be refused at Start:
// routing by seed assumes any node serves the same bytes.
TEST(RouterTest, StartRefusesAHeterogeneousFleet) {
  gen::GeneratedSchema pattern = MakePattern(37);
  IngressServer pse(&pattern.schema, BackendOptions(1, "PSE100"),
                    IngressOptions{});
  IngressServer ncc(&pattern.schema, BackendOptions(1, "NCC0"),
                    IngressOptions{});
  std::string error;
  ASSERT_TRUE(pse.Start(&error)) << error;
  ASSERT_TRUE(ncc.Start(&error)) << error;
  RouterOptions options;
  options.backends = {BackendAddress{"127.0.0.1", pse.port()},
                      BackendAddress{"127.0.0.1", ncc.port()}};
  Router router(options);
  EXPECT_FALSE(router.Start(&error));
  EXPECT_NE(error.find("NCC0"), std::string::npos) << error;
  router.Stop();
  pse.Stop();
  ncc.Stop();
}

TEST(RouterTest, StartFailsWhenABackendIsUnreachable) {
  RouterOptions options;
  // Reserve a port, then close it so nothing listens there.
  uint16_t dead_port;
  {
    ListenSocket probe;
    std::string error;
    ASSERT_TRUE(probe.Listen(0, &error)) << error;
    dead_port = probe.port();
  }
  options.backends = {BackendAddress{"127.0.0.1", dead_port}};
  options.connect_timeout_s = 0.3;
  options.backoff_initial_ms = 10;
  options.backoff_max_ms = 50;
  Router router(options);
  std::string error;
  EXPECT_FALSE(router.Start(&error));
  EXPECT_NE(error.find("unreachable"), std::string::npos) << error;
}

// The reconnect/backoff path: a backend dies mid-run (its seeds fail fast
// with BACKEND_UNAVAILABLE while the sibling keeps serving), then a new
// server takes over the same port and the router must re-attach and serve
// those seeds again — counting the reconnect.
TEST(RouterTest, BackendDownSurfacesUnavailableThenReconnects) {
  const gen::GeneratedSchema pattern = MakePattern(39);
  const std::vector<runtime::FlowRequest> requests =
      MakeWorkload(pattern, 40);
  std::unique_ptr<Fleet> fleet = MakeFleet(pattern, {1, 1});

  // One request routed to each backend.
  const runtime::FlowRequest* to_backend0 = nullptr;
  const runtime::FlowRequest* to_backend1 = nullptr;
  for (const runtime::FlowRequest& request : requests) {
    (runtime::FlowServer::ShardFor(request.seed, 2) == 0 ? to_backend0
                                                         : to_backend1) =
        &request;
  }
  ASSERT_NE(to_backend0, nullptr);
  ASSERT_NE(to_backend1, nullptr);

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", fleet->router->port(), &error))
      << error;
  auto submit = [&](const runtime::FlowRequest& request,
                    uint64_t request_id) -> std::optional<ServerMessage> {
    SubmitRequest message;
    message.request_id = request_id;
    message.seed = request.seed;
    message.sources = request.sources;
    return client.Call(message);
  };

  // Healthy fleet: both seeds serve.
  std::optional<ServerMessage> reply = submit(*to_backend1, 1);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::kSubmitResult);

  // Kill backend 1 (keep its port). Its seeds fail fast with the typed
  // error; backend 0's seeds are unaffected.
  const uint16_t backend1_port = fleet->backends[1]->port();
  fleet->backends[1]->Stop();
  bool saw_unavailable = false;
  for (int attempt = 0; attempt < 200 && !saw_unavailable; ++attempt) {
    reply = submit(*to_backend1, 100 + static_cast<uint64_t>(attempt));
    ASSERT_TRUE(reply.has_value());
    if (reply->type == MsgType::kError) {
      EXPECT_EQ(reply->error.code, WireError::kBackendUnavailable);
      EXPECT_EQ(reply->error.request_id, 100 + static_cast<uint64_t>(attempt));
      saw_unavailable = true;
    } else {
      // The router has not noticed the EOF yet; results already in flight
      // may still arrive. Brief pause, try again.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(saw_unavailable);
  reply = submit(*to_backend0, 500);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::kSubmitResult);

  // Resurrect a server on the same port; the router's backoff loop must
  // re-attach and serve backend-1 seeds again.
  IngressOptions revived_options;
  revived_options.port = backend1_port;
  auto revived = std::make_unique<IngressServer>(
      &pattern.schema, BackendOptions(1), revived_options);
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (revived->Start(&error)) break;
    // The old listener's port may take a moment to free.
    revived = std::make_unique<IngressServer>(&pattern.schema,
                                              BackendOptions(1),
                                              revived_options);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(revived->port() == backend1_port) << error;
  bool recovered = false;
  for (int attempt = 0; attempt < 500 && !recovered; ++attempt) {
    reply = submit(*to_backend1, 1000 + static_cast<uint64_t>(attempt));
    ASSERT_TRUE(reply.has_value());
    if (reply->type == MsgType::kSubmitResult) {
      recovered = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(recovered);
  const RouterStats stats = fleet->router->router_stats();
  ASSERT_EQ(stats.backends.size(), 2u);
  EXPECT_GE(stats.backends[1].reconnects, 1);
  EXPECT_GE(stats.backends[1].unavailable, 1);
  EXPECT_TRUE(client.Goodbye());
  fleet->router->Stop();
  revived->Stop();
}

// A well-framed submit that peeks (>= 20 bytes) but does not decode is
// forwarded, answered MALFORMED_FRAME by the backend, and relayed back
// with the client's correlation id restored — the backend peeks the id
// out of the undecodable payload precisely so the router's ticket does
// not leak. The goodbye ack proves the session drained to zero in-flight.
TEST(RouterTest, MalformedForwardedSubmitIsAnsweredAndDoesNotLeakTickets) {
  const gen::GeneratedSchema pattern = MakePattern(43);
  const std::unique_ptr<Fleet> fleet = MakeFleet(pattern, {1, 1});
  std::string error;
  Socket raw = Socket::ConnectTcp("127.0.0.1", fleet->router->port(), &error);
  ASSERT_TRUE(raw.valid()) << error;

  // request_id=77, seed=5, flags=blocking, then a truncated strategy
  // length: long enough for the router to route, undecodable downstream.
  std::vector<uint8_t> payload(21, 0);
  payload[0] = 77;
  payload[8] = 5;
  payload[16] = 1;
  payload[20] = 0xff;
  std::vector<uint8_t> stream;
  EncodeRawFrame(static_cast<uint8_t>(MsgType::kSubmit), payload, &stream);
  EncodeGoodbye(&stream);
  ASSERT_TRUE(raw.SendAll(stream.data(), stream.size()));

  FrameAssembler assembler;
  auto read_frame = [&]() -> std::optional<Frame> {
    uint8_t chunk[4096];
    while (true) {
      if (std::optional<Frame> frame = assembler.Next()) return frame;
      if (assembler.error() != WireError::kNone) return std::nullopt;
      const ssize_t n = raw.Recv(chunk, sizeof(chunk));
      if (n <= 0) return std::nullopt;
      assembler.Feed(chunk, static_cast<size_t>(n));
    }
  };
  std::optional<Frame> frame = read_frame();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, static_cast<uint8_t>(MsgType::kError));
  ErrorReply reply;
  ASSERT_TRUE(DecodeError(frame->payload, &reply));
  EXPECT_EQ(reply.code, WireError::kMalformedFrame);
  EXPECT_EQ(reply.request_id, 77u);
  // The ack only comes once the session's in-flight count hit zero.
  frame = read_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, static_cast<uint8_t>(MsgType::kGoodbyeAck));
}

// A submit too short even to peek a seed (but long enough to carry the
// correlation id) is answered by the router itself — with the id echoed,
// so the error stays attributable.
TEST(RouterTest, TooShortSubmitIsAnsweredAttributablyByTheRouter) {
  const gen::GeneratedSchema pattern = MakePattern(44);
  const std::unique_ptr<Fleet> fleet = MakeFleet(pattern, {1});
  std::string error;
  Socket raw = Socket::ConnectTcp("127.0.0.1", fleet->router->port(), &error);
  ASSERT_TRUE(raw.valid()) << error;
  std::vector<uint8_t> payload(10, 0);  // request_id=55, then 2 stray bytes
  payload[0] = 55;
  std::vector<uint8_t> stream;
  EncodeRawFrame(static_cast<uint8_t>(MsgType::kSubmit), payload, &stream);
  ASSERT_TRUE(raw.SendAll(stream.data(), stream.size()));
  FrameAssembler assembler;
  uint8_t chunk[4096];
  std::optional<Frame> frame;
  while (!(frame = assembler.Next()).has_value()) {
    ASSERT_EQ(assembler.error(), WireError::kNone);
    const ssize_t n = raw.Recv(chunk, sizeof(chunk));
    ASSERT_GT(n, 0);
    assembler.Feed(chunk, static_cast<size_t>(n));
  }
  ASSERT_EQ(frame->type, static_cast<uint8_t>(MsgType::kError));
  ErrorReply reply;
  ASSERT_TRUE(DecodeError(frame->payload, &reply));
  EXPECT_EQ(reply.code, WireError::kMalformedFrame);
  EXPECT_EQ(reply.request_id, 55u);
}

// A backend restarted under a different strategy must be REFUSED at
// re-handshake (its seeds keep failing fast) — re-attaching it would
// silently serve different bytes. Restoring the right strategy recovers.
TEST(RouterTest, RestartedBackendWithDifferentStrategyIsRefused) {
  const gen::GeneratedSchema pattern = MakePattern(45);
  const std::vector<runtime::FlowRequest> requests =
      MakeWorkload(pattern, 40);
  std::unique_ptr<Fleet> fleet = MakeFleet(pattern, {1, 1});
  const runtime::FlowRequest* to_backend1 = nullptr;
  for (const runtime::FlowRequest& request : requests) {
    if (runtime::FlowServer::ShardFor(request.seed, 2) == 1) {
      to_backend1 = &request;
      break;
    }
  }
  ASSERT_NE(to_backend1, nullptr);

  const uint16_t backend1_port = fleet->backends[1]->port();
  fleet->backends[1]->Stop();

  IngressOptions takeover_options;
  takeover_options.port = backend1_port;
  auto start_on_port = [&](const char* strategy) {
    auto server = std::make_unique<IngressServer>(
        &pattern.schema, BackendOptions(1, strategy), takeover_options);
    std::string error;
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (server->Start(&error)) return server;
      server = std::make_unique<IngressServer>(
          &pattern.schema, BackendOptions(1, strategy), takeover_options);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "cannot rebind " << backend1_port << ": " << error;
    return server;
  };
  std::unique_ptr<IngressServer> wrong = start_on_port("NCC0");

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", fleet->router->port(), &error))
      << error;
  // Give the router many backoff cycles (10..100ms in test config) to
  // wrongly re-attach: every answer for this seed must stay the typed
  // unavailable error, never a result computed under NCC0.
  for (int attempt = 0; attempt < 40; ++attempt) {
    SubmitRequest submit;
    submit.request_id = static_cast<uint64_t>(attempt) + 1;
    submit.seed = to_backend1->seed;
    submit.sources = to_backend1->sources;
    const std::optional<ServerMessage> reply = client.Call(submit);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MsgType::kError) << "attempt " << attempt;
    EXPECT_EQ(reply->error.code, WireError::kBackendUnavailable);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fleet->router->router_stats().backends[1].connected, 0);

  // Swap in a matching server: the router must re-attach and serve again.
  wrong->Stop();
  std::unique_ptr<IngressServer> right = start_on_port("PSE100");
  bool recovered = false;
  for (int attempt = 0; attempt < 500 && !recovered; ++attempt) {
    SubmitRequest submit;
    submit.request_id = 1000 + static_cast<uint64_t>(attempt);
    submit.seed = to_backend1->seed;
    submit.sources = to_backend1->sources;
    const std::optional<ServerMessage> reply = client.Call(submit);
    ASSERT_TRUE(reply.has_value());
    if (reply->type == MsgType::kSubmitResult) {
      recovered = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(recovered);
  EXPECT_TRUE(client.Goodbye());
  fleet->router->Stop();
  wrong->Stop();
  right->Stop();
}

// Stop() with a burst still executing downstream: every request the
// router admitted (forwarded) is answered before the front door dies.
TEST(RouterTest, StopAnswersEveryAdmittedRequest) {
  const gen::GeneratedSchema pattern = MakePattern(41);
  const std::vector<runtime::FlowRequest> requests =
      MakeWorkload(pattern, 30);
  // Bounded-DB backends execute slowly enough that the burst is still in
  // flight when Stop lands.
  auto fleet = std::make_unique<Fleet>();
  fleet->pattern = &pattern;
  RouterOptions router_options;
  for (int b = 0; b < 2; ++b) {
    runtime::FlowServerOptions options = BackendOptions(1);
    options.backend = core::BackendKind::kBoundedDb;
    auto backend = std::make_unique<IngressServer>(
        &pattern.schema, options, IngressOptions{});
    std::string error;
    ASSERT_TRUE(backend->Start(&error)) << error;
    router_options.backends.push_back(
        BackendAddress{"127.0.0.1", backend->port()});
    fleet->backends.push_back(std::move(backend));
  }
  fleet->router = std::make_unique<Router>(router_options);
  std::string error;
  ASSERT_TRUE(fleet->router->Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fleet->router->port(), &error))
      << error;
  for (size_t i = 0; i < requests.size(); ++i) {
    SubmitRequest submit;
    submit.request_id = i + 1;
    submit.seed = requests[i].seed;
    submit.sources = requests[i].sources;
    ASSERT_TRUE(client.SendSubmit(submit));
  }
  // Admission (forwarding), not transmission, obligates an answer: wait
  // until the router's session reader consumed the whole burst.
  for (int spin = 0; spin < 10000; ++spin) {
    if (fleet->router->front_stats().requests_accepted ==
        static_cast<int64_t>(requests.size())) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(fleet->router->front_stats().requests_accepted,
            static_cast<int64_t>(requests.size()));

  // Read concurrently with Stop(): the drain flushes into this reader.
  std::thread reader([&] {
    size_t answered = 0;
    while (answered < requests.size()) {
      const std::optional<ServerMessage> message = client.ReadMessage();
      if (!message.has_value()) break;
      if (message->type == MsgType::kSubmitResult ||
          message->type == MsgType::kError) {
        ++answered;
      }
    }
    EXPECT_EQ(answered, requests.size());
  });
  fleet->router->Stop();
  reader.join();
  const runtime::IngressStats front = fleet->router->front_stats();
  EXPECT_EQ(front.requests_accepted, static_cast<int64_t>(requests.size()));
}

// --- Observability: the router is the fleet's trace entry point. With
// --trace-sample=1 on the router and NO tracing configured on the
// backends, every routed reply must still carry a full cross-node trace:
// the backend adopts the router-minted id via the forwarded v4 extension
// and the router appends its router.forward span to the relayed result.
TEST(RouterTest, RoutedTraceCoversRouterAndBackendStages) {
  const gen::GeneratedSchema pattern = MakePattern(43);
  const std::vector<runtime::FlowRequest> requests =
      MakeWorkload(pattern, 24);
  const std::unique_ptr<Fleet> untraced_fleet = MakeFleet(pattern, {1, 2});
  const std::map<uint64_t, WireOutcome> untraced =
      ServeThroughRouter(*untraced_fleet, requests);
  ASSERT_EQ(untraced.size(), requests.size());

  RouterOptions router_options;
  router_options.trace.sample_period = 1;
  const std::unique_ptr<Fleet> fleet =
      MakeFleet(pattern, {1, 2}, router_options);
  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", fleet->router->port(), &error))
      << error;
  for (size_t i = 0; i < requests.size(); ++i) {
    SubmitRequest submit;
    submit.request_id = i + 1;
    submit.seed = requests[i].seed;
    submit.want_snapshot = true;
    submit.sources = requests[i].sources;
    ASSERT_TRUE(client.SendSubmit(submit));
  }
  std::map<uint64_t, WireOutcome> traced;
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::optional<ServerMessage> message = client.ReadMessage();
    ASSERT_TRUE(message.has_value());
    ASSERT_EQ(message->type, MsgType::kSubmitResult);
    const SubmitResult& result = message->result;
    const size_t index = static_cast<size_t>(result.request_id) - 1;
    ASSERT_LT(index, requests.size());
    traced.emplace(requests[index].seed, FromWire(result));

    EXPECT_NE(result.trace_id, 0u);
    std::map<uint8_t, int> kinds;
    for (const WireSpan& span : result.spans) ++kinds[span.kind];
    // Backend stages, recorded under the router-minted id.
    EXPECT_EQ(kinds.count(
                  static_cast<uint8_t>(obs::SpanKind::kIngressQueue)), 1u);
    EXPECT_EQ(kinds.count(
                  static_cast<uint8_t>(obs::SpanKind::kShardQueueWait)), 1u);
    EXPECT_EQ(kinds.count(
                  static_cast<uint8_t>(obs::SpanKind::kCacheLookup)), 1u);
    EXPECT_EQ(kinds.count(
                  static_cast<uint8_t>(obs::SpanKind::kOutboxWrite)), 1u);
    // The router's own stage, appended to the relayed payload. Its start
    // travels as 0: cross-node monotonic clocks are not comparable.
    const auto forward = static_cast<uint8_t>(obs::SpanKind::kRouterForward);
    ASSERT_EQ(kinds.count(forward), 1u);
    for (const WireSpan& span : result.spans) {
      if (span.kind != forward) continue;
      EXPECT_EQ(span.start_ns, 0u);
      EXPECT_GT(span.duration_ns, 0u);
    }
  }

  // An upstream id supplied by the client is adopted by the whole chain.
  SubmitRequest flagged;
  flagged.request_id = requests.size() + 1;
  flagged.seed = requests[0].seed;
  flagged.sources = requests[0].sources;
  flagged.has_trace = true;
  flagged.trace_id = 0xfeedface;
  const std::optional<ServerMessage> reply = client.Call(flagged);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kSubmitResult);
  EXPECT_EQ(reply->result.trace_id, 0xfeedfaceu);
  EXPECT_TRUE(client.Goodbye());

  // Tracing does not perturb routed bytes.
  EXPECT_EQ(traced, untraced);
  EXPECT_EQ(fleet->router->recorder().finished(),
            static_cast<int64_t>(requests.size()) + 1);
}

// The router front door accounts its outboxes and serves its registry
// over the same kMetricsRequest frame the backends answer.
TEST(RouterTest, FrontStatsAndMetricsScrapeExposeTheRoutingTier) {
  const gen::GeneratedSchema pattern = MakePattern(47);
  const std::vector<runtime::FlowRequest> requests =
      MakeWorkload(pattern, 20);
  const std::unique_ptr<Fleet> fleet = MakeFleet(pattern, {2, 1});
  const std::map<uint64_t, WireOutcome> served =
      ServeThroughRouter(*fleet, requests);
  ASSERT_EQ(served.size(), requests.size());

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", fleet->router->port(), &error))
      << error;
  ASSERT_TRUE(client.SendMetricsRequest());
  const std::optional<std::string> text = client.Metrics();
  ASSERT_TRUE(text.has_value());
  for (const char* needle :
       {"# TYPE dflow_requests_routed_total counter",
        "dflow_requests_routed_total 20", "dflow_relayed_results_total 20",
        "# TYPE dflow_backend_forwarded_total counter",
        "dflow_backend_connected{backend=", "dflow_wall_latency_us_count 20"}) {
    EXPECT_NE(text->find(needle), std::string::npos)
        << "missing '" << needle << "' in:\n"
        << *text;
  }
  // Per-backend forwarded counters carry address labels and sum to the
  // routed total.
  EXPECT_TRUE(client.Goodbye());
  fleet->router->Stop();

  const runtime::IngressStats front = fleet->router->front_stats();
  EXPECT_GT(front.outbox_bytes_written, 0);
  EXPECT_GE(front.outbox_inflight_hwm, 1);
  EXPECT_EQ(front.outbox_bytes_written, front.bytes_out);
  // Exactly-once folding of closed sessions: a second read is identical.
  const runtime::IngressStats again = fleet->router->front_stats();
  EXPECT_EQ(again.outbox_bytes_written, front.outbox_bytes_written);
  EXPECT_EQ(again.outbox_inflight_hwm, front.outbox_inflight_hwm);
}

// --- The replicated fleet -------------------------------------------------

// A byte-pumping TCP proxy in front of one backend that can die abruptly:
// Kill() hard-shuts every proxied connection mid-stream, which is exactly
// what a kill -9'd backend looks like to the router (no goodbye, no
// drain). StallResponses() additionally swallows backend->router bytes, so
// a test can pin a whole burst in the in-flight state before the kill.
class TcpProxy {
 public:
  TcpProxy(std::string target_host, uint16_t target_port)
      : target_host_(std::move(target_host)), target_port_(target_port) {}
  ~TcpProxy() { Kill(); }

  bool Start(std::string* error) {
    if (!listener_.Listen(0, error)) return false;
    acceptor_ = std::thread([this] { AcceptLoop(); });
    return true;
  }

  uint16_t port() const { return listener_.port(); }

  // From now on, bytes flowing backend -> router are dropped (the
  // connection stays up, answers just never arrive). Only meaningful on a
  // proxy that is about to be killed.
  void StallResponses() { stall_responses_ = true; }

  // Abrupt death. Idempotent.
  void Kill() {
    killed_ = true;
    listener_.Shutdown();
    std::vector<std::thread> pumps;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const std::shared_ptr<Pair>& pair : pairs_) {
        pair->client.ShutdownBoth();
        pair->upstream.ShutdownBoth();
      }
      pumps.swap(pumps_);
    }
    if (acceptor_.joinable()) acceptor_.join();
    for (std::thread& pump : pumps) pump.join();
  }

 private:
  struct Pair {
    Socket client;
    Socket upstream;
  };

  void AcceptLoop() {
    while (true) {
      Socket client = listener_.Accept();
      if (!client.valid()) return;
      std::string error;
      Socket upstream =
          Socket::ConnectTcp(target_host_, target_port_, &error);
      if (!upstream.valid()) continue;  // backend gone; drop this client
      auto pair = std::make_shared<Pair>();
      pair->client = std::move(client);
      pair->upstream = std::move(upstream);
      std::lock_guard<std::mutex> lock(mu_);
      if (killed_) return;
      pairs_.push_back(pair);
      pumps_.emplace_back([this, pair] {
        PumpLoop(&pair->client, &pair->upstream, /*is_response=*/false);
      });
      pumps_.emplace_back([this, pair] {
        PumpLoop(&pair->upstream, &pair->client, /*is_response=*/true);
      });
    }
  }

  void PumpLoop(Socket* from, Socket* to, bool is_response) {
    uint8_t buffer[4096];
    while (true) {
      const ssize_t n = from->Recv(buffer, sizeof(buffer));
      if (n <= 0) break;
      if (is_response && stall_responses_) continue;  // swallow
      if (!to->SendAll(buffer, static_cast<size_t>(n))) break;
    }
    to->ShutdownWrite();
  }

  const std::string target_host_;
  const uint16_t target_port_;
  ListenSocket listener_;
  std::thread acceptor_;
  std::atomic<bool> killed_{false};
  std::atomic<bool> stall_responses_{false};
  std::mutex mu_;
  std::vector<std::shared_ptr<Pair>> pairs_;
  std::vector<std::thread> pumps_;
};

// A replicated fleet serves the exact bytes of direct in-process
// execution, slot/replica placement is observable in RouterStats, and the
// sampled divergence cross-check stays clean on a healthy homogeneous
// fleet.
TEST(RouterTest, ReplicatedFleetServesIdenticalBytesWithCleanDivergence) {
  const gen::GeneratedSchema pattern = MakePattern(51);
  const std::vector<runtime::FlowRequest> requests =
      MakeWorkload(pattern, 45);

  runtime::FlowServerOptions options = BackendOptions(2);
  runtime::FlowServer reference(&pattern.schema, options);
  std::mutex mu;
  std::map<uint64_t, WireOutcome> expected;
  reference.SetResultCallback([&](int, const runtime::FlowRequest& request,
                                  const core::InstanceResult& result,
                                  const core::Strategy&) {
    std::lock_guard<std::mutex> lock(mu);
    expected.emplace(request.seed, FromInstanceResult(result));
  });
  for (const runtime::FlowRequest& request : requests) {
    ASSERT_TRUE(reference.Submit(request));
  }
  reference.Drain();
  ASSERT_EQ(expected.size(), requests.size());

  // Four backends, two replicas -> two slots. Shard counts deliberately
  // differ ACROSS slots and WITHIN a slot: replica byte-identity must not
  // depend on internal sharding.
  RouterOptions router_options;
  router_options.replicas = 2;
  router_options.divergence_sample_period = 2;
  const std::unique_ptr<Fleet> fleet =
      MakeFleet(pattern, {1, 2, 3, 1}, router_options);
  const std::map<uint64_t, WireOutcome> served =
      ServeThroughRouter(*fleet, requests);
  ASSERT_EQ(served.size(), requests.size());
  EXPECT_EQ(served, expected);

  const RouterStats stats = fleet->router->router_stats();
  EXPECT_EQ(stats.replicas, 2);
  ASSERT_EQ(stats.backends.size(), 4u);
  for (size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(stats.backends[b].slot, static_cast<int32_t>(b) / 2);
    EXPECT_EQ(stats.backends[b].replica, static_cast<int32_t>(b) % 2);
  }
  // Healthy fleet: checks ran, none diverged, nothing failed over.
  EXPECT_GT(stats.divergence_checks, 0);
  EXPECT_EQ(stats.divergence_mismatches, 0);
  EXPECT_EQ(stats.failovers, 0);
  // Only slot primaries serve client traffic; shadows are the only load
  // on replica 1 of each slot.
  EXPECT_EQ(stats.backends[0].forwarded + stats.backends[2].forwarded,
            static_cast<int64_t>(requests.size()));
}

// The headline failover contract: a replica dies abruptly (hard RST, no
// drain) with a whole burst un-answered, and every request is still
// answered with bytes identical to direct execution — the client never
// sees an error frame.
TEST(RouterTest, AbruptPrimaryDeathReissuesInflightBurstWithoutErrors) {
  const gen::GeneratedSchema pattern = MakePattern(53);
  const std::vector<runtime::FlowRequest> requests =
      MakeWorkload(pattern, 30);

  runtime::FlowServerOptions backend_options = BackendOptions(1);
  runtime::FlowServer reference(&pattern.schema, backend_options);
  std::mutex mu;
  std::map<uint64_t, WireOutcome> expected;
  reference.SetResultCallback([&](int, const runtime::FlowRequest& request,
                                  const core::InstanceResult& result,
                                  const core::Strategy&) {
    std::lock_guard<std::mutex> lock(mu);
    expected.emplace(request.seed, FromInstanceResult(result));
  });
  for (const runtime::FlowRequest& request : requests) {
    ASSERT_TRUE(reference.Submit(request));
  }
  reference.Drain();

  // One slot of two replicas; the primary sits behind the kill-able proxy.
  Fleet fleet;
  fleet.pattern = &pattern;
  for (int b = 0; b < 2; ++b) {
    auto backend = std::make_unique<IngressServer>(
        &pattern.schema, backend_options, IngressOptions{});
    std::string error;
    ASSERT_TRUE(backend->Start(&error)) << error;
    fleet.backends.push_back(std::move(backend));
  }
  TcpProxy proxy("127.0.0.1", fleet.backends[0]->port());
  std::string error;
  ASSERT_TRUE(proxy.Start(&error)) << error;
  RouterOptions router_options;
  router_options.replicas = 2;
  router_options.backoff_initial_ms = 10;
  router_options.backoff_max_ms = 100;
  router_options.backends = {
      BackendAddress{"127.0.0.1", proxy.port()},
      BackendAddress{"127.0.0.1", fleet.backends[1]->port()}};
  fleet.router = std::make_unique<Router>(router_options);
  ASSERT_TRUE(fleet.router->Start(&error)) << error;

  // From here on the primary's answers are swallowed: the burst below is
  // guaranteed to be fully in flight when the proxy dies.
  proxy.StallResponses();

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fleet.router->port(), &error))
      << error;
  for (size_t i = 0; i < requests.size(); ++i) {
    SubmitRequest submit;
    submit.request_id = i + 1;
    submit.seed = requests[i].seed;
    submit.want_snapshot = true;
    submit.sources = requests[i].sources;
    ASSERT_TRUE(client.SendSubmit(submit));
  }
  // Wait until the router forwarded the whole burst to the (stalled)
  // primary, then kill it mid-flight.
  for (int spin = 0; spin < 10000; ++spin) {
    if (fleet.router->front_stats().requests_accepted ==
        static_cast<int64_t>(requests.size())) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(fleet.router->front_stats().requests_accepted,
            static_cast<int64_t>(requests.size()));
  proxy.Kill();

  std::map<uint64_t, WireOutcome> served;
  int error_frames = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    const std::optional<ServerMessage> message = client.ReadMessage();
    ASSERT_TRUE(message.has_value()) << "reply " << i << " never arrived";
    if (message->type != MsgType::kSubmitResult) {
      ++error_frames;
      continue;
    }
    const size_t index = static_cast<size_t>(message->result.request_id) - 1;
    ASSERT_LT(index, requests.size());
    served.emplace(requests[index].seed, FromWire(message->result));
  }
  EXPECT_EQ(error_frames, 0);
  ASSERT_EQ(served.size(), requests.size());
  EXPECT_EQ(served, expected);

  const RouterStats stats = fleet.router->router_stats();
  EXPECT_GE(stats.failovers, 1);
  ASSERT_EQ(stats.backends.size(), 2u);
  EXPECT_GE(stats.backends[0].failovers, 1);
  // PR 8: the journal tells the same story as the counters — the abrupt
  // death was recorded and so was the failover sweep that re-issued the
  // orphaned burst.
  EXPECT_GE(fleet.router->journal().CountFor(obs::EventKind::kBackendDeath),
            1);
  EXPECT_GE(fleet.router->journal().CountFor(obs::EventKind::kFailover), 1);
  bool failover_in_tail = false;
  for (const obs::Event& event : fleet.router->journal().Tail(64)) {
    if (event.kind == obs::EventKind::kFailover &&
        event.detail.find("tickets=") != std::string::npos) {
      failover_in_tail = true;
    }
  }
  EXPECT_TRUE(failover_in_tail);
  EXPECT_TRUE(client.Goodbye());
}

// PR 8 end to end over the wire: a live health collector on the router, a
// backend that dies and comes back, and a Client::Health() poller seeing
// the status walk ok -> (not ok) -> ok with the death and reconnect in the
// shipped journal tail — exactly what dflow_top and the CI chaos stage
// consume.
TEST(RouterTest, HealthPlaneTracksBackendDeathAndRecoveryOverTheWire) {
  const gen::GeneratedSchema pattern = MakePattern(59);
  RouterOptions router_options;
  router_options.health.interval_s = 0.02;  // 50x test-speed cadence
  router_options.health.sustain_samples = 2;
  std::unique_ptr<Fleet> fleet = MakeFleet(pattern, {1, 1}, router_options);

  Client client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", fleet->router->port(), &error))
      << error;

  // Healthy fleet: the router answers HEALTH with itself plus both
  // backends, all ok, and the collector is actually sampling.
  std::optional<HealthInfo> health;
  for (int attempt = 0; attempt < 500; ++attempt) {
    health = client.Health();
    ASSERT_TRUE(health.has_value());
    if (!health->self.series.empty() &&
        health->self.status == static_cast<uint8_t>(obs::HealthStatus::kOk)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->self.is_router, 1);
  EXPECT_EQ(health->self.status,
            static_cast<uint8_t>(obs::HealthStatus::kOk));
  ASSERT_EQ(health->backends.size(), 2u);
  for (const NodeHealth& backend : health->backends) {
    EXPECT_EQ(backend.is_router, 0);
    EXPECT_EQ(backend.status,
              static_cast<uint8_t>(obs::HealthStatus::kOk));
  }

  // Kill backend 1. Its slot has no other replica, so the router's own
  // plane must leave ok (the dead-slot rule makes it critical) and the
  // dead backend's entry must be synthesized as critical.
  const uint16_t backend1_port = fleet->backends[1]->port();
  fleet->backends[1]->Stop();
  bool saw_not_ok = false;
  for (int attempt = 0; attempt < 500 && !saw_not_ok; ++attempt) {
    health = client.Health();
    ASSERT_TRUE(health.has_value());
    if (health->self.status != static_cast<uint8_t>(obs::HealthStatus::kOk)) {
      saw_not_ok = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(saw_not_ok);
  ASSERT_EQ(health->backends.size(), 2u);
  EXPECT_EQ(health->backends[1].status,
            static_cast<uint8_t>(obs::HealthStatus::kCritical));
  // The journal tail shipped in the frame carries the death.
  bool death_in_tail = false;
  for (const WireEvent& event : health->self.events) {
    if (event.kind == static_cast<uint8_t>(obs::EventKind::kBackendDeath)) {
      death_in_tail = true;
    }
  }
  EXPECT_TRUE(death_in_tail);
  EXPECT_GE(fleet->router->journal().CountFor(obs::EventKind::kBackendDeath),
            1);

  // Resurrect on the same port: reconnect, then the sustained-clean rule
  // walks the status back to ok — the degraded->ok transition CI gates on.
  IngressOptions revived_options;
  revived_options.port = backend1_port;
  auto revived = std::make_unique<IngressServer>(
      &pattern.schema, BackendOptions(1), revived_options);
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (revived->Start(&error)) break;
    revived = std::make_unique<IngressServer>(&pattern.schema,
                                              BackendOptions(1),
                                              revived_options);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(revived->port(), backend1_port) << error;
  bool recovered = false;
  for (int attempt = 0; attempt < 1000 && !recovered; ++attempt) {
    health = client.Health();
    ASSERT_TRUE(health.has_value());
    if (health->self.status ==
        static_cast<uint8_t>(obs::HealthStatus::kOk)) {
      recovered = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(recovered);
  EXPECT_GE(
      fleet->router->journal().CountFor(obs::EventKind::kBackendReconnect),
      1);
  // Two transitions at least: away from ok at the death, back to ok after
  // the sustained clean streak.
  EXPECT_GE(
      fleet->router->journal().CountFor(obs::EventKind::kHealthTransition),
      2);
  EXPECT_TRUE(client.Goodbye());
  fleet->router->Stop();
  revived->Stop();
}

// A mis-seeded replica — same schema, same strategy, but configured so it
// computes different bytes — must be caught by the sampled cross-check,
// not trusted silently.
TEST(RouterTest, MisconfiguredReplicaTripsTheDivergenceCheck) {
  const gen::GeneratedSchema pattern = MakePattern(55);
  const std::vector<runtime::FlowRequest> requests =
      MakeWorkload(pattern, 12);

  Fleet fleet;
  fleet.pattern = &pattern;
  for (int b = 0; b < 2; ++b) {
    runtime::FlowServerOptions options = BackendOptions(1);
    options.backend = core::BackendKind::kBoundedDb;
    // Replica 1's database "hardware" is twice as slow: response times —
    // and therefore result fingerprints — differ from the primary's for
    // the same seeds. Handshake identity (pattern, strategy, epoch) is
    // identical, so only the cross-check can see it.
    if (b == 1) options.db.unit_cpu_ms = 2.0;
    auto backend = std::make_unique<IngressServer>(
        &pattern.schema, options, IngressOptions{});
    std::string error;
    ASSERT_TRUE(backend->Start(&error)) << error;
    fleet.backends.push_back(std::move(backend));
  }
  RouterOptions router_options;
  router_options.replicas = 2;
  router_options.divergence_sample_period = 1;  // cross-check everything
  router_options.backoff_initial_ms = 10;
  router_options.backoff_max_ms = 100;
  for (const std::unique_ptr<IngressServer>& backend : fleet.backends) {
    router_options.backends.push_back(
        BackendAddress{"127.0.0.1", backend->port()});
  }
  fleet.router = std::make_unique<Router>(router_options);
  std::string error;
  ASSERT_TRUE(fleet.router->Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fleet.router->port(), &error))
      << error;
  for (size_t i = 0; i < requests.size(); ++i) {
    SubmitRequest submit;
    submit.request_id = i + 1;
    submit.seed = requests[i].seed;
    submit.sources = requests[i].sources;
    const std::optional<ServerMessage> reply = client.Call(submit);
    ASSERT_TRUE(reply.has_value());
    // The client always gets the primary's answer; detection is async.
    EXPECT_EQ(reply->type, MsgType::kSubmitResult);
  }
  // Shadow answers race the primary's; poll for the verdict.
  RouterStats stats;
  for (int spin = 0; spin < 5000; ++spin) {
    stats = fleet.router->router_stats();
    if (stats.divergence_mismatches > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(stats.divergence_checks, 0);
  EXPECT_GT(stats.divergence_mismatches, 0);
  EXPECT_TRUE(client.Goodbye());
}

// Mixed fleet epochs are a deploy bug (half-upgraded replica set); the
// router must refuse to start rather than risk serving from replicas that
// disagree.
TEST(RouterTest, StartRefusesMixedFleetEpochs) {
  const gen::GeneratedSchema pattern = MakePattern(57);
  IngressOptions epoch7;
  epoch7.fleet_epoch = 7;
  IngressOptions epoch8;
  epoch8.fleet_epoch = 8;
  IngressServer old_gen(&pattern.schema, BackendOptions(1), epoch7);
  IngressServer new_gen(&pattern.schema, BackendOptions(1), epoch8);
  std::string error;
  ASSERT_TRUE(old_gen.Start(&error)) << error;
  ASSERT_TRUE(new_gen.Start(&error)) << error;
  RouterOptions options;
  options.replicas = 2;
  options.backends = {BackendAddress{"127.0.0.1", old_gen.port()},
                      BackendAddress{"127.0.0.1", new_gen.port()}};
  Router router(options);
  EXPECT_FALSE(router.Start(&error));
  EXPECT_NE(error.find("fleet epoch"), std::string::npos) << error;
  router.Stop();
  old_gen.Stop();
  new_gen.Stop();
}

// A backend count that does not divide into whole replica groups is a
// configuration error, caught before any connection is attempted.
TEST(RouterTest, StartRefusesRaggedReplicaGroups) {
  const gen::GeneratedSchema pattern = MakePattern(58);
  IngressServer backend(&pattern.schema, BackendOptions(1), IngressOptions{});
  std::string error;
  ASSERT_TRUE(backend.Start(&error)) << error;
  RouterOptions options;
  options.replicas = 2;
  options.backends = {BackendAddress{"127.0.0.1", backend.port()}};
  Router router(options);
  EXPECT_FALSE(router.Start(&error));
  EXPECT_NE(error.find("replicas"), std::string::npos) << error;
  router.Stop();
  backend.Stop();
}

}  // namespace
}  // namespace dflow::net
