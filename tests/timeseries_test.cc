// Unit tests for the PR 8 health collector: rate differencing against
// scripted sources, the watermark/status state machine (sustain, flap,
// dead-slot, recovery), P95FromDelta, and the bounded sample ring. All
// tests drive SampleOnce() directly — the exact code path the collector
// thread runs — so no sleeps and no flakes.

#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics_registry.h"

namespace dflow::obs {
namespace {

// Mutable counter state the scripted sources read through closures, the
// same wiring shape the ingress/router use.
struct Script {
  int64_t requests = 0;
  int64_t failovers = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t explores = 0;
  int64_t slots_total = 0;
  int64_t slots_down = 0;
  std::vector<uint64_t> depths;

  HealthSources Sources(uint64_t queue_capacity = 0) {
    HealthSources sources;
    sources.requests_total = [this] { return requests; };
    sources.failovers_total = [this] { return failovers; };
    sources.cache_hits_total = [this] { return hits; };
    sources.cache_misses_total = [this] { return misses; };
    sources.advisor_explores_total = [this] { return explores; };
    sources.slots_total = [this] { return slots_total; };
    sources.slots_down = [this] { return slots_down; };
    sources.queue_depths = [this] { return depths; };
    sources.queue_capacity = queue_capacity;
    return sources;
  }
};

HealthOptions NoThread() {
  HealthOptions options;
  options.interval_s = 0;  // tests drive SampleOnce directly
  return options;
}

TEST(HealthCollectorTest, FirstSampleHasNoRatesSecondDifferences) {
  Script script;
  HealthCollector collector(NoThread(), script.Sources());

  script.requests = 1000;
  const HealthSample first = collector.SampleOnce(1.0);
  EXPECT_EQ(first.requests_per_s, 0);  // nothing to difference against

  script.requests = 1500;
  script.failovers = 2;
  script.hits = 30;
  script.misses = 10;
  const HealthSample second = collector.SampleOnce(2.0);
  EXPECT_DOUBLE_EQ(second.requests_per_s, 250.0);
  EXPECT_DOUBLE_EQ(second.failovers_per_s, 1.0);
  EXPECT_DOUBLE_EQ(second.cache_hit_rate, 0.75);
  EXPECT_EQ(second.status, HealthStatus::kOk);
  EXPECT_EQ(collector.samples_taken(), 2);

  // No lookups this interval: hit rate reads 0, not NaN.
  const HealthSample third = collector.SampleOnce(1.0);
  EXPECT_DOUBLE_EQ(third.cache_hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(third.requests_per_s, 0.0);
}

TEST(HealthCollectorTest, RingIsBoundedAndRecentIsOldestFirst) {
  Script script;
  HealthOptions options = NoThread();
  options.ring_capacity = 4;
  HealthCollector collector(options, script.Sources());
  for (int i = 1; i <= 10; ++i) {
    script.requests = 100 * i;
    collector.SampleOnce(1.0);
  }
  const std::vector<HealthSample> recent = collector.Recent(100);
  ASSERT_EQ(recent.size(), 4u);
  // Samples 7..10: each interval added 100 requests over 1s.
  for (const HealthSample& sample : recent) {
    EXPECT_DOUBLE_EQ(sample.requests_per_s, 100.0);
  }
  EXPECT_LE(recent.front().wall_ms, recent.back().wall_ms);
  EXPECT_EQ(collector.Recent(2).size(), 2u);
  EXPECT_EQ(collector.samples_taken(), 10);
}

TEST(HealthCollectorTest, QueueWatermarkNeedsSustainThenRecovers) {
  Script script;
  script.depths = {10, 80};  // max-shard utilization 0.80 >= 0.75
  EventLog journal(EventLogOptions{}, "n");
  HealthOptions options = NoThread();
  options.sustain_samples = 3;
  HealthCollector collector(options, script.Sources(/*queue_capacity=*/100),
                            &journal);

  // Two breached samples are weather, not status.
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kOk);
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kOk);
  // The third in a row breaches the watermark: degraded, and both the
  // watermark and the transition land in the journal.
  const HealthSample breached = collector.SampleOnce(1.0);
  EXPECT_EQ(breached.status, HealthStatus::kDegraded);
  EXPECT_DOUBLE_EQ(breached.queue_utilization, 0.80);
  EXPECT_EQ(breached.queue_depth_max, 80u);
  EXPECT_EQ(journal.CountFor(EventKind::kWatermark), 1);
  EXPECT_EQ(journal.CountFor(EventKind::kHealthTransition), 1);

  // Recovery is sustained too: two clean samples keep degraded.
  script.depths = {0, 5};
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kDegraded);
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kDegraded);
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kOk);
  EXPECT_EQ(journal.CountFor(EventKind::kHealthTransition), 2);
  const std::vector<Event> tail = journal.Tail(10);
  EXPECT_NE(tail.back().detail.find("from=degraded to=ok"),
            std::string::npos)
      << tail.back().detail;
}

TEST(HealthCollectorTest, QueueCriticalUtilizationEscalates) {
  Script script;
  script.depths = {96};  // 0.96 >= 0.95
  HealthOptions options = NoThread();
  options.sustain_samples = 2;
  HealthCollector collector(options, script.Sources(/*queue_capacity=*/100));
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kOk);
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kCritical);
  EXPECT_EQ(collector.status(), HealthStatus::kCritical);
}

TEST(HealthCollectorTest, SloBreachDegradesOnSustainedP95) {
  Script script;
  Histogram latency({100, 1000, 10000, 100000});  // microseconds
  HealthSources sources = script.Sources();
  sources.wall_latency = [&latency] { return latency.Snap(); };
  HealthOptions options = NoThread();
  options.slo_ms = 1.0;
  options.sustain_samples = 2;
  HealthCollector collector(options, std::move(sources));

  collector.SampleOnce(1.0);  // baseline snapshot
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 100; ++i) latency.Observe(5000);  // 5 ms
    collector.SampleOnce(1.0);
  }
  EXPECT_EQ(collector.status(), HealthStatus::kDegraded);
  // The p95 came from bucket deltas: ~5 ms, well over the 1 ms SLO.
  const HealthSample last = collector.Recent(1).front();
  EXPECT_GT(last.p95_wall_ms, 1.0);
  EXPECT_LE(last.p95_wall_ms, 10.0);
}

TEST(HealthCollectorTest, DeadSlotIsCriticalImmediatelyAndHolds) {
  Script script;
  script.slots_total = 2;
  script.slots_down = 1;
  EventLog journal(EventLogOptions{}, "n");
  HealthOptions options = NoThread();
  options.sustain_samples = 3;
  HealthCollector collector(options, script.Sources(), &journal);

  // A dead slot is a topology fact: critical on the very first sample.
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kCritical);
  const std::vector<Event> tail = journal.Tail(10);
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(tail.back().kind, EventKind::kHealthTransition);
  EXPECT_EQ(tail.back().severity, Severity::kError);
  EXPECT_NE(tail.back().detail.find("slots_down=1/2"), std::string::npos);

  // Heal the slot: recovery still needs the sustained clean streak.
  script.slots_down = 0;
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kCritical);
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kCritical);
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kOk);
}

TEST(HealthCollectorTest, NewFlapEventsDegradeImmediately) {
  Script script;
  EventLog journal(EventLogOptions{}, "n");
  HealthOptions options = NoThread();
  options.sustain_samples = 3;
  HealthCollector collector(options, script.Sources(), &journal);

  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kOk);
  // One backend death between samples: degraded at once, no sustain.
  journal.Emit(EventKind::kBackendDeath, Severity::kError, "backend=b0");
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kDegraded);
  // The transition event itself must NOT count as a flap (that would pin
  // the status): three quiet samples recover.
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kDegraded);
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kDegraded);
  EXPECT_EQ(collector.SampleOnce(1.0).status, HealthStatus::kOk);
}

TEST(HealthCollectorTest, AdvisorExploreDeltasAreJournaled) {
  Script script;
  EventLog journal(EventLogOptions{}, "n");
  HealthCollector collector(NoThread(), script.Sources(), &journal);
  collector.SampleOnce(1.0);
  script.explores = 7;
  collector.SampleOnce(1.0);
  EXPECT_EQ(journal.CountFor(EventKind::kAdvisorExplore), 1);
  const std::vector<Event> tail = journal.Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].detail, "explores=7");
}

TEST(HealthCollectorTest, RegistersStatusGauge) {
  Script script;
  script.slots_total = 1;
  script.slots_down = 1;
  HealthCollector collector(NoThread(), script.Sources());
  MetricsRegistry registry;
  collector.RegisterMetrics(&registry);
  EXPECT_NE(registry.RenderText().find("dflow_health_status 0"),
            std::string::npos);
  collector.SampleOnce(1.0);
  EXPECT_NE(registry.RenderText().find("dflow_health_status 2"),
            std::string::npos);
}

TEST(P95FromDeltaTest, InterpolatesWithinTheRankBucket) {
  Histogram::Snapshot prev;
  prev.bounds = {100, 200, 400};
  prev.counts = {10, 10, 0, 0};
  Histogram::Snapshot cur;
  cur.bounds = {100, 200, 400};
  cur.counts = {60, 60, 0, 0};
  // Delta: 50 + 50 = 100 new observations; rank 95 falls in bucket
  // (100, 200] at fraction (95-50)/50 = 0.9 -> 190.
  EXPECT_DOUBLE_EQ(HealthCollector::P95FromDelta(prev, cur), 190.0);
}

TEST(P95FromDeltaTest, EmptyDeltaAndOverflowBucketEdgeCases) {
  Histogram::Snapshot a;
  a.bounds = {100};
  a.counts = {5, 0};
  // No new observations since the previous snapshot.
  EXPECT_DOUBLE_EQ(HealthCollector::P95FromDelta(a, a), 0.0);
  // Everything in the +Inf bucket: the last finite bound is the best
  // (under-)estimate, never a crash or an infinity.
  Histogram::Snapshot prev;
  prev.bounds = {100, 400};
  prev.counts = {0, 0, 0};
  Histogram::Snapshot cur;
  cur.bounds = {100, 400};
  cur.counts = {0, 0, 50};
  EXPECT_DOUBLE_EQ(HealthCollector::P95FromDelta(prev, cur), 400.0);
  // A histogram swapped out from under us (counts went backwards) reads
  // as empty, not negative.
  EXPECT_DOUBLE_EQ(HealthCollector::P95FromDelta(cur, prev), 0.0);
}

TEST(HealthCollectorTest, DisabledIntervalMeansNoThreadButSamplingWorks) {
  Script script;
  HealthCollector collector(NoThread(), script.Sources());
  collector.Start();  // no-op with interval_s <= 0
  script.requests = 10;
  collector.SampleOnce(1.0);
  EXPECT_EQ(collector.samples_taken(), 1);
  collector.Stop();  // idempotent, nothing to join
}

}  // namespace
}  // namespace dflow::obs
