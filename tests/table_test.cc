#include "store/table.h"

#include <gtest/gtest.h>

namespace dflow::store {
namespace {

Row Coat(const std::string& size, int64_t price, int64_t stock) {
  return Row{{"item", Value::String("coat")},
             {"size", Value::String(size)},
             {"price", Value::Int(price)},
             {"stock", Value::Int(stock)}};
}

TEST(RowTest, MissingFieldReadsNull) {
  Row r;
  EXPECT_TRUE(r.Get("anything").is_null());
  EXPECT_FALSE(r.Has("anything"));
  r.Set("x", Value::Int(1));
  EXPECT_TRUE(r.Has("x"));
  EXPECT_EQ(r.Get("x"), Value::Int(1));
}

TEST(RowTest, InitializerList) {
  const Row r = Coat("M", 80, 3);
  EXPECT_EQ(r.Get("size"), Value::String("M"));
  EXPECT_EQ(r.Get("price"), Value::Int(80));
}

TEST(TableTest, SelectFiltersRows) {
  Table t;
  t.Insert(Coat("S", 60, 0));
  t.Insert(Coat("M", 80, 3));
  t.Insert(Coat("L", 90, 1));
  const auto in_stock =
      t.Select([](const Row& r) { return r.Get("stock").int_value() > 0; });
  EXPECT_EQ(in_stock.size(), 2u);
  EXPECT_EQ(t.size(), 3);
}

TEST(TableTest, FindFirstReturnsEarliestMatch) {
  Table t;
  t.Insert(Coat("S", 60, 0));
  t.Insert(Coat("M", 80, 3));
  const auto hit =
      t.FindFirst([](const Row& r) { return r.Get("stock").int_value() > 0; });
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->Get("size"), Value::String("M"));
  const auto miss =
      t.FindFirst([](const Row& r) { return r.Get("price").int_value() > 500; });
  EXPECT_FALSE(miss.has_value());
}

TEST(TableTest, CountMatches) {
  Table t;
  t.Insert(Coat("S", 60, 0));
  t.Insert(Coat("M", 80, 3));
  t.Insert(Coat("L", 90, 1));
  EXPECT_EQ(t.Count([](const Row& r) { return r.Get("price").int_value() >= 80; }),
            2);
}

TEST(DatabaseTest, CreateAndLookupTables) {
  Database db;
  Table& inv = db.CreateTable("inventory");
  inv.Insert(Coat("M", 80, 3));
  ASSERT_NE(db.table("inventory"), nullptr);
  EXPECT_EQ(db.table("inventory")->size(), 1);
  EXPECT_EQ(db.table("no_such"), nullptr);
  ASSERT_NE(db.mutable_table("inventory"), nullptr);
  db.mutable_table("inventory")->Insert(Coat("L", 90, 1));
  EXPECT_EQ(db.table("inventory")->size(), 2);
}

}  // namespace
}  // namespace dflow::store
