// Trajectory property tests: every attribute's state sequence must follow
// the Figure 3 FSA edge by edge, across all strategies and patterns, and
// knowledge must only grow (the paper's partial order on states).

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "gen/schema_generator.h"
#include "sim/infinite_service.h"

namespace dflow::core {
namespace {

struct Step {
  AttributeId attr;
  AttrState from;
  AttrState to;
};

class TrajectoryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TrajectoryTest, EveryTransitionFollowsTheFsa) {
  gen::PatternParams params;
  params.nb_nodes = 32;
  params.nb_rows = 4;
  params.pct_enabled = 50;
  params.seed = 11;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);
  const Strategy strategy = *Strategy::Parse(GetParam());

  sim::Simulator sim;
  sim::InfiniteResourceService service(&sim);
  ExecutionEngine engine(&pattern.schema, strategy, &sim, &service);

  std::vector<Step> trace;
  engine.SetTraceListener(
      [&trace](int64_t, AttributeId a, AttrState from, AttrState to) {
        trace.push_back(Step{a, from, to});
      });

  bool finished = false;
  const uint64_t seed = gen::InstanceSeed(params, 0);
  engine.StartInstance(gen::MakeSourceBinding(pattern, seed), seed,
                       [&finished](InstanceResult) { finished = true; });
  sim.RunUntilEmpty();
  ASSERT_TRUE(finished);
  ASSERT_FALSE(trace.empty());

  // (1) Each recorded step is a legal FSA edge.
  for (const Step& s : trace) {
    EXPECT_TRUE(IsValidTransition(s.from, s.to))
        << ToString(s.from) << " -> " << ToString(s.to);
  }

  // (2) Per-attribute trajectories chain correctly from UNINITIALIZED and
  // respect the information partial order (knowledge only grows).
  std::map<AttributeId, AttrState> current;
  for (const Step& s : trace) {
    const auto it = current.find(s.attr);
    const AttrState prev =
        it == current.end() ? AttrState::kUninitialized : it->second;
    EXPECT_EQ(prev, s.from) << "trajectory gap for attribute " << s.attr;
    EXPECT_TRUE(PrecedesOrEqual(s.from, s.to));
    current[s.attr] = s.to;
  }

  // (3) No attribute moves after reaching a stable state (monotonicity).
  std::map<AttributeId, bool> stable;
  for (const Step& s : trace) {
    EXPECT_FALSE(stable[s.attr]) << "attribute " << s.attr
                                 << " transitioned after stabilizing";
    if (IsStable(s.to)) stable[s.attr] = true;
  }
}

TEST_P(TrajectoryTest, SpeculationOnlyUnderSpeculativeStrategies) {
  gen::PatternParams params;
  params.nb_nodes = 32;
  params.pct_enabled = 50;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);
  const Strategy strategy = *Strategy::Parse(GetParam());

  sim::Simulator sim;
  sim::InfiniteResourceService service(&sim);
  ExecutionEngine engine(&pattern.schema, strategy, &sim, &service);
  int computed_transitions = 0;
  engine.SetTraceListener(
      [&](int64_t, AttributeId, AttrState, AttrState to) {
        if (to == AttrState::kComputed) ++computed_transitions;
      });
  const uint64_t seed = gen::InstanceSeed(params, 1);
  engine.StartInstance(gen::MakeSourceBinding(pattern, seed), seed, {});
  sim.RunUntilEmpty();
  if (!strategy.speculative) {
    EXPECT_EQ(computed_transitions, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, TrajectoryTest,
                         ::testing::Values("PCE0", "NCE0", "PCE100", "PSE100",
                                           "PSC60", "NSC100"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(TraceListenerTest, ObservesOnlyInstancesStartedAfterAttach) {
  gen::PatternParams params;
  params.nb_nodes = 8;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);
  sim::Simulator sim;
  sim::InfiniteResourceService service(&sim);
  ExecutionEngine engine(&pattern.schema, *Strategy::Parse("PCE0"), &sim,
                         &service);
  const uint64_t seed = gen::InstanceSeed(params, 0);
  engine.StartInstance(gen::MakeSourceBinding(pattern, seed), seed, {});
  sim.RunUntilEmpty();

  int events = 0;
  engine.SetTraceListener(
      [&events](int64_t, AttributeId, AttrState, AttrState) { ++events; });
  engine.StartInstance(gen::MakeSourceBinding(pattern, seed), seed, {});
  sim.RunUntilEmpty();
  EXPECT_GT(events, 0);
}

}  // namespace
}  // namespace dflow::core
