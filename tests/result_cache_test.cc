#include "runtime/result_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "core/runner.h"
#include "gen/schema_generator.h"
#include "runtime/flow_server.h"

namespace dflow::runtime {
namespace {

core::Strategy S(const char* text) { return *core::Strategy::Parse(text); }

gen::GeneratedSchema MakePattern(uint64_t seed, int nb_nodes = 16,
                                 int nb_rows = 2) {
  gen::PatternParams params;
  params.nb_nodes = nb_nodes;
  params.nb_rows = nb_rows;
  params.seed = seed;
  return gen::GeneratePattern(params);
}

// The full observable content of an InstanceResult, minus instance_id
// (which numbers instances per engine and is excluded from the determinism
// contract): every snapshot (state, value) pair and every metrics field.
struct CapturedResult {
  std::vector<std::pair<core::AttrState, Value>> snapshot;
  sim::Time response_time = 0;
  int64_t work = 0;
  int64_t wasted_work = 0;
  int queries_launched = 0;
  int speculative_launches = 0;
  int eager_disables = 0;
  int unneeded_skipped = 0;
  int prequalifier_passes = 0;
  double inflight_area = 0;

  friend bool operator==(const CapturedResult&,
                         const CapturedResult&) = default;
};

CapturedResult Capture(const core::InstanceResult& result) {
  CapturedResult captured;
  const int n = result.snapshot.schema().num_attributes();
  captured.snapshot.reserve(static_cast<size_t>(n));
  for (int a = 0; a < n; ++a) {
    const auto attr = static_cast<AttributeId>(a);
    captured.snapshot.emplace_back(result.snapshot.state(attr),
                                   result.snapshot.value(attr));
  }
  captured.response_time = result.metrics.ResponseTime();
  captured.work = result.metrics.work;
  captured.wasted_work = result.metrics.wasted_work;
  captured.queries_launched = result.metrics.queries_launched;
  captured.speculative_launches = result.metrics.speculative_launches;
  captured.eager_disables = result.metrics.eager_disables;
  captured.unneeded_skipped = result.metrics.unneeded_skipped;
  captured.prequalifier_passes = result.metrics.prequalifier_passes;
  captured.inflight_area = result.metrics.inflight_area;
  return captured;
}

// Serves `requests` through a FlowServer and returns seed -> captured
// result, plus the report (for cache counters).
std::map<uint64_t, CapturedResult> Serve(const gen::GeneratedSchema& pattern,
                                         const std::vector<FlowRequest>& reqs,
                                         const FlowServerOptions& options,
                                         FlowServerReport* report_out) {
  FlowServer server(&pattern.schema, options);
  std::mutex mu;
  std::map<uint64_t, CapturedResult> by_seed;
  bool repeat_mismatch = false;
  server.SetResultCallback([&](int, const FlowRequest& request,
                               const core::InstanceResult& result,
                               const core::Strategy&) {
    CapturedResult captured = Capture(result);
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = by_seed.emplace(request.seed, std::move(captured));
    // Repeats of a seed must reproduce the first occurrence exactly,
    // whether served from the cache or re-executed.
    if (!inserted && !(it->second == Capture(result))) repeat_mismatch = true;
  });
  for (const FlowRequest& request : reqs) {
    EXPECT_TRUE(server.Submit(request));
  }
  server.Drain();
  EXPECT_FALSE(repeat_mismatch);
  if (report_out != nullptr) *report_out = server.Report();
  return by_seed;
}

std::vector<FlowRequest> RepeatedWorkload(const gen::GeneratedSchema& pattern,
                                          int count, int distinct) {
  std::vector<FlowRequest> requests;
  requests.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const uint64_t seed = gen::InstanceSeed(pattern.params, i % distinct);
    requests.push_back({gen::MakeSourceBinding(pattern, seed), seed});
  }
  return requests;
}

// --- The cache determinism contract, as a property over randomized
// schemas, strategies, backends, and seeds: serving with the cache enabled
// yields results identical (snapshot + all metrics) to cache-disabled runs.
TEST(ResultCachePropertyTest, CachedServingMatchesUncachedResults) {
  struct Config {
    uint64_t pattern_seed;
    int nb_nodes;
    int nb_rows;
    const char* strategy;
    core::BackendKind backend;
  };
  const Config configs[] = {
      {3, 16, 2, "PSE100", core::BackendKind::kInfinite},
      {4, 24, 3, "PCE50", core::BackendKind::kInfinite},
      {5, 16, 2, "PSE100", core::BackendKind::kBoundedDb},
      {6, 20, 2, "NCC0", core::BackendKind::kBoundedDb},
      {7, 12, 2, "PSC80", core::BackendKind::kBoundedDb},
  };
  for (const Config& config : configs) {
    const gen::GeneratedSchema pattern =
        MakePattern(config.pattern_seed, config.nb_nodes, config.nb_rows);
    const std::vector<FlowRequest> requests =
        RepeatedWorkload(pattern, 120, 30);

    FlowServerOptions options;
    options.num_shards = 3;
    options.strategy = S(config.strategy);
    options.backend = config.backend;

    options.result_cache_capacity = 0;
    const auto uncached = Serve(pattern, requests, options, nullptr);

    options.result_cache_capacity = 64;
    FlowServerReport report;
    const auto cached = Serve(pattern, requests, options, &report);

    EXPECT_EQ(uncached.size(), 30u) << "strategy " << config.strategy;
    EXPECT_EQ(uncached, cached) << "strategy " << config.strategy;
    // 30 distinct seeds over 120 requests: every repeat hits.
    EXPECT_EQ(report.cache.misses, 30);
    EXPECT_EQ(report.cache.hits, 90);
    EXPECT_DOUBLE_EQ(report.stats.cache_hit_rate, 0.75);
    // A hit replays the cached metrics, so the aggregate stats match a
    // cache-off run exactly.
    EXPECT_EQ(report.stats.completed, 120);
  }
}

// --- Direct ResultCache unit tests.

class ResultCacheTest : public ::testing::Test {
 protected:
  ResultCacheTest() : pattern_(MakePattern(11)) {}

  FlowRequest Request(int index) const {
    const uint64_t seed = gen::InstanceSeed(pattern_.params, index);
    return {gen::MakeSourceBinding(pattern_, seed), seed};
  }

  core::InstanceResult Run(const FlowRequest& request) const {
    return core::RunSingleInfinite(pattern_.schema, request.sources,
                                   request.seed, S("PSE100"));
  }

  gen::GeneratedSchema pattern_;
};

TEST_F(ResultCacheTest, CapacityZeroDisablesLookupAndInsert) {
  ResultCache cache(0, S("PSE100"));
  EXPECT_FALSE(cache.enabled());
  const FlowRequest request = Request(0);
  cache.Insert(request.sources, request.seed, Run(request));
  EXPECT_EQ(cache.Lookup(request.sources, request.seed), nullptr);
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);  // disabled lookups are not counted
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
}

TEST_F(ResultCacheTest, HitReturnsIdenticalResultAndCountsStats) {
  ResultCache cache(4, S("PSE100"));
  const FlowRequest request = Request(1);
  EXPECT_EQ(cache.Lookup(request.sources, request.seed), nullptr);  // miss
  const core::InstanceResult result = Run(request);
  cache.Insert(request.sources, request.seed, result);
  const core::InstanceResult* hit = cache.Lookup(request.sources,
                                                 request.seed);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(Capture(*hit), Capture(result));
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes, 0);
}

TEST_F(ResultCacheTest, EvictsLeastRecentlyUsedAndHitPromotes) {
  ResultCache cache(2, S("PSE100"));
  const FlowRequest a = Request(1), b = Request(2), c = Request(3);
  cache.Insert(a.sources, a.seed, Run(a));
  cache.Insert(b.sources, b.seed, Run(b));
  // Touch `a`: it becomes MRU, so inserting `c` must evict `b`.
  ASSERT_NE(cache.Lookup(a.sources, a.seed), nullptr);
  cache.Insert(c.sources, c.seed, Run(c));
  EXPECT_NE(cache.Lookup(a.sources, a.seed), nullptr);
  EXPECT_EQ(cache.Lookup(b.sources, b.seed), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(c.sources, c.seed), nullptr);
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);
}

TEST_F(ResultCacheTest, ReinsertingAKeyRefreshesInsteadOfDuplicating) {
  ResultCache cache(2, S("PSE100"));
  const FlowRequest a = Request(4);
  const core::InstanceResult result = Run(a);
  cache.Insert(a.sources, a.seed, result);
  cache.Insert(a.sources, a.seed, result);
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_NE(cache.Lookup(a.sources, a.seed), nullptr);
}

TEST_F(ResultCacheTest, EvictionReleasesByteAccounting) {
  ResultCache cache(1, S("PSE100"));
  const FlowRequest a = Request(5), b = Request(6);
  cache.Insert(a.sources, a.seed, Run(a));
  const int64_t bytes_one = cache.Stats().bytes;
  EXPECT_GT(bytes_one, 0);
  cache.Insert(b.sources, b.seed, Run(b));
  EXPECT_EQ(cache.Stats().entries, 1);
  // One resident entry before and after: the evicted entry's bytes must
  // have been released (entries are same-schema, so sizes are comparable).
  EXPECT_NEAR(static_cast<double>(cache.Stats().bytes),
              static_cast<double>(bytes_one), 0.5 * bytes_one);
}

// --- Byte-budget eviction: max_bytes is a hard bound enforced after every
// insert, evicting LRU-first, with the evictions/bytes counters that were
// already part of ResultCacheStats.
TEST_F(ResultCacheTest, ByteBudgetEvictsLruUntilUnderBudget) {
  // Learn the per-entry footprint (same schema => comparable sizes), then
  // budget for roughly two entries.
  int64_t bytes_one = 0;
  {
    ResultCache probe(8, S("PSE100"));
    const FlowRequest a = Request(1);
    probe.Insert(a.sources, a.seed, Run(a));
    bytes_one = probe.Stats().bytes;
  }
  ASSERT_GT(bytes_one, 0);

  ResultCache cache(8, S("PSE100"), /*max_bytes=*/2 * bytes_one + bytes_one / 2);
  EXPECT_EQ(cache.max_bytes(), 2 * bytes_one + bytes_one / 2);
  const FlowRequest a = Request(1), b = Request(2), c = Request(3);
  cache.Insert(a.sources, a.seed, Run(a));
  cache.Insert(b.sources, b.seed, Run(b));
  EXPECT_EQ(cache.Stats().entries, 2);  // two fit under the budget
  EXPECT_EQ(cache.Stats().evictions, 0);
  // Touch `a` so `b` is LRU; the third insert must push bytes over budget
  // and evict `b` (capacity 8 would have kept all three).
  ASSERT_NE(cache.Lookup(a.sources, a.seed), nullptr);
  cache.Insert(c.sources, c.seed, Run(c));
  EXPECT_LE(cache.Stats().bytes, cache.max_bytes());
  EXPECT_EQ(cache.Stats().entries, 2);
  EXPECT_EQ(cache.Stats().evictions, 1);
  EXPECT_NE(cache.Lookup(a.sources, a.seed), nullptr);
  EXPECT_EQ(cache.Lookup(b.sources, b.seed), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(c.sources, c.seed), nullptr);
}

TEST_F(ResultCacheTest, EntryLargerThanByteBudgetIsNeverResident) {
  ResultCache cache(8, S("PSE100"), /*max_bytes=*/1);
  const FlowRequest a = Request(4);
  cache.Insert(a.sources, a.seed, Run(a));
  // The budget is hard: the oversized entry was evicted immediately.
  EXPECT_EQ(cache.Stats().entries, 0);
  EXPECT_EQ(cache.Stats().bytes, 0);
  EXPECT_EQ(cache.Stats().evictions, 1);
  EXPECT_EQ(cache.Lookup(a.sources, a.seed), nullptr);
}

// Byte budget end to end: serving stays byte-identical under byte-driven
// eviction, and every shard respects the bound.
TEST(ResultCacheServerTest, ByteBudgetedServingStaysCorrectAndBounded) {
  const gen::GeneratedSchema pattern = MakePattern(17);
  const std::vector<FlowRequest> requests = RepeatedWorkload(pattern, 160, 40);
  FlowServerOptions options;
  options.num_shards = 2;
  options.strategy = S("PSE100");

  options.result_cache_capacity = 0;
  const auto uncached = Serve(pattern, requests, options, nullptr);

  options.result_cache_capacity = 64;  // entries would never evict...
  options.result_cache_max_bytes = 4096;  // ...so the byte budget must
  FlowServerReport report;
  const auto cached = Serve(pattern, requests, options, &report);

  EXPECT_EQ(uncached, cached);
  EXPECT_GT(report.cache.evictions, 0);
  // Summed resident bytes respect the sum of per-shard budgets.
  EXPECT_LE(report.cache.bytes, 2 * 4096);
}

TEST_F(ResultCacheTest, KeyDistinguishesSeedSourcesAndStrategy) {
  ResultCache pse(4, S("PSE100"));
  ResultCache nce(4, S("NCE100"));
  const FlowRequest a = Request(7), b = Request(8);
  // Different strategies salt the key hash differently.
  EXPECT_NE(pse.KeyHash(a.sources, a.seed), nce.KeyHash(a.sources, a.seed));
  // Different seeds and different sources hash differently.
  EXPECT_NE(pse.KeyHash(a.sources, a.seed), pse.KeyHash(a.sources, b.seed));
  EXPECT_NE(pse.KeyHash(a.sources, a.seed), pse.KeyHash(b.sources, a.seed));

  // A seed collision with different sources must not alias: full keys are
  // compared on lookup.
  pse.Insert(a.sources, a.seed, Run(a));
  EXPECT_EQ(pse.Lookup(b.sources, a.seed), nullptr);
}

// --- Cost-based admission: results cheaper than min_cost are never
// cached, so cheap instances stop evicting expensive ones.
TEST_F(ResultCacheTest, MinCostAdmissionSkipsCheapResults) {
  const FlowRequest a = Request(1);
  const core::InstanceResult result = Run(a);
  // A threshold above this instance's work: the insert is skipped.
  ResultCache strict(4, S("PSE100"), /*max_bytes=*/0,
                     /*min_cost=*/result.metrics.work + 1);
  EXPECT_EQ(strict.min_cost(), result.metrics.work + 1);
  strict.Insert(a.sources, a.seed, result);
  EXPECT_EQ(strict.Lookup(a.sources, a.seed), nullptr);
  EXPECT_EQ(strict.Stats().admission_skips, 1);
  EXPECT_EQ(strict.Stats().entries, 0);
  // At (or below) the instance's work, the insert is admitted.
  ResultCache lenient(4, S("PSE100"), /*max_bytes=*/0,
                      /*min_cost=*/result.metrics.work);
  lenient.Insert(a.sources, a.seed, result);
  EXPECT_NE(lenient.Lookup(a.sources, a.seed), nullptr);
  EXPECT_EQ(lenient.Stats().admission_skips, 0);
}

// End to end: a server-wide min-cost above every instance's work caches
// nothing (every insert skipped), while results stay byte-identical.
TEST(ResultCacheServerTest, MinCostAboveAllWorkDisablesCachingButNotResults) {
  const gen::GeneratedSchema pattern = MakePattern(17);
  const std::vector<FlowRequest> requests = RepeatedWorkload(pattern, 80, 20);
  FlowServerOptions options;
  options.num_shards = 2;
  options.strategy = S("PSE100");

  options.result_cache_capacity = 0;
  const auto uncached = Serve(pattern, requests, options, nullptr);

  options.result_cache_capacity = 64;
  options.result_cache_min_cost = 1'000'000;  // above any 16-node instance
  FlowServerReport report;
  const auto cached = Serve(pattern, requests, options, &report);

  EXPECT_EQ(uncached, cached);
  EXPECT_EQ(report.cache.hits, 0);
  EXPECT_EQ(report.cache.entries, 0);
  EXPECT_EQ(report.cache.admission_skips, 80);
}

// --- AUTO support: the per-call variant salt keeps results of different
// chosen strategies from aliasing under one cache.
TEST_F(ResultCacheTest, VariantSaltSeparatesStrategiesWithinOneCache) {
  ResultCache cache(4, S("AUTO"));
  const FlowRequest a = Request(2);
  const uint64_t pse = ResultCache::StrategyVariantSalt(S("PSE100"));
  const uint64_t pce = ResultCache::StrategyVariantSalt(S("PCE0"));
  ASSERT_NE(pse, pce);
  EXPECT_NE(cache.KeyHash(a.sources, a.seed, pse),
            cache.KeyHash(a.sources, a.seed, pce));

  const core::InstanceResult pse_result = core::RunSingleInfinite(
      pattern_.schema, a.sources, a.seed, S("PSE100"));
  const core::InstanceResult pce_result = core::RunSingleInfinite(
      pattern_.schema, a.sources, a.seed, S("PCE0"));
  cache.Insert(a.sources, a.seed, pse_result, pse);
  // The other variant misses; after inserting, each variant returns its
  // own strategy's result.
  EXPECT_EQ(cache.Lookup(a.sources, a.seed, pce), nullptr);
  cache.Insert(a.sources, a.seed, pce_result, pce);
  const core::InstanceResult* pse_hit = cache.Lookup(a.sources, a.seed, pse);
  const core::InstanceResult* pce_hit = cache.Lookup(a.sources, a.seed, pce);
  ASSERT_NE(pse_hit, nullptr);
  ASSERT_NE(pce_hit, nullptr);
  EXPECT_EQ(Capture(*pse_hit), Capture(pse_result));
  EXPECT_EQ(Capture(*pce_hit), Capture(pce_result));
  EXPECT_EQ(cache.Stats().entries, 2);
}

// Capacity 0 end to end: the server runs uncached and reports zero cache
// activity.
TEST(ResultCacheServerTest, ServerWithCapacityZeroReportsNoCacheActivity) {
  const gen::GeneratedSchema pattern = MakePattern(9);
  const std::vector<FlowRequest> requests = RepeatedWorkload(pattern, 40, 10);
  FlowServerOptions options;
  options.num_shards = 2;
  options.strategy = S("PSE100");
  options.result_cache_capacity = 0;
  FlowServerReport report;
  const auto results = Serve(pattern, requests, options, &report);
  EXPECT_EQ(results.size(), 10u);
  EXPECT_EQ(report.stats.completed, 40);
  EXPECT_EQ(report.cache.hits, 0);
  EXPECT_EQ(report.cache.misses, 0);
  EXPECT_EQ(report.cache.entries, 0);
  EXPECT_DOUBLE_EQ(report.stats.cache_hit_rate, 0.0);
}

// LRU bounds under serving: a cache smaller than the distinct-request set
// still yields identical results, it just hits less often.
TEST(ResultCacheServerTest, UndersizedCacheStaysCorrectUnderEviction) {
  const gen::GeneratedSchema pattern = MakePattern(13);
  const std::vector<FlowRequest> requests = RepeatedWorkload(pattern, 160, 40);
  FlowServerOptions options;
  options.num_shards = 2;
  options.strategy = S("PSE100");
  options.backend = core::BackendKind::kBoundedDb;

  options.result_cache_capacity = 0;
  const auto uncached = Serve(pattern, requests, options, nullptr);

  options.result_cache_capacity = 4;  // far below 40 distinct requests
  FlowServerReport report;
  const auto cached = Serve(pattern, requests, options, &report);

  EXPECT_EQ(uncached, cached);
  EXPECT_GT(report.cache.evictions, 0);
  // Resident entries respect the per-shard LRU bound.
  EXPECT_LE(report.cache.entries, 4 * 2);
}

}  // namespace
}  // namespace dflow::runtime
