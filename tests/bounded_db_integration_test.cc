// Timing independence: correctness must not depend on *when* queries
// complete. The bounded DatabaseServer introduces stochastic latencies and
// reorders completions relative to the infinite-resource service; every
// strategy must still reach a terminal snapshot compatible with the unique
// complete snapshot, with identical target values.

#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/runner.h"
#include "core/semantics.h"
#include "gen/schema_generator.h"
#include "sim/database_server.h"

namespace dflow {
namespace {

using Param = std::tuple<const char*, uint64_t>;

class BoundedDbCorrectness : public ::testing::TestWithParam<Param> {};

TEST_P(BoundedDbCorrectness, CompatibleDespiteQueueing) {
  const auto& [strategy_text, db_seed] = GetParam();
  gen::PatternParams params;
  params.nb_nodes = 24;
  params.nb_rows = 3;
  params.pct_enabled = 50;
  params.seed = 3;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);
  const core::Strategy strategy = *core::Strategy::Parse(strategy_text);

  for (int i = 0; i < 4; ++i) {
    const uint64_t inst = gen::InstanceSeed(params, i);
    const core::SourceBinding bindings = gen::MakeSourceBinding(pattern, inst);

    sim::Simulator sim;
    sim::DatabaseServer db(&sim, sim::DatabaseParams{}, db_seed + static_cast<uint64_t>(i));
    const core::InstanceResult bounded = core::RunSingle(
        pattern.schema, bindings, inst, strategy, &sim, &db);

    const core::CompleteSnapshot complete =
        core::EvaluateComplete(pattern.schema, bindings, inst);
    std::string why;
    ASSERT_TRUE(core::IsCompatible(pattern.schema, complete, bounded.snapshot,
                                   &why))
        << strategy_text << " db_seed=" << db_seed << ": " << why;

    // Target values agree with the infinite-resource execution exactly:
    // completion order must not change the decision.
    const core::InstanceResult infinite =
        core::RunSingleInfinite(pattern.schema, bindings, inst, strategy);
    for (AttributeId t : pattern.schema.targets()) {
      EXPECT_EQ(bounded.snapshot.value(t), infinite.snapshot.value(t));
      EXPECT_EQ(bounded.snapshot.state(t), infinite.snapshot.state(t));
    }
    // Response time is measured in milliseconds here and is positive
    // whenever any query ran.
    if (bounded.metrics.work > 0) {
      EXPECT_GT(bounded.metrics.ResponseTime(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesTimesSeeds, BoundedDbCorrectness,
    ::testing::Combine(::testing::Values("PCE0", "NCE0", "PCE100", "PSE100",
                                         "PSC40"),
                       ::testing::Values<uint64_t>(1, 99)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(std::get<0>(info.param)) + "_dbseed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(BoundedDbIntegrationTest, MultipleFlowsShareOneDatabase) {
  // The §6 deployment scenario: several *different* decision flows (with
  // their own engines and strategies) execute concurrently against one
  // dedicated database. Both must complete correctly while contending.
  gen::PatternParams pa;
  pa.nb_nodes = 16;
  pa.nb_rows = 4;
  pa.pct_enabled = 75;
  pa.seed = 21;
  gen::PatternParams pb;
  pb.nb_nodes = 24;
  pb.nb_rows = 2;
  pb.pct_enabled = 40;
  pb.seed = 22;
  const gen::GeneratedSchema flow_a = gen::GeneratePattern(pa);
  const gen::GeneratedSchema flow_b = gen::GeneratePattern(pb);

  sim::Simulator sim;
  sim::DatabaseServer db(&sim, sim::DatabaseParams{}, 77);
  core::ExecutionEngine engine_a(&flow_a.schema,
                                 *core::Strategy::Parse("PCE100"), &sim, &db);
  core::ExecutionEngine engine_b(&flow_b.schema,
                                 *core::Strategy::Parse("PSE100"), &sim, &db);

  // Instances complete out of order under contention: index results by
  // start order, not completion order.
  int done = 0;
  std::vector<std::optional<core::InstanceResult>> results_a(10), results_b(10);
  for (int i = 0; i < 10; ++i) {
    const uint64_t sa = gen::InstanceSeed(pa, i);
    engine_a.StartInstance(gen::MakeSourceBinding(flow_a, sa), sa,
                           [&, i](core::InstanceResult r) {
                             ++done;
                             results_a[static_cast<size_t>(i)] = std::move(r);
                           });
    const uint64_t sb = gen::InstanceSeed(pb, i);
    engine_b.StartInstance(gen::MakeSourceBinding(flow_b, sb), sb,
                           [&, i](core::InstanceResult r) {
                             ++done;
                             results_b[static_cast<size_t>(i)] = std::move(r);
                           });
  }
  sim.RunUntilEmpty();
  ASSERT_EQ(done, 20);

  for (int i = 0; i < 10; ++i) {
    const uint64_t sa = gen::InstanceSeed(pa, i);
    const auto complete_a = core::EvaluateComplete(
        flow_a.schema, gen::MakeSourceBinding(flow_a, sa), sa);
    std::string why;
    ASSERT_TRUE(results_a[static_cast<size_t>(i)].has_value());
    EXPECT_TRUE(core::IsCompatible(
        flow_a.schema, complete_a,
        results_a[static_cast<size_t>(i)]->snapshot, &why))
        << why;
    const uint64_t sb = gen::InstanceSeed(pb, i);
    const auto complete_b = core::EvaluateComplete(
        flow_b.schema, gen::MakeSourceBinding(flow_b, sb), sb);
    ASSERT_TRUE(results_b[static_cast<size_t>(i)].has_value());
    EXPECT_TRUE(core::IsCompatible(
        flow_b.schema, complete_b,
        results_b[static_cast<size_t>(i)]->snapshot, &why))
        << why;
  }
}

TEST(BoundedDbIntegrationTest, WorkIsIdenticalAcrossServicesWhenSerial) {
  // Serial conservative execution launches the same query set no matter how
  // long queries take: Work on the bounded server equals Work on the
  // infinite one (speculative strategies may differ: timing changes which
  // conditions resolve before launch).
  gen::PatternParams params;
  params.nb_nodes = 24;
  params.pct_enabled = 50;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);
  const core::Strategy strategy = *core::Strategy::Parse("PCE0");
  for (int i = 0; i < 5; ++i) {
    const uint64_t inst = gen::InstanceSeed(params, i);
    const auto bindings = gen::MakeSourceBinding(pattern, inst);
    sim::Simulator sim;
    sim::DatabaseServer db(&sim, sim::DatabaseParams{}, 5);
    const auto bounded =
        core::RunSingle(pattern.schema, bindings, inst, strategy, &sim, &db);
    const auto infinite =
        core::RunSingleInfinite(pattern.schema, bindings, inst, strategy);
    EXPECT_EQ(bounded.metrics.work, infinite.metrics.work);
  }
}

}  // namespace
}  // namespace dflow
