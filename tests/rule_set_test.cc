#include "rules/rule_set.h"

#include <gtest/gtest.h>

#include "core/runner.h"
#include "core/schema_builder.h"
#include "expr/predicate.h"

namespace dflow::rules {
namespace {

using expr::CompareOp;
using expr::Condition;
using expr::Predicate;

// A fixed evaluation context over two pseudo-attributes 0 and 1.
core::TaskContext MakeContext(Value a0, Value a1) {
  core::TaskContext ctx;
  ctx.attr = 99;
  ctx.instance_seed = 0;
  ctx.input = [a0 = std::move(a0), a1 = std::move(a1)](AttributeId id) {
    return id == 0 ? a0 : a1;
  };
  return ctx;
}

Condition Gt(AttributeId a, int64_t c) {
  return Condition::Pred(Predicate::Compare(a, CompareOp::kGt, Value::Int(c)));
}

TEST(RuleSetTest, FirstMatchPicksEarliestRule) {
  RuleSet rules;
  rules.Add("gold", Gt(0, 100), Value::String("gold"))
      .Add("silver", Gt(0, 50), Value::String("silver"))
      .Add("bronze", Gt(0, 0), Value::String("bronze"));
  const core::TaskFn fn =
      rules.Compile(CombinePolicy::kFirstMatch, Value::String("none"));
  EXPECT_EQ(fn(MakeContext(Value::Int(150), Value::Null())),
            Value::String("gold"));
  EXPECT_EQ(fn(MakeContext(Value::Int(60), Value::Null())),
            Value::String("silver"));
  EXPECT_EQ(fn(MakeContext(Value::Int(10), Value::Null())),
            Value::String("bronze"));
  EXPECT_EQ(fn(MakeContext(Value::Int(-5), Value::Null())),
            Value::String("none"));
}

TEST(RuleSetTest, LastMatchOverrides) {
  RuleSet rules;
  rules.Add("base", Condition::True(), Value::Int(1))
      .Add("override", Gt(0, 10), Value::Int(2));
  const core::TaskFn fn = rules.Compile(CombinePolicy::kLastMatch);
  EXPECT_EQ(fn(MakeContext(Value::Int(20), Value::Null())), Value::Int(2));
  EXPECT_EQ(fn(MakeContext(Value::Int(5), Value::Null())), Value::Int(1));
}

TEST(RuleSetTest, SumAccumulatesMatchingContributions) {
  // The paper's promo scoring style: business factors contribute weights.
  RuleSet rules;
  rules.Add("high_value_cart", Gt(0, 100), Value::Double(0.4))
      .Add("loyal_customer", Gt(1, 2), Value::Double(0.35))
      .Add("always", Condition::True(), Value::Double(0.1));
  const core::TaskFn fn = rules.Compile(CombinePolicy::kSumNumeric);
  const Value both = fn(MakeContext(Value::Int(150), Value::Int(5)));
  EXPECT_DOUBLE_EQ(both.double_value(), 0.85);
  const Value one = fn(MakeContext(Value::Int(150), Value::Int(1)));
  EXPECT_DOUBLE_EQ(one.double_value(), 0.5);
}

TEST(RuleSetTest, MaxPicksLargestContribution) {
  RuleSet rules;
  rules.Add("a", Condition::True(), Value::Int(3))
      .Add("b", Condition::True(), Value::Int(7))
      .Add("c", Gt(0, 1000), Value::Int(100));  // does not fire
  const core::TaskFn fn = rules.Compile(CombinePolicy::kMaxNumeric);
  EXPECT_DOUBLE_EQ(fn(MakeContext(Value::Int(1), Value::Null())).double_value(),
                   7.0);
}

TEST(RuleSetTest, CountMatches) {
  RuleSet rules;
  rules.Add("a", Gt(0, 0), Value::Int(0))
      .Add("b", Gt(0, 10), Value::Int(0))
      .Add("c", Gt(0, 100), Value::Int(0));
  const core::TaskFn fn = rules.Compile(CombinePolicy::kCountMatches);
  EXPECT_EQ(fn(MakeContext(Value::Int(50), Value::Null())), Value::Int(2));
  EXPECT_EQ(fn(MakeContext(Value::Int(-1), Value::Null())), Value::Int(0));
}

TEST(RuleSetTest, DefaultWhenNothingMatches) {
  RuleSet rules;
  rules.Add("never", Gt(0, 1000), Value::Int(1));
  EXPECT_EQ(rules.Compile(CombinePolicy::kSumNumeric, Value::Int(-1))(
                MakeContext(Value::Int(0), Value::Null())),
            Value::Int(-1));
  EXPECT_TRUE(rules.Compile(CombinePolicy::kFirstMatch)(
                  MakeContext(Value::Int(0), Value::Null()))
                  .is_null());
}

TEST(RuleSetTest, NullInputsHandledViaIsNull) {
  // Rules can route on missing information (⊥ inputs) explicitly.
  RuleSet rules;
  rules.Add("fallback_when_missing",
            Condition::Pred(Predicate::IsNull(0)), Value::String("default"))
      .Add("personalized", Condition::Pred(Predicate::IsNotNull(0)),
           Value::String("personalized"));
  const core::TaskFn fn = rules.Compile(CombinePolicy::kFirstMatch);
  EXPECT_EQ(fn(MakeContext(Value::Null(), Value::Null())),
            Value::String("default"));
  EXPECT_EQ(fn(MakeContext(Value::Int(1), Value::Null())),
            Value::String("personalized"));
}

TEST(RuleSetTest, ComputedContributionsSeeInputs) {
  RuleSet rules;
  rules.Add("double_it", Condition::True(),
            [](const core::TaskContext& ctx) {
              return Value::Int(ctx.input(0).int_value() * 2);
            });
  const core::TaskFn fn = rules.Compile(CombinePolicy::kFirstMatch);
  EXPECT_EQ(fn(MakeContext(Value::Int(21), Value::Null())), Value::Int(42));
}

TEST(RuleSetTest, ConditionAttributesAreCollected) {
  RuleSet rules;
  rules.Add("a", Gt(3, 0), Value::Int(0))
      .Add("b", Condition::All({Gt(1, 0), Gt(3, 5)}), Value::Int(0));
  EXPECT_EQ(rules.ConditionAttributes(), (std::vector<AttributeId>{1, 3}));
  EXPECT_EQ(rules.size(), 2);
  EXPECT_EQ(rules.rule_name(0), "a");
}

TEST(RuleSetTest, EndToEndInsideDecisionFlow) {
  // A rule-based synthesis attribute inside a real flow: service level
  // chosen by decision list over cart value and loyalty.
  core::SchemaBuilder b;
  const AttributeId cart = b.AddSource("cart");
  const AttributeId loyalty = b.AddSource("loyalty");
  RuleSet rules;
  rules.Add("vip", Condition::All({Gt(cart, 500), Gt(loyalty, 3)}),
            Value::String("vip"))
      .Add("priority", Gt(cart, 500), Value::String("priority"))
      .Add("standard", Condition::True(), Value::String("standard"));
  b.AddSynthesis("service_level",
                 rules.Compile(CombinePolicy::kFirstMatch),
                 /*data_inputs=*/{cart, loyalty}, expr::Condition::True(),
                 /*is_target=*/true);
  auto schema = b.Build();
  ASSERT_TRUE(schema.has_value());

  const auto vip = core::RunSingleInfinite(
      *schema, {{cart, Value::Int(900)}, {loyalty, Value::Int(5)}}, 1,
      *core::Strategy::Parse("PCE0"));
  EXPECT_EQ(vip.snapshot.value(schema->FindAttribute("service_level")),
            Value::String("vip"));
  const auto std_level = core::RunSingleInfinite(
      *schema, {{cart, Value::Int(50)}, {loyalty, Value::Int(0)}}, 1,
      *core::Strategy::Parse("PCE0"));
  EXPECT_EQ(std_level.snapshot.value(schema->FindAttribute("service_level")),
            Value::String("standard"));
}

TEST(RuleSetTest, PolicyNames) {
  EXPECT_EQ(ToString(CombinePolicy::kFirstMatch), "first-match");
  EXPECT_EQ(ToString(CombinePolicy::kSumNumeric), "sum");
  EXPECT_EQ(ToString(CombinePolicy::kCountMatches), "count");
}

}  // namespace
}  // namespace dflow::rules
