// Stress suites for the flow-serving runtime, labeled `slow` in CTest and
// excluded from the fast `ctest -L unit` gate (the full-suite CI job runs
// them): the ~5k-request bounded-backend determinism sweep and the
// TrySubmit-vs-Drain backpressure race.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "gen/schema_generator.h"
#include "runtime/flow_server.h"
#include "runtime/request_queue.h"

namespace dflow::runtime {
namespace {

core::Strategy S(const char* text) { return *core::Strategy::Parse(text); }

// --- Bounded-backend determinism stress: ~5k mixed-seed requests (distinct
// seeds interleaved with repeats) served against per-shard DatabaseServers.
// The full seed -> (work, response time) map must be identical for 1, 3,
// 7, and 8 shards: which shard runs an instance, and what ran on that
// shard before it, must not leak into the result even when the backend
// queues CPU/disk work and draws random buffer-pool hits.
TEST(FlowServerStressTest, BoundedBackendResultsIdenticalAcross1_3_7_8Shards) {
  gen::PatternParams params;
  params.nb_nodes = 16;
  params.nb_rows = 2;
  params.seed = 21;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);

  // 5000 requests over 1250 distinct seeds: each seed appears 4 times,
  // scattered so repeats interleave with other seeds in every shard's FIFO.
  const int kDistinct = 1250;
  const int kTotal = 5000;
  std::vector<FlowRequest> requests;
  requests.reserve(kTotal);
  for (int i = 0; i < kTotal; ++i) {
    const uint64_t seed =
        gen::InstanceSeed(params, static_cast<int>((i * 13) % kDistinct));
    requests.push_back({gen::MakeSourceBinding(pattern, seed), seed});
  }

  using WorkAndResponse = std::pair<int64_t, double>;
  auto run = [&](int num_shards) {
    FlowServerOptions options;
    options.num_shards = num_shards;
    options.queue_capacity_per_shard = 512;
    options.strategy = S("PSE100");
    options.backend = core::BackendKind::kBoundedDb;
    FlowServer server(&pattern.schema, options);

    std::mutex mu;
    std::map<uint64_t, WorkAndResponse> by_seed;
    bool repeat_mismatch = false;
    server.SetResultCallback([&](int, const FlowRequest& request,
                                 const core::InstanceResult& result,
                                 const core::Strategy&) {
      const WorkAndResponse wr{result.metrics.work,
                               result.metrics.ResponseTime()};
      std::lock_guard<std::mutex> lock(mu);
      auto [it, inserted] = by_seed.emplace(request.seed, wr);
      if (!inserted && it->second != wr) repeat_mismatch = true;
    });
    for (const FlowRequest& request : requests) {
      EXPECT_TRUE(server.Submit(request));
    }
    server.Drain();
    EXPECT_FALSE(repeat_mismatch) << num_shards << " shards";
    EXPECT_EQ(server.Report().stats.completed, kTotal);
    return by_seed;
  };

  const auto shards1 = run(1);
  const auto shards3 = run(3);
  const auto shards7 = run(7);
  const auto shards8 = run(8);
  ASSERT_EQ(shards1.size(), static_cast<size_t>(kDistinct));
  EXPECT_EQ(shards1, shards3);
  EXPECT_EQ(shards1, shards7);
  EXPECT_EQ(shards1, shards8);
}

// --- Backpressure/drain race: four producers hammer TrySubmit while the
// main thread drains mid-stream. Every submission must be accounted for
// exactly once: accepted requests all complete, refused ones are all
// counted as rejections, and the two partition the submission count.
TEST(FlowServerStressTest, TrySubmitDrainRaceLosesAndDoubleCountsNothing) {
  gen::PatternParams params;
  params.nb_nodes = 32;
  params.nb_rows = 4;
  params.seed = 17;
  const gen::GeneratedSchema pattern = gen::GeneratePattern(params);
  const int kThreads = 4;
  const int kPerThread = 400;

  FlowServerOptions options;
  options.num_shards = 2;
  options.queue_capacity_per_shard = 8;  // small: rejections from fullness
  options.strategy = S("PCE0");
  FlowServer server(&pattern.schema, options);

  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t seed =
            gen::InstanceSeed(pattern.params, t * kPerThread + i);
        if (server.TrySubmit({gen::MakeSourceBinding(pattern, seed), seed})) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Drain races the producers: some submissions land before the close,
  // the rest are refused (queue full or closed — both are rejections).
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  server.Drain();
  for (std::thread& producer : producers) producer.join();

  const FlowServerReport report = server.Report();
  EXPECT_EQ(accepted.load() + rejected.load(), kThreads * kPerThread);
  EXPECT_EQ(report.stats.completed, accepted.load());
  EXPECT_EQ(report.stats.rejected, rejected.load());
  int64_t per_shard_total = 0;
  for (const int64_t processed : report.per_shard_processed) {
    per_shard_total += processed;
  }
  EXPECT_EQ(per_shard_total, accepted.load());
}

}  // namespace
}  // namespace dflow::runtime
